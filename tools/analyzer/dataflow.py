"""Interprocedural dataflow rules over the symbol index / call graph / CFG.

The :class:`SemanticModel` is built once per analysis run (symbol index,
then call graph, then per-function CFGs) and handed to the four semantic
rules:

``uncharged-forward`` (v2)
    Every call chain from an attack/eval/service *entry point* to a
    classifier forward-family call (``forward``/``predict``/
    ``predict_proba``/``class_probability``/``eval_swap``/``eval_tokens``
    and their batched variants) must pass through at least one function
    that charges the ``QueryBudget`` (``charge(``/``charge_up_to(``),
    checks a cache hit, or binds an ``AttackControl`` to the evaluator
    shell (``bind_control(`` — the shell then charges every cache miss
    itself, which is the one charge point of the batched scoring path).
    Domination is at *function granularity*: a function that charges
    anywhere discharges the sinks it dominates — a deliberate
    approximation (branch-level domination would need real dataflow).
    Findings carry the uncharged chain as a witness.

``unpolled-loop``
    A loop on a hot path (src/core, src/eval, src/nn, src/service) whose
    body performs *heavy* work — a forward-family call, file IO, a sleep,
    or a call that transitively reaches one — must poll for cancellation
    inside the body: ``Deadline::expired``, ``StopToken::stop_requested``,
    budget exhaustion, ``Heartbeat::beat``, or a condvar wait (which
    yields by construction). Polling through a callee counts (the callee
    transitively polls).

``lock-order``
    Builds the global Mutex acquisition-order graph: an edge A -> B means
    B is acquired (directly or via a call chain) while A is held.
    Mutex identity is the class-qualified member (``AttackDaemon::mu_``)
    resolved from the lock expression and light local type inference;
    unresolvable owners collapse to ``?::member`` (consistent, so cycles
    are still comparable). ``try_lock`` never forms an edge (non-blocking
    acquisitions cannot deadlock). Any cycle in the graph is reported
    once, anchored at its lexicographically smallest mutex.

``severity-drop``
    A catch clause that *absorbs* an exception (no throw/rethrow/stash)
    inside a function that traffics in severities (``TerminationReason``,
    ``Outcome``, ``Failure``, ``worst_job``) — or whose handler records an
    error counter — must fold the failure into the severity lattice:
    ``worse_of(...)``, ``kError``, ``Outcome::error``, a ``Failure{...}``,
    or a call to a helper that transitively does. Otherwise an injected
    fault degrades into a log line and vanishes from the run's verdict.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field

from .callgraph import CallGraph, CallSite
from .cfg import FunctionCFG, build_cfg
from .engine import FileContext, Finding
from .symbols import Function, SymbolIndex

# -- token vocabularies ------------------------------------------------------

FORWARD_FAMILY = ("forward", "predict", "predict_proba",
                  "class_probability", "eval_swap", "eval_tokens",
                  "eval_swap_batch", "eval_tokens_batch",
                  "predict_proba_batch")
_RE_FORWARD_SITE = re.compile(
    r"(?:\.|->)\s*(?:%s)\s*\(" % "|".join(FORWARD_FAMILY))
#: bind_control counts as a charge site: once an AttackControl is bound to
#: the SwapEvaluator shell, the shell itself charges the budget on every
#: cache miss (the single charge point of the batched scoring path), so
#: the binding function discharges the queries it dominates.
_RE_CHARGE = re.compile(
    r"\bcharge(?:_up_to)?\s*\(|\bcache_hit\b|\bbind_control\s*\(")

_RE_HEAVY_DIRECT = re.compile(
    r"(?:\.|->)\s*(?:%s)\s*\(" % "|".join(FORWARD_FAMILY)
    + r"|\b(?:read_file|write_file|atomic_write_file|rename_file"
    + r"|remove_file|sleep_ms|save_artifact|load_artifact)\s*\("
    + r"|\b(?:read_frame|write_frame|accept_connection)\s*\(")
_RE_POLL = re.compile(
    r"\b(?:expired|stop_requested|budget_exhausted|exhausted|beat"
    r"|should_stop|stop\b.{0,12}requested|wait_for_ms|wait)\s*\("
    r"|\bout_of_time\b|\bout_of_budget\b")

_RE_SEVERITY_CTX = re.compile(
    r"\bTerminationReason\b|\bworse_of\b|\bOutcome\s*<|\bFailure\b"
    r"|\bworst_job\b|\.termination\b")
_RE_SEV_FOLD = re.compile(
    r"\bworse_of\s*\(|\bkError\b|\bkStopped\b|::\s*error\s*\("
    r"|\bFailure\s*\{|\bthrow\b|\brethrow_exception\b|\bcurrent_exception\b")
_RE_ERR_COUNTER = re.compile(r"\w*errored\b")

#: The locking primitives themselves are not subject to lock-order edges.
_SYNC_FILES = ("src/util/sync.h", "src/util/sync.cpp")

#: Hot paths for the unpolled-loop rule: attack orchestration, evaluation,
#: the service, and the training/serving side of src/nn. Model *internals*
#: (gru/lstm/cnn cell loops, defense wrappers) are excluded: one
#: forward-family call is the atomic unit the deadline/stop machinery acts
#: *between* — polling inside a single query's token loop is the wrong
#: granularity (documented soundness caveat in DESIGN.md §5.1).
_HOT_PREFIXES = ("src/core/", "src/eval/", "src/service/",
                 "src/nn/supervisor", "src/nn/sharded_supervisor",
                 "src/nn/trainer")

#: Functions implementing a single model query (or its gradient): their
#: internal loops are one unit of heavy work, not a sequence of them.
_QUERY_IMPL_NAMES = set(FORWARD_FAMILY) | {"input_gradient", "rebase"}


# -- semantic model ----------------------------------------------------------


class SemanticModel:
    """Symbol index + call graph + CFGs for one analysis run."""

    def __init__(self, contexts: list[FileContext]):
        self.contexts = contexts
        self.code_of = {c.rel: c.lexed.code for c in contexts}
        self.timings: dict[str, float] = {}

        t0 = time.monotonic()
        self.index = SymbolIndex.build(contexts)
        t1 = time.monotonic()
        self.graph = CallGraph.build(self.index, self.code_of)
        t2 = time.monotonic()
        self.cfgs: dict[int, FunctionCFG] = {
            id(fn): build_cfg(self.code_of[fn.file], fn)
            for fn in self.index.functions}
        t3 = time.monotonic()
        self.timings["symbol-index"] = t1 - t0
        self.timings["call-graph"] = t2 - t1
        self.timings["cfg"] = t3 - t2

    def cfg(self, fn: Function) -> FunctionCFG:
        return self.cfgs[id(fn)]

    def inner_body(self, fn: Function) -> str:
        return fn.body

    def site_abs(self, fn: Function, site: CallSite) -> tuple[str, int]:
        return fn.file, site.line


# -- rule 1: uncharged-forward v2 -------------------------------------------


def _is_entry(fn: Function) -> bool:
    if not fn.file.startswith(("src/core/", "src/eval/", "src/service/")):
        return False
    if "AttackControl" in fn.head:
        return True
    if fn.name in ("evaluate_attack", "adversarial_training_experiment"):
        return True
    if fn.file.startswith("src/service/") and fn.name in (
            "run_job", "worker_loop", "serve", "handle_connection",
            "recover"):
        return True
    return False


def _charges(fn: Function) -> bool:
    return bool(_RE_CHARGE.search(fn.body))


def check_uncharged_forward(model: SemanticModel) -> list[Finding]:
    findings: list[Finding] = []
    reported: set[tuple[str, int]] = set()
    entries = [fn for fn in model.index.functions if _is_entry(fn)]
    # BFS over (function, charged) states; parents reconstruct witnesses.
    from collections import deque
    queue: "deque[tuple[int, bool]]" = deque()
    parent: dict[tuple[int, bool], tuple[int, bool] | None] = {}
    fn_of: dict[int, Function] = {id(f): f for f in model.index.functions}
    for e in entries:
        state = (id(e), _charges(e))
        if state not in parent:
            parent[state] = None
            queue.append(state)
    while queue:
        fid, charged = queue.popleft()
        fn = fn_of[fid]
        if not charged:
            for site, _targets in model.graph.callees(fn):
                if site.name not in FORWARD_FAMILY:
                    continue
                loc = (fn.file, site.line)
                if loc in reported:
                    continue
                reported.add(loc)
                chain = _witness_chain(parent, (fid, charged), fn_of)
                chain.append(f"{fn.file}:{site.line} {site.name}() "
                             "[uncharged]")
                findings.append(Finding(
                    fn.file, site.line, "uncharged-forward",
                    f"classifier query '{site.name}()' is reachable from "
                    f"entry point '{chain[0].split()[-1]}' with no "
                    "QueryBudget charge or cache-hit check anywhere on the "
                    "call chain; charge the budget (AttackControl::charge / "
                    "charge_up_to) on the chain or the paper's query "
                    "accounting goes silently dishonest",
                    witness=tuple(chain)))
        for site, targets in model.graph.callees(fn):
            if site.name in FORWARD_FAMILY:
                continue  # the sink is the boundary; don't traverse past it
            for t in targets:
                nstate = (id(t), charged or _charges(t))
                if nstate not in parent:
                    parent[nstate] = (fid, charged)
                    queue.append(nstate)
    return findings


def _witness_chain(parent, state, fn_of) -> list[str]:
    chain = []
    cur = state
    while cur is not None:
        fn = fn_of[cur[0]]
        chain.append(f"{fn.file}:{fn.line} {fn.name}")
        cur = parent.get(cur)
    chain.reverse()
    return chain


# -- rule 2: unpolled-loop ---------------------------------------------------


def check_unpolled_loop(model: SemanticModel) -> list[Finding]:
    findings: list[Finding] = []
    heavy_reach = model.graph.functions_reaching(
        lambda f: bool(_RE_HEAVY_DIRECT.search(f.body)))
    poll_reach = model.graph.functions_reaching(
        lambda f: bool(_RE_POLL.search(f.body)))
    for fn in model.index.functions:
        if not fn.file.startswith(_HOT_PREFIXES):
            continue
        if fn.name in _QUERY_IMPL_NAMES:
            continue
        code = model.code_of[fn.file]
        cfg = model.cfg(fn)
        sites = model.graph.callees(fn)
        for loop in cfg.loops:
            span = code[loop.body_start:loop.body_end + 1]
            in_span = [(s, ts) for s, ts in sites
                       if loop.body_start <= s.idx <= loop.body_end]
            heavy = bool(_RE_HEAVY_DIRECT.search(span)) or any(
                any(id(t) in heavy_reach for t in ts) for _s, ts in in_span)
            if not heavy:
                continue
            polls = bool(_RE_POLL.search(span)) or any(
                any(id(t) in poll_reach for t in ts) for _s, ts in in_span)
            if polls:
                continue
            heavy_what = next(
                (s.name for s, ts in in_span
                 if any(id(t) in heavy_reach for t in ts)), None)
            m = _RE_HEAVY_DIRECT.search(span)
            if m and heavy_what is None:
                heavy_what = span[m.start():m.end()].strip(".->( ")
            findings.append(Finding(
                fn.file, loop.line, "unpolled-loop",
                f"loop in '{fn.name}' does heavy work "
                f"('{heavy_what}') but never polls "
                "Deadline/StopToken/QueryBudget/Heartbeat inside the "
                "body; a deadline or shutdown request cannot interrupt "
                "it, so the watchdog is the only thing that can — poll "
                "control.deadline.expired(), stop_requested(), "
                "budget_exhausted(), or heart->beat() in the loop",
                witness=(f"{fn.file}:{loop.line} loop in {fn.name}",)))
    return findings


# -- rule 3: lock-order ------------------------------------------------------


def _mutex_identity(model: SemanticModel, fn: Function, expr: str) -> str:
    """Normalizes a lock expression to ``Class::member`` where possible."""
    expr = expr.replace("this->", "")
    parts = re.split(r"\.|->", expr)
    member = parts[-1]
    if len(parts) == 1:
        # Bare member or local. A local Mutex is identified per-function.
        if re.search(r"\bMutex\s+%s\b" % re.escape(member), fn.body):
            return f"{fn.qualified}::{member}"
        return f"{fn.cls}::{member}" if fn.cls else f"?::{member}"
    owner = parts[-2]
    search_space = fn.head + fn.body
    for pat in (r"\b([A-Za-z_]\w*)\s*[*&]\s*(?:const\s*)?%s\b",
                r"(?:shared_ptr|unique_ptr|weak_ptr)\s*<\s*"
                r"([A-Za-z_]\w*)\s*>[^;({]{0,40}?\b%s\b",
                r"\b%s\s*=\s*std::make_shared<\s*([A-Za-z_]\w*)\s*>"):
        m = re.search(pat % re.escape(owner), search_space)
        if m:
            t = m.group(1)
            if t not in ("const", "auto"):
                return f"{t}::{member}"
    m = re.search(r"\b([A-Z]\w*)\s+%s\s*[;({=]" % re.escape(owner),
                  search_space)
    if m:
        return f"{m.group(1)}::{member}"
    return f"?::{member}"


def _locks_closure(model: SemanticModel) -> dict[int, set[str]]:
    """fn-id -> set of mutex identities acquired by fn or its callees."""
    direct: dict[int, set[str]] = {}
    for fn in model.index.functions:
        if fn.file in _SYNC_FILES:
            direct[id(fn)] = set()
            continue
        direct[id(fn)] = {
            _mutex_identity(model, fn, sc.mutex_expr)
            for sc in model.cfg(fn).locks}
    closure = {k: set(v) for k, v in direct.items()}
    changed = True
    while changed:
        changed = False
        for fn in model.index.functions:
            acc = closure[id(fn)]
            before = len(acc)
            for _site, targets in model.graph.callees(fn):
                for t in targets:
                    acc |= closure.get(id(t), set())
            if len(acc) != before:
                changed = True
    return closure


def check_lock_order(model: SemanticModel) -> list[Finding]:
    closure = _locks_closure(model)
    # edge: held -> acquired, with one witness (file, line, description)
    edges: dict[tuple[str, str], tuple[str, int, str]] = {}
    for fn in model.index.functions:
        if fn.file in _SYNC_FILES:
            continue
        cfg = model.cfg(fn)
        sites = model.graph.callees(fn)
        for held in cfg.locks:
            a = _mutex_identity(model, fn, held.mutex_expr)
            for other in cfg.locks:
                if other.idx <= held.idx or other.idx > held.end:
                    continue
                b = _mutex_identity(model, fn, other.mutex_expr)
                if b != a:
                    edges.setdefault((a, b), (
                        fn.file, other.line,
                        f"{fn.name} acquires {b} while holding {a}"))
            for site, targets in sites:
                if not (held.idx <= site.idx <= held.end):
                    continue
                for t in targets:
                    for b in closure.get(id(t), ()):
                        if b != a:
                            edges.setdefault((a, b), (
                                fn.file, site.line,
                                f"{fn.name} -> {site.name}() acquires {b} "
                                f"while holding {a}"))

    graph: dict[str, set[str]] = {}
    for (a, b) in edges:
        graph.setdefault(a, set()).add(b)
        graph.setdefault(b, set())

    findings: list[Finding] = []
    seen: set[tuple[str, ...]] = set()
    color: dict[str, int] = {}

    def dfs(node: str, path: list[str]) -> None:
        color[node] = 1
        path.append(node)
        for nxt in sorted(graph.get(node, ())):
            if color.get(nxt, 0) == 1:
                cyc = tuple(path[path.index(nxt):])
                pivot = cyc.index(min(cyc))
                canon = cyc[pivot:] + cyc[:pivot]
                if canon in seen:
                    continue
                seen.add(canon)
                witness = []
                ring = list(canon) + [canon[0]]
                for x, y in zip(ring, ring[1:]):
                    f, ln, desc = edges[(x, y)]
                    witness.append(f"{f}:{ln} {desc}")
                f0, ln0, _ = edges[(canon[0], ring[1])]
                findings.append(Finding(
                    f0, ln0, "lock-order",
                    "mutex acquisition-order cycle "
                    + " -> ".join(ring)
                    + "; two threads taking these locks in opposing order "
                    "deadlock — impose one global order (or drop to a "
                    "try_lock with a fallback)",
                    witness=tuple(witness)))
            elif color.get(nxt, 0) == 0:
                dfs(nxt, path)
        path.pop()
        color[node] = 2

    for node in sorted(graph):
        if color.get(node, 0) == 0:
            dfs(node, [])
    return findings


# -- rule 4: severity-drop ---------------------------------------------------


def check_severity_drop(model: SemanticModel) -> list[Finding]:
    findings: list[Finding] = []
    fold_reach = model.graph.functions_reaching(
        lambda f: bool(_RE_SEV_FOLD.search(f.body)))
    for fn in model.index.functions:
        if not fn.file.startswith("src/"):
            continue
        cfg = model.cfg(fn)
        if not cfg.catches:
            continue
        sites = model.graph.callees(fn)
        for catch in cfg.catches:
            code = model.code_of[fn.file]
            body = code[catch.body_start:catch.body_end + 1]
            if _RE_SEV_FOLD.search(body):
                continue  # folds, throws, or stashes — fine
            outside = (fn.body[:catch.body_start - fn.body_start]
                       + fn.body[catch.body_end - fn.body_start:])
            severity_fn = bool(_RE_SEVERITY_CTX.search(outside))
            err_counter = bool(_RE_ERR_COUNTER.search(body))
            if not (severity_fn or err_counter):
                continue
            in_body = [(s, ts) for s, ts in sites
                       if catch.body_start <= s.idx <= catch.body_end]
            if any(any(id(t) in fold_reach for t in ts)
                   for _s, ts in in_body):
                continue  # a called helper folds/rethrows transitively
            findings.append(Finding(
                fn.file, catch.line, "severity-drop",
                f"catch ({catch.param or '...'}) in '{fn.name}' absorbs a "
                "failure without folding it into the severity lattice: "
                "record worse_of(..., TerminationReason::kError) (or "
                "return Outcome/Failure, or rethrow) so the failure "
                "survives into the run's verdict instead of degrading "
                "into a log line",
                witness=(f"{fn.file}:{catch.line} catch in {fn.name}",)))
    return findings
