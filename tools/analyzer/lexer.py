"""C++ surface lexer for the advtext analyzer.

Produces a *masked* view of a translation unit: comment bodies and
string/char-literal contents are blanked out while line structure (every
newline) is preserved, so rule regexes can run over `code` and report line
numbers that match the raw file. Comments are additionally returned as
(line, text) pairs so the suppression syntax (``// ADVTEXT_ALLOW(rule):
reason``) can be parsed from them.

This replaces the ``strip_comments`` scanner that used to live in
tools/lint.py, which had two real bugs:

  * raw string literals were not recognised at all, so ``R"(a " b)"``
    left the scanner inside a phantom string (everything after the inner
    quote — including genuine violations — was masked), and a ``//``
    inside a raw string started a phantom comment;
  * escape sequences were skipped as exactly two characters which is right
    for ``\\`` and ``\"`` termination purposes, but the replacement text
    was emitted unconditionally even when the backslash was the last
    character of the file (dropping the newline and shifting every
    subsequent line number).

The lexer handles ``//``, ``/* */``, ``"..."`` with escapes (multi-char
escapes like ``\x41`` need no special casing: only the character *after*
the backslash is exempt from terminating the literal), ``'...'`` char
literals, and raw string literals with optional encoding prefixes
(``R"d(...)d"``, ``u8R"(...)"``, ``LR"(...)"``, ...). Newlines inside raw
strings and block comments are preserved.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

# Encoding prefixes that may precede a raw-string R.
_RAW_PREFIXES = ("u8", "u", "U", "L")

_RE_RAW_INTRO = re.compile(r'(?:u8|u|U|L)?R"([^ ()\\\t\v\f\n]{0,16})\(')


@dataclass
class LexedFile:
    """Masked source plus the comment stream."""

    code: str
    comments: list[tuple[int, str]] = field(default_factory=list)

    @property
    def code_lines(self) -> list[str]:
        return self.code.splitlines()


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


def lex(text: str) -> LexedFile:
    out: list[str] = []
    comments: list[tuple[int, str]] = []
    i = 0
    n = len(text)
    line = 1

    def emit_masked(upto: int) -> None:
        """Masks text[i:upto], preserving newlines, advancing i and line."""
        nonlocal i, line
        for k in range(i, upto):
            if text[k] == "\n":
                out.append("\n")
                line += 1
            else:
                out.append(" ")
        i = upto

    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""

        # ---- comments ----------------------------------------------------
        if ch == "/" and nxt == "/":
            end = text.find("\n", i)
            if end == -1:
                end = n
            comments.append((line, text[i:end]))
            emit_masked(end)
            continue
        if ch == "/" and nxt == "*":
            end = text.find("*/", i + 2)
            end = n if end == -1 else end + 2
            comments.append((line, text[i:end]))
            emit_masked(end)
            continue

        # ---- raw string literal -----------------------------------------
        if ch in "RuUL" and (i == 0 or not _is_ident_char(text[i - 1])):
            m = _RE_RAW_INTRO.match(text, i)
            if m:
                delim = m.group(1)
                closer = ")" + delim + '"'
                close = text.find(closer, m.end())
                # Keep a quote visible at each end (rules that ask "does a
                # string start here" still see one) but mask the prefix,
                # delimiter and contents. Character counts are preserved.
                out.append('"')
                i += 1
                if close == -1:  # unterminated: mask to EOF
                    emit_masked(n)
                    continue
                end = close + len(closer)
                emit_masked(end - 1)
                out.append('"')
                i = end
                continue

        # ---- ordinary string / char literal ------------------------------
        if ch == '"' or ch == "'":
            quote = ch
            out.append(quote)
            j = i + 1
            while j < n:
                c = text[j]
                if c == "\\" and j + 1 < n:
                    j += 2
                    continue
                if c == quote or c == "\n":
                    break
                j += 1
            # j points at the closing quote, a newline (unterminated), or n.
            end = j
            i += 1
            emit_masked(end)
            if i < n and text[i] == quote:
                out.append(quote)
                i += 1
            continue

        # ---- plain code ---------------------------------------------------
        if ch == "\n":
            line += 1
        out.append(ch)
        i += 1

    return LexedFile(code="".join(out), comments=comments)
