"""Rule engine: findings, suppressions, and project-level analysis.

The engine is deliberately filesystem-agnostic: a :class:`Project` is built
from a ``{repo-relative-path: source-text}`` mapping plus a ``file_exists``
predicate, so the self-test can analyze a *virtual* fixture tree with the
exact same code paths the real repo scan uses.

Suppressions
------------
A finding on line L of a file is suppressed by a comment

    // ADVTEXT_ALLOW(rule-id): <reason>

placed either on line L itself (trailing a statement) or on the line
directly above it. The reason is mandatory and reviewable; a suppression
without one still suppresses its target (no double reporting) but raises
an ``allow-missing-reason`` finding of its own, so the tree cannot be
clean while carrying undocumented escapes. Naming a rule id the engine
does not know raises ``allow-unknown-rule`` — a typo must not silently
turn a suppression into a no-op.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import PurePosixPath

from .lexer import LexedFile, lex

HEADER_SUFFIXES = (".h", ".hpp")
SOURCE_SUFFIXES = (".h", ".hpp", ".cc", ".cpp")

_RE_ALLOW = re.compile(
    r"//\s*ADVTEXT_ALLOW\(\s*([A-Za-z0-9_,\- ]*?)\s*\)\s*(?::\s*(.*?)\s*)?$"
)


@dataclass(frozen=True)
class Finding:
    file: str
    line: int
    rule: str
    message: str
    #: Call-chain witness for interprocedural findings: each element is
    #: "file:line what", entry first, sink last. Empty for lexical rules.
    witness: tuple = ()

    def render(self) -> str:
        text = f"{self.file}:{self.line}: [{self.rule}] {self.message}"
        if self.witness:
            text += "".join(f"\n    via {step}" for step in self.witness)
        return text

    def to_json(self) -> dict:
        return {
            "file": self.file,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
            "witness": list(self.witness),
        }


@dataclass
class Suppression:
    file: str
    line: int  # line the comment sits on
    rule: str
    reason: str


@dataclass
class FileContext:
    """Everything the per-file rules see for one translation unit."""

    rel: str
    raw: str
    lexed: LexedFile
    file_exists: "callable"

    def __post_init__(self) -> None:
        self.code_lines = self.lexed.code.splitlines()
        self.raw_lines = self.raw.splitlines()
        self.is_header = PurePosixPath(self.rel).suffix in HEADER_SUFFIXES
        self.in_library = self.rel.startswith("src/")

    def in_dir(self, *prefixes: str) -> bool:
        return any(self.rel.startswith(p) for p in prefixes)


@dataclass
class AnalysisResult:
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[tuple[Finding, Suppression]] = field(default_factory=list)
    files_analyzed: int = 0
    #: pass name -> wall seconds. Deliberately *not* part of to_json(): the
    #: findings payload stays byte-stable for golden tests and trend diffs.
    timings: dict = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_json(self) -> dict:
        return {
            "analyzer_version": 1,
            "files_analyzed": self.files_analyzed,
            "findings": [f.to_json() for f in self.findings],
            "suppressed": [
                dict(f.to_json(), reason=s.reason) for f, s in self.suppressed
            ],
        }

    def render_json(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"


def parse_suppressions(rel: str, lexed: LexedFile,
                       known_rules: set[str]) -> tuple[list[Suppression],
                                                       list[Finding]]:
    """Extracts ADVTEXT_ALLOW annotations; malformed ones become findings."""
    suppressions: list[Suppression] = []
    findings: list[Finding] = []
    for line_no, text in lexed.comments:
        m = _RE_ALLOW.search(text)
        if not m:
            if "ADVTEXT_ALLOW" in text:
                findings.append(Finding(
                    rel, line_no, "allow-unknown-rule",
                    "malformed ADVTEXT_ALLOW annotation; expected "
                    "`// ADVTEXT_ALLOW(rule-id): reason`"))
            continue
        rules_text, reason = m.group(1), (m.group(2) or "").strip()
        rule_ids = [r.strip() for r in rules_text.split(",") if r.strip()]
        if not rule_ids:
            findings.append(Finding(
                rel, line_no, "allow-unknown-rule",
                "ADVTEXT_ALLOW names no rule id"))
            continue
        for rule_id in rule_ids:
            if rule_id not in known_rules:
                findings.append(Finding(
                    rel, line_no, "allow-unknown-rule",
                    f"ADVTEXT_ALLOW names unknown rule '{rule_id}'"))
                continue
            if not reason:
                findings.append(Finding(
                    rel, line_no, "allow-missing-reason",
                    f"ADVTEXT_ALLOW({rule_id}) carries no reason; every "
                    "suppression must explain itself for review"))
            suppressions.append(Suppression(rel, line_no, rule_id, reason))
    return suppressions, findings


def apply_suppressions(
        findings: list[Finding],
        suppressions: list[Suppression]) -> tuple[list[Finding],
                                                  list[tuple[Finding,
                                                             Suppression]]]:
    """A suppression covers findings of its rule on its own line and the
    line directly below (the annotate-above idiom)."""
    index: dict[tuple[str, str, int], Suppression] = {}
    for s in suppressions:
        index[(s.file, s.rule, s.line)] = s
        index.setdefault((s.file, s.rule, s.line + 1), s)
    kept: list[Finding] = []
    silenced: list[tuple[Finding, Suppression]] = []
    for f in findings:
        # The suppression-integrity findings cannot themselves be suppressed.
        if f.rule in ("allow-missing-reason", "allow-unknown-rule"):
            kept.append(f)
            continue
        s = index.get((f.file, f.rule, f.line))
        if s is not None:
            silenced.append((f, s))
        else:
            kept.append(f)
    return kept, silenced


class Project:
    """One analysis run over a set of translation units."""

    def __init__(self, files: dict[str, str], file_exists=None):
        from . import rules  # late import: rules imports engine types

        self.files = files
        self._extra_exists = file_exists
        self.rules = rules
        self.contexts: list[FileContext] = []
        for rel in sorted(files):
            self.contexts.append(FileContext(
                rel=rel, raw=files[rel], lexed=lex(files[rel]),
                file_exists=self._file_exists))

    def _file_exists(self, rel: str) -> bool:
        if rel in self.files:
            return True
        if self._extra_exists is not None:
            return self._extra_exists(rel)
        return False

    def analyze(self, restrict: set[str] | None = None) -> AnalysisResult:
        """Full analysis, or — with ``restrict`` — the ``--changed`` fast
        path: file rules run only on the restricted files and findings are
        filtered to them, but suppression parsing and the semantic model
        (symbol index, call graph) still cover the whole file set, so
        interprocedural facts stay repo-wide."""
        import time

        result = AnalysisResult(files_analyzed=len(self.contexts))
        known = set(self.rules.RULES)
        all_findings: list[Finding] = []
        all_suppressions: list[Suppression] = []
        t0 = time.monotonic()
        for ctx in self.contexts:
            sups, sup_findings = parse_suppressions(ctx.rel, ctx.lexed, known)
            all_suppressions.extend(sups)
            all_findings.extend(sup_findings)
            if restrict is not None and ctx.rel not in restrict:
                continue
            for rule in self.rules.FILE_RULES:
                all_findings.extend(rule.check(ctx))
        result.timings["file-rules"] = time.monotonic() - t0

        model = None
        if any(r.semantic for r in self.rules.PROJECT_RULES):
            from . import dataflow  # late: dataflow imports engine types

            model = dataflow.SemanticModel(self.contexts)
            result.timings.update(model.timings)
        for rule in self.rules.PROJECT_RULES:
            t0 = time.monotonic()
            all_findings.extend(rule.check_project(self.contexts, model))
            result.timings[rule.id] = time.monotonic() - t0

        if restrict is not None:
            all_findings = [f for f in all_findings if f.file in restrict]
        all_findings.sort(key=lambda f: (f.file, f.line, f.rule))
        result.findings, result.suppressed = apply_suppressions(
            all_findings, all_suppressions)
        return result
