"""Per-function CFG approximation: loops, try/catch regions, lock scopes.

A full basic-block CFG is more than the rules need; what they consume is
*region structure* over the masked body text:

  * loops (``for``/``while``/``do``) with their body spans — the
    unpolled-loop rule asks "does this span contain a poll?";
  * catch clauses with parameter and body spans — the severity-drop rule
    asks "does this handler fold or rethrow?";
  * lock scopes — a ``MutexLock guard(expr)`` declaration covers from the
    declaration to the end of its enclosing block (RAII), a manual
    ``expr.lock()`` covers to the matching ``expr.unlock()`` or block end.
    ``try_lock`` acquisitions are *excluded*: a non-blocking acquisition
    cannot participate in a deadlock cycle.

All spans are offsets into the *file's* masked code, so line numbers map
directly onto the raw file.

Soundness caveats (documented in DESIGN.md §5.1): ``CondVar::wait``
releases and reacquires its mutex inside the scope (the acquisition
*order* the rule checks is still the coded order); ``goto`` and early
``unlock()`` on one branch of an ``if`` shorten real scopes in ways the
block approximation cannot see (it over-covers, which can only add lock
edges, never hide one).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .symbols import Function

_RE_LOOP = re.compile(r"\b(for|while|do)\b")
_RE_CATCH = re.compile(r"\bcatch\s*\(")
_RE_GUARD = re.compile(r"\bMutexLock\s+[A-Za-z_]\w*\s*\(")
_RE_MANUAL_LOCK = re.compile(
    r"([A-Za-z_]\w*(?:\s*(?:\.|->)\s*[A-Za-z_]\w*)*)\s*(?:\.|->)\s*"
    r"(try_lock|lock)\s*\(\s*\)")


@dataclass(frozen=True)
class Loop:
    kw: str
    idx: int          #: offset of the loop keyword
    line: int
    body_start: int
    body_end: int


@dataclass(frozen=True)
class CatchSite:
    idx: int
    line: int
    param: str
    body_start: int
    body_end: int


@dataclass(frozen=True)
class LockScope:
    mutex_expr: str   #: raw expression text, whitespace-stripped
    idx: int          #: offset of the acquisition
    line: int
    start: int        #: scope span start (the acquisition)
    end: int          #: scope span end (enclosing block / unlock)


@dataclass
class FunctionCFG:
    fn: Function
    loops: list[Loop] = field(default_factory=list)
    catches: list[CatchSite] = field(default_factory=list)
    locks: list[LockScope] = field(default_factory=list)


def _match(code: str, open_idx: int, open_ch: str, close_ch: str) -> int:
    depth = 0
    for k in range(open_idx, len(code)):
        c = code[k]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return k
    return len(code)


def _line(code: str, idx: int) -> int:
    return code.count("\n", 0, idx) + 1


def _enclosing_block_end(brace_pairs: list[tuple[int, int]],
                         idx: int, default: int) -> int:
    """End of the innermost ``{...}`` containing ``idx``."""
    best = default
    best_size = None
    for op, cl in brace_pairs:
        if op < idx < cl and (best_size is None or cl - op < best_size):
            best, best_size = cl, cl - op
    return best


def build_cfg(code: str, fn: Function) -> FunctionCFG:
    cfg = FunctionCFG(fn=fn)
    lo, hi = fn.body_start, fn.body_end

    # Brace pairs inside the body (the body's own braces included).
    pairs: list[tuple[int, int]] = []
    stack: list[int] = []
    for k in range(lo, min(hi + 1, len(code))):
        if code[k] == "{":
            stack.append(k)
        elif code[k] == "}" and stack:
            pairs.append((stack.pop(), k))

    # Loops.
    for m in _RE_LOOP.finditer(code, lo, hi):
        kw = m.group(1)
        k = m.end()
        if kw in ("for", "while"):
            while k < hi and code[k].isspace():
                k += 1
            if k >= hi or code[k] != "(":
                continue  # do-while's trailing `while` lands here too
            k = _match(code, k, "(", ")") + 1
        while k < hi and code[k].isspace():
            k += 1
        if k < hi and code[k] == "{":
            end = _match(code, k, "{", "}")
        else:
            end = code.find(";", k)
            end = hi if end == -1 else end
        cfg.loops.append(Loop(kw=kw, idx=m.start(), line=_line(code, m.start()),
                              body_start=k, body_end=min(end, hi)))

    # Catch clauses.
    for m in _RE_CATCH.finditer(code, lo, hi):
        op = code.index("(", m.start())
        cp = _match(code, op, "(", ")")
        k = cp + 1
        while k < hi and code[k].isspace():
            k += 1
        if k >= hi or code[k] != "{":
            continue
        cfg.catches.append(CatchSite(
            idx=m.start(), line=_line(code, m.start()),
            param=code[op + 1:cp].strip(),
            body_start=k, body_end=_match(code, k, "{", "}")))

    # RAII lock scopes.
    for m in _RE_GUARD.finditer(code, lo, hi):
        op = code.index("(", m.start())
        cp = _match(code, op, "(", ")")
        # First constructor argument is the mutex (CondVar::wait-style
        # helpers pass extras after a comma).
        expr = code[op + 1:cp].split(",")[0]
        end = _enclosing_block_end(pairs, m.start(), hi)
        cfg.locks.append(LockScope(
            mutex_expr=re.sub(r"\s+", "", expr),
            idx=m.start(), line=_line(code, m.start()),
            start=m.start(), end=end))

    # Manual lock()/unlock() pairs; try_lock is non-blocking — skipped.
    for m in _RE_MANUAL_LOCK.finditer(code, lo, hi):
        if m.group(2) == "try_lock":
            continue
        expr = re.sub(r"\s+", "", m.group(1))
        block_end = _enclosing_block_end(pairs, m.start(), hi)
        um = re.search(re.escape(m.group(1)) + r"\s*(?:\.|->)\s*unlock\s*\(",
                       code[m.end():block_end])
        end = m.end() + um.start() if um else block_end
        cfg.locks.append(LockScope(
            mutex_expr=expr,
            idx=m.start(), line=_line(code, m.start()),
            start=m.start(), end=end))

    return cfg
