"""advtext-analyzer: static analysis enforcing the repo's determinism and
robustness invariants (see DESIGN.md's static-analysis section).

Entry points:

  python3 tools/lint.py [paths...]      # thin shim, keeps the repo_lint
                                        # ctest name stable
  python3 tools/analyzer [paths...]     # the analyzer itself
  python3 tools/analyzer --self-test    # fixture corpus + lexer regression
  python3 tools/analyzer --json out.json
  python3 tools/analyzer --list-rules
"""

from __future__ import annotations
