"""Call graph over the symbol index.

Call *sites* are extracted from each function's masked body: an
(optionally ``::``-qualified) identifier directly followed by ``(``.
Two filters keep declarations and keywords out:

  * control keywords and cast/operator keywords never form a site;
  * a site whose immediately preceding token is an identifier (or ``>``,
    ``&``, ``*``, ``]``) is a *declaration* — ``MutexLock lock(mu_)``
    declares ``lock``, it does not call it — unless that token is a
    statement keyword like ``return`` or ``else``.

Resolution is by simple name against the repo-wide index: a call named
``predict_proba`` resolves to *every* definition of ``predict_proba``.
This is a deliberate overapproximation (no type inference), which keeps
the interprocedural rules sound for their purpose: a virtual call
resolves to all overriders, so a fact proven "on every resolution" holds
on the dynamic callee too. The cost is spurious edges through common
names — tolerable here because the rules key on rare, domain-specific
names (``charge``, ``expired``, ``worse_of``, the forward family).

One syntactic refinement trims the worst collisions without any type
inference: a call spelled through an object receiver (``obj.f()`` /
``ptr->f()``) can only invoke a *member* function, so such sites resolve
against class methods only — a free function that happens to share the
name is excluded. Unqualified calls keep the full resolution set, since
an implicit-``this`` method call is spelled identically to a free call.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .symbols import Function, SymbolIndex

_KEYWORD_SITES = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "decltype", "noexcept", "throw", "new", "delete", "static_assert",
    "alignas", "defined", "assert", "do", "else", "case", "goto",
}

#: Tokens that may directly precede a *call* (anything else identifier-like
#: in front of ``name(`` means ``name`` is being declared, not called).
_PRECEDING_OK = {
    "return", "else", "do", "case", "throw", "goto", "in", "co_return",
    "co_await", "co_yield", "not", "and", "or",
}

#: Ubiquitous method names (STL containers, iostreams) are *not* resolved:
#: ``out.write(...)`` must not grow an edge to every function named
#: ``write`` in the repo. The cost is missing genuine edges through these
#: names — conservative for the rules (fewer interprocedural facts), and
#: the primitives they could reach (file IO, locking) are matched by
#: direct-token regexes at the call site anyway.
NOISY_NAMES = {
    "write", "read", "get", "set", "size", "at", "find", "count", "begin",
    "end", "clear", "empty", "str", "data", "append", "insert", "erase",
    "reset", "front", "back", "push_back", "pop_back", "emplace_back",
    "push_front", "pop_front", "resize", "reserve", "swap", "substr",
    "length", "value", "emplace", "contains", "first", "second", "good",
}

_RE_CALL = re.compile(
    r"((?:[A-Za-z_]\w*\s*::\s*)*)([A-Za-z_]\w*)\s*\(")
_RE_PREV_TOKEN = re.compile(r"([A-Za-z_]\w*|[^\s\w])\s*$")
_RE_RECEIVER = re.compile(
    r"([A-Za-z_]\w*(?:\s*(?:\.|->)\s*[A-Za-z_]\w*)*"
    r"|\)|\])\s*(\.|->)\s*$")


@dataclass(frozen=True)
class CallSite:
    name: str          #: simple callee name
    qualifier: str     #: explicit ``A::B::`` qualifier, "" if none
    receiver: str | None  #: object expression for ``obj.name(...)`` calls
    idx: int           #: offset of the name in the file's masked code
    line: int          #: 1-based line in the file


def extract_calls(code: str, fn: Function) -> list[CallSite]:
    """Call sites inside ``fn``'s body; ``code`` is the whole file's
    masked code (offsets/lines are file-relative)."""
    sites: list[CallSite] = []
    for m in _RE_CALL.finditer(code, fn.body_start, fn.body_end):
        name = m.group(2)
        if name in _KEYWORD_SITES:
            continue
        before = code[max(0, m.start() - 160):m.start()]
        receiver = None
        qualifier = re.sub(r"\s+", "", m.group(1) or "")
        if not qualifier:
            rm = _RE_RECEIVER.search(before)
            if rm:
                receiver = re.sub(r"\s+", "", rm.group(1))
            else:
                pm = _RE_PREV_TOKEN.search(before)
                if pm:
                    tok = pm.group(1)
                    ident = re.fullmatch(r"[A-Za-z_]\w*", tok)
                    if (ident and tok not in _PRECEDING_OK) or \
                            tok in (">", "&", "*", "]"):
                        continue  # declaration, not a call
        sites.append(CallSite(
            name=name, qualifier=qualifier, receiver=receiver,
            idx=m.start(2), line=code.count("\n", 0, m.start(2)) + 1))
    return sites


@dataclass
class CallGraph:
    index: SymbolIndex
    #: fn -> its call sites (in body order)
    sites: dict[int, list[CallSite]] = field(default_factory=dict)
    #: fn -> [(site, resolved targets)]
    edges: dict[int, list[tuple[CallSite, list[Function]]]] = \
        field(default_factory=dict)

    @classmethod
    def build(cls, index: SymbolIndex,
              code_of: dict[str, str]) -> "CallGraph":
        graph = cls(index=index)
        for fn in index.functions:
            code = code_of.get(fn.file, "")
            fn_sites = extract_calls(code, fn)
            graph.sites[id(fn)] = fn_sites
            resolved = []
            for site in fn_sites:
                if site.name in NOISY_NAMES:
                    targets = []
                else:
                    targets = [t for t in index.by_name.get(site.name, ())
                               if t is not fn]
                    if site.receiver is not None:
                        # obj.f() / ptr->f() can only hit a member function.
                        targets = [t for t in targets if t.cls is not None]
                resolved.append((site, targets))
            graph.edges[id(fn)] = resolved
        return graph

    def callees(self, fn: Function) -> list[tuple[CallSite, list[Function]]]:
        return self.edges.get(id(fn), [])

    def functions_reaching(self, body_pred) -> set[int]:
        """ids of functions from which a function whose *body* satisfies
        ``body_pred`` is reachable (callers of matching functions, matching
        functions themselves included). Computed by reverse propagation, so
        recursion cycles are handled."""
        matching = {id(fn) for fn in self.index.functions
                    if body_pred(fn)}
        callers: dict[int, list[int]] = {}
        for fn in self.index.functions:
            for _site, targets in self.callees(fn):
                for t in targets:
                    callers.setdefault(id(t), []).append(id(fn))
        work = list(matching)
        reaching = set(matching)
        while work:
            node = work.pop()
            for caller in callers.get(node, ()):
                if caller not in reaching:
                    reaching.add(caller)
                    work.append(caller)
        return reaching

    def calls_reaching(self, fn: Function,
                       reaching: set[int]) -> list[CallSite]:
        """Call sites in ``fn`` whose *any* resolution is in ``reaching``
        (a set produced by :meth:`functions_reaching`)."""
        out = []
        for site, targets in self.callees(fn):
            if any(id(t) in reaching for t in targets):
                out.append(site)
        return out
