"""Makes `python3 tools/analyzer` work: running a directory puts the
directory itself on sys.path, so the package has to be reached through its
parent (tools/)."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from analyzer.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
