"""Repo-wide include graph: layering enforcement and cycle detection.

The architecture of src/ is a DAG of layers:

    util -> tensor -> { text, nn, optim, data } -> core -> eval -> service

(arrows point *up* the stack: higher layers may include lower ones). The
middle group is one layer — its four directories may include each other
freely (nn uses text's Vocab, text's skip-gram trainer runs under nn's
supervisor) as long as no *file-level* include cycle forms. The harness
trees — tests/, bench/, examples/ — sit above everything as one top
layer: they may include any src/ layer, but nothing in src/ may include
them (shipping library code must not depend on its own test scaffolding).
Two rules fall out of the graph:

  include-layering   an #include edge from a lower layer to a higher one
                     (e.g. util including tensor, or src/ including a
                     tests/ header) — the dependency inversion that made
                     src/util/serialize.h drag half the tree into every
                     util consumer.
  include-cycle      a cycle in the file-level include graph anywhere in
                     the analyzed tree — src/ and the harness dirs alike
                     (self-includes included). Reported once per cycle,
                     attributed to the lexicographically smallest file on
                     it so the finding is stable across runs.
"""

from __future__ import annotations

import re

from .engine import FileContext, Finding

RE_QUOTED_INCLUDE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')

#: Directory prefix -> layer rank. Higher ranks may include lower ones.
LAYERS = {
    "src/util/": 0,
    "src/tensor/": 1,
    "src/text/": 2,
    "src/nn/": 2,
    "src/optim/": 2,
    "src/data/": 2,
    "src/core/": 3,
    "src/eval/": 4,
    "src/service/": 5,
    # The harness trees are the top layer: free to include anything,
    # never included by src/.
    "tests/": 6,
    "bench/": 6,
    "examples/": 6,
}

LAYER_NAMES = {0: "util", 1: "tensor", 2: "text/nn/optim/data",
               3: "core", 4: "eval", 5: "service",
               6: "tests/bench/examples"}


def layer_of(rel: str) -> int | None:
    for prefix, rank in LAYERS.items():
        if rel.startswith(prefix):
            return rank
    return None


def quoted_includes(ctx: FileContext) -> list[tuple[int, str]]:
    """(line, include-path) pairs. The directive is detected on the masked
    line (so commented-out includes are ignored) but the path is read from
    the raw line, since the lexer masks string contents."""
    out = []
    for idx, line in enumerate(ctx.code_lines, start=1):
        if RE_QUOTED_INCLUDE.search(line) and idx <= len(ctx.raw_lines):
            m = RE_QUOTED_INCLUDE.search(ctx.raw_lines[idx - 1])
            if m:
                out.append((idx, m.group(1)))
    return out


def check_layering(contexts: list[FileContext]) -> list[Finding]:
    findings = []
    for ctx in contexts:
        src_layer = layer_of(ctx.rel)
        if src_layer is None:
            continue
        for line, inc in quoted_includes(ctx):
            dst_layer = layer_of(inc)
            if dst_layer is None or dst_layer <= src_layer:
                continue
            findings.append(Finding(
                ctx.rel, line, "include-layering",
                f'"{inc}" is in layer {LAYER_NAMES[dst_layer]}, above this '
                f"file's layer {LAYER_NAMES[src_layer]}; the layering DAG "
                "util -> tensor -> text/nn/optim/data -> core -> eval -> "
                "service -> tests/bench/examples only permits downward "
                "includes"))
    return findings


def check_cycles(contexts: list[FileContext]) -> list[Finding]:
    graph: dict[str, list[tuple[int, str]]] = {}
    analyzed = {ctx.rel for ctx in contexts}
    for ctx in contexts:
        graph[ctx.rel] = [(line, inc) for line, inc in quoted_includes(ctx)
                          if inc in analyzed]

    findings = []
    seen_cycles: set[tuple[str, ...]] = set()
    # Iterative DFS with an explicit path stack; fires once per distinct
    # cycle (canonicalized by rotating the smallest node to the front).
    color: dict[str, int] = {}  # 0/absent=white, 1=grey, 2=black
    for root in sorted(graph):
        if color.get(root):
            continue
        path: list[str] = []
        stack: list[tuple[str, int]] = [(root, 0)]
        while stack:
            node, edge_idx = stack.pop()
            if edge_idx == 0:
                color[node] = 1
                path.append(node)
            edges = graph.get(node, [])
            advanced = False
            for k in range(edge_idx, len(edges)):
                line, inc = edges[k]
                state = color.get(inc, 0)
                if state == 1:
                    cycle = path[path.index(inc):] + [inc]
                    nodes = tuple(cycle[:-1])
                    pivot = nodes.index(min(nodes))
                    canon = nodes[pivot:] + nodes[:pivot]
                    if canon not in seen_cycles:
                        seen_cycles.add(canon)
                        anchor = canon[0]
                        loop = " -> ".join(canon + (canon[0],))
                        anchor_line = 1
                        for ln, target in graph.get(anchor, []):
                            if target == canon[1 % len(canon)] or \
                                    (len(canon) == 1 and target == anchor):
                                anchor_line = ln
                                break
                        findings.append(Finding(
                            anchor, anchor_line, "include-cycle",
                            f"include cycle: {loop}"))
                    continue
                if state == 0:
                    stack.append((node, k + 1))
                    stack.append((inc, 0))
                    advanced = True
                    break
            if not advanced:
                color[node] = 2
                path.pop()
    return findings
