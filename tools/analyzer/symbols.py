"""Repo-wide symbol index: functions, methods, classes, using-directives.

Built from the *masked* token stream (``LexedFile.code``), so string and
comment contents can neither open phantom scopes nor hide real ones. The
scanner walks each translation unit once with an explicit scope stack and
classifies every ``{`` from the "head" text that precedes it (everything
since the last ``{``, ``}`` or ``;`` at the current nesting):

  * ``namespace foo {`` / ``extern "C" {``  -> transparent scope
  * ``class X {`` / ``struct X {`` / ...    -> class scope (members inside)
  * trailing ``=``                          -> aggregate initializer (opaque)
  * head containing a parameter list ``(``  -> function definition; the
    body is recorded as one span and *not* scanned for nested scopes
    (lambdas and local structs belong to their enclosing function, which
    is exactly the attribution the interprocedural rules want)

This is an approximation, not a parser. Known, accepted imprecision:

  * overloads share one simple name; the call graph resolves by simple
    name and overapproximates accordingly;
  * function-try-blocks, K&R definitions and preprocessor tricks that
    unbalance braces are not handled (the tree has none — the self-test
    corpus pins the constructs the scanner must handle);
  * a declaration like ``Foo bar(Baz);`` at namespace scope (the vexing
    parse) never reaches the index at all because it ends in ``;`` — only
    brace-introduced bodies are indexed.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .engine import FileContext

#: Keywords that can never be a function name even when followed by ``(``.
_NON_FUNCTION_NAMES = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "decltype", "noexcept", "throw", "new", "delete", "static_assert",
    "alignas", "defined", "assert", "co_await", "co_return", "co_yield",
}

_RE_NAMESPACE_HEAD = re.compile(
    r"\bnamespace(\s+(?:[A-Za-z_]\w*)(?:\s*::\s*[A-Za-z_]\w*)*)?\s*$")
_RE_EXTERN_HEAD = re.compile(r'\bextern\s*(?:"")?\s*$')
_RE_CLASS_KEY = re.compile(r"\b(class|struct|union|enum)\b")
_RE_USING_NAMESPACE = re.compile(
    r"\busing\s+namespace\s+([A-Za-z_]\w*(?:\s*::\s*[A-Za-z_]\w*)*)")
#: Candidate "name(" in a function head: an optionally ::-qualified
#: identifier (destructors included) directly followed by a paren.
_RE_FUNC_NAME = re.compile(
    r"((?:[A-Za-z_]\w*\s*::\s*)*~?[A-Za-z_]\w*)\s*\(")
#: ALL_CAPS macro invocation (annotation macros like ADVTEXT_CAPABILITY).
_RE_CAPS_MACRO = re.compile(r"\b[A-Z][A-Z0-9_]{2,}\s*\([^()]*\)")


@dataclass
class Function:
    """One function/method *definition* (has a body)."""

    name: str          #: simple name (``run_job``)
    qualified: str     #: scope-qualified (``advtext::AttackDaemon::run_job``)
    cls: str | None    #: enclosing/explicit class name, if any
    file: str          #: repo-relative path
    line: int          #: line of the name in the head
    head: str          #: declaration head text (masked)
    body_start: int    #: index of the opening ``{`` in masked code
    body_end: int      #: index of the matching ``}`` (or len(code))
    body: str          #: masked body text, braces included

    def __repr__(self) -> str:
        return f"<fn {self.qualified} @{self.file}:{self.line}>"


@dataclass
class TUInfo:
    """Per-translation-unit facts that are not functions."""

    rel: str
    classes: list[str] = field(default_factory=list)
    using_namespaces: list[tuple[int, str]] = field(default_factory=list)


def _match_brace(code: str, open_idx: int) -> int:
    depth = 0
    for k in range(open_idx, len(code)):
        c = code[k]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return k
    return len(code)


def _line_of(code: str, idx: int) -> int:
    return code.count("\n", 0, idx) + 1


def _strip_template_heads(head: str) -> str:
    """Removes ``template <...>`` groups so ``template <class T>`` cannot
    be mistaken for a class head (angle depth tracked, ``>>`` closes two)."""
    out = head
    while True:
        m = re.search(r"\btemplate\s*<", out)
        if not m:
            return out
        depth = 0
        end = len(out)
        for k in range(m.end() - 1, len(out)):
            if out[k] == "<":
                depth += 1
            elif out[k] == ">":
                depth -= 1
                if depth == 0:
                    end = k + 1
                    break
        out = out[:m.start()] + " " + out[end:]


def _class_head_name(head: str) -> str | None:
    """Class/struct/union/enum head -> class name, else None."""
    head = _strip_template_heads(head)
    m = _RE_CLASS_KEY.search(head)
    if not m:
        return None
    if "(" in head[:m.start()] or ")" in head[:m.start()]:
        return None  # class-key inside a parameter list, not a class head
    tail = head[m.end():]
    # Annotation macros (ADVTEXT_CAPABILITY("...")) and alignas() may sit
    # between the keyword and the name; any *other* paren means this is a
    # function head that merely mentions class/struct.
    tail = _RE_CAPS_MACRO.sub(" ", tail)
    tail = re.sub(r"\balignas\s*\([^()]*\)", " ", tail)
    if "(" in tail or ")" in tail:
        return None
    cut = re.split(r"(?<!:):(?!:)", tail, maxsplit=1)[0]
    names = [n for n in re.findall(r"[A-Za-z_]\w*", cut)
             if n not in ("final", "public", "private", "protected",
                          "virtual", "alignas")]
    return names[-1] if names else "<anon>"


def _function_name(head: str) -> tuple[str, int] | None:
    """(qualified-name, offset-of-name-in-head) for a function head."""
    for m in _RE_FUNC_NAME.finditer(head):
        name = re.sub(r"\s+", "", m.group(1))
        simple = name.rsplit("::", 1)[-1].lstrip("~")
        if simple in _NON_FUNCTION_NAMES:
            continue
        # An ALL_CAPS macro invocation (annotation/attribute macros) is
        # not the function name.
        if re.fullmatch(r"[A-Z][A-Z0-9_]{2,}", simple):
            continue
        return name, m.start(1)
    return None


@dataclass
class SymbolIndex:
    functions: list[Function] = field(default_factory=list)
    by_name: dict[str, list[Function]] = field(default_factory=dict)
    tus: dict[str, TUInfo] = field(default_factory=dict)

    @classmethod
    def build(cls, contexts: list[FileContext]) -> "SymbolIndex":
        index = cls()
        for ctx in contexts:
            index._scan(ctx)
        for fn in index.functions:
            index.by_name.setdefault(fn.name, []).append(fn)
        return index

    def _scan(self, ctx: FileContext) -> None:
        code = ctx.lexed.code
        tu = TUInfo(rel=ctx.rel)
        self.tus[ctx.rel] = tu
        for m in _RE_USING_NAMESPACE.finditer(code):
            tu.using_namespaces.append(
                (_line_of(code, m.start()), re.sub(r"\s+", "", m.group(1))))

        # scope stack: (kind, name) — kind in {"namespace", "class"}
        scopes: list[tuple[str, str]] = []
        head_start = 0
        k = 0
        n = len(code)
        while k < n:
            c = code[k]
            if c == ";":
                head_start = k + 1
            elif c == "}":
                if scopes:
                    scopes.pop()
                head_start = k + 1
            elif c == "{":
                head = code[head_start:k]
                close = None  # set when the brace's body is opaque
                nm = _RE_NAMESPACE_HEAD.search(head)
                if nm or _RE_EXTERN_HEAD.search(head):
                    name = (nm.group(1) or "").strip() if nm else ""
                    scopes.append(("namespace", re.sub(r"\s+", "", name)))
                elif re.search(r"=\s*$", head):
                    close = _match_brace(code, k)  # aggregate initializer
                else:
                    cls_name = _class_head_name(head)
                    if cls_name is not None:
                        scopes.append(("class", cls_name))
                        tu.classes.append(cls_name)
                    else:
                        close = _match_brace(code, k)
                        fn = _function_name(head)
                        if fn is not None:
                            name, off = fn
                            self._add_function(
                                ctx, scopes, head, name,
                                head_start + off, k, close)
                if close is not None:
                    # Consume the matching '}' silently: it closes an
                    # opaque body, not a scope on the stack.
                    head_start = close + 1
                    k = close + 1
                    continue
                head_start = k + 1
            k += 1

    def _add_function(self, ctx: FileContext, scopes: list[tuple[str, str]],
                      head: str, name: str, name_idx: int,
                      body_start: int, body_end: int) -> None:
        code = ctx.lexed.code
        parts = name.split("::")
        simple = parts[-1].lstrip("~")
        explicit_cls = parts[-2] if len(parts) >= 2 else None
        scope_cls = next((nm for kind, nm in reversed(scopes)
                          if kind == "class"), None)
        prefix = "::".join(nm for kind, nm in scopes if nm)
        qualified = "::".join(x for x in (prefix, name) if x)
        self.functions.append(Function(
            name=simple,
            qualified=qualified,
            cls=explicit_cls or scope_cls,
            file=ctx.rel,
            line=_line_of(code, name_idx),
            head=head.strip(),
            body_start=body_start,
            body_end=body_end,
            body=code[body_start:body_end + 1],
        ))
