"""Command-line driver for the advtext analyzer.

Exit status: 0 clean, 1 findings (or self-test regression), 2 usage error.
The counts are printed explicitly; an exit status equal to a count would
wrap mod 256 and could report 256 violating files as success.
"""

from __future__ import annotations

import sys
from pathlib import Path

from .engine import SOURCE_SUFFIXES, AnalysisResult, Project
from .rules import FILE_RULES, PROJECT_RULES, RULES

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
LINT_DIRS = ("src", "tests", "bench", "examples")


def collect_files(args: list[str]) -> list[Path]:
    """Explicit paths must exist — a CI invocation that names a moved or
    misspelled directory must fail loudly, not pass on an empty file set."""
    if args:
        files: list[Path] = []
        for a in args:
            path = Path(a).resolve()
            if path.is_dir():
                files.extend(p for p in sorted(path.rglob("*"))
                             if p.suffix in SOURCE_SUFFIXES and p.is_file())
            elif path.is_file():
                files.append(path)
            else:
                raise FileNotFoundError(
                    f"analyzer: path '{a}' does not exist; refusing to "
                    "lint a vacuous file set")
        return files
    files = []
    for top in LINT_DIRS:
        for path in sorted((REPO_ROOT / top).rglob("*")):
            if path.suffix in SOURCE_SUFFIXES and path.is_file():
                files.append(path)
    return files


def changed_files(base_ref: str) -> set[str]:
    """Repo-relative source files changed vs ``base_ref`` plus untracked
    ones, filtered to the linted dirs. Used by ``--changed``: findings are
    restricted to these files while the symbol index / call graph stay
    repo-wide (an interprocedural fact is only as good as the whole graph)."""
    import subprocess

    def git(*args: str) -> str:
        return subprocess.run(
            ["git", *args], cwd=REPO_ROOT, capture_output=True,
            text=True, check=True).stdout

    names = set(git("diff", "--name-only", "-z", base_ref, "--").split("\0"))
    names |= set(git("ls-files", "--others", "--exclude-standard",
                     "-z").split("\0"))
    prefixes = tuple(d + "/" for d in LINT_DIRS)
    return {n for n in names
            if n.endswith(SOURCE_SUFFIXES) and n.startswith(prefixes)}


def load_project(paths: list[Path]) -> Project:
    files: dict[str, str] = {}
    for path in paths:
        try:
            rel = path.relative_to(REPO_ROOT).as_posix()
        except ValueError:
            rel = path.as_posix()
        files[rel] = path.read_text(encoding="utf-8", errors="replace")
    return Project(files, file_exists=lambda r: (REPO_ROOT / r).is_file())


def print_timings(result: AnalysisResult) -> None:
    """Per-pass wall time (``--timings``). Deliberately not part of the
    JSON payload, which stays byte-stable for the golden test."""
    print("analyzer: pass timings")
    for name, secs in sorted(result.timings.items(),
                             key=lambda kv: (-kv[1], kv[0])):
        print(f"  {name:<18} {secs * 1000:8.1f} ms")
    total = sum(result.timings.values())
    print(f"  {'total':<18} {total * 1000:8.1f} ms")


def report(result: AnalysisResult, json_path: str | None) -> int:
    for f in result.findings:
        print(f.render())
    if json_path:
        payload = result.render_json()
        if json_path == "-":
            sys.stdout.write(payload)
        else:
            Path(json_path).write_text(payload, encoding="utf-8")
    if result.findings:
        bad_files = len({f.file for f in result.findings})
        print(f"analyzer: {len(result.findings)} finding(s) in "
              f"{bad_files} file(s) "
              f"({len(result.suppressed)} suppressed with reasons)",
              file=sys.stderr)
        return 1
    print(f"analyzer: {result.files_analyzed} files clean "
          f"({len(result.suppressed)} suppression(s) in effect)")
    return 0


def main(argv: list[str]) -> int:
    json_path: str | None = None
    run_self_test_only = False
    skip_self_test = False
    changed_base: str | None = None
    show_timings = False
    paths: list[str] = []
    it = iter(argv)
    for arg in it:
        if arg == "--json":
            json_path = next(it, None)
            if json_path is None:
                print("analyzer: --json needs a path (or '-')",
                      file=sys.stderr)
                return 2
        elif arg == "--changed":
            changed_base = next(it, None)
            if changed_base is None:
                print("analyzer: --changed needs a git base ref",
                      file=sys.stderr)
                return 2
        elif arg == "--timings":
            show_timings = True
        elif arg == "--regen-golden":
            from .selftest import regenerate_golden
            print(f"analyzer: rewrote {regenerate_golden()}")
            return 0
        elif arg == "--self-test":
            run_self_test_only = True
        elif arg == "--no-self-test":
            skip_self_test = True
        elif arg == "--list-rules":
            width = max(len(r) for r in RULES)
            for rule_id, rule in sorted(RULES.items()):
                kind = "project" if rule in PROJECT_RULES else "file"
                print(f"{rule_id:<{width}}  [{kind:>7}]  {rule.synopsis}")
            return 0
        elif arg in ("-h", "--help"):
            print(__doc__)
            print("usage: python3 tools/analyzer [paths...] [--json FILE|-]"
                  " [--changed BASE_REF] [--timings] [--self-test]"
                  " [--list-rules] [--regen-golden]")
            return 0
        elif arg.startswith("-"):
            print(f"analyzer: unknown flag {arg}", file=sys.stderr)
            return 2
        else:
            paths.append(arg)

    # The self-test is always-on (the PR 5 lint pattern): every real run
    # first proves each rule still fires on its fixture and stays quiet on
    # the clean twin, so rule coverage cannot silently regress.
    if not skip_self_test:
        from .selftest import run_self_test
        failures = run_self_test(verbose=run_self_test_only)
        if failures:
            for failure in failures:
                print(failure)
            print("analyzer: self-test FAILED — rule coverage regressed",
                  file=sys.stderr)
            return 1
        if run_self_test_only:
            print(f"analyzer: self-test OK ({len(FILE_RULES)} file rules, "
                  f"{len(PROJECT_RULES)} project rules)")
            return 0

    restrict: set[str] | None = None
    if changed_base is not None:
        if paths:
            print("analyzer: --changed and explicit paths are exclusive",
                  file=sys.stderr)
            return 2
        import subprocess
        try:
            restrict = changed_files(changed_base)
        except subprocess.CalledProcessError as err:
            print(f"analyzer: git failed resolving '{changed_base}': "
                  f"{err.stderr.strip()}", file=sys.stderr)
            return 2
        if not restrict:
            print(f"analyzer: no linted source files changed vs "
                  f"{changed_base}")
            return 0

    try:
        files = collect_files(paths)
    except FileNotFoundError as err:
        print(err, file=sys.stderr)
        return 2
    result = load_project(files).analyze(restrict=restrict)
    if show_timings:
        print_timings(result)
    return report(result, json_path)
