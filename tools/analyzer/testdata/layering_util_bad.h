// fixture-path: src/util/fixture_layering_bad.h
// fixture-group: layering
// expect: include-layering@5
#pragma once
#include "src/nn/fixture_layering_target.h"
