// fixture-path: src/text/fixture_unordered_clean.cpp
// expect-clean
#include <algorithm>
#include <unordered_map>
#include <vector>
void fixture_emit(const std::unordered_map<int, int>& counts,
                  std::vector<int>* out) {
  std::vector<int> keys;
  keys.reserve(counts.size());
  std::transform(counts.begin(), counts.end(), std::back_inserter(keys),
                 [](const auto& kv) { return kv.first; });
  std::sort(keys.begin(), keys.end());
  for (int k : keys) out->push_back(k);
}
