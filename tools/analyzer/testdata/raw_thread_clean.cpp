// fixture-path: src/eval/fixture_thread_clean.cpp
// expect-clean
#include "src/util/sync.h"
namespace advtext {
void fixture_run(ThreadPool& pool) { (void)pool; }
}  // namespace advtext
