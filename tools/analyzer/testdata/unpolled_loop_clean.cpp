// fixture-path: src/core/fixture_unpolled_clean.cpp
// expect-clean
struct FixtureModel { double predict_proba(int); };
struct FixtureDeadline { bool expired() const; };

int fixture_sweep(FixtureModel& model, const FixtureDeadline& deadline,
                  int docs) {
  int flipped = 0;
  for (int i = 0; i < docs; ++i) {
    if (deadline.expired()) break;
    if (model.predict_proba(i) > 0.5) ++flipped;
  }
  return flipped;
}
