// fixture-path: src/core/fixture_cycle_a.h
// fixture-group: cycle
// expect: include-cycle@5
#pragma once
#include "src/core/fixture_cycle_b.h"
