// fixture-path: src/eval/fixture_cout_firing.cpp
// expect: cout-in-library@4
#include <iostream>
void fixture_print() { std::cout << 1; }
