// fixture-path: src/text/fixture_unordered_firing.cpp
// expect: unordered-iteration@7
#include <unordered_map>
#include <vector>
void fixture_emit(std::vector<int>* out) {
  std::unordered_map<int, int> counts;
  for (const auto& [k, v] : counts) out->push_back(k + v);
}
