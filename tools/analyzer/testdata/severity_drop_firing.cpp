// fixture-path: src/eval/fixture_severity_firing.cpp
// expect: severity-drop@9
struct FixtureReport { int termination; };

void fixture_run(FixtureReport& report) {
  report.termination = 0;
  try {
    fixture_step();
  } catch (const std::runtime_error& error) {
    fixture_note(error);
  }
}
