// fixture-path: src/util/fixture_include_clean.cpp
// expect-clean
#include "src/util/rng.h"
