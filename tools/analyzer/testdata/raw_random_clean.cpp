// fixture-path: src/core/fixture_random_clean.cpp
// expect-clean
#include "src/util/rng.h"
namespace advtext {
double fixture_draw(Rng& rng) { return rng.uniform(); }
}  // namespace advtext
