// fixture-path: src/eval/fixture_io_firing.cpp
// expect: raw-io@8
// expect: raw-io@9
// expect: raw-io@10
// expect: raw-io@11
#include <cstdio>
#include <fstream>
void fixture_stream(const char* p) { std::ofstream out(p); }
void fixture_fopen(const char* p) { std::FILE* f = std::fopen(p, "w"); (void)f; }
void fixture_rename(const char* a, const char* b) { std::rename(a, b); }
void fixture_remove(const char* p) { std::remove(p); }
