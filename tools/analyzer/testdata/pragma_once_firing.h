// fixture-path: src/util/fixture_pragma_firing.h
// expect: pragma-once@1
inline int fixture_pragma_firing() { return 1; }
