// fixture-path: src/eval/fixture_socket_firing.cpp
// expect: raw-socket@6
// expect: raw-socket@7
// expect: raw-socket@8
// expect: raw-socket@9
#include <sys/socket.h>
void fixture_open() { int fd = socket(AF_UNIX, SOCK_STREAM, 0); (void)fd; }
void fixture_accept(int fd) { (void)accept(fd, nullptr, nullptr); }
void fixture_addr() { struct sockaddr_un addr; (void)addr; }
