// fixture-path: src/util/fixture_using_clean.h
// expect-clean
#pragma once
namespace advtext {
inline int fixture_using_clean() { return 0; }
}  // namespace advtext
