// fixture-path: src/nn/fixture_signal_firing.cpp
// expect: raw-signal@4
#include <csignal>
void fixture_install() { signal(2, SIG_IGN); }
