// fixture-path: src/util/fixture_pragma_clean.h
// expect-clean
#pragma once
inline int fixture_pragma_clean() { return 1; }
