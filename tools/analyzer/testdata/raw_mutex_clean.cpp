// fixture-path: src/optim/fixture_mutex_clean.cpp
// expect-clean
#include "src/util/sync.h"
namespace advtext {
void fixture_lock(Mutex& mu) { MutexLock lock(mu); }
}  // namespace advtext
