// fixture-path: src/eval/fixture_severity_clean.cpp
// expect-clean
struct FixtureReport { int termination; };

void fixture_run(FixtureReport& report) {
  report.termination = 0;
  try {
    fixture_step();
  } catch (const std::runtime_error& error) {
    report.termination = worse_of(report.termination, 2);
  }
}
