// fixture-path: tests/fixture_cycle_tests_a.h
// fixture-group: cycle-tests
// expect: include-cycle@5
#pragma once
#include "tests/fixture_cycle_tests_b.h"
