// fixture-path: src/eval/fixture_allow_noreason.cpp
// expect: allow-missing-reason@5
// expect-suppressed: env-access@6
#include <cstdlib>
// ADVTEXT_ALLOW(env-access)
const char* fixture_env() { return std::getenv("X"); }
