// fixture-path: src/nn/fixture_layering_target.h
// fixture-group: layering
// expect-clean
#pragma once
#include "src/util/rng.h"
