// fixture-path: tests/fixture_cycle_tests_b.h
// fixture-group: cycle-tests
// expect-clean
#pragma once
#include "tests/fixture_cycle_tests_a.h"
