// fixture-path: src/util/fixture_include_firing.cpp
// expect: include-path@4
// expect: include-path@5
#include "../util/rng.h"
#include "nonexistent/header.h"
