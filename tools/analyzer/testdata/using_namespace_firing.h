// fixture-path: src/util/fixture_using_firing.h
// expect: using-namespace@4
#pragma once
using namespace std;
