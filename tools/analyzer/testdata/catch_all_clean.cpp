// fixture-path: src/text/fixture_catch_clean.cpp
// expect-clean
#include <stdexcept>
int fixture_guard(int x) {
  try {
    return x;
  } catch (const std::runtime_error&) {
    return 0;
  } catch (...) {
    throw;
  }
}
