// fixture-path: src/service/fixture_lock_order_clean.cpp
// expect-clean
struct FixtureLedger {
  void credit() {
    MutexLock a(mu_accounts_);
    MutexLock b(mu_journal_);
  }
  void audit() {
    MutexLock a(mu_accounts_);
    MutexLock b(mu_journal_);
  }
  Mutex mu_accounts_;
  Mutex mu_journal_;
};
