// fixture-path: src/nn/fixture_accum_firing.cpp
// expect: float-accum@7
// expect: float-accum@10
#include <cmath>
double fixture_sum(const double* xs, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i) acc += xs[i];
  double fused = 0.0;
  for (int i = 0; i < n; ++i) {
    fused = std::fma(xs[i], 2.0, fused);
  }
  return acc + fused;
}
