// fixture-path: src/data/fixture_env_firing.cpp
// expect: env-access@4
#include <cstdlib>
const char* fixture_env() { return std::getenv("ADVTEXT_FIXTURE"); }
