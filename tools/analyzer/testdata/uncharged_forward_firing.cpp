// fixture-path: src/core/fixture_forward_firing.cpp
// expect: uncharged-forward@7
struct FixtureModel { double predict(int); };

// Helper wraps the model query; nothing on the chain charges the budget.
double fixture_query_helper(FixtureModel& model) {
  return model.predict(1);
}

double fixture_entry(FixtureModel& model, const AttackControl& control) {
  return fixture_query_helper(model);
}
