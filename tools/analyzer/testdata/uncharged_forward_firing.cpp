// fixture-path: src/core/fixture_forward_firing.cpp
// expect: uncharged-forward@5
// expect: uncharged-forward@6
struct FixtureModel { double run(int); };
double fixture_attack_ptr(FixtureModel* model) { return model->forward(1); }
double fixture_attack_ref(FixtureModel& model) { return model.predict(1); }
