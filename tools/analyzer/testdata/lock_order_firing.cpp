// fixture-path: src/service/fixture_lock_order_firing.cpp
// expect: lock-order@6
struct FixtureLedger {
  void credit() {
    MutexLock a(mu_accounts_);
    MutexLock b(mu_journal_);
  }
  void flush_journal() {
    MutexLock a(mu_accounts_);
  }
  void audit() {
    MutexLock b(mu_journal_);
    flush_journal();  // acquires mu_accounts_ while mu_journal_ is held
  }
  Mutex mu_accounts_;
  Mutex mu_journal_;
};
