// fixture-path: src/core/fixture_batch_firing.cpp
// expect: uncharged-forward@11
struct FixtureEvaluator {
  double eval_tokens_batch(int count);
};

// The batch query runs with no AttackControl bound and no charge on the
// chain: every scored row escapes the paper's query accounting.
double fixture_entry(FixtureEvaluator& evaluator,
                     const AttackControl& control) {
  return evaluator.eval_tokens_batch(8);
}
