// fixture-path: src/core/fixture_unpolled_firing.cpp
// expect: unpolled-loop@7
struct FixtureModel { double predict_proba(int); };

int fixture_sweep(FixtureModel& model, int docs) {
  int flipped = 0;
  for (int i = 0; i < docs; ++i) {
    if (model.predict_proba(i) > 0.5) ++flipped;
  }
  return flipped;
}
