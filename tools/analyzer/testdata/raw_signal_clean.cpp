// fixture-path: src/util/fixture_signal_clean.cpp
// expect-clean
#include <csignal>
void fixture_install() { signal(2, SIG_IGN); }
