// fixture-path: bench/fixture_env_clean.cpp
// expect-clean
#include <cstdlib>
const char* fixture_env() { return std::getenv("ADVTEXT_FIXTURE"); }
