// fixture-path: src/core/fixture_batch_clean.cpp
// expect-clean
struct FixtureEvaluator {
  void bind_control(const AttackControl* control);
  double eval_swap_batch(int count);
};

// Binding the AttackControl delegates charging to the evaluator shell:
// every cache miss inside eval_swap_batch charges the bound QueryBudget
// (hits are free by design), so the chain is charged even though no
// literal charge() call appears on it.
double fixture_entry(FixtureEvaluator& evaluator,
                     const AttackControl& control) {
  evaluator.bind_control(&control);
  return evaluator.eval_swap_batch(8);
}
