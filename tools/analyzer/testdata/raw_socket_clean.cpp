// fixture-path: src/service/fixture_socket_clean.cpp
// expect-clean
#include "src/service/net.h"
namespace advtext {
// Method calls named accept() on the transport wrapper stay legal; only
// the raw primitives are confined to net.*.
void fixture_serve(ServerSocket& server) { (void)server.accept(10.0); }
void fixture_client(const char* path) { Connection c = connect_unix(path); }
}  // namespace advtext
