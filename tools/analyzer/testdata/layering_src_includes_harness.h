// fixture-path: src/core/fixture_layering_harness_bad.h
// fixture-group: layering-harness
// expect: include-layering@5
#pragma once
#include "bench/fixture_layering_harness_target.h"
