// fixture-path: src/core/fixture_cycle_b.h
// fixture-group: cycle
// expect-clean
#pragma once
#include "src/core/fixture_cycle_a.h"
