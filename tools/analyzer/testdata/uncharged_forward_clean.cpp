// fixture-path: src/core/fixture_forward_clean.cpp
// expect-clean
struct FixtureEvaluator { double score_swap(int); };
struct FixtureControl { void charge(int) const; };
double fixture_attack(FixtureEvaluator* evaluator,
                      const FixtureControl& control) {
  control.charge(1);
  return evaluator->score_swap(1);
}
