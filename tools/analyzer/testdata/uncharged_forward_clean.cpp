// fixture-path: src/core/fixture_forward_clean.cpp
// expect-clean
struct FixtureModel { double predict(int); };

// The helper charges before every query, discharging the whole chain:
// any entry point reaching the sink passes through a charging function.
double fixture_query_helper(FixtureModel& model,
                            const AttackControl& control) {
  control.charge(1);
  return model.predict(1);
}

double fixture_entry(FixtureModel& model, const AttackControl& control) {
  return fixture_query_helper(model, control);
}
