// fixture-path: src/text/fixture_catch_firing.cpp
// expect: catch-all@8
// expect: catch-all@15
#include <exception>
int fixture_guard_all(int x) {
  try {
    return x;
  } catch (...) {
    return 0;
  }
}
int fixture_guard_exception(int x) {
  try {
    return x;
  } catch (const std::exception& e) {
    return 0;
  }
}
