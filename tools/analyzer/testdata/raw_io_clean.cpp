// fixture-path: src/eval/fixture_io_clean.cpp
// expect-clean
#include "src/util/io_file.h"
namespace advtext {
// The wrapper API stays legal everywhere; member functions named open()
// and files named *.remove() in comments must not fake findings.
std::string fixture_read(const std::string& path) { return read_file(path); }
void fixture_write(const std::string& path, const std::string& bytes) {
  atomic_write_file(path, bytes);
}
void fixture_atomic(const std::string& path) {
  AtomicFileWriter writer(path);
  writer.stream() << "payload";
  writer.commit();
}
void fixture_unlink(const std::string& path) { remove_file(path); }
}  // namespace advtext
