// fixture-path: src/eval/fixture_allow_ok.cpp
// expect-suppressed: env-access@5
#include <cstdlib>
// ADVTEXT_ALLOW(env-access): fixture proving reasoned suppressions work
const char* fixture_env() { return std::getenv("X"); }
