// fixture-path: src/optim/fixture_mutex_firing.cpp
// expect: raw-mutex@4
#include <mutex>
void fixture_lock() { std::mutex m; }
