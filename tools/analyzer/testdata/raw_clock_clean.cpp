// fixture-path: src/util/fixture_clock_clean.cpp
// expect-clean
#include <chrono>
auto fixture_now() { return std::chrono::steady_clock::now(); }
