// fixture-path: src/tensor/fixture_accum_clean.cpp
// expect-clean
double fixture_blessed_sum(const double* xs, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i) acc += xs[i];
  return acc;
}
