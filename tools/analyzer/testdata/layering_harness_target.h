// fixture-path: bench/fixture_layering_harness_target.h
// fixture-group: layering-harness
// expect-clean
#pragma once
#include "src/util/rng.h"
