// fixture-path: src/text/fixture_clock_firing.cpp
// expect: raw-clock@4
#include <chrono>
auto fixture_now() { return std::chrono::steady_clock::now(); }
