// fixture-path: src/eval/fixture_allow_unknown.cpp
// expect: allow-unknown-rule@4
int fixture_declared();
// ADVTEXT_ALLOW(not-a-rule): a reason cannot rescue an unknown rule id
