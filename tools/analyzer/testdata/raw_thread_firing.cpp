// fixture-path: src/eval/fixture_thread_firing.cpp
// expect: raw-thread@5
// expect: raw-thread@6
#include <thread>
void fixture_spawn() { std::thread t; }
void fixture_async() { auto h = std::async([] {}); }
