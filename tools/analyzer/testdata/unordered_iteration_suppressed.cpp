// fixture-path: src/text/fixture_unordered_suppressed.cpp
// expect-suppressed: unordered-iteration@8
#include <unordered_map>
#include <vector>
void fixture_emit(std::vector<int>* out) {
  std::unordered_map<int, int> counts;
  // ADVTEXT_ALLOW(unordered-iteration): caller sorts before any output
  for (const auto& [k, v] : counts) out->push_back(k + v);
}
