// fixture-path: bench/fixture_cout_clean.cpp
// expect-clean
#include <iostream>
void fixture_print() { std::cout << 1; }
