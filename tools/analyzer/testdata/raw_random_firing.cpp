// fixture-path: src/core/fixture_random_firing.cpp
// expect: raw-random@4
#include <cstdlib>
int fixture_draw() { return rand(); }
