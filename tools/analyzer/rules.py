"""Rule catalog for the advtext analyzer.

Every rule has a stable id (the nine legacy tools/lint.py ids are preserved
verbatim), a one-line synopsis (shown by ``--list-rules`` and used in
DESIGN.md's catalog), and either a per-file ``check(ctx)`` or a
project-level ``check_project(contexts)``.

Scopes are expressed on repo-relative paths, so the self-test can replay
them on a virtual fixture tree.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Iterable

from . import include_graph
from .engine import FileContext, Finding

# ---------------------------------------------------------------------------
# Rule plumbing


@dataclass(frozen=True)
class Rule:
    id: str
    synopsis: str
    checker: Callable
    project_level: bool = False
    #: Semantic rules consume the SemanticModel (symbol index, call graph,
    #: CFGs) that the engine builds once per run, instead of raw contexts.
    semantic: bool = False

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        return self.checker(ctx)

    def check_project(self, contexts: list[FileContext],
                      model=None) -> Iterable[Finding]:
        if self.semantic:
            return self.checker(model)
        return self.checker(contexts)


FILE_RULES: list[Rule] = []
PROJECT_RULES: list[Rule] = []
RULES: dict[str, Rule] = {}


def _register(rule: Rule) -> None:
    assert rule.id not in RULES, f"duplicate rule id {rule.id}"
    RULES[rule.id] = rule
    (PROJECT_RULES if rule.project_level else FILE_RULES).append(rule)


def file_rule(rule_id: str, synopsis: str):
    def wrap(fn):
        _register(Rule(rule_id, synopsis, fn))
        return fn
    return wrap


def project_rule(rule_id: str, synopsis: str):
    def wrap(fn):
        _register(Rule(rule_id, synopsis, fn, project_level=True))
        return fn
    return wrap


def semantic_rule(rule_id: str, synopsis: str):
    def wrap(fn):
        _register(Rule(rule_id, synopsis, fn, project_level=True,
                       semantic=True))
        return fn
    return wrap


# ---------------------------------------------------------------------------
# Shared scopes (mirrors the legacy lint.py constants)

RAW_RANDOM_ALLOWED = {"src/util/rng.h", "src/util/rng.cpp"}
SYNC_ALLOWED = {"src/util/sync.h", "src/util/sync.cpp"}
NET_ALLOWED = {"src/service/net.h", "src/service/net.cpp"}
# File IO is confined to the fault-injectable wrapper (io_file) so every
# byte that touches disk passes the io.read/io.write chaos sites; net.* is
# also allowed because it unlinks its socket file with std::remove.
IO_ALLOWED = {"src/util/io_file.h", "src/util/io_file.cpp"} | NET_ALLOWED

# ---------------------------------------------------------------------------
# Legacy rules (ids unchanged since PR 1-5)

_RE_PRAGMA_ONCE = re.compile(r"^\s*#\s*pragma\s+once\b", re.MULTILINE)
_RE_USING_NAMESPACE = re.compile(r"^\s*using\s+namespace\b")
_RE_RAW_RANDOM = re.compile(
    r"(?<![\w:])(?:std\s*::\s*)?(?:rand|srand)\s*\(|std\s*::\s*random_device"
)
_RE_COUT = re.compile(r"std\s*::\s*(?:cout|cerr)\b")
_RE_RAW_CLOCK = re.compile(
    r"(?:steady_clock|system_clock|high_resolution_clock)\s*::\s*now\s*\("
)
_RE_RAW_SIGNAL = re.compile(
    r"(?<![\w:])(?:std\s*::\s*)?signal\s*\(|(?<![\w:])sigaction\s*\("
)
_RE_RAW_THREAD = re.compile(
    r"std\s*::\s*(?:jthread|thread|async)\b"
    r"|(?<![\w:])pthread_(?:create|detach)\s*\("
)
_RE_RAW_SOCKET = re.compile(
    r"#\s*include\s+<(?:sys/socket\.h|sys/un\.h|netinet/|arpa/inet\.h"
    r"|poll\.h|sys/poll\.h)"
    r"|\bsockaddr\w*\b"
    r"|\bAF_(?:UNIX|LOCAL|INET6?)\b|\bSOCK_(?:STREAM|DGRAM|SEQPACKET)\b"
    r"|(?<![\w:.])(?:::\s*)?(?:socket|accept4?)\s*\("
)
_RE_RAW_MUTEX = re.compile(
    r"std\s*::\s*(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex|condition_variable(?:_any)?"
    r"|lock_guard|unique_lock|scoped_lock|shared_lock)\b"
)


@file_rule("pragma-once",
           "every header starts with #pragma once")
def check_pragma_once(ctx: FileContext):
    if ctx.is_header and not _RE_PRAGMA_ONCE.search(ctx.lexed.code):
        yield Finding(ctx.rel, 1, "pragma-once",
                      "header missing #pragma once")


@file_rule("using-namespace",
           "no `using namespace` at any scope inside headers")
def check_using_namespace(ctx: FileContext):
    if not ctx.is_header:
        return
    for idx, line in enumerate(ctx.code_lines, start=1):
        if _RE_USING_NAMESPACE.search(line):
            yield Finding(ctx.rel, idx, "using-namespace",
                          "`using namespace` in a header leaks into every "
                          "includer")


@file_rule("include-path",
           "quoted includes are repo-root-relative and resolve to a file")
def check_include_path(ctx: FileContext):
    for idx, inc in include_graph.quoted_includes(ctx):
        if inc.startswith(".") or "/.." in inc:
            yield Finding(ctx.rel, idx, "include-path",
                          f'relative include "{inc}"; use a repo-root path '
                          'like "src/util/rng.h"')
        elif not ctx.file_exists(inc):
            yield Finding(ctx.rel, idx, "include-path",
                          f'include "{inc}" is not a repo-root-relative '
                          "path to an existing file")


@file_rule("raw-random",
           "no rand()/srand()/std::random_device outside src/util/rng.*")
def check_raw_random(ctx: FileContext):
    if ctx.rel in RAW_RANDOM_ALLOWED:
        return
    for idx, line in enumerate(ctx.code_lines, start=1):
        if _RE_RAW_RANDOM.search(line):
            yield Finding(ctx.rel, idx, "raw-random",
                          "raw randomness outside src/util/rng.*; take an "
                          "advtext::Rng so runs reproduce from one seed")


@file_rule("cout-in-library",
           "no std::cout/std::cerr in library code (src/)")
def check_cout(ctx: FileContext):
    if not ctx.in_library:
        return
    for idx, line in enumerate(ctx.code_lines, start=1):
        if _RE_COUT.search(line):
            yield Finding(ctx.rel, idx, "cout-in-library",
                          "std::cout/std::cerr in library code; return data "
                          "and let bench/examples do the printing")


@file_rule("raw-clock",
           "no *_clock::now() in src/ outside src/util/")
def check_raw_clock(ctx: FileContext):
    if not ctx.in_library or ctx.in_dir("src/util/"):
        return
    for idx, line in enumerate(ctx.code_lines, start=1):
        if _RE_RAW_CLOCK.search(line):
            yield Finding(ctx.rel, idx, "raw-clock",
                          "raw clock read outside src/util/; route timing "
                          "through Stopwatch or Deadline")


@file_rule("raw-signal",
           "no signal()/sigaction() outside src/util/")
def check_raw_signal(ctx: FileContext):
    if ctx.in_dir("src/util/"):
        return
    for idx, line in enumerate(ctx.code_lines, start=1):
        if _RE_RAW_SIGNAL.search(line):
            yield Finding(ctx.rel, idx, "raw-signal",
                          "raw signal()/sigaction() outside src/util/; "
                          "install handlers through StopToken so shutdown "
                          "stays cooperative")


@file_rule("raw-thread",
           "no std::thread/jthread/async or pthread_create outside "
           "src/util/sync.*")
def check_raw_thread(ctx: FileContext):
    if ctx.rel in SYNC_ALLOWED:
        return
    for idx, line in enumerate(ctx.code_lines, start=1):
        if _RE_RAW_THREAD.search(line):
            yield Finding(ctx.rel, idx, "raw-thread",
                          "raw thread spawn (std::thread/std::async/"
                          "pthread_create) outside src/util/sync.*; spawn "
                          "workers through advtext::ThreadPool so lifetimes "
                          "are joined in one place")


@file_rule("raw-socket",
           "no raw socket primitives (socket()/accept()/sockaddr/AF_*) "
           "outside src/service/net.*")
def check_raw_socket(ctx: FileContext):
    if ctx.rel in NET_ALLOWED:
        return
    for idx, line in enumerate(ctx.code_lines, start=1):
        if _RE_RAW_SOCKET.search(line):
            yield Finding(ctx.rel, idx, "raw-socket",
                          "raw socket primitive outside src/service/net.*; "
                          "speak Connection/ServerSocket frames so framing "
                          "limits, timeouts, and the service.* fault-"
                          "injection sites guard every byte that crosses "
                          "the wire")


@file_rule("raw-mutex",
           "no raw std locking primitives outside src/util/sync.*")
def check_raw_mutex(ctx: FileContext):
    if ctx.rel in SYNC_ALLOWED:
        return
    for idx, line in enumerate(ctx.code_lines, start=1):
        if _RE_RAW_MUTEX.search(line):
            yield Finding(ctx.rel, idx, "raw-mutex",
                          "raw std locking primitive outside src/util/"
                          "sync.*; use advtext::Mutex/MutexLock/CondVar so "
                          "the Clang thread-safety analysis sees the lock")


_RE_RAW_IO = re.compile(
    r"std\s*::\s*(?:[io]?fstream|rename|remove)\b"
    r"|(?<![\w:])(?:std\s*::\s*)?(?:fopen|freopen|fwrite|fread)\s*\("
    r"|(?<![\w:.])::\s*open\s*\("
)


@file_rule("raw-io",
           "no raw file IO (fstream/fopen/rename/remove) in src/ outside "
           "src/util/io_file.* and src/service/net.*")
def check_raw_io(ctx: FileContext):
    if not ctx.in_library or ctx.rel in IO_ALLOWED:
        return
    for idx, line in enumerate(ctx.code_lines, start=1):
        if _RE_RAW_IO.search(line):
            yield Finding(ctx.rel, idx, "raw-io",
                          "raw file IO outside src/util/io_file.* and "
                          "src/service/net.*; go through read_file/"
                          "write_file/AtomicFileWriter so torn-write, "
                          "ENOSPC, and short-read faults from the chaos "
                          "harness cover every disk touch and publication "
                          "stays atomic")


# ---------------------------------------------------------------------------
# Determinism / robustness rule pack (new in the analyzer)

_RE_UNORDERED_DECL = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<")
_RE_RANGE_FOR = re.compile(
    r"\bfor\s*\([^;()]*?:\s*&?\s*"
    r"([A-Za-z_]\w*(?:\s*(?:\.|->)\s*[A-Za-z_]\w*)*)\s*\)")
_RE_FLOAT_DECL = re.compile(r"\b(?:double|float)\s+([A-Za-z_]\w*)")
_RE_FLOAT_ACCUM = re.compile(r"(?<![\w.])([A-Za-z_]\w*)\s*\+=")
_RE_FMA = re.compile(r"(?<![\w:])(?:std\s*::\s*)?fmaf?\s*\(")
_RE_GETENV = re.compile(r"(?<![\w:])(?:std\s*::\s*)?getenv\s*\(")
_RE_CATCH = re.compile(r"\bcatch\s*\(")
_RE_CATCH_ALL_PARAM = re.compile(
    r"^\s*(?:\.\.\.|(?:const\s+)?std\s*::\s*exception\s*&?\s*\w*)\s*$")
_RE_RETHROW = re.compile(
    r"\bthrow\b|\bcurrent_exception\b|\brethrow_exception\b")
def _matching(text: str, open_idx: int, open_ch: str, close_ch: str) -> int:
    """Index of the bracket matching text[open_idx], or -1."""
    depth = 0
    for k in range(open_idx, len(text)):
        c = text[k]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return k
    return -1


def _line_of(text: str, idx: int) -> int:
    return text.count("\n", 0, idx) + 1


def _unordered_names(ctx: FileContext,
                     contexts_by_rel: dict[str, FileContext]) -> set[str]:
    """Names declared with an unordered container type in this file, plus —
    for a .cpp — in its same-named header (members iterated from the
    implementation file are declared there)."""
    sources = [ctx.lexed.code]
    if ctx.rel.endswith((".cc", ".cpp")):
        stem = ctx.rel.rsplit(".", 1)[0]
        for suffix in (".h", ".hpp"):
            paired = contexts_by_rel.get(stem + suffix)
            if paired is not None:
                sources.append(paired.lexed.code)
    names: set[str] = set()
    for code in sources:
        for m in _RE_UNORDERED_DECL.finditer(code):
            close = _matching(code, m.end() - 1, "<", ">")
            if close == -1:
                continue
            tail = code[close + 1:close + 120]
            dm = re.match(r"\s*[&*]*\s*([A-Za-z_]\w*)", tail)
            if dm and dm.group(1) not in ("const", "final", "override"):
                names.add(dm.group(1))
    return names


@project_rule("unordered-iteration",
              "no range-for over unordered containers in src/ (hash order "
              "is nondeterministic and must not reach committed output)")
def check_unordered_iteration(contexts: list[FileContext]):
    by_rel = {c.rel: c for c in contexts}
    for ctx in contexts:
        if not ctx.in_library:
            continue
        names = _unordered_names(ctx, by_rel)
        if not names:
            continue
        for idx, line in enumerate(ctx.code_lines, start=1):
            for m in _RE_RANGE_FOR.finditer(line):
                expr = m.group(1)
                last = re.split(r"\.|->", expr)[-1].strip()
                if last in names:
                    yield Finding(
                        ctx.rel, idx, "unordered-iteration",
                        f"range-for over unordered container '{last}': "
                        "hash iteration order is implementation-defined; "
                        "sort the keys (or copy into a sorted vector) "
                        "before anything order-sensitive consumes them")


def _loop_regions(code: str) -> list[tuple[int, int]]:
    """(start, end) index ranges of loop bodies (for/while/do), found on the
    masked code so strings/comments cannot fake a keyword."""
    regions: list[tuple[int, int]] = []
    for m in re.finditer(r"\b(for|while|do)\b", code):
        kw = m.group(1)
        k = m.end()
        if kw in ("for", "while"):
            while k < len(code) and code[k].isspace():
                k += 1
            if k >= len(code) or code[k] != "(":
                continue
            close = _matching(code, k, "(", ")")
            if close == -1:
                continue
            k = close + 1
        while k < len(code) and code[k].isspace():
            k += 1
        if k < len(code) and code[k] == "{":
            end = _matching(code, k, "{", "}")
            regions.append((k, len(code) if end == -1 else end))
        else:
            semi = code.find(";", k)
            regions.append((k, len(code) if semi == -1 else semi))
    return regions


@file_rule("float-accum",
           "no floating +=/fma reductions in loops outside the blessed "
           "helpers in src/tensor/ and src/util/")
def check_float_accum(ctx: FileContext):
    if not ctx.in_library or ctx.in_dir("src/tensor/", "src/util/"):
        return
    code = ctx.lexed.code
    regions = _loop_regions(code)
    if not regions:
        return
    float_names = set(_RE_FLOAT_DECL.findall(code))

    def in_loop(idx: int) -> bool:
        return any(start <= idx < end for start, end in regions)

    for m in _RE_FLOAT_ACCUM.finditer(code):
        if m.group(1) in float_names and in_loop(m.start()):
            yield Finding(
                ctx.rel, _line_of(code, m.start()), "float-accum",
                f"floating-point accumulation '{m.group(1)} +=' in a loop; "
                "reduction order determines the bits — route it through a "
                "blessed deterministic helper in src/tensor/ or src/util/, "
                "or suppress with the reason the order is fixed")
    for m in _RE_FMA.finditer(code):
        if in_loop(m.start()):
            yield Finding(
                ctx.rel, _line_of(code, m.start()), "float-accum",
                "fma reduction in a loop outside src/tensor/ / src/util/; "
                "keep fused reductions in the blessed helpers so the "
                "rounding schedule stays in one place")


@file_rule("catch-all",
           "no catch (...) / catch (std::exception&) that absorbs without "
           "rethrow in src/")
def check_catch_all(ctx: FileContext):
    if not ctx.in_library:
        return
    code = ctx.lexed.code
    for m in _RE_CATCH.finditer(code):
        open_paren = code.index("(", m.start())
        close_paren = _matching(code, open_paren, "(", ")")
        if close_paren == -1:
            continue
        param = code[open_paren + 1:close_paren]
        if not _RE_CATCH_ALL_PARAM.match(param.strip()):
            continue
        k = close_paren + 1
        while k < len(code) and code[k].isspace():
            k += 1
        if k >= len(code) or code[k] != "{":
            continue
        end = _matching(code, k, "{", "}")
        body = code[k:end if end != -1 else len(code)]
        if _RE_RETHROW.search(body):
            continue
        yield Finding(
            ctx.rel, _line_of(code, m.start()), "catch-all",
            f"catch ({param.strip() or '...'}) absorbs every exception "
            "without rethrowing: contract violations and injected faults "
            "vanish silently; catch the narrowest type the site can "
            "actually handle, or rethrow/stash what it cannot")


@file_rule("env-access",
           "no getenv outside src/util/ and bench/")
def check_env_access(ctx: FileContext):
    if ctx.in_dir("src/util/", "bench/"):
        return
    for idx, line in enumerate(ctx.code_lines, start=1):
        if _RE_GETENV.search(line):
            yield Finding(
                ctx.rel, idx, "env-access",
                "getenv outside src/util/ and bench/: ambient environment "
                "reads make runs irreproducible from their flags; plumb "
                "configuration through explicit config structs")


# ---------------------------------------------------------------------------
# Semantic (interprocedural) rules — symbol index + call graph + CFG.
# The checkers live in dataflow.py; registration here keeps the catalog in
# one place. `uncharged-forward` keeps its PR 6 rule id: v2 subsumes the
# old lexical check (same invariant, now proven across call boundaries).

from . import dataflow  # noqa: E402  (needs Rule plumbing above)


@semantic_rule("uncharged-forward",
               "every call chain from an attack/eval/service entry point "
               "to a classifier forward/predict/eval_* call charges the "
               "QueryBudget somewhere on the chain")
def check_uncharged_forward(model):
    return dataflow.check_uncharged_forward(model)


@semantic_rule("unpolled-loop",
               "loops doing heavy work (model queries, IO, sleeps — "
               "directly or via callees) on hot paths poll Deadline/"
               "StopToken/QueryBudget/Heartbeat in the body")
def check_unpolled_loop(model):
    return dataflow.check_unpolled_loop(model)


@semantic_rule("lock-order",
               "the global Mutex acquisition-order graph (lock scopes x "
               "call graph) is acyclic")
def check_lock_order(model):
    return dataflow.check_lock_order(model)


@semantic_rule("severity-drop",
               "catch sites in severity-carrying functions fold absorbed "
               "failures via worse_of/kError/Outcome or rethrow, "
               "directly or through a callee")
def check_severity_drop(model):
    return dataflow.check_severity_drop(model)


# ---------------------------------------------------------------------------
# Project-level graph rules

@project_rule("include-layering",
              "includes respect the layer DAG util -> tensor -> "
              "text/nn/optim/data -> core -> eval -> service -> "
              "tests/bench/examples (src/ never includes the harness)")
def check_layering(contexts: list[FileContext]):
    return include_graph.check_layering(contexts)


@project_rule("include-cycle",
              "the file-level include graph of the analyzed tree is "
              "acyclic")
def check_cycles(contexts: list[FileContext]):
    return include_graph.check_cycles(contexts)


# ---------------------------------------------------------------------------
# Suppression-integrity rules. These are *emitted by the engine* during
# suppression parsing, not by a checker — registered here so they appear in
# the catalog, are accepted rule ids, and self-test fixtures can reference
# them.

def _no_op(_ctx):
    return ()


_register(Rule("allow-missing-reason",
               "every ADVTEXT_ALLOW suppression carries a reviewable "
               "reason", _no_op))
_register(Rule("allow-unknown-rule",
               "ADVTEXT_ALLOW annotations are well-formed and name a "
               "known rule", _no_op))
