"""Always-on self-test: fixture corpus + lexer regression cases.

Every fixture under ``testdata/`` is a self-describing C++ file:

    // fixture-path: src/core/example.cpp     (virtual repo-relative path)
    // fixture-group: cycle                   (optional: analyze together)
    // expect: rule-id@LINE                   (one per expected finding)
    // expect-suppressed: rule-id@LINE        (finding silenced by an ALLOW)
    // expect-clean                           (no findings at all)

Fixtures in the same group are analyzed as one virtual project (include
cycles and layering need multiple files); ungrouped fixtures are analyzed
alone. The harness fails if a declared finding does not fire, if anything
undeclared fires, or if a declared suppression is not in effect — so every
rule is proven to both fire and stay quiet on every run of the analyzer
(the PR 5 lint self-test pattern, promoted to a corpus).

The lexer regression cases pin the raw-string/escape bugs the legacy
``strip_comments`` scanner had: content inside ``R"(...)"`` must neither
desync the scanner nor fake violations, and escapes must not eat newlines.
"""

from __future__ import annotations

import re
from pathlib import Path

from .engine import AnalysisResult, Project
from .lexer import lex
from .rules import RULES

TESTDATA = Path(__file__).resolve().parent / "testdata"
REPO_ROOT = Path(__file__).resolve().parent.parent.parent

#: Fixtures analyzed together to produce the golden ``--json`` payload:
#: a semantic finding with a multi-hop call-chain witness, a loop finding
#: with a single-hop witness, and a reasoned suppression — every field of
#: the JSON schema is exercised in one byte-pinned document.
GOLDEN_FIXTURES = ("uncharged_forward_firing.cpp",
                   "unpolled_loop_firing.cpp",
                   "allow_with_reason.cpp")
GOLDEN_PATH = TESTDATA / "golden_findings.json"

#: Regression pin for one interprocedural witness: the exact chain the
#: analyzer must report for the helper-wrapped uncharged forward fixture.
#: If resolution or BFS order changes this, the change is load-bearing for
#: everyone reading witnesses out of CI artifacts — update it consciously.
GOLDEN_WITNESS = (
    "src/core/fixture_forward_firing.cpp:10 fixture_entry",
    "src/core/fixture_forward_firing.cpp:6 fixture_query_helper",
    "src/core/fixture_forward_firing.cpp:7 predict() [uncharged]",
)

_RE_DIRECTIVE = re.compile(
    r"//\s*(fixture-path|fixture-group|expect-suppressed|expect-clean|"
    r"expect)\s*:?\s*(.*?)\s*$")


class Fixture:
    def __init__(self, path: Path):
        self.path = path
        self.text = path.read_text(encoding="utf-8")
        self.virtual_path: str | None = None
        self.group: str | None = None
        self.expect: set[tuple[str, int]] = set()
        self.expect_suppressed: set[tuple[str, int]] = set()
        self.expect_clean = False
        for line in self.text.splitlines():
            m = _RE_DIRECTIVE.match(line.strip())
            if not m:
                continue
            kind, value = m.group(1), m.group(2)
            if kind == "fixture-path":
                self.virtual_path = value
            elif kind == "fixture-group":
                self.group = value
            elif kind == "expect-clean":
                self.expect_clean = True
            elif kind in ("expect", "expect-suppressed"):
                rule_id, _, line_no = value.partition("@")
                target = (rule_id.strip(), int(line_no))
                if kind == "expect":
                    self.expect.add(target)
                else:
                    self.expect_suppressed.add(target)


def _check_group(name: str, fixtures: list[Fixture]) -> list[str]:
    failures: list[str] = []
    files = {f.virtual_path: f.text for f in fixtures}
    project = Project(
        files, file_exists=lambda rel: (REPO_ROOT / rel).is_file())
    result = project.analyze()

    got = {(f.file, f.rule, f.line) for f in result.findings}
    got_suppressed = {(f.file, f.rule, f.line)
                      for f, _ in result.suppressed}
    want = set()
    want_suppressed = set()
    for f in fixtures:
        for rule_id, line in f.expect:
            want.add((f.virtual_path, rule_id, line))
        for rule_id, line in f.expect_suppressed:
            want_suppressed.add((f.virtual_path, rule_id, line))

    for missing in sorted(want - got):
        failures.append(
            f"self-test[{name}]: expected finding did not fire: "
            f"{missing[0]}:{missing[2]} [{missing[1]}]")
    for extra in sorted(got - want):
        failures.append(
            f"self-test[{name}]: unexpected finding: "
            f"{extra[0]}:{extra[2]} [{extra[1]}]")
    for missing in sorted(want_suppressed - got_suppressed):
        failures.append(
            f"self-test[{name}]: expected suppression not in effect: "
            f"{missing[0]}:{missing[2]} [{missing[1]}]")
    return failures


def _lexer_regressions() -> list[str]:
    failures: list[str] = []

    def expect(cond: bool, what: str) -> None:
        if not cond:
            failures.append(f"self-test[lexer]: {what}")

    # Raw string with an embedded quote and // must not desync the scanner:
    # the std::thread after it is real code and must survive masking.
    src = 'const char* s = R"(quote " and // slash)";\nstd::thread t;\n'
    code = lex(src).code
    expect("std::thread" in code,
           'code after R"(...")" was masked (scanner desync)')
    expect("slash" not in code, "raw-string contents leaked into code")

    # Violation *text* inside a raw string must stay masked.
    src = 'const char* s = R"(std::mutex m;)";\n'
    expect("std::mutex" not in lex(src).code,
           "raw-string contents treated as code")

    # Custom delimiter + encoding prefix.
    src = 'auto s = u8R"xy(a )" b)xy"; std::mutex m;\n'
    expect("std::mutex" in lex(src).code,
           "delimited raw string swallowed following code")

    # A // inside an ordinary string is not a comment.
    src = 'const char* u = "http://x"; std::mutex m;\n'
    expect("std::mutex" in lex(src).code,
           "// inside a string literal started a phantom comment")

    # Multi-char escapes and a quote escape in a char literal.
    src = "char c = '\\x41'; char q = '\\''; std::mutex m;\n"
    expect("std::mutex" in lex(src).code,
           "escape handling desynced on char literals")

    # Line structure is preserved exactly (findings map to raw lines).
    src = 'int a;\nR"(multi\nline\nraw)";\nint b; // trailing\n/* block\n' \
          'comment */ int c;\n'
    expect(lex(src).code.count("\n") == src.count("\n"),
           "masking changed the newline count")

    # Backslash as the last character must not eat the final newline.
    src = 'int a;\n"unterminated \\'
    expect(lex(src).code.count("\n") == src.count("\n"),
           "trailing backslash dropped a newline")

    # Comments are captured for suppression parsing.
    src = "int a; // ADVTEXT_ALLOW(raw-mutex): reason here\n"
    comments = lex(src).comments
    expect(any("ADVTEXT_ALLOW" in text for _, text in comments),
           "trailing comment not captured")
    return failures


def _golden_result() -> AnalysisResult:
    files: dict[str, str] = {}
    for name in GOLDEN_FIXTURES:
        fixture = Fixture(TESTDATA / name)
        files[fixture.virtual_path] = fixture.text
    project = Project(
        files, file_exists=lambda rel: (REPO_ROOT / rel).is_file())
    return project.analyze()


def regenerate_golden() -> Path:
    """Rewrites the golden JSON from the current analyzer output (the
    ``--regen-golden`` flag). The diff of the regenerated file *is* the
    review artifact for an intentional schema change."""
    GOLDEN_PATH.write_text(_golden_result().render_json(), encoding="utf-8")
    return GOLDEN_PATH


def _golden_regressions() -> list[str]:
    """Byte-pins the ``--json`` schema: stable rule ids, file/line/rule/
    message/witness fields, sorted keys. Trend tooling and CI artifact
    consumers parse this payload, so drift must be a conscious decision."""
    failures: list[str] = []
    result = _golden_result()

    witness = next((f.witness for f in result.findings
                    if f.rule == "uncharged-forward"), None)
    if witness != GOLDEN_WITNESS:
        failures.append(
            "self-test[golden]: pinned call-chain witness drifted:\n"
            f"  want: {list(GOLDEN_WITNESS)}\n"
            f"  got:  {list(witness) if witness else witness}")

    if not GOLDEN_PATH.is_file():
        failures.append(
            "self-test[golden]: testdata/golden_findings.json is missing; "
            "regenerate with `python3 -m tools.analyzer --regen-golden`")
        return failures
    expected = GOLDEN_PATH.read_text(encoding="utf-8")
    got = result.render_json()
    if got != expected:
        want_lines = expected.splitlines()
        got_lines = got.splitlines()
        first = next((i for i, (a, b) in enumerate(
            zip(want_lines, got_lines)) if a != b),
            min(len(want_lines), len(got_lines)))
        failures.append(
            "self-test[golden]: --json payload drifted from "
            f"testdata/golden_findings.json (first diff at line "
            f"{first + 1}); if the schema change is intentional, "
            "regenerate with `python3 -m tools.analyzer --regen-golden` "
            "and review the diff")
    return failures


def run_self_test(verbose: bool = False) -> list[str]:
    failures = _lexer_regressions()
    failures.extend(_golden_regressions())

    fixtures = []
    for path in sorted(TESTDATA.rglob("*")):
        if path.suffix not in (".h", ".hpp", ".cc", ".cpp"):
            continue
        fixture = Fixture(path)
        if fixture.virtual_path is None:
            failures.append(
                f"self-test: {path.name} has no fixture-path directive")
            continue
        if not (fixture.expect or fixture.expect_suppressed
                or fixture.expect_clean):
            failures.append(
                f"self-test: {path.name} declares no expectations")
            continue
        fixtures.append(fixture)

    groups: dict[str, list[Fixture]] = {}
    for f in fixtures:
        groups.setdefault(f.group or f.path.stem, []).append(f)
    for name, members in sorted(groups.items()):
        group_failures = _check_group(name, members)
        failures.extend(group_failures)
        if verbose and not group_failures:
            print(f"self-test[{name}]: ok "
                  f"({', '.join(m.path.name for m in members)})")

    # Corpus completeness: every registered rule must be proven to fire by
    # at least one fixture, so adding a rule without fixtures fails here.
    proven = {rule_id for f in fixtures
              for rule_id, _ in (f.expect | f.expect_suppressed)}
    for rule_id in RULES:
        if rule_id not in proven:
            failures.append(
                f"self-test: rule '{rule_id}' has no firing fixture in "
                "testdata/ — every rule must be proven to fire")
    return failures
