#!/usr/bin/env python3
"""Thin shim over the advtext analyzer (tools/analyzer/), kept so the
`repo_lint` ctest name, CI invocations, and muscle memory
(`python3 tools/lint.py [paths...]`) all survive the promotion of the lint
script into a real analysis subsystem.

The nine legacy rule ids (pragma-once, using-namespace, include-path,
raw-random, cout-in-library, raw-clock, raw-signal, raw-thread, raw-mutex)
live on unchanged inside the analyzer's rule catalog, alongside the
determinism/robustness rule pack and the include-graph rules. See
`python3 tools/analyzer --list-rules` and DESIGN.md's static-analysis
section.

Exit status: 0 clean, 1 findings or self-test regression, 2 usage error
(an explicitly named path that does not exist is an error — CI
misconfiguration must not pass vacuously).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from analyzer.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
