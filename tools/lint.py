#!/usr/bin/env python3
"""Mechanical repo lint for advtext, registered as a ctest (see
tools/CMakeLists.txt).

Rules enforced (each with a stable rule id, printed on violation):

  pragma-once        every header has `#pragma once` before any code
  using-namespace    no `using namespace` at any scope inside headers
  include-path       quoted includes are repo-root-relative and resolve to a
                     file in the repository (no "../foo.h" or bare "foo.h")
  raw-random         no rand()/srand()/std::random_device outside
                     src/util/rng.* — all randomness flows through Rng so
                     experiments stay reproducible from one seed
  cout-in-library    no std::cout/std::cerr in library code (src/); report
                     output belongs to the callers in bench/ and examples/
  raw-clock          no *_clock::now() in library code outside src/util/ —
                     timing flows through Stopwatch and Deadline so clocks
                     stay mockable and deadline checks stay consistent
  raw-signal         no signal()/sigaction() outside src/util/ — handler
                     installation flows through StopToken so every subsystem
                     shares one atomic stop flag (std::raise is fine)
  raw-thread         no std::thread / std::jthread / std::async /
                     pthread_create outside src/util/sync.* — workers are
                     spawned only by advtext::ThreadPool so thread lifetimes
                     are bounded and joined in one place (std::this_thread,
                     e.g. sleep_for, is fine)
  raw-mutex          no std::mutex / std::condition_variable / std::lock_guard
                     (or timed/recursive/shared variants, unique_lock,
                     scoped_lock, shared_lock, condition_variable_any)
                     outside src/util/sync.* — locking flows through the
                     annotated advtext::Mutex / MutexLock / CondVar wrappers
                     so Clang's -Wthread-safety analysis sees every lock

Run locally from the repo root:

  python3 tools/lint.py            # lint the whole tree
  python3 tools/lint.py src/...    # lint specific files

Exit status: 1 if any violation was found, 0 otherwise (the counts are
printed; an exit status equal to a count would wrap mod 256 and could
report 256 violating files as success).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

HEADER_SUFFIXES = {".h", ".hpp"}
SOURCE_SUFFIXES = {".h", ".hpp", ".cc", ".cpp"}
LINT_DIRS = ("src", "tests", "bench", "examples")

# Files allowed to touch raw randomness primitives.
RAW_RANDOM_ALLOWED = {"src/util/rng.h", "src/util/rng.cpp"}

# The one place threads are spawned and raw locks are wrapped.
SYNC_ALLOWED = {"src/util/sync.h", "src/util/sync.cpp"}

RE_USING_NAMESPACE = re.compile(r"^\s*using\s+namespace\b")
RE_QUOTED_INCLUDE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
RE_RAW_RANDOM = re.compile(
    r"(?<![\w:])(?:std\s*::\s*)?(?:rand|srand)\s*\(|std\s*::\s*random_device"
)
RE_COUT = re.compile(r"std\s*::\s*(?:cout|cerr)\b")
RE_RAW_CLOCK = re.compile(
    r"(?:steady_clock|system_clock|high_resolution_clock)\s*::\s*now\s*\("
)
RE_RAW_SIGNAL = re.compile(
    r"(?<![\w:])(?:std\s*::\s*)?signal\s*\(|(?<![\w:])sigaction\s*\("
)
# `std::this_thread` must not match: after `std::` the next token is
# `this_thread`, so anchoring the alternatives right after the `::` (plus
# the trailing \b) keeps it clean. std::async and pthread_create/detach are
# covered too — they spawn threads just as effectively as std::thread and
# were the loophole the original rule left open.
RE_RAW_THREAD = re.compile(
    r"std\s*::\s*(?:jthread|thread|async)\b"
    r"|(?<![\w:])pthread_(?:create|detach)\s*\("
)
RE_RAW_MUTEX = re.compile(
    r"std\s*::\s*(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex|condition_variable(?:_any)?"
    r"|lock_guard|unique_lock|scoped_lock|shared_lock)\b"
)


def strip_comments(text: str) -> str:
    """Blanks out comments and string literals, preserving line structure so
    reported line numbers stay accurate."""
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if ch == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if ch == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if ch == '"':
                state = "string"
                out.append('"')
                i += 1
                continue
            if ch == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(ch)
        elif state == "line_comment":
            if ch == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if ch == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if ch == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if ch == "\\":
                out.append("  ")
                i += 2
                continue
            if ch == quote:
                state = "code"
                out.append(quote)
            elif ch == "\n":  # unterminated; bail back to code
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def lint_file(path: Path) -> list[str]:
    rel = path.relative_to(REPO_ROOT).as_posix()
    raw = path.read_text(encoding="utf-8", errors="replace")
    code = strip_comments(raw)
    code_lines = code.splitlines()
    raw_lines = raw.splitlines()
    violations = []

    def report(line_no: int, rule: str, message: str) -> None:
        violations.append(f"{rel}:{line_no}: [{rule}] {message}")

    is_header = path.suffix in HEADER_SUFFIXES
    in_library = rel.startswith("src/")

    if is_header:
        if not re.search(r"^\s*#\s*pragma\s+once\b", code, re.MULTILINE):
            report(1, "pragma-once", "header missing #pragma once")
        for idx, line in enumerate(code_lines, start=1):
            if RE_USING_NAMESPACE.search(line):
                report(idx, "using-namespace",
                       "`using namespace` in a header leaks into every "
                       "includer")

    for idx, line in enumerate(code_lines, start=1):
        # strip_comments blanks string contents, so detect the directive on
        # the stripped line (ignores commented-out includes) but read the
        # path from the raw line.
        m = None
        if RE_QUOTED_INCLUDE.search(line) and idx <= len(raw_lines):
            m = RE_QUOTED_INCLUDE.search(raw_lines[idx - 1])
        if m:
            inc = m.group(1)
            if inc.startswith(".") or "/.." in inc:
                report(idx, "include-path",
                       f'relative include "{inc}"; use a repo-root path '
                       'like "src/util/rng.h"')
            elif not (REPO_ROOT / inc).is_file():
                report(idx, "include-path",
                       f'include "{inc}" is not a repo-root-relative path '
                       "to an existing file")

        if rel not in RAW_RANDOM_ALLOWED and RE_RAW_RANDOM.search(line):
            report(idx, "raw-random",
                   "raw randomness outside src/util/rng.*; take an "
                   "advtext::Rng so runs reproduce from one seed")

        if in_library and RE_COUT.search(line):
            report(idx, "cout-in-library",
                   "std::cout/std::cerr in library code; return data and "
                   "let bench/examples do the printing")

        if (in_library and not rel.startswith("src/util/")
                and RE_RAW_CLOCK.search(line)):
            report(idx, "raw-clock",
                   "raw clock read outside src/util/; route timing through "
                   "Stopwatch or Deadline")

        if not rel.startswith("src/util/") and RE_RAW_SIGNAL.search(line):
            report(idx, "raw-signal",
                   "raw signal()/sigaction() outside src/util/; install "
                   "handlers through StopToken so shutdown stays cooperative")

        if rel not in SYNC_ALLOWED:
            if RE_RAW_THREAD.search(line):
                report(idx, "raw-thread",
                       "raw thread spawn (std::thread/std::async/"
                       "pthread_create) outside src/util/sync.*; spawn "
                       "workers through advtext::ThreadPool so lifetimes "
                       "are joined in one place")
            if RE_RAW_MUTEX.search(line):
                report(idx, "raw-mutex",
                       "raw std locking primitive outside src/util/sync.*; "
                       "use advtext::Mutex/MutexLock/CondVar so the Clang "
                       "thread-safety analysis sees the lock")

    return violations


def collect_files(args: list[str]) -> list[Path]:
    if args:
        return [Path(a).resolve() for a in args]
    files = []
    for top in LINT_DIRS:
        for path in sorted((REPO_ROOT / top).rglob("*")):
            if path.suffix in SOURCE_SUFFIXES and path.is_file():
                files.append(path)
    return files


def self_test() -> list[str]:
    """Plants deliberate violations in the directories the concurrency rules
    must police — notably src/eval/ and bench/, where the parallel attack
    pipeline lives — and checks each one is caught. Guards against the
    coverage gap where new code in a scanned tree silently bypasses sync.h.
    Returns a list of failure descriptions (empty = pass)."""
    cases = [
        ("raw-thread", "std::thread t;"),
        ("raw-thread", "std::jthread t;"),
        ("raw-thread", "auto handle = std::async(run);"),
        ("raw-thread", "pthread_create(&tid, nullptr, fn, nullptr);"),
        ("raw-mutex", "std::mutex m;"),
        ("raw-mutex", "std::condition_variable cv;"),
        ("raw-mutex", "std::lock_guard<std::mutex> lock(m);"),
    ]
    failures = []
    for directory in ("src/eval", "bench", "src/util", "tests", "examples"):
        for rule, stmt in cases:
            probe = REPO_ROOT / directory / "_lint_self_test_probe.h"
            probe.write_text(f"#pragma once\ninline void probe() {{ {stmt} }}\n",
                             encoding="utf-8")
            try:
                violations = lint_file(probe)
            finally:
                probe.unlink()
            if not any(f"[{rule}]" in v for v in violations):
                failures.append(
                    f"self-test: `{stmt}` in {directory}/ did not trigger "
                    f"[{rule}]")
    # The wrappers themselves must stay exempt.
    if not {"src/util/sync.h", "src/util/sync.cpp"} <= SYNC_ALLOWED:
        failures.append("self-test: sync.* lost its raw-thread/raw-mutex "
                        "exemption")
    return failures


def main(argv: list[str]) -> int:
    self_failures = self_test()
    if self_failures:
        for f in self_failures:
            print(f)
        print("lint: self-test FAILED — rule coverage regressed",
              file=sys.stderr)
        return 1
    files = collect_files(argv[1:])
    bad_files = 0
    total = 0
    for path in files:
        violations = lint_file(path)
        if violations:
            bad_files += 1
            total += len(violations)
            for v in violations:
                print(v)
    if total:
        print(f"lint: {total} violation(s) in {bad_files} file(s)",
              file=sys.stderr)
        return 1
    print(f"lint: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
