#!/usr/bin/env python3
"""Seeded chaos campaign for the advtext toolchain.

Drives N randomized fault-schedule runs of the attack sweep, the trainer,
and the daemon (including SIGKILL-at-a-random-point restarts), checking
invariant oracles after every run:

  * bitwise-determinism: the timing-free artifacts of a faulted / killed /
    resumed run are byte-identical to a clean run (sweep records, trainer
    params), or to a second run under the identical schedule when the
    schedule itself perturbs results (compute faults);
  * liveness: no invocation outlives its subprocess timeout (the hang
    oracle) and the daemon keeps completing jobs under armed faults;
  * typed failure: every exit code is one the tool documents — a signal
    death or abort is a violation;
  * recovery: after a final fault-free recovery pass every journaled
    daemon job has a checksummed, loadable result artifact, and every
    *succeeded* result is byte-identical (modulo job id) to the clean
    reference; no partially-published artifact is ever loadable.

Fault schedules are drawn from a per-run PRNG seeded as
(campaign_seed << 20) ^ run_index, so `--seed S --runs N` reproduces the
exact campaign. The report is JSON; the exit code is nonzero iff any run
violated an oracle.

Usage (from the repo root, after a build):

  python3 tools/chaos/run_campaign.py --bin-dir build/examples \
      --runs 200 --seed 1 --out chaos_report.json

Stdlib only; no third-party dependencies.
"""

import argparse
import json
import os
import random
import shutil
import struct
import subprocess
import sys
import time
import zlib

# ---------------------------------------------------------------------------
# Artifact envelope (mirrors src/util/serialize.h: payload + u32 crc32 +
# u32 version + 8-byte footer magic). A file is a *published* artifact iff
# the footer checks out — presence alone proves nothing, because torn
# writes leave prefixes at the final path on purpose.

FILE_MAGIC = b"ADVTEXT1"
FOOTER_MAGIC = b"ADVTFTR1"
ARTIFACT_VERSION = 2
FOOTER_BYTES = 16

# Daemon result payload layout (src/service/daemon.cpp
# encode_result_artifact): magic(8) + u64 tag length(8) +
# "advtextd-result"(15) + u64 job_id + u64 termination + ...
RESULT_TAG = b"advtextd-result"
RESULT_JOB_ID_OFFSET = 8 + 8 + len(RESULT_TAG)
RESULT_TERMINATION_OFFSET = RESULT_JOB_ID_OFFSET + 8
TERMINATION_SUCCEEDED = 0

# Documented exit codes (examples/advtext_cli.cpp, advtextd.cpp,
# advtext_loadgen.cpp). Anything outside these sets — in particular a
# negative returncode, i.e. death by signal — is an oracle violation.
ATTACK_EXITS = {0, 1, 3, 4, 5}
ATTACK_FINAL_EXITS = {0, 3, 4}
TRAIN_EXITS = {0, 1, 5}
TRAIN_FINAL_EXITS = {0}
DAEMON_EXITS = {0, 1, 5}
RECOVER_FINAL_EXITS = {0}
LOADGEN_EXITS = {0, 1}

MAX_ATTEMPTS = 6  # convergence bound per chaos invocation; the last
                  # attempt always runs fault-free so completion is
                  # guaranteed when the tool itself is correct.


def artifact_payload(path):
    """The checksummed payload of a published artifact, or None.

    None means the file is missing, torn, bit-flipped, or footer-less —
    i.e. it was never atomically published with a valid envelope.
    """
    try:
        with open(path, "rb") as f:
            data = f.read()
    except OSError:
        return None
    if len(data) < FOOTER_BYTES or data[-8:] != FOOTER_MAGIC:
        return None
    payload = data[:-FOOTER_BYTES]
    crc, version = struct.unpack_from("<II", data, len(payload))
    if version != ARTIFACT_VERSION or zlib.crc32(payload) != crc:
        return None
    return payload


def normalized_result(payload):
    """A daemon result payload with its job id zeroed, or None."""
    if (payload is None or len(payload) < RESULT_TERMINATION_OFFSET + 8 or
            not payload.startswith(FILE_MAGIC) or
            payload[16:16 + len(RESULT_TAG)] != RESULT_TAG):
        return None
    return (payload[:RESULT_JOB_ID_OFFSET] + b"\0" * 8 +
            payload[RESULT_JOB_ID_OFFSET + 8:])


def result_termination(payload):
    return struct.unpack_from("<Q", payload, RESULT_TERMINATION_OFFSET)[0]


class Invocation:
    """One subprocess run: command, exit code, duration, hang flag."""

    def __init__(self, label, cmd, returncode, seconds, hung, tail):
        self.label = label
        self.cmd = cmd
        self.returncode = returncode
        self.seconds = seconds
        self.hung = hung
        self.tail = tail

    def to_json(self):
        return {
            "label": self.label,
            "cmd": " ".join(self.cmd),
            "exit": self.returncode,
            "seconds": round(self.seconds, 3),
            "hung": self.hung,
        }


class Harness:
    """Shared fixtures + subprocess plumbing for one campaign."""

    def __init__(self, bin_dir, workdir, timeout_s):
        self.bin_dir = os.path.abspath(bin_dir)
        self.workdir = os.path.abspath(workdir)
        self.timeout_s = timeout_s
        self.cli = os.path.join(self.bin_dir, "advtext_cli")
        self.daemon = os.path.join(self.bin_dir, "advtextd")
        self.loadgen = os.path.join(self.bin_dir, "advtext_loadgen")
        self.fixture_dir = os.path.join(self.workdir, "fixtures")
        self.task = os.path.join(self.fixture_dir, "task.bin")
        self.params = os.path.join(self.fixture_dir, "model.bin")
        # wcnn is the lightest model whose train/attack runs last long
        # enough (~0.5-1s) for SIGKILL-at-a-random-point to land mid-run;
        # bow finishes in milliseconds and every kill would be a no-op.
        self.model_kind = "wcnn"
        self.train_epochs = 8
        self.attack_docs = 30
        self.attack_method = "ggg"
        self.daemon_docs = 8
        self.clean_records = None  # bytes: sweep reference payload
        self.clean_params = None   # bytes: trainer reference payload
        self.clean_result = None   # bytes: normalized daemon job result
        self.trainer_resume_bitwise = False  # set during reference probe

    # -- subprocess plumbing -------------------------------------------

    def run(self, label, cmd, timeout=None, env=None):
        """Run to completion under the hang oracle."""
        start = time.monotonic()
        hung = False
        try:
            proc = subprocess.run(
                cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                timeout=timeout or self.timeout_s, env=env)
            returncode, out = proc.returncode, proc.stdout
        except subprocess.TimeoutExpired as err:
            hung = True
            returncode, out = None, err.output or b""
        tail = out.decode("utf-8", "replace")[-2000:]
        return Invocation(label, cmd, returncode, time.monotonic() - start,
                          hung, tail)

    def run_and_kill(self, label, cmd, delay_s):
        """Start `cmd`, SIGKILL it after `delay_s`.

        Returns the Invocation; returncode is the (negative) wait status
        unless the process finished first, in which case the kill was a
        no-op and the normal exit code comes back.
        """
        start = time.monotonic()
        proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                                stderr=subprocess.STDOUT)
        killed = False
        try:
            proc.wait(timeout=delay_s)
        except subprocess.TimeoutExpired:
            proc.kill()
            killed = True
            proc.wait()
        out = proc.stdout.read() if proc.stdout else b""
        if proc.stdout:
            proc.stdout.close()
        tail = out.decode("utf-8", "replace")[-2000:]
        inv = Invocation(label, cmd, proc.returncode,
                         time.monotonic() - start, False, tail)
        inv.killed = killed
        return inv

    # -- fixtures + clean references -----------------------------------

    def prepare(self, report):
        os.makedirs(self.fixture_dir, exist_ok=True)
        steps = [
            ("gen-task", [self.cli, "gen-task", "--dataset", "yelp",
                          "--seed", "71", "--out", self.task]),
            ("train-ref", [self.cli, "train", "--task", self.task,
                           "--model", self.model_kind,
                           "--epochs", str(self.train_epochs),
                           "--out", self.params]),
        ]
        for label, cmd in steps:
            inv = self.run(label, cmd)
            report.setdefault("fixtures", []).append(inv.to_json())
            if inv.hung or inv.returncode != 0:
                raise RuntimeError(
                    "fixture step '%s' failed (exit %s):\n%s"
                    % (label, inv.returncode, inv.tail))

        self.clean_params = artifact_payload(self.params)
        if self.clean_params is None:
            raise RuntimeError("clean trainer params are not a valid "
                               "artifact: " + self.params)

        # Sweep reference + a one-time clean determinism probe: two clean
        # runs must agree bitwise before fault equality means anything.
        dumps = []
        for i in (0, 1):
            records = os.path.join(self.fixture_dir,
                                   "clean_records_%d.bin" % i)
            inv = self.run("clean-sweep-%d" % i, [
                self.cli, "attack", "--task", self.task,
                "--model", self.model_kind, "--params", self.params,
                "--docs", str(self.attack_docs), "--method", self.attack_method,
                "--records-out", records])
            report["fixtures"].append(inv.to_json())
            if inv.hung or inv.returncode != 0:
                raise RuntimeError("clean sweep failed (exit %s):\n%s"
                                   % (inv.returncode, inv.tail))
            dumps.append(artifact_payload(records))
        if dumps[0] is None or dumps[0] != dumps[1]:
            raise RuntimeError("clean sweep is not run-twice deterministic; "
                               "chaos equality oracles would be meaningless")
        self.clean_records = dumps[0]

        # Trainer kill+resume probe: snapshot/rotation resume is only
        # required to converge to a *valid* model; whether it is bitwise
        # equal to an uninterrupted run depends on snapshot cadence vs
        # kill point. Probe a clean snapshotted run to decide whether the
        # campaign may hold resumed runs to bitwise equality.
        snap_params = os.path.join(self.fixture_dir, "snap_model.bin")
        inv = self.run("clean-train-snap", [
            self.cli, "train", "--task", self.task,
            "--model", self.model_kind,
            "--epochs", str(self.train_epochs),
            "--snapshot", os.path.join(self.fixture_dir, "snap.ckpt"),
            "--snapshot-every", "1", "--out", snap_params])
        report["fixtures"].append(inv.to_json())
        if inv.hung or inv.returncode != 0:
            raise RuntimeError("snapshotted train failed (exit %s):\n%s"
                               % (inv.returncode, inv.tail))
        self.trainer_resume_bitwise = (
            artifact_payload(snap_params) == self.clean_params)

        # Daemon reference: one clean job, normalized (job id zeroed).
        ref_dir = os.path.join(self.fixture_dir, "daemon_ref")
        invs = self.daemon_round(ref_dir, jobs=1, inject="",
                                 mem_budget_mb=0, kill_after_s=None)
        report["fixtures"].extend(inv.to_json() for inv in invs)
        results = self.state_results(os.path.join(ref_dir, "state"))
        if len(results) != 1:
            raise RuntimeError("daemon reference round produced %d valid "
                               "results, want 1" % len(results))
        self.clean_result = normalized_result(results[0][1])
        if self.clean_result is None:
            raise RuntimeError("daemon reference result failed to "
                               "normalize")

    # -- daemon plumbing -----------------------------------------------

    def daemon_round(self, round_dir, jobs, inject, mem_budget_mb,
                     kill_after_s):
        """One daemon serve round: daemon + loadgen, optional SIGKILL."""
        state = os.path.join(round_dir, "state")
        os.makedirs(state, exist_ok=True)
        sock = os.path.join(round_dir, "d.sock")
        cmd = [self.daemon, "--task", self.task, "--model", self.model_kind,
               "--params", self.params, "--socket", sock,
               "--state-dir", state, "--workers", "2",
               "--max-pending", "8", "--watchdog-ms", "10000",
               "--max-jobs", str(jobs)]
        if inject:
            cmd += ["--inject", inject]
        if mem_budget_mb:
            cmd += ["--mem-budget-mb", str(mem_budget_mb)]
        daemon_proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                                       stderr=subprocess.STDOUT)
        start = time.monotonic()
        # Loadgen runs CONCURRENTLY with the kill timer: the whole point
        # of the kill scenario is a daemon dying with jobs in flight, so
        # the client must still be mid-stream when the SIGKILL lands.
        load_cmd = [self.loadgen, "--socket", sock, "--clients", "1",
                    "--jobs", str(jobs), "--docs", str(self.daemon_docs),
                    "--model", self.model_kind,
                    "--read-timeout-ms", "20000"]
        load_proc = subprocess.Popen(load_cmd, stdout=subprocess.PIPE,
                                     stderr=subprocess.STDOUT)
        killed = False
        if kill_after_s is not None:
            time.sleep(kill_after_s)
            if daemon_proc.poll() is None:
                daemon_proc.kill()
                killed = True
        load_hung = False
        load_killed = False
        # A killed daemon leaves loadgen grinding through its connect
        # retry schedule (~10s) before giving up; that client behavior is
        # not what this scenario measures, so bound it with a grace kill.
        load_timeout = 5.0 if killed else self.timeout_s
        try:
            load_proc.wait(timeout=load_timeout)
        except subprocess.TimeoutExpired:
            load_proc.kill()
            load_proc.wait()
            if killed:
                load_killed = True
            else:
                load_hung = True
        load_out = load_proc.stdout.read() if load_proc.stdout else b""
        if load_proc.stdout:
            load_proc.stdout.close()
        load_inv = Invocation(
            "loadgen", load_cmd, load_proc.returncode,
            time.monotonic() - start, load_hung,
            load_out.decode("utf-8", "replace")[-2000:])
        load_inv.killed = load_killed
        try:
            daemon_proc.wait(timeout=self.timeout_s)
            hung = False
        except subprocess.TimeoutExpired:
            daemon_proc.kill()
            daemon_proc.wait()
            hung = True
        out = daemon_proc.stdout.read() if daemon_proc.stdout else b""
        if daemon_proc.stdout:
            daemon_proc.stdout.close()
        daemon_inv = Invocation(
            "advtextd", cmd, daemon_proc.returncode,
            time.monotonic() - start, hung,
            out.decode("utf-8", "replace")[-2000:])
        daemon_inv.killed = killed
        return [daemon_inv, load_inv]

    def state_results(self, state_dir):
        """[(job id, payload)] for every *published* result artifact."""
        results = []
        try:
            names = os.listdir(state_dir)
        except OSError:
            return results
        for name in sorted(names):
            if not (name.startswith("job") and name.endswith(".result")):
                continue
            payload = artifact_payload(os.path.join(state_dir, name))
            if payload is not None:
                results.append((name[len("job"):-len(".result")], payload))
        return results

    def state_journals(self, state_dir):
        """Job ids with a *published* (checksummed) journal entry."""
        ids = []
        try:
            names = os.listdir(state_dir)
        except OSError:
            return ids
        for name in sorted(names):
            if not (name.startswith("job") and name.endswith(".job")):
                continue
            if artifact_payload(os.path.join(state_dir, name)) is not None:
                ids.append(name[len("job"):-len(".job")])
        return ids


# ---------------------------------------------------------------------------
# Fault-schedule generation. The injector spec grammar is
# site[:mode]:probability with ','-separated entries; the injector itself
# is seeded with its default, so identical specs give identical fault
# schedules — the basis of the run-twice determinism oracle.

IO_WRITE_MODES = ["torn", "enospc", "eintr", "throw"]
IO_READ_MODES = ["short-read", "corrupt", "eintr", "throw"]
COMPUTE_SITES = ["pipeline.doc", "attack.word", "attack.sentence"]


def io_fault_spec(rng, sites=None):
    """1–3 IO-level fault entries. IO faults never change computed
    results, so runs under any such spec stay comparable to the clean
    reference."""
    if sites is None:
        sites = ["io.write", "io.read", "ckpt.write", "ckpt.read"]
    chosen = rng.sample(sites, rng.randint(1, min(3, len(sites))))
    entries = []
    for site in chosen:
        modes = IO_READ_MODES if site.endswith("read") else IO_WRITE_MODES
        entries.append("%s:%s:%.3f"
                       % (site, rng.choice(modes), rng.uniform(0.02, 0.12)))
    return ",".join(entries)


def compute_fault_spec(rng):
    """A fault entry that perturbs *which* results get computed (failed
    docs, degraded attacks). Runs under such a spec are compared against a
    second run under the identical spec, not against the clean run."""
    return "%s:throw:%.3f" % (rng.choice(COMPUTE_SITES),
                              rng.uniform(0.02, 0.10))


# ---------------------------------------------------------------------------
# Per-run scenarios. Each returns a list of violation strings (empty =
# pass) and appends invocation records to `run_record`.


def check_exit(violations, inv, allowed, what):
    if inv.hung:
        violations.append("%s: hang (exceeded %ss timeout)"
                          % (what, "timeout"))
    elif inv.returncode not in allowed:
        violations.append("%s: exit %s not in %s\n%s"
                          % (what, inv.returncode, sorted(allowed), inv.tail))


def converge(harness, run_record, violations, label, cmd_base, inject,
             final_exits, attempt_exits):
    """Retry `cmd_base` under faults until it completes; the final attempt
    is always fault-free. Returns True iff a final-allowed exit was
    reached."""
    for attempt in range(MAX_ATTEMPTS):
        armed = inject if attempt < MAX_ATTEMPTS - 1 else ""
        cmd = list(cmd_base)
        if armed:
            cmd += ["--inject", armed]
        inv = harness.run("%s-attempt%d" % (label, attempt), cmd)
        run_record["invocations"].append(inv.to_json())
        if inv.hung:
            violations.append("%s: hang on attempt %d" % (label, attempt))
            return False
        if inv.returncode in final_exits:
            return True
        if inv.returncode not in attempt_exits:
            violations.append(
                "%s: exit %s not in %s on attempt %d\n%s"
                % (label, inv.returncode, sorted(attempt_exits), attempt,
                   inv.tail))
            return False
    violations.append("%s: no completion within %d attempts"
                      % (label, MAX_ATTEMPTS))
    return False


def sweep_run(harness, rng, run_dir, run_record):
    violations = []
    records = os.path.join(run_dir, "records.bin")
    ckpt = os.path.join(run_dir, "sweep.ckpt")
    threads = rng.choice([1, 1, 2])
    cmd_base = [harness.cli, "attack", "--task", harness.task,
                "--model", harness.model_kind, "--params", harness.params,
                "--docs", str(harness.attack_docs), "--method", harness.attack_method,
                "--checkpoint", ckpt, "--resume",
                "--resume-fallback-fresh", "true",
                "--checkpoint-every", "2",
                "--records-out", records]

    compute_schedule = rng.random() < 0.25
    if compute_schedule:
        # Compute faults change which records come out, so the oracle is
        # run-twice determinism under the identical spec (no kills: a kill
        # restarts the injector mid-schedule, which is a *different*
        # schedule). Any worker count is fair game: the injector keeps one
        # RNG stream per effective site, and the pipeline scopes every
        # draw with FaultScope("doc<i>"), so a document's fault schedule
        # is a pure function of (spec, seed, doc) — not of which thread
        # ran it or what the other workers drew in between.
        cmd_base += ["--attack-threads", str(threads)]
        spec = compute_fault_spec(rng)
        run_record["spec"] = spec
        run_record["oracle"] = "run-twice-determinism"
        dumps = []
        for i in (0, 1):
            for path in (records, ckpt):
                if os.path.exists(path):
                    os.remove(path)
            inv = harness.run("sweep-twice-%d" % i,
                              cmd_base + ["--inject", spec])
            run_record["invocations"].append(inv.to_json())
            check_exit(violations, inv, ATTACK_FINAL_EXITS | {1},
                       "sweep-twice-%d" % i)
            dumps.append(artifact_payload(records)
                         if inv.returncode in ATTACK_FINAL_EXITS else None)
        if not violations and dumps[0] != dumps[1]:
            violations.append("sweep: identical compute-fault schedules "
                              "produced different record dumps")
        return violations

    # IO faults never perturb computed results, so parallel workers are
    # fair game here: the oracle is bitwise equality with the clean
    # reference, which holds at any worker count.
    cmd_base += ["--attack-threads", str(threads)]
    spec = io_fault_spec(rng)
    run_record["spec"] = spec
    run_record["oracle"] = "bitwise-vs-clean"
    if rng.random() < 0.5:
        # SIGKILL at a random point, then converge with --resume.
        inv = harness.run_and_kill(
            "sweep-kill", cmd_base + ["--inject", spec],
            rng.uniform(0.05, 0.6))
        run_record["invocations"].append(inv.to_json())
        run_record["restarts"] = run_record.get("restarts", 0) + 1
        if not inv.killed and inv.returncode not in ATTACK_EXITS:
            violations.append("sweep-kill: finished before the kill with "
                              "exit %s\n%s" % (inv.returncode, inv.tail))
    if violations:
        return violations
    if not converge(harness, run_record, violations, "sweep", cmd_base,
                    spec, ATTACK_FINAL_EXITS, ATTACK_EXITS):
        return violations
    payload = artifact_payload(records)
    if payload is None:
        violations.append("sweep: records dump is not a published artifact")
    elif payload != harness.clean_records:
        violations.append("sweep: records differ bitwise from the clean "
                          "reference")
    return violations


def trainer_run(harness, rng, run_dir, run_record):
    violations = []
    out = os.path.join(run_dir, "model.bin")
    snap = os.path.join(run_dir, "snap.ckpt")
    cmd_base = [harness.cli, "train", "--task", harness.task,
                "--model", harness.model_kind,
                "--epochs", str(harness.train_epochs),
                "--snapshot", snap, "--snapshot-every", "1",
                "--train-resume", "true", "--out", out]
    spec = io_fault_spec(rng, ["io.write", "io.read",
                               "ckpt.write", "ckpt.read"])
    run_record["spec"] = spec
    run_record["oracle"] = ("bitwise-vs-clean"
                            if harness.trainer_resume_bitwise
                            else "valid-artifact")
    if rng.random() < 0.5:
        inv = harness.run_and_kill(
            "train-kill", cmd_base + ["--inject", spec],
            rng.uniform(0.05, 0.6))
        run_record["invocations"].append(inv.to_json())
        run_record["restarts"] = run_record.get("restarts", 0) + 1
        if not inv.killed and inv.returncode not in TRAIN_EXITS:
            violations.append("train-kill: finished before the kill with "
                              "exit %s\n%s" % (inv.returncode, inv.tail))
    if violations:
        return violations
    if not converge(harness, run_record, violations, "train", cmd_base,
                    spec, TRAIN_FINAL_EXITS, TRAIN_EXITS):
        return violations
    payload = artifact_payload(out)
    if payload is None:
        violations.append("train: params are not a published artifact")
    elif harness.trainer_resume_bitwise and payload != harness.clean_params:
        violations.append("train: params differ bitwise from the clean "
                          "reference")
    return violations


def daemon_run(harness, rng, run_dir, run_record):
    violations = []
    jobs = rng.randint(2, 4)
    spec = io_fault_spec(rng, ["io.write", "io.read", "service.write"])
    mem_budget_mb = rng.choice([0, 0, 2])
    kill_after_s = rng.uniform(0.05, 0.25) if rng.random() < 0.5 else None
    run_record["spec"] = spec
    run_record["oracle"] = "journal-complete+succeeded-bitwise"
    run_record["mem_budget_mb"] = mem_budget_mb
    if kill_after_s is not None:
        run_record["restarts"] = run_record.get("restarts", 0) + 1

    invs = harness.daemon_round(run_dir, jobs, spec, mem_budget_mb,
                                kill_after_s)
    for inv in invs:
        run_record["invocations"].append(inv.to_json())
    daemon_inv, load_inv = invs
    if daemon_inv.hung:
        violations.append("advtextd: hang past the serve timeout")
    elif not getattr(daemon_inv, "killed", False) and \
            daemon_inv.returncode not in DAEMON_EXITS:
        violations.append("advtextd: exit %s not in %s\n%s"
                          % (daemon_inv.returncode, sorted(DAEMON_EXITS),
                             daemon_inv.tail))
    # A killed daemon strands the client mid-stream; loadgen then reports
    # unresponded jobs (exit 1) — that is the client seeing a crash, not a
    # protocol violation. Exits outside {0,1} are still violations, unless
    # the harness grace-killed loadgen itself after killing the daemon.
    if not getattr(load_inv, "killed", False):
        check_exit(violations, load_inv, LOADGEN_EXITS, "loadgen")
    if violations:
        return violations

    # Final fault-free recovery: every journaled job must come out with a
    # published result, and recovery itself must exit 0.
    state = os.path.join(run_dir, "state")
    recover_cmd = [harness.daemon, "--task", harness.task,
                   "--model", harness.model_kind, "--params",
                   harness.params, "--state-dir", state, "--recover-only",
                   "true", "--watchdog-ms", "10000"]
    inv = harness.run("recover-only", recover_cmd)
    run_record["invocations"].append(inv.to_json())
    check_exit(violations, inv, RECOVER_FINAL_EXITS, "recover-only")
    if violations:
        return violations

    journaled = harness.state_journals(state)
    results = dict(harness.state_results(state))
    for job_id in journaled:
        payload = results.get(job_id)
        if payload is None:
            violations.append("daemon: journaled job %s has no published "
                              "result after fault-free recovery" % job_id)
            continue
        norm = normalized_result(payload)
        if norm is None:
            violations.append("daemon: job %s result failed to normalize"
                              % job_id)
        elif (result_termination(payload) == TERMINATION_SUCCEEDED and
              norm != harness.clean_result):
            violations.append("daemon: job %s succeeded result differs "
                              "bitwise from the clean reference" % job_id)
    return violations


SCENARIOS = {
    "sweep": sweep_run,
    "trainer": trainer_run,
    "daemon": daemon_run,
}


def main():
    parser = argparse.ArgumentParser(
        description="seeded chaos campaign over the advtext binaries")
    parser.add_argument("--bin-dir", default="build/examples",
                        help="directory with advtext_cli/advtextd/"
                             "advtext_loadgen")
    parser.add_argument("--runs", type=int, default=30,
                        help="number of chaos runs (round-robin over "
                             "targets)")
    parser.add_argument("--seed", type=int, default=1,
                        help="campaign seed; run i draws from "
                             "Random((seed<<20)^i)")
    parser.add_argument("--targets", default="sweep,trainer,daemon",
                        help="comma-separated subset of "
                             "sweep,trainer,daemon")
    parser.add_argument("--out", default="chaos_report.json",
                        help="JSON campaign report path")
    parser.add_argument("--workdir", default=None,
                        help="scratch dir (default: a fresh dir under "
                             "/tmp); deleted on success unless --keep")
    parser.add_argument("--timeout-s", type=float, default=120.0,
                        help="hang-oracle bound per subprocess")
    parser.add_argument("--keep", action="store_true",
                        help="keep per-run scratch dirs for debugging")
    args = parser.parse_args()

    targets = [t for t in args.targets.split(",") if t]
    for t in targets:
        if t not in SCENARIOS:
            parser.error("unknown target '%s' (want %s)"
                         % (t, ",".join(SCENARIOS)))

    workdir = args.workdir or ("/tmp/advtext-chaos-%d-%d"
                               % (args.seed, os.getpid()))
    os.makedirs(workdir, exist_ok=True)
    harness = Harness(args.bin_dir, workdir, args.timeout_s)
    for binary in (harness.cli, harness.daemon, harness.loadgen):
        if not os.path.exists(binary):
            sys.stderr.write("missing binary: %s (build first, or pass "
                             "--bin-dir)\n" % binary)
            return 2

    report = {
        "campaign": "advtext-chaos",
        "seed": args.seed,
        "runs_requested": args.runs,
        "targets": targets,
        "trainer_resume_bitwise": None,
        "runs": [],
    }
    try:
        harness.prepare(report)
    except RuntimeError as err:
        sys.stderr.write("fixture preparation failed: %s\n" % err)
        return 2
    report["trainer_resume_bitwise"] = harness.trainer_resume_bitwise

    hangs = 0
    violations_total = 0
    start = time.monotonic()
    for i in range(args.runs):
        target = targets[i % len(targets)]
        rng = random.Random((args.seed << 20) ^ i)
        run_dir = os.path.join(harness.workdir, "run%04d" % i)
        os.makedirs(run_dir, exist_ok=True)
        run_record = {"run": i, "target": target, "invocations": [],
                      "violations": []}
        run_start = time.monotonic()
        try:
            run_record["violations"] = SCENARIOS[target](
                harness, rng, run_dir, run_record)
        except Exception as err:  # harness bug, not a tool bug — surface it
            run_record["violations"] = ["harness error: %r" % err]
        run_record["seconds"] = round(time.monotonic() - run_start, 3)
        run_hangs = sum(1 for inv in run_record["invocations"]
                        if inv.get("hung"))
        hangs += run_hangs
        violations_total += len(run_record["violations"])
        report["runs"].append(run_record)
        status = "ok" if not run_record["violations"] else "VIOLATION"
        print("run %04d %-8s %-10s %6.2fs  %s"
              % (i, target, status, run_record["seconds"],
                 run_record.get("spec", "")), flush=True)
        for v in run_record["violations"]:
            print("    ! %s" % v.splitlines()[0], flush=True)
        if not run_record["violations"] and not args.keep:
            shutil.rmtree(run_dir, ignore_errors=True)

    report["summary"] = {
        "runs": args.runs,
        "hangs": hangs,
        "violations": violations_total,
        "wall_seconds": round(time.monotonic() - start, 3),
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
    print("campaign: %d runs, %d hangs, %d violations -> %s"
          % (args.runs, hangs, violations_total, args.out), flush=True)
    if violations_total == 0 and not args.keep:
        shutil.rmtree(harness.workdir, ignore_errors=True)
    return 1 if violations_total else 0


if __name__ == "__main__":
    sys.exit(main())
