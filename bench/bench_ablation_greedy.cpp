// Ablation: submodular maximizers (Claim 1 in practice). Compares naive
// greedy, lazy greedy, stochastic greedy and the random baseline against
// brute force on (a) reference submodular families and (b) real attack set
// functions built from a trained WCNN, reporting achieved value ratio and
// oracle calls. This quantifies the (1-1/e) guarantee the paper leans on
// and the evaluation savings of lazy greedy.
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/attack_set_function.h"
#include "src/eval/report.h"
#include "src/optim/submodular.h"

namespace {
using namespace advtext;
using namespace advtext::bench;

void report_row(TablePrinter& table, const std::string& name,
                const MaximizationResult& result, double optimum,
                double base) {
  const double denominator = optimum - base;
  const double ratio =
      denominator > 1e-12 ? (result.value - base) / denominator : 1.0;
  table.print_row({name, format_double(result.value, 4),
                   format_double(ratio, 3),
                   std::to_string(result.evaluations)});
}

}  // namespace

int main() {
  print_banner(
      "Ablation: submodular maximizers vs brute force "
      "(value ratio of optimum-gain, oracle calls)");

  // (a) Weighted-coverage reference instances.
  {
    print_banner("Weighted coverage (n=14 elements, budget=5)");
    Rng rng(1);
    auto f = CoverageFunction::random(14, 40, 5, rng);
    const auto exact = brute_force_maximize(f, 5);
    TablePrinter table({"Method", "value", "gain ratio", "evals"},
                       {18, 9, 10, 8});
    table.print_header();
    f.reset_evaluations();
    report_row(table, "greedy", greedy_maximize(f, 5), exact.value, 0.0);
    report_row(table, "lazy greedy", lazy_greedy_maximize(f, 5), exact.value,
               0.0);
    Rng sg_rng(2);
    report_row(table, "stochastic greedy",
               stochastic_greedy_maximize(f, 5, sg_rng), exact.value, 0.0);
    Rng rand_rng(3);
    report_row(table, "random subset",
               random_subset_baseline(f, 5, rand_rng), exact.value, 0.0);
    table.print_row({"brute force", format_double(exact.value, 4), "1.000",
                     std::to_string(exact.evaluations)});
    table.print_rule();
    std::printf("greedy guarantee floor (1-1/e) = %.3f\n",
                1.0 - 1.0 / std::exp(1.0));
  }

  // (b) Attack set function on a trained WCNN (inner max: coordinate
  // ascent; ground set limited so brute force stays feasible).
  {
    print_banner("Attack set function on trained WCNN (Yelp, budget=4)");
    const SynthTask task = make_yelp();
    const TaskAttackContext context(task);
    auto model = make_wcnn(task);
    train_classifier(*model, task.train, default_training());

    TablePrinter table({"Method", "value", "gain ratio", "evals"},
                       {18, 9, 10, 8});
    table.print_header();
    std::size_t shown = 0;
    for (const Document& doc : task.test.docs) {
      TokenSeq tokens = doc.flatten();
      const std::size_t label = static_cast<std::size_t>(doc.label);
      if (tokens.empty() || model->predict(tokens) != label) continue;
      if (tokens.size() > 24) tokens.resize(24);  // keep 2^n feasible
      WordCandidates candidates;
      candidates.per_position =
          context.word_index().candidates_for(tokens, nullptr);
      // Keep at most 12 attackable positions.
      std::size_t attackable = 0;
      for (auto& list : candidates.per_position) {
        if (list.empty()) continue;
        if (++attackable > 12) list.clear();
      }
      const std::size_t target = 1 - label;
      AttackSetFunction f(
          [&](const TokenSeq& t) {
            return model->class_probability(t, target);
          },
          tokens, candidates,
          AttackSetFunction::InnerMax::kCoordinateAscent);
      if (f.ground_set_size() < 6) continue;
      const double base = f.value({});
      const auto exact = brute_force_maximize(f, 4);
      f.reset_evaluations();
      report_row(table, "greedy", greedy_maximize(f, 4), exact.value, base);
      report_row(table, "lazy greedy", lazy_greedy_maximize(f, 4),
                 exact.value, base);
      Rng rand_rng(shown);
      report_row(table, "random subset",
                 random_subset_baseline(f, 4, rand_rng), exact.value, base);
      table.print_rule();
      if (++shown >= 4) break;
    }
  }
  std::printf(
      "\nShape check: greedy/lazy-greedy gain ratios sit at or near 1.0 on\n"
      "real attack instances (far above the 0.632 worst-case floor), lazy\n"
      "greedy matches greedy's value with fewer oracle calls, and random\n"
      "selection trails — the empirical content of Claim 1.\n");
  return 0;
}
