// Figure 4 reproduction: attack success rate on the LSTM classifier as a
// function of the sentence-paraphrase ratio λs ∈ {0, 20%, 40%, 60%} for
// word-paraphrase budgets λw ∈ {0, 10%, 20%, 30%}, per dataset.
//
// The paper's figure shows, for all three datasets:
//   * SR increases monotonically in both λs and λw;
//   * sentence paraphrasing is especially effective when few word
//     paraphrases are allowed (e.g. Yelp: λw=10% alone ~5% SR, but with
//     λs=60% it jumps toward ~60%).
// This bench prints the full grid as series (one row per λw) so the
// curves can be compared to the figure.
#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "src/eval/report.h"
#include "src/util/stopwatch.h"

int main() {
  using namespace advtext;
  using namespace advtext::bench;

  print_banner(
      "Figure 4: LSTM attack success rate vs sentence ratio (columns) and "
      "word ratio (rows)");
  const std::size_t docs = docs_per_config(25);
  const double sentence_ratios[] = {0.0, 0.2, 0.4, 0.6};
  const double word_ratios[] = {0.0, 0.1, 0.2, 0.3};

  for (const SynthTask& task : make_all_tasks()) {
    const TaskAttackContext context(task);
    auto model = make_trained("LSTM", task);
    print_banner(task.config.name);
    TablePrinter table({"lw \\ ls", "0%", "20%", "40%", "60%"},
                       {8, 6, 6, 6, 6});
    table.print_header();
    for (double lw : word_ratios) {
      std::vector<std::string> row = {format_percent(lw, 0)};
      for (double ls : sentence_ratios) {
        AttackEvalConfig config;
        config.max_docs = docs;
        config.joint.use_lm_filter = task.config.name != "Trec07p";
        config.joint.enable_sentence = ls > 0.0;
        config.joint.sentence_fraction = ls;
        config.joint.enable_word = lw > 0.0;
        config.joint.word_fraction = lw;
        configure_attack_parallelism(config, "LSTM", task, *model);
        configure_scoring(config);
        Stopwatch watch;
        const AttackEvalResult result =
            evaluate_attack(*model, task, context, config);
        BenchJsonRecord json_row{
            "figure4",
            task.config.name + "/LSTM/ls=" + format_percent(ls, 0) +
                ",lw=" + format_percent(lw, 0),
            config.threads, 1, result.docs_evaluated,
            watch.elapsed_seconds(), result.mean_seconds_per_doc,
            result.success_rate};
        fill_scoring_stats(json_row, result);
        append_bench_json(json_row);
        row.push_back(format_percent(result.success_rate, 0));
      }
      table.print_row(row);
    }
    table.print_rule();
  }
  std::printf(
      "\nShape check: success rate grows along every row (more sentence\n"
      "paraphrasing) and down every column (more word paraphrasing); the\n"
      "ls-effect is largest at small lw, as in the paper's Figure 4.\n");
  return 0;
}
