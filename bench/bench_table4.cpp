// Table 4 reproduction: simulated human-subject validation. Five simulated
// raters label original vs adversarial texts (Task I, majority vote) and
// score their naturalness on a 1-5 scale (Task II). The simulator is the
// documented proxy from DESIGN.md §1 (oracle meanings + LM perplexity).
//
// Paper values (Table 4):
//   Task I accuracy   : News 70%->50%, Trec07p 80%->80%, Yelp 100%->100%
//   Task II naturalness: News 3.06->3.13, Trec07p 3.23->3.10,
//                        Yelp 1.93->2.10
// Shape to match: adversarial texts score nearly the same as originals on
// both tasks (small drops allowed, as in the paper's News row).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/eval/human_sim.h"
#include "src/eval/report.h"

namespace {
using namespace advtext;
using namespace advtext::bench;

struct PaperRow {
  const char* dataset;
  double task1_orig, task1_adv;
  double task2_orig, task2_adv;
};

constexpr PaperRow kPaper[] = {
    {"News", 0.70, 0.50, 3.06, 3.13},
    {"Trec07p", 0.80, 0.80, 3.23, 3.10},
    {"Yelp", 1.00, 1.00, 1.93, 2.10},
};

}  // namespace

int main() {
  print_banner(
      "Table 4: simulated human evaluation (Task I: label accuracy, "
      "majority of 5 raters; Task II: 1-5 human-likeness)");
  const std::size_t docs = docs_per_config(30);

  TablePrinter table({"Dataset", "Side", "TaskI", "TaskII", "paper:TaskI",
                      "paper:TaskII"},
                     {8, 11, 7, 13, 11, 12});
  table.print_header();

  for (const SynthTask& task : make_all_tasks()) {
    const TaskAttackContext context(task);
    auto model = make_trained("LSTM", task);

    AttackEvalConfig config;
    config.max_docs = docs;
    config.joint.use_lm_filter = task.config.name != "Trec07p";
    config.joint.sentence_fraction =
        task.config.name == "Trec07p" ? 0.6 : 0.2;
    config.joint.word_fraction = 0.2;
    const AttackEvalResult attack =
        evaluate_attack(*model, task, context, config);

    std::vector<Document> originals;
    std::vector<Document> adversarials;
    for (std::size_t idx : attack.attacked_indices) {
      originals.push_back(task.test.docs[idx]);
      adversarials.push_back(attack.adv_docs[idx]);
    }
    const HumanEvalResult result =
        simulate_human_eval(task, context.lm(), originals, adversarials);

    const PaperRow* paper = nullptr;
    for (const PaperRow& row : kPaper) {
      if (task.config.name == row.dataset) paper = &row;
    }
    table.print_row(
        {task.config.name, "Original",
         format_percent(result.original.label_accuracy, 0),
         format_double(result.original.naturalness_mean, 2) + " +- " +
             format_double(result.original.naturalness_stddev, 2),
         format_percent(paper->task1_orig, 0),
         format_double(paper->task2_orig, 2)});
    table.print_row(
        {task.config.name, "Adversarial",
         format_percent(result.adversarial.label_accuracy, 0),
         format_double(result.adversarial.naturalness_mean, 2) + " +- " +
             format_double(result.adversarial.naturalness_stddev, 2),
         format_percent(paper->task1_adv, 0),
         format_double(paper->task2_adv, 2)});
  }
  table.print_rule();
  std::printf(
      "\nShape check: adversarial rows track the original rows closely on\n"
      "both tasks (the paper's central quality claim).\n");
  return 0;
}
