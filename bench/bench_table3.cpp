// Table 3 reproduction: attack success rate and per-document time of the
// three word-level optimization schemes on the WCNN classifier, with
// λw ∈ {5%, 20%} and no sentence paraphrasing (pure optimization
// comparison, paper §6.4). The WCNN runs with 5% MC dropout at inference,
// as the paper describes.
//
// Paper values (Table 3), (SR%, seconds/doc):
//             greedy[19]        gradient[18]      ours (Alg. 3)
//   λw:       5%      20%       5%      20%       5%      20%
//   News      26.2/.79 28.4/1.5  9.9/.13 12.8/.21  39.7/.26 45.4/.31
//   Trec07p    5.1/.19 24.9/.33  0.9/.03  3.4/.05  12.9/.07 45.3/.09
//   Yelp      12.7/.15 45.0/.21  4.2/.02  9.1/.03  20.7/.02 55.9/.05
// Shape to match: ours >= greedy[19] >> gradient[18] on success rate, and
// ours much cheaper per document than greedy[19].
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/gradient_attack.h"
#include "src/core/gradient_guided_greedy.h"
#include "src/core/objective_greedy.h"
#include "src/eval/report.h"
#include "src/nn/checkpoint.h"
#include "src/util/stopwatch.h"

namespace {

using namespace advtext;
using namespace advtext::bench;

struct MethodStats {
  double success_rate = 0.0;
  double seconds = 0.0;
  double queries = 0.0;
  std::size_t attacked = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
};

// The attacker queries the stochastic (MC-dropout) model, but success is
// judged on the deterministic decision rule — a stochastic verdict would
// award wins for lucky dropout draws on near-boundary documents.
//
// Two stages so the sweep parallelizes: (1) eligibility — which documents
// the deterministic rule classifies correctly — runs serially on the
// primary model (cheap, no dropout draws); (2) the attacks run over the
// eligible list on `threads` workers, each with its own WCnn replica
// (dropout toggling is per-replica state, so workers never share a model).
// Per-doc outcomes are reduced in document order; with threads=1 this is
// step-for-step the original serial loop, and for mc_dropout=0 any thread
// count produces identical stats.
MethodStats run_method(WCnn& model, const SynthTask& task,
                       const TaskAttackContext& context,
                       const std::string& method, double lambda_w,
                       std::size_t max_docs, bool use_lm, float mc_dropout,
                       std::size_t threads) {
  std::vector<std::size_t> eligible;
  model.set_mc_dropout(0.0f);
  for (std::size_t i = 0;
       i < task.test.docs.size() && eligible.size() < max_docs; ++i) {
    const TokenSeq tokens = task.test.docs[i].flatten();
    if (!tokens.empty() &&
        model.predict(tokens) ==
            static_cast<std::size_t>(task.test.docs[i].label)) {
      eligible.push_back(i);
    }
  }
  model.set_mc_dropout(mc_dropout);

  const std::size_t workers =
      threads < 2 || eligible.size() < 2
          ? 1
          : (threads < eligible.size() ? threads : eligible.size());
  std::vector<std::unique_ptr<WCnn>> replicas;
  for (std::size_t w = 1; w < workers; ++w) {
    replicas.push_back(make_wcnn(task, mc_dropout));
    copy_model_params(model, *replicas.back());
  }

  struct DocOutcome {
    bool flipped = false;
    double seconds = 0.0;
    double queries = 0.0;
    std::size_t cache_hits = 0;
    std::size_t cache_misses = 0;
  };
  const std::vector<DocOutcome> outcomes = parallel_index_map<DocOutcome>(
      eligible.size(), workers,
      [&](std::size_t worker, std::size_t index) {
        WCnn& worker_model = worker == 0 ? model : *replicas[worker - 1];
        const Document& doc = task.test.docs[eligible[index]];
        const TokenSeq tokens = doc.flatten();
        const std::size_t label = static_cast<std::size_t>(doc.label);
        WordCandidates candidates;
        candidates.per_position = context.word_index().candidates_for(
            tokens, use_lm ? &context.lm() : nullptr);
        WordAttackResult result;
        const std::size_t target = 1 - label;
        if (method == "greedy[19]") {
          ObjectiveGreedyConfig config;
          config.max_replace_fraction = lambda_w;
          result = objective_greedy_attack(worker_model, tokens, candidates,
                                           target, config);
        } else if (method == "gradient[18]") {
          GradientAttackConfig config;
          config.max_replace_fraction = lambda_w;
          result =
              gradient_attack(worker_model, tokens, candidates, target, config);
        } else {
          GradientGuidedGreedyConfig config;
          config.max_replace_fraction = lambda_w;
          result = gradient_guided_greedy_attack(worker_model, tokens,
                                                 candidates, target, config);
        }
        DocOutcome outcome;
        worker_model.set_mc_dropout(0.0f);
        outcome.flipped = worker_model.predict(result.adv_tokens) != label;
        worker_model.set_mc_dropout(mc_dropout);
        outcome.seconds = result.seconds;
        outcome.queries = static_cast<double>(result.queries);
        outcome.cache_hits = result.cache_hits;
        outcome.cache_misses = result.cache_misses;
        return outcome;
      });

  MethodStats stats;
  stats.attacked = outcomes.size();
  if (!outcomes.empty()) {
    std::size_t flipped = 0;
    double seconds = 0.0;
    double queries = 0.0;
    for (const DocOutcome& outcome : outcomes) {
      if (outcome.flipped) ++flipped;
      seconds += outcome.seconds;
      queries += outcome.queries;
      stats.cache_hits += outcome.cache_hits;
      stats.cache_misses += outcome.cache_misses;
    }
    const double attacked = static_cast<double>(outcomes.size());
    stats.success_rate = static_cast<double>(flipped) / attacked;
    stats.seconds = seconds / attacked;
    stats.queries = queries / attacked;
  }
  return stats;
}

struct PaperCell {
  const char* dataset;
  const char* method;
  double lw;
  double sr;
  double sec;
};

constexpr PaperCell kPaperCells[] = {
    {"News", "greedy[19]", 0.05, 0.262, 0.79},
    {"News", "greedy[19]", 0.20, 0.284, 1.46},
    {"News", "gradient[18]", 0.05, 0.0993, 0.13},
    {"News", "gradient[18]", 0.20, 0.128, 0.21},
    {"News", "ours", 0.05, 0.397, 0.26},
    {"News", "ours", 0.20, 0.454, 0.31},
    {"Trec07p", "greedy[19]", 0.05, 0.051, 0.19},
    {"Trec07p", "greedy[19]", 0.20, 0.249, 0.33},
    {"Trec07p", "gradient[18]", 0.05, 0.0086, 0.03},
    {"Trec07p", "gradient[18]", 0.20, 0.034, 0.05},
    {"Trec07p", "ours", 0.05, 0.129, 0.07},
    {"Trec07p", "ours", 0.20, 0.453, 0.09},
    {"Yelp", "greedy[19]", 0.05, 0.127, 0.15},
    {"Yelp", "greedy[19]", 0.20, 0.450, 0.21},
    {"Yelp", "gradient[18]", 0.05, 0.042, 0.02},
    {"Yelp", "gradient[18]", 0.20, 0.091, 0.03},
    {"Yelp", "ours", 0.05, 0.207, 0.02},
    {"Yelp", "ours", 0.20, 0.559, 0.05},
};

}  // namespace

int main() {
  const std::size_t docs = docs_per_config(30);
  // This bench drives the word attacks directly (no AttackEvalConfig), so
  // only the scoring-path switch applies; there is no query cache here.
  set_sequential_scoring(std::string(scoring_mode()) == "seed");
  // Two blocks: the paper runs this comparison with 5% MC dropout at
  // inference (§6.4). On our scaled substrate that noise level swamps the
  // per-swap gains of *every* function-evaluation attack (the paper's
  // models have much larger per-swap logit movements), so the
  // deterministic block is where the optimization-scheme ordering is
  // informative and the dropout block shows the noise effect itself.
  for (const float mc : {0.0f, 0.05f}) {
    print_banner(std::string("Table 3: word-level optimization schemes on "
                             "WCNN, MC dropout ") +
                 format_percent(mc, 0) +
                 ": success rate / seconds per doc / queries per doc");
    TablePrinter table({"Dataset", "lw", "Method", "SR", "s/doc", "q/doc",
                        "paper:SR", "paper:s/doc"},
                       {8, 4, 12, 6, 7, 7, 8, 11});
    table.print_header();

    for (const SynthTask& task : make_all_tasks()) {
      const bool use_lm = task.config.name != "Trec07p";
      const TaskAttackContext context(task);
      auto model = make_wcnn(task, mc);
      train_classifier(*model, task.train, default_training());
      for (double lw : {0.05, 0.20}) {
        for (const char* method : {"greedy[19]", "gradient[18]", "ours"}) {
          Stopwatch watch;
          const MethodStats stats =
              run_method(*model, task, context, method, lw, docs, use_lm, mc,
                         attack_threads());
          BenchJsonRecord row{
              "table3",
              task.config.name + "/WCNN/" + method +
                  "/lw=" + format_percent(lw, 0) +
                  ",mc=" + format_percent(static_cast<double>(mc), 0),
              attack_threads(), 1, stats.attacked, watch.elapsed_seconds(),
              stats.seconds, stats.success_rate};
          row.cache_hits = stats.cache_hits;
          row.cache_misses = stats.cache_misses;
          row.queries_saved = stats.cache_hits;
          row.scoring = scoring_mode();
          append_bench_json(row);
          const PaperCell* paper = nullptr;
          for (const PaperCell& cell : kPaperCells) {
            if (task.config.name == cell.dataset &&
                std::string(method) == cell.method && cell.lw == lw) {
              paper = &cell;
            }
          }
          table.print_row(
              {task.config.name, format_percent(lw, 0), method,
               format_percent(stats.success_rate),
               format_double(stats.seconds, 3),
               format_double(stats.queries, 0), format_percent(paper->sr),
               format_double(paper->sec, 2)});
        }
      }
    }
    table.print_rule();
  }
  std::printf(
      "\nShape check (deterministic block): ours >= greedy[19] >>\n"
      "gradient[18] on SR, with ours needing far fewer queries/seconds per\n"
      "document than greedy[19]. The 5%% dropout block shows query noise\n"
      "degrading the single-swap greedy hardest (paper §6.4's argument),\n"
      "though at our scale it also degrades Alg. 3 more than in the paper.\n");
  return 0;
}
