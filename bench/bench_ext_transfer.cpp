// Extension bench: transferability of adversarial examples.
//
// Not in the paper's evaluation, but the natural follow-up question for
// any attack paper: do adversarial texts crafted against one classifier
// also fool another architecture trained on the same data? We attack a
// source model (joint Alg. 1), then measure every victim's accuracy on the
// same adversarial documents. Four victim families: WCNN, LSTM, GRU and
// the bag-of-words linear model.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/eval/report.h"
#include "src/nn/bow_classifier.h"
#include "src/nn/gru.h"

namespace {
using namespace advtext;
using namespace advtext::bench;

std::unique_ptr<TrainableClassifier> make_model(const std::string& kind,
                                                const SynthTask& task) {
  if (kind == "WCNN") return make_wcnn(task);
  if (kind == "LSTM") return make_lstm(task);
  if (kind == "GRU") {
    GruConfig config;
    config.embed_dim = task.config.embedding_dim;
    config.hidden = 24;
    config.seed = task.config.seed + 3;
    return std::make_unique<GruClassifier>(config, Matrix(task.paragram));
  }
  BowClassifierConfig config;
  config.vocab_size = static_cast<std::size_t>(task.vocab.size());
  config.seed = task.config.seed + 4;
  return std::make_unique<BowClassifier>(config);
}

TrainConfig training_for(const std::string& kind) {
  TrainConfig config;
  config.epochs = 12;
  if (kind == "LSTM" || kind == "GRU") config.learning_rate = 5e-3;
  return config;
}

}  // namespace

int main() {
  print_banner(
      "Extension: transferability — attack one model, evaluate all "
      "(accuracy on the same adversarial documents)");
  const std::size_t docs = docs_per_config(25);
  const char* kinds[] = {"WCNN", "LSTM", "GRU", "BoW"};

  const SynthTask task = make_yelp();
  const TaskAttackContext context(task);

  // Train all four victims once.
  std::vector<std::unique_ptr<TrainableClassifier>> models;
  for (const char* kind : kinds) {
    models.push_back(make_model(kind, task));
    train_classifier(*models.back(), task.train, training_for(kind));
  }

  TablePrinter table({"source \\ victim", "WCNN", "LSTM", "GRU", "BoW"},
                     {15, 6, 6, 6, 6});
  table.print_header();
  // Clean accuracy row for reference.
  {
    std::vector<std::string> row = {"(clean)"};
    for (const auto& model : models) {
      row.push_back(format_percent(
          classification_accuracy(*model, task.test)));
    }
    table.print_row(row);
  }
  table.print_rule();

  for (std::size_t source = 0; source < models.size(); ++source) {
    AttackEvalConfig config;
    config.max_docs = docs;
    config.joint.sentence_fraction = 0.4;
    config.joint.word_fraction = 0.2;
    const AttackEvalResult attack =
        evaluate_attack(*models[source], task, context, config);

    std::vector<std::string> row = {kinds[source]};
    for (std::size_t victim = 0; victim < models.size(); ++victim) {
      row.push_back(
          format_percent(classification_accuracy(*models[victim],
                                                 attack.adv_docs)));
    }
    table.print_row(row);
  }
  table.print_rule();
  std::printf(
      "\nReading: row = model the attack was crafted against; diagonal =\n"
      "white-box adversarial accuracy; off-diagonal = transfer. Expected\n"
      "shape: diagonal lowest; transfer drops accuracy partially (shared\n"
      "non-robust features), with the linear BoW most divergent.\n");
  return 0;
}
