// Table 2 reproduction: clean vs adversarial accuracy per dataset and
// model. "ADV (ours)" is the joint sentence+word attack (Alg. 1) with
// λw = 20%; "ADV [19]*" is the objective-guided greedy of Kuleshov et al.
// with λw = 50% and the same word neighbour sets (the paper's
// asterisk-marked re-implementation column).
//
// Paper values (Table 2):
//   Dataset   WCNN: origin ours [19]*   LSTM: origin ours [19]*
//   News      93.1%  35.4%  70.5%       93.3%  16.5%  22.8%
//   Trec07p   99.1%  48.6%  63.5%       99.7%  31.1%  37.6%
//   Yelp      93.6%  23.1%  41.2%       96.4%  30.0%  29.2%
// Our substrate is synthetic (DESIGN.md §1), so the *shape* to match is:
// the joint attack drives adversarial accuracy far below clean accuracy
// and matches or beats the word-only greedy baseline despite a 2.5x
// smaller word budget.
#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "src/eval/report.h"
#include "src/util/stopwatch.h"

namespace {

using namespace advtext;
using namespace advtext::bench;

struct PaperRow {
  const char* dataset;
  const char* model;
  double origin, ours, kuleshov;
};

constexpr PaperRow kPaper[] = {
    {"News", "WCNN", 0.931, 0.354, 0.705},
    {"News", "LSTM", 0.933, 0.165, 0.228},
    {"Trec07p", "WCNN", 0.991, 0.486, 0.635},
    {"Trec07p", "LSTM", 0.997, 0.311, 0.376},
    {"Yelp", "WCNN", 0.936, 0.231, 0.412},
    {"Yelp", "LSTM", 0.964, 0.300, 0.292},
};

}  // namespace

int main() {
  print_banner(
      "Table 2: classifier accuracy, clean vs adversarial "
      "(ours: joint, lw=20%; [19]*: word-only greedy, lw=50%)");
  const std::size_t docs = docs_per_config(30);

  TablePrinter table({"Dataset", "Model", "Origin", "ADV(ours)", "ADV[19]*",
                      "paper:Origin", "paper:ours", "paper:[19]*"},
                     {8, 5, 7, 9, 8, 12, 10, 11});
  table.print_header();

  for (const SynthTask& task : make_all_tasks()) {
    // Trec07p emails are corrupted; the paper disables the LM filter there.
    const bool use_lm = task.config.name != "Trec07p";
    const TaskAttackContext context(task);
    for (const char* model_kind : {"WCNN", "LSTM"}) {
      const auto model = make_trained(model_kind, task);

      AttackEvalConfig ours;
      ours.max_docs = docs;
      ours.joint.deadline_ms = deadline_ms_per_doc();
      ours.joint.use_lm_filter = use_lm;
      ours.joint.sentence_fraction =
          task.config.name == "Trec07p" ? 0.6 : 0.2;  // paper §6.2
      ours.joint.word_fraction = 0.2;
      ours.joint.word_method = WordAttackMethod::kGradientGuidedGreedy;
      configure_attack_parallelism(ours, model_kind, task, *model);
      configure_scoring(ours);
      Stopwatch ours_watch;
      const AttackEvalResult ours_result =
          evaluate_attack(*model, task, context, ours);
      BenchJsonRecord ours_row{"table2",
                               task.config.name + "/" + model_kind + "/ours",
                               ours.threads, 1, ours_result.docs_evaluated,
                               ours_watch.elapsed_seconds(),
                               ours_result.mean_seconds_per_doc,
                               ours_result.success_rate};
      fill_scoring_stats(ours_row, ours_result);
      append_bench_json(ours_row);

      AttackEvalConfig kuleshov;
      kuleshov.max_docs = docs;
      kuleshov.joint.deadline_ms = deadline_ms_per_doc();
      kuleshov.joint.use_lm_filter = use_lm;
      kuleshov.joint.enable_sentence = false;  // [19] is word-level only
      kuleshov.joint.word_fraction = 0.5;
      kuleshov.joint.word_method = WordAttackMethod::kObjectiveGreedy;
      configure_attack_parallelism(kuleshov, model_kind, task, *model);
      configure_scoring(kuleshov);
      Stopwatch kuleshov_watch;
      const AttackEvalResult kuleshov_result =
          evaluate_attack(*model, task, context, kuleshov);
      BenchJsonRecord kuleshov_row{
          "table2", task.config.name + "/" + model_kind + "/kuleshov",
          kuleshov.threads, 1, kuleshov_result.docs_evaluated,
          kuleshov_watch.elapsed_seconds(),
          kuleshov_result.mean_seconds_per_doc,
          kuleshov_result.success_rate};
      fill_scoring_stats(kuleshov_row, kuleshov_result);
      append_bench_json(kuleshov_row);

      const PaperRow* paper = nullptr;
      for (const PaperRow& row : kPaper) {
        if (task.config.name == row.dataset &&
            std::string(model_kind) == row.model) {
          paper = &row;
        }
      }
      table.print_row({task.config.name, model_kind,
                       format_percent(ours_result.clean_accuracy),
                       format_percent(ours_result.adversarial_accuracy),
                       format_percent(kuleshov_result.adversarial_accuracy),
                       format_percent(paper->origin),
                       format_percent(paper->ours),
                       format_percent(paper->kuleshov)});
      print_robustness_summary(ours_result);
      print_robustness_summary(kuleshov_result);
    }
  }
  table.print_rule();
  std::printf(
      "\nShape check: ADV(ours) sits far below Origin, and at or below\n"
      "ADV[19]* despite allowing 2.5x fewer word replacements.\n");
  return 0;
}
