// Table 6 reproduction: dataset statistics. The paper's corpora are real
// (Trec07p 67.9k/7.5k, Yelp 560k/38k, News 5.3k/1.0k); ours are scaled-down
// synthetic equivalents, so this bench reports our generated statistics
// next to the paper's and checks the *relational* shapes: Yelp is the
// largest, News the smallest; Trec07p has a 1:2 ham:spam ratio; News
// documents are the longest.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/eval/report.h"

namespace {
using namespace advtext;
using namespace advtext::bench;

struct PaperRow {
  const char* dataset;
  const char* ptask;
  const char* train;
  const char* test;
};

constexpr PaperRow kPaper[] = {
    {"Trec07p", "Spam filtering", "67.9k", "7.5k"},
    {"Yelp", "Sentiment analysis", "560k", "38k"},
    {"News", "Fake news detection", "5.3k", "1.0k"},
};

}  // namespace

int main() {
  print_banner("Table 6: dataset statistics (ours are scaled synthetics)");
  TablePrinter table({"Dataset", "#Train", "#Test", "words/doc", "sents/doc",
                      "class1 frac", "paper #Train", "paper #Test"},
                     {8, 7, 6, 9, 9, 11, 12, 11});
  table.print_header();
  for (const SynthTask& task : make_all_tasks()) {
    const CorpusStats train_stats = compute_stats(task.train);
    const CorpusStats test_stats = compute_stats(task.test);
    const double class1 =
        static_cast<double>(train_stats.class_counts[1]) /
        static_cast<double>(train_stats.num_docs);
    const PaperRow* paper = nullptr;
    for (const PaperRow& row : kPaper) {
      if (task.config.name == row.dataset) paper = &row;
    }
    table.print_row({task.config.name,
                     std::to_string(train_stats.num_docs),
                     std::to_string(test_stats.num_docs),
                     format_double(train_stats.mean_words_per_doc, 1),
                     format_double(train_stats.mean_sentences_per_doc, 1),
                     format_percent(class1), paper->train, paper->test});
  }
  table.print_rule();
  std::printf(
      "\nShape check: Yelp largest / News smallest corpus; News documents\n"
      "longest; Trec07p class-1 (spam) fraction ~ 2/3.\n");
  return 0;
}
