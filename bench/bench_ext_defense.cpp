// Extension bench: inference-time defenses vs the joint attack.
//
// Completes the paper's §6.6 (adversarial training) with two standard
// inference-time defenses — randomized synonym smoothing and a
// cross-architecture ensemble — attacked *adaptively* (the attack queries
// the defended model, not the undefended base). Reported: clean accuracy
// and adversarial accuracy under the joint attack.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/eval/defenses.h"
#include "src/eval/report.h"
#include "src/nn/gru.h"

namespace {
using namespace advtext;
using namespace advtext::bench;

struct DefenseRow {
  const char* name;
  double clean = 0.0;
  double adversarial = 0.0;
  double success_rate = 0.0;
};

DefenseRow measure(const char* name, const TextClassifier& model,
                   const SynthTask& task, const TaskAttackContext& context,
                   std::size_t docs) {
  AttackEvalConfig config;
  config.max_docs = docs;
  config.joint.sentence_fraction = 0.4;
  config.joint.word_fraction = 0.2;
  const AttackEvalResult result =
      evaluate_attack(model, task, context, config);
  return {name, result.clean_accuracy, result.adversarial_accuracy,
          result.success_rate};
}

}  // namespace

int main() {
  print_banner(
      "Extension: inference-time defenses under adaptive joint attack "
      "(Yelp)");
  const std::size_t docs = docs_per_config(25);
  const SynthTask task = make_yelp();
  const TaskAttackContext context(task);

  // Base victims.
  auto lstm = make_trained("LSTM", task);
  auto wcnn = make_trained("WCNN", task);
  GruConfig gru_config;
  gru_config.embed_dim = task.config.embedding_dim;
  gru_config.hidden = 24;
  GruClassifier gru(gru_config, Matrix(task.paragram));
  {
    TrainConfig train = default_training("GRU");
    train.learning_rate = 5e-3;
    train_classifier(gru, task.train, train);
  }

  // Defense wrappers.
  std::vector<std::vector<WordId>> neighbors(
      static_cast<std::size_t>(task.vocab.size()));
  for (WordId w = 2; w < task.vocab.size(); ++w) {
    neighbors[static_cast<std::size_t>(w)] =
        context.word_index().neighbors(w);
  }
  const SynonymSmoothing smoothed(*lstm, neighbors);
  const EnsembleClassifier ensemble({lstm.get(), wcnn.get(), &gru});

  TablePrinter table({"Defense", "Clean", "ADV acc", "SR"}, {22, 7, 8, 6});
  table.print_header();
  for (const DefenseRow& row :
       {measure("undefended LSTM", *lstm, task, context, docs),
        measure("synonym smoothing", smoothed, task, context, docs),
        measure("3-model ensemble", ensemble, task, context, docs)}) {
    table.print_row({row.name, format_percent(row.clean),
                     format_percent(row.adversarial),
                     format_percent(row.success_rate)});
  }
  table.print_rule();
  std::printf(
      "\nShape check: both defenses trade a little clean accuracy for a\n"
      "higher adversarial accuracy than the undefended model — and neither\n"
      "is a silver bullet against an adaptive attacker (consistent with\n"
      "the adversarial-training numbers in Table 5).\n");
  return 0;
}
