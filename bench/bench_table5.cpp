// Table 5 reproduction: adversarial training. Adversarial examples are
// generated from 20% of the training data (Alg. 1 against the clean
// model), merged with corrected labels, and the model is retrained; clean
// test accuracy and adversarial accuracy are reported before and after.
//
// Paper values (Table 5):
//             LSTM                         WCNN
//             News   Trec07p  Yelp         News   Trec07p  Yelp
//   Test pre  93.3%  99.7%    96.4%        93.1%  99.1%    93.6%
//   Test post 94.5%  99.5%    97.3%        93.8%  99.2%    94.9%
//   ADV pre   16.5%  31.1%    30.0%        35.4%  48.6%    23.1%
//   ADV post  32.7%  50.1%    46.7%        40.0%  54.2%    44.4%
// Shape to match: test accuracy holds or improves slightly; adversarial
// accuracy improves markedly.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/eval/adversarial_training.h"
#include "src/eval/report.h"

namespace {
using namespace advtext;
using namespace advtext::bench;

struct PaperRow {
  const char* dataset;
  const char* model;
  double test_before, test_after, adv_before, adv_after;
};

constexpr PaperRow kPaper[] = {
    {"News", "LSTM", 0.933, 0.945, 0.165, 0.327},
    {"Trec07p", "LSTM", 0.997, 0.995, 0.311, 0.501},
    {"Yelp", "LSTM", 0.964, 0.973, 0.300, 0.467},
    {"News", "WCNN", 0.931, 0.938, 0.354, 0.400},
    {"Trec07p", "WCNN", 0.991, 0.992, 0.486, 0.542},
    {"Yelp", "WCNN", 0.936, 0.949, 0.231, 0.444},
};

}  // namespace

int main() {
  print_banner(
      "Table 5: adversarial training (augment 20% of train with Alg. 1 "
      "adversarial examples, retrain, re-attack)");
  const std::size_t docs = docs_per_config(30);
  const std::size_t shards = bench_shards();
  if (shards > 1) {
    std::printf("training with %zu data shards (ADVTEXT_BENCH_SHARDS)\n",
                shards);
  }

  TablePrinter table({"Dataset", "Model", "Test pre", "Test post", "ADV pre",
                      "ADV post", "paper Test pre/post", "paper ADV pre/post"},
                     {8, 5, 9, 9, 8, 8, 19, 18});
  table.print_header();

  for (const SynthTask& task : make_all_tasks()) {
    const TaskAttackContext context(task);
    for (const char* model_kind : {"WCNN", "LSTM"}) {
      AdvTrainingConfig config;
      config.train = default_training();
      config.attack.max_docs = docs;
      config.attack.joint.use_lm_filter = task.config.name != "Trec07p";
      config.attack.joint.sentence_fraction =
          task.config.name == "Trec07p" ? 0.6 : 0.2;
      config.attack.joint.word_fraction = 0.2;
      config.resilience =
          bench_resilience(task.config.name + "." + model_kind);
      config.shards = shards;
      const AdvTrainingReport report = adversarial_training_experiment(
          [&]() -> std::unique_ptr<TrainableClassifier> {
            if (std::string(model_kind) == "WCNN") return make_wcnn(task);
            return make_lstm(task);
          },
          task, context, config);

      const PaperRow* paper = nullptr;
      for (const PaperRow& row : kPaper) {
        if (task.config.name == row.dataset &&
            std::string(model_kind) == row.model) {
          paper = &row;
        }
      }
      table.print_row(
          {task.config.name, model_kind, format_percent(report.test_before),
           format_percent(report.test_after),
           format_percent(report.adv_before),
           format_percent(report.adv_after),
           format_percent(paper->test_before) + " / " +
               format_percent(paper->test_after),
           format_percent(paper->adv_before) + " / " +
               format_percent(paper->adv_after)});
      print_training_summary("pre", report.train_before);
      print_training_summary("post", report.train_after);
    }
  }
  table.print_rule();
  std::printf(
      "\nShape check: Test post >= Test pre (roughly), ADV post > ADV pre\n"
      "in (almost) every row, as in the paper.\n");
  return 0;
}
