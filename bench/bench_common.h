// Shared helpers for the bench binaries: model factories, trained-model
// construction per task, and environment-variable scaling so the full
// suite can be run quickly (ADVTEXT_BENCH_DOCS limits attacked documents).
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>

#include "src/data/synthetic.h"
#include "src/eval/metrics.h"
#include "src/eval/pipeline.h"
#include "src/nn/checkpoint.h"
#include "src/nn/lstm.h"
#include "src/nn/trainer.h"
#include "src/nn/wcnn.h"
#include "src/util/string_util.h"
#include "src/util/sync.h"

namespace advtext::bench {

/// Number of test documents each attack configuration evaluates. Default
/// keeps the full suite in the minutes range; override with
/// ADVTEXT_BENCH_DOCS=<n> (0 = whole test set).
inline std::size_t docs_per_config(std::size_t fallback = 30) {
  if (const char* env = std::getenv("ADVTEXT_BENCH_DOCS")) {
    return static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
  }
  return fallback;
}

/// Optional per-document attack deadline in milliseconds, threaded into
/// the joint attack config (0 = unlimited, the default). Lets a bench run
/// be wall-clock-bounded: ADVTEXT_BENCH_DEADLINE_MS=50 caps each document.
inline double deadline_ms_per_doc(double fallback = 0.0) {
  if (const char* env = std::getenv("ADVTEXT_BENCH_DEADLINE_MS")) {
    return std::strtod(env, nullptr);
  }
  return fallback;
}

/// Data shards for bench training stages (ADVTEXT_BENCH_SHARDS=<k>;
/// default 1 = serial). Sharded runs are deterministic for a fixed shard
/// count, but a different count is a different training run — record the
/// value next to reported numbers.
inline std::size_t bench_shards(std::size_t fallback = 1) {
  if (const char* env = std::getenv("ADVTEXT_BENCH_SHARDS")) {
    const std::size_t shards =
        static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
    return shards == 0 ? 1 : shards;
  }
  return fallback;
}

/// Attack-sweep worker threads (ADVTEXT_BENCH_ATTACK_THREADS=<k>; default
/// 1 = the serial path). Unlike shards, a different thread count is the
/// *same* run: for the deterministic bench models the K-worker sweep is
/// bitwise-identical to serial, so thread count only changes wall-clock.
inline std::size_t attack_threads(std::size_t fallback = 1) {
  if (const char* env = std::getenv("ADVTEXT_BENCH_ATTACK_THREADS")) {
    const std::size_t threads =
        static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
    return threads == 0 ? 1 : threads;
  }
  return fallback;
}

/// Training resilience for long-running benches: with
/// ADVTEXT_BENCH_SNAPSHOT=<base path> set, each training stage snapshots
/// under <base>.<tag> and resumes a killed run from its own generations
/// (SIGINT/SIGTERM handlers installed, so ^C flushes before exiting). The
/// per-stage tag keeps concurrent stages of one bench from sharing files.
inline ResilienceConfig bench_resilience(const std::string& tag) {
  ResilienceConfig resilience;
  if (const char* env = std::getenv("ADVTEXT_BENCH_SNAPSHOT")) {
    resilience.snapshot_path = std::string(env) + "." + tag;
    resilience.resume = true;
    resilience.install_stop_token = true;
  }
  return resilience;
}

/// Prints training-health counters when a run recorded any (rollbacks,
/// resumed state, failed snapshot writes), mirroring
/// print_robustness_summary for the attack side.
inline void print_training_summary(const char* stage,
                                   const TrainReport& report) {
  if (!report.resumed &&
      report.rollbacks + report.snapshot_write_failures == 0 &&
      report.termination == TerminationReason::kSucceeded) {
    return;
  }
  std::printf(
      "  [training:%s] %s: resumed=%d, %zu rollbacks, %zu snapshots "
      "(%zu failed writes)\n",
      stage, to_string(report.termination), report.resumed ? 1 : 0,
      report.rollbacks, report.snapshots_written,
      report.snapshot_write_failures);
}

/// Prints deadline/budget/fault counters when a run recorded any, so a
/// bounded or fault-injected bench run shows what was cut short.
inline void print_robustness_summary(const AttackEvalResult& result) {
  if (result.docs_deadline + result.docs_budget + result.docs_failed +
          result.wmd_degradations.total() ==
      0) {
    return;
  }
  std::printf(
      "  [robustness] %zu deadline-limited, %zu budget-limited, "
      "%zu failed docs; wmd degradations: %zu sinkhorn, %zu nbow\n",
      result.docs_deadline, result.docs_budget, result.docs_failed,
      result.wmd_degradations.to_sinkhorn,
      result.wmd_degradations.to_lower_bound);
}

inline std::unique_ptr<WCnn> make_wcnn(const SynthTask& task,
                                       float mc_dropout = 0.0f) {
  WCnnConfig config;
  config.embed_dim = task.config.embedding_dim;
  config.num_filters = 96;
  config.mc_dropout = mc_dropout;  // §6.4 (Table 3) passes 0.05 here
  config.seed = task.config.seed + 1;
  return std::make_unique<WCnn>(config, Matrix(task.paragram));
}

inline std::unique_ptr<LstmClassifier> make_lstm(const SynthTask& task) {
  LstmConfig config;
  config.embed_dim = task.config.embedding_dim;
  config.hidden = 24;
  config.seed = task.config.seed + 2;
  return std::make_unique<LstmClassifier>(config, Matrix(task.paragram));
}

inline TrainConfig default_training(const std::string& kind = "WCNN") {
  TrainConfig config;
  config.epochs = 12;
  // BPTT over long documents is only stable at a lower learning rate.
  if (kind == "LSTM") config.learning_rate = 5e-3;
  return config;
}

/// Trains a model of the given kind ("WCNN" or "LSTM") on the task.
inline std::unique_ptr<TrainableClassifier> make_trained(
    const std::string& kind, const SynthTask& task) {
  std::unique_ptr<TrainableClassifier> model;
  if (kind == "WCNN") {
    model = make_wcnn(task);
  } else {
    model = make_lstm(task);
  }
  train_classifier(*model, task.train, default_training(kind));
  return model;
}

/// Replica factory for the parallel attack sweep: rebuilds the bench
/// architecture for `kind` and bitwise-copies the trained weights from
/// `trained`. `trained` and `task` must outlive the returned factory and
/// every replica it produces.
inline std::function<std::unique_ptr<TextClassifier>()>
attack_replica_factory(const std::string& kind, const SynthTask& task,
                       TrainableClassifier& trained) {
  return [kind, &task, &trained]() -> std::unique_ptr<TextClassifier> {
    std::unique_ptr<TrainableClassifier> replica =
        kind == "WCNN" ? std::unique_ptr<TrainableClassifier>(make_wcnn(task))
                       : std::unique_ptr<TrainableClassifier>(make_lstm(task));
    copy_model_params(trained, *replica);
    return replica;
  };
}

/// Applies the sweep-parallelism env knobs to an attack config (threads +
/// replica factory). Call after the model is trained.
inline void configure_attack_parallelism(AttackEvalConfig& config,
                                         const std::string& kind,
                                         const SynthTask& task,
                                         TrainableClassifier& trained) {
  config.threads = attack_threads();
  if (config.threads > 1) {
    config.make_model_replica = attack_replica_factory(kind, task, trained);
  }
}

/// Scoring-path label for the A/B comparison rows: ADVTEXT_BENCH_SCORING=
/// "seed" selects the original per-candidate evaluator loops, anything
/// else (default) the batched one-gemm-per-layer path. Both produce
/// bitwise-identical attack results; only the wall clock differs.
inline const char* scoring_mode() {
  const char* env = std::getenv("ADVTEXT_BENCH_SCORING");
  return env != nullptr && std::string(env) == "seed" ? "seed" : "batched";
}

/// Applies the scoring-path knobs to an attack config: flips the global
/// sequential-scoring switch from ADVTEXT_BENCH_SCORING and sizes the
/// per-worker query cache from ADVTEXT_BENCH_QUERY_CACHE_MB (default 32
/// on the batched path, 0 — fully seed-equivalent — on the seed path).
inline void configure_scoring(AttackEvalConfig& config) {
  const bool seed_path = std::string(scoring_mode()) == "seed";
  set_sequential_scoring(seed_path);
  std::size_t cache_mb = seed_path ? 0 : 32;
  if (const char* env = std::getenv("ADVTEXT_BENCH_QUERY_CACHE_MB")) {
    cache_mb = static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
  }
  config.query_cache_bytes = cache_mb * (std::size_t{1} << 20);
}

/// Ordered parallel map: computes fn(worker, index) for every index in
/// [0, n) on up to `threads` pool workers and returns the results in index
/// order. Workers self-dispatch from a shared cursor, so per-index work may
/// run on any worker in any order — fn must only touch shared state that is
/// read-only, plus per-worker state keyed by its `worker` id (< threads).
/// threads <= 1 degenerates to a plain serial loop on the calling thread.
/// The first exception fn throws is rethrown here after all workers drain.
template <typename Result, typename Fn>
std::vector<Result> parallel_index_map(std::size_t n, std::size_t threads,
                                       Fn&& fn) {
  std::vector<Result> results(n);
  const std::size_t workers = threads < 2 || n < 2
                                  ? 1
                                  : (threads < n ? threads : n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) results[i] = fn(0, i);
    return results;
  }
  std::atomic<std::size_t> cursor{0};
  Mutex mu;
  std::exception_ptr first_error;  // guarded by mu
  {
    ThreadPool pool(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      (void)pool.submit([&, w] {
        while (true) {
          const std::size_t i = cursor.fetch_add(1,
                                                 std::memory_order_relaxed);
          if (i >= n) break;
          try {
            results[i] = fn(w, i);
          } catch (...) {
            MutexLock lock(mu);
            if (!first_error) first_error = std::current_exception();
            cursor.store(n, std::memory_order_relaxed);  // stop dispatch
            break;
          }
        }
      });
    }
    pool.wait_idle();
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

// ---- Machine-readable bench output (ADVTEXT_BENCH_JSON) --------------------

/// One benchmark measurement for the JSON trajectory (BENCH_*.json). All
/// string fields must be plain identifiers/paths without quotes or control
/// characters — they are emitted without escaping.
struct BenchJsonRecord {
  std::string bench;       ///< bench binary, e.g. "table2"
  std::string config;      ///< configuration cell, e.g. "news/WCNN/ours"
  std::size_t threads = 1; ///< attack-sweep workers
  std::size_t shards = 1;  ///< training data shards
  std::size_t docs = 0;    ///< documents evaluated
  double wall_seconds = 0.0;      ///< whole-sweep wall clock
  double seconds_per_doc = 0.0;   ///< mean per attacked doc
  double success_rate = 0.0;
  /// Query-cache totals of the sweep (zeros with the cache disabled) and
  /// the scoring path the row was measured on ("batched" or "seed").
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t queries_saved = 0;
  std::string scoring = "batched";
};

/// Copies a sweep's cache counters and the active scoring-path label into
/// a JSON row (every attack-sweep row should carry them so the batched
/// and seed measurements are distinguishable inside one artifact).
inline void fill_scoring_stats(BenchJsonRecord& record,
                               const AttackEvalResult& result) {
  record.cache_hits = result.cache_hits;
  record.cache_misses = result.cache_misses;
  record.queries_saved = result.queries_saved;
  record.scoring = scoring_mode();
}

/// Appends `record` as one JSON object per line to the path named by
/// ADVTEXT_BENCH_JSON (absent/empty = disabled). Append-only so a bench
/// suite accumulates its runs into one file; hardware_threads is stamped
/// into every record because speedup numbers are meaningless without the
/// core count they were measured on. Write failures warn and continue — a
/// lost metrics line must never fail a bench run.
inline void append_bench_json(const BenchJsonRecord& record) {
  const char* env = std::getenv("ADVTEXT_BENCH_JSON");
  if (env == nullptr || *env == '\0') return;
  std::FILE* out = std::fopen(env, "a");
  if (out == nullptr) {
    std::fprintf(stderr, "  [bench-json] cannot open %s; record dropped\n",
                 env);
    return;
  }
  const auto finite = [](double v) { return std::isfinite(v) ? v : 0.0; };
  std::fprintf(
      out,
      "{\"bench\":\"%s\",\"config\":\"%s\",\"threads\":%zu,\"shards\":%zu,"
      "\"docs\":%zu,\"wall_seconds\":%.6f,\"seconds_per_doc\":%.6f,"
      "\"success_rate\":%.4f,\"cache_hits\":%zu,\"cache_misses\":%zu,"
      "\"queries_saved\":%zu,\"scoring\":\"%s\","
      "\"hardware_threads\":%zu}\n",
      record.bench.c_str(), record.config.c_str(), record.threads,
      record.shards, record.docs, finite(record.wall_seconds),
      finite(record.seconds_per_doc), finite(record.success_rate),
      record.cache_hits, record.cache_misses, record.queries_saved,
      record.scoring.c_str(), hardware_threads());
  std::fclose(out);
}

}  // namespace advtext::bench
