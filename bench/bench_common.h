// Shared helpers for the bench binaries: model factories, trained-model
// construction per task, and environment-variable scaling so the full
// suite can be run quickly (ADVTEXT_BENCH_DOCS limits attacked documents).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "src/data/synthetic.h"
#include "src/eval/metrics.h"
#include "src/eval/pipeline.h"
#include "src/nn/lstm.h"
#include "src/nn/trainer.h"
#include "src/nn/wcnn.h"
#include "src/util/string_util.h"

namespace advtext::bench {

/// Number of test documents each attack configuration evaluates. Default
/// keeps the full suite in the minutes range; override with
/// ADVTEXT_BENCH_DOCS=<n> (0 = whole test set).
inline std::size_t docs_per_config(std::size_t fallback = 30) {
  if (const char* env = std::getenv("ADVTEXT_BENCH_DOCS")) {
    return static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
  }
  return fallback;
}

/// Optional per-document attack deadline in milliseconds, threaded into
/// the joint attack config (0 = unlimited, the default). Lets a bench run
/// be wall-clock-bounded: ADVTEXT_BENCH_DEADLINE_MS=50 caps each document.
inline double deadline_ms_per_doc(double fallback = 0.0) {
  if (const char* env = std::getenv("ADVTEXT_BENCH_DEADLINE_MS")) {
    return std::strtod(env, nullptr);
  }
  return fallback;
}

/// Data shards for bench training stages (ADVTEXT_BENCH_SHARDS=<k>;
/// default 1 = serial). Sharded runs are deterministic for a fixed shard
/// count, but a different count is a different training run — record the
/// value next to reported numbers.
inline std::size_t bench_shards(std::size_t fallback = 1) {
  if (const char* env = std::getenv("ADVTEXT_BENCH_SHARDS")) {
    const std::size_t shards =
        static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
    return shards == 0 ? 1 : shards;
  }
  return fallback;
}

/// Training resilience for long-running benches: with
/// ADVTEXT_BENCH_SNAPSHOT=<base path> set, each training stage snapshots
/// under <base>.<tag> and resumes a killed run from its own generations
/// (SIGINT/SIGTERM handlers installed, so ^C flushes before exiting). The
/// per-stage tag keeps concurrent stages of one bench from sharing files.
inline ResilienceConfig bench_resilience(const std::string& tag) {
  ResilienceConfig resilience;
  if (const char* env = std::getenv("ADVTEXT_BENCH_SNAPSHOT")) {
    resilience.snapshot_path = std::string(env) + "." + tag;
    resilience.resume = true;
    resilience.install_stop_token = true;
  }
  return resilience;
}

/// Prints training-health counters when a run recorded any (rollbacks,
/// resumed state, failed snapshot writes), mirroring
/// print_robustness_summary for the attack side.
inline void print_training_summary(const char* stage,
                                   const TrainReport& report) {
  if (!report.resumed &&
      report.rollbacks + report.snapshot_write_failures == 0 &&
      report.termination == TerminationReason::kSucceeded) {
    return;
  }
  std::printf(
      "  [training:%s] %s: resumed=%d, %zu rollbacks, %zu snapshots "
      "(%zu failed writes)\n",
      stage, to_string(report.termination), report.resumed ? 1 : 0,
      report.rollbacks, report.snapshots_written,
      report.snapshot_write_failures);
}

/// Prints deadline/budget/fault counters when a run recorded any, so a
/// bounded or fault-injected bench run shows what was cut short.
inline void print_robustness_summary(const AttackEvalResult& result) {
  if (result.docs_deadline + result.docs_budget + result.docs_failed +
          result.wmd_degradations.total() ==
      0) {
    return;
  }
  std::printf(
      "  [robustness] %zu deadline-limited, %zu budget-limited, "
      "%zu failed docs; wmd degradations: %zu sinkhorn, %zu nbow\n",
      result.docs_deadline, result.docs_budget, result.docs_failed,
      result.wmd_degradations.to_sinkhorn,
      result.wmd_degradations.to_lower_bound);
}

inline std::unique_ptr<WCnn> make_wcnn(const SynthTask& task,
                                       float mc_dropout = 0.0f) {
  WCnnConfig config;
  config.embed_dim = task.config.embedding_dim;
  config.num_filters = 96;
  config.mc_dropout = mc_dropout;  // §6.4 (Table 3) passes 0.05 here
  config.seed = task.config.seed + 1;
  return std::make_unique<WCnn>(config, Matrix(task.paragram));
}

inline std::unique_ptr<LstmClassifier> make_lstm(const SynthTask& task) {
  LstmConfig config;
  config.embed_dim = task.config.embedding_dim;
  config.hidden = 24;
  config.seed = task.config.seed + 2;
  return std::make_unique<LstmClassifier>(config, Matrix(task.paragram));
}

inline TrainConfig default_training(const std::string& kind = "WCNN") {
  TrainConfig config;
  config.epochs = 12;
  // BPTT over long documents is only stable at a lower learning rate.
  if (kind == "LSTM") config.learning_rate = 5e-3;
  return config;
}

/// Trains a model of the given kind ("WCNN" or "LSTM") on the task.
inline std::unique_ptr<TrainableClassifier> make_trained(
    const std::string& kind, const SynthTask& task) {
  std::unique_ptr<TrainableClassifier> model;
  if (kind == "WCNN") {
    model = make_wcnn(task);
  } else {
    model = make_lstm(task);
  }
  train_classifier(*model, task.train, default_training(kind));
  return model;
}

}  // namespace advtext::bench
