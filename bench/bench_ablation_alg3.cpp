// Ablation: design choices inside Algorithm 3 (gradient-guided greedy).
//   * N, the number of words replaced per iteration (paper fixes N=5);
//   * the beam cap on the candidate product (DESIGN.md §4: the literal
//     product is (1+k)^N and cannot match the paper's reported speed);
//   * MC dropout at inference on/off (paper §6.4 argues multi-word moves
//     survive dropout noise better than single-word moves).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/gradient_guided_greedy.h"
#include "src/core/objective_greedy.h"
#include "src/eval/report.h"

namespace {
using namespace advtext;
using namespace advtext::bench;

struct SweepStats {
  double sr = 0.0;
  double seconds = 0.0;
  double queries = 0.0;
};

template <typename AttackFn>
SweepStats sweep(const TextClassifier& model, const SynthTask& task,
              const TaskAttackContext& context, std::size_t max_docs,
              AttackFn&& attack) {
  SweepStats outcome;
  std::size_t attacked = 0;
  std::size_t flipped = 0;
  for (const Document& doc : task.test.docs) {
    if (attacked >= max_docs) break;
    const TokenSeq tokens = doc.flatten();
    const std::size_t label = static_cast<std::size_t>(doc.label);
    if (tokens.empty() || model.predict(tokens) != label) continue;
    ++attacked;
    WordCandidates candidates;
    candidates.per_position =
        context.word_index().candidates_for(tokens, &context.lm());
    const WordAttackResult result = attack(tokens, candidates, 1 - label);
    if (model.predict(result.adv_tokens) != label) ++flipped;
    outcome.seconds += result.seconds;
    outcome.queries += static_cast<double>(result.queries);
  }
  if (attacked > 0) {
    outcome.sr = static_cast<double>(flipped) / attacked;
    outcome.seconds /= attacked;
    outcome.queries /= attacked;
  }
  return outcome;
}

}  // namespace

int main() {
  print_banner("Ablation: Algorithm 3 design choices (Yelp, WCNN, lw=20%)");
  const std::size_t docs = docs_per_config(30);
  const SynthTask task = make_yelp();
  const TaskAttackContext context(task);
  auto model = make_wcnn(task);
  train_classifier(*model, task.train, default_training());

  {
    print_banner("N = words replaced per iteration (beam cap 16)");
    TablePrinter table({"N", "SR", "s/doc", "q/doc"}, {3, 6, 7, 8});
    table.print_header();
    for (std::size_t n : {1u, 3u, 5u, 8u}) {
      const SweepStats o = sweep(
          *model, task, context, docs,
          [&](const TokenSeq& tokens, const WordCandidates& candidates,
              std::size_t target) {
            GradientGuidedGreedyConfig config;
            config.words_per_iteration = n;
            return gradient_guided_greedy_attack(*model, tokens, candidates,
                                                 target, config);
          });
      table.print_row({std::to_string(n), format_percent(o.sr),
                       format_double(o.seconds, 4),
                       format_double(o.queries, 0)});
    }
    table.print_rule();
  }

  {
    print_banner("Beam cap on the candidate product (N=5)");
    TablePrinter table({"beam", "SR", "s/doc", "q/doc"}, {5, 6, 7, 8});
    table.print_header();
    for (std::size_t beam : {4u, 16u, 64u, 256u}) {
      const SweepStats o = sweep(
          *model, task, context, docs,
          [&](const TokenSeq& tokens, const WordCandidates& candidates,
              std::size_t target) {
            GradientGuidedGreedyConfig config;
            config.beam_cap = beam;
            return gradient_guided_greedy_attack(*model, tokens, candidates,
                                                 target, config);
          });
      table.print_row({std::to_string(beam), format_percent(o.sr),
                       format_double(o.seconds, 4),
                       format_double(o.queries, 0)});
    }
    table.print_rule();
  }

  {
    print_banner("MC dropout at inference: Alg. 3 vs objective greedy");
    TablePrinter table({"dropout", "method", "SR", "s/doc"}, {7, 12, 6, 7});
    table.print_header();
    for (float dropout : {0.0f, 0.05f}) {
      model->set_mc_dropout(dropout);
      const SweepStats ggg = sweep(
          *model, task, context, docs,
          [&](const TokenSeq& tokens, const WordCandidates& candidates,
              std::size_t target) {
            return gradient_guided_greedy_attack(*model, tokens, candidates,
                                                 target, {});
          });
      const SweepStats og = sweep(
          *model, task, context, docs,
          [&](const TokenSeq& tokens, const WordCandidates& candidates,
              std::size_t target) {
            ObjectiveGreedyConfig config;
            config.max_replace_fraction = 0.2;
            return objective_greedy_attack(*model, tokens, candidates,
                                           target, config);
          });
      table.print_row({format_percent(dropout, 0), "ours (Alg.3)",
                       format_percent(ggg.sr), format_double(ggg.seconds, 4)});
      table.print_row({format_percent(dropout, 0), "greedy[19]",
                       format_percent(og.sr), format_double(og.seconds, 4)});
    }
    table.print_rule();
    model->set_mc_dropout(0.0f);
  }
  std::printf(
      "\nShape check: larger N trades queries for joint-effect capture;\n"
      "a moderate beam preserves SR at a fraction of the uncapped cost;\n"
      "dropout noise hurts the single-swap greedy more than Alg. 3's\n"
      "multi-word moves (paper §6.4).\n");
  return 0;
}
