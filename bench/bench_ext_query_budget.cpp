// Extension bench: success rate as a function of query budget.
//
// Table 3 reports wall-clock time; the black-box-attack literature usually
// reports *queries* (forward evaluations) instead. This bench sweeps the
// word-level schemes — gradient [18], objective greedy [19], lazy greedy
// (our Minoux-accelerated variant) and Alg. 3 — and reports SR and mean
// queries per attacked document at matched word budgets, on WCNN and LSTM.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/gradient_attack.h"
#include "src/core/gradient_guided_greedy.h"
#include "src/core/lazy_greedy_attack.h"
#include "src/core/objective_greedy.h"
#include "src/eval/report.h"

namespace {
using namespace advtext;
using namespace advtext::bench;

struct Row {
  double sr = 0.0;
  double queries = 0.0;
  double grads = 0.0;
};

template <typename Fn>
Row run(const TextClassifier& model, const SynthTask& task,
        const TaskAttackContext& context, std::size_t docs, Fn&& attack) {
  Row row;
  std::size_t attacked = 0;
  std::size_t flipped = 0;
  for (const Document& doc : task.test.docs) {
    if (attacked >= docs) break;
    const TokenSeq tokens = doc.flatten();
    const std::size_t label = static_cast<std::size_t>(doc.label);
    if (tokens.empty() || model.predict(tokens) != label) continue;
    ++attacked;
    WordCandidates candidates;
    candidates.per_position =
        context.word_index().candidates_for(tokens, &context.lm());
    const WordAttackResult result = attack(tokens, candidates, 1 - label);
    if (model.predict(result.adv_tokens) != label) ++flipped;
    row.queries += static_cast<double>(result.queries);
    row.grads += static_cast<double>(result.gradient_calls);
  }
  if (attacked > 0) {
    row.sr = static_cast<double>(flipped) / attacked;
    row.queries /= attacked;
    row.grads /= attacked;
  }
  return row;
}

}  // namespace

int main() {
  print_banner(
      "Extension: query complexity of the word-level schemes (lw=20%)");
  const std::size_t docs = docs_per_config(25);
  const SynthTask task = make_yelp();
  const TaskAttackContext context(task);

  for (const char* kind : {"WCNN", "LSTM"}) {
    auto model = make_trained(kind, task);
    print_banner(std::string(kind) + " victim");
    TablePrinter table({"Method", "SR", "queries/doc", "grad calls"},
                       {16, 6, 11, 10});
    table.print_header();
    const auto gradient_row =
        run(*model, task, context, docs,
            [&](const TokenSeq& t, const WordCandidates& c, std::size_t y) {
              GradientAttackConfig config;
              config.max_replace_fraction = 0.2;
              return gradient_attack(*model, t, c, y, config);
            });
    table.print_row({"gradient [18]", format_percent(gradient_row.sr),
                     format_double(gradient_row.queries, 0),
                     format_double(gradient_row.grads, 1)});
    const auto greedy_row =
        run(*model, task, context, docs,
            [&](const TokenSeq& t, const WordCandidates& c, std::size_t y) {
              ObjectiveGreedyConfig config;
              config.max_replace_fraction = 0.2;
              return objective_greedy_attack(*model, t, c, y, config);
            });
    table.print_row({"greedy [19]", format_percent(greedy_row.sr),
                     format_double(greedy_row.queries, 0), "0.0"});
    const auto lazy_row =
        run(*model, task, context, docs,
            [&](const TokenSeq& t, const WordCandidates& c, std::size_t y) {
              LazyGreedyAttackConfig config;
              config.max_replace_fraction = 0.2;
              return lazy_greedy_attack(*model, t, c, y, config);
            });
    table.print_row({"lazy greedy", format_percent(lazy_row.sr),
                     format_double(lazy_row.queries, 0), "0.0"});
    const auto ggg_row =
        run(*model, task, context, docs,
            [&](const TokenSeq& t, const WordCandidates& c, std::size_t y) {
              GradientGuidedGreedyConfig config;
              config.max_replace_fraction = 0.2;
              return gradient_guided_greedy_attack(*model, t, c, y, config);
            });
    table.print_row({"ours (Alg. 3)", format_percent(ggg_row.sr),
                     format_double(ggg_row.queries, 0),
                     format_double(ggg_row.grads, 1)});
    table.print_rule();
  }
  std::printf(
      "\nShape check: gradient needs almost no queries but flips little;\n"
      "lazy greedy matches greedy [19] at a fraction of its queries;\n"
      "Alg. 3 approaches greedy's SR at far lower query cost.\n");
  return 0;
}
