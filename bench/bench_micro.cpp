// Micro benchmarks (google-benchmark) for the hot paths of the attack
// pipeline: gemm, WCNN/LSTM forward passes, incremental swap evaluation
// (the thing that makes greedy attacks fast), input gradients, WMD solves
// and LM scoring.
#include <benchmark/benchmark.h>

#include <vector>

#include "src/data/synthetic.h"
#include "src/nn/lstm.h"
#include "src/nn/wcnn.h"
#include "src/text/ngram_lm.h"
#include "src/text/wmd.h"
#include "src/util/rng.h"

namespace {

using namespace advtext;

const SynthTask& task() {
  static const SynthTask t = make_yelp();
  return t;
}

TokenSeq sample_tokens(std::size_t length) {
  Rng rng(9);
  TokenSeq tokens;
  const WordId vocab = task().vocab.size();
  for (std::size_t i = 0; i < length; ++i) {
    tokens.push_back(static_cast<WordId>(2 + rng.uniform_index(vocab - 2)));
  }
  return tokens;
}

void BM_Matmul(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Matrix a(n, n);
  Matrix b(n, n);
  a.fill_normal(rng, 1.0f);
  b.fill_normal(rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

void BM_WCnnForward(benchmark::State& state) {
  WCnnConfig config;
  config.embed_dim = task().config.embedding_dim;
  config.num_filters = 48;
  WCnn model(config, Matrix(task().paragram));
  const TokenSeq tokens = sample_tokens(static_cast<std::size_t>(
      state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict_proba(tokens));
  }
}
BENCHMARK(BM_WCnnForward)->Arg(25)->Arg(50)->Arg(100);

void BM_WCnnSwapEval(benchmark::State& state) {
  WCnnConfig config;
  config.embed_dim = task().config.embedding_dim;
  config.num_filters = 48;
  WCnn model(config, Matrix(task().paragram));
  const TokenSeq tokens = sample_tokens(static_cast<std::size_t>(
      state.range(0)));
  auto evaluator = model.make_swap_evaluator(tokens);
  std::size_t pos = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator->eval_swap(pos, 5));
    pos = (pos + 7) % tokens.size();
  }
}
BENCHMARK(BM_WCnnSwapEval)->Arg(25)->Arg(50)->Arg(100);

void BM_LstmForward(benchmark::State& state) {
  LstmConfig config;
  config.embed_dim = task().config.embedding_dim;
  config.hidden = 24;
  LstmClassifier model(config, Matrix(task().paragram));
  const TokenSeq tokens = sample_tokens(static_cast<std::size_t>(
      state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict_proba(tokens));
  }
}
BENCHMARK(BM_LstmForward)->Arg(25)->Arg(50)->Arg(100);

void BM_LstmSwapEval(benchmark::State& state) {
  LstmConfig config;
  config.embed_dim = task().config.embedding_dim;
  config.hidden = 24;
  LstmClassifier model(config, Matrix(task().paragram));
  const TokenSeq tokens = sample_tokens(static_cast<std::size_t>(
      state.range(0)));
  auto evaluator = model.make_swap_evaluator(tokens);
  std::size_t pos = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator->eval_swap(pos, 5));
    pos = (pos + 7) % tokens.size();
  }
}
BENCHMARK(BM_LstmSwapEval)->Arg(25)->Arg(50)->Arg(100);

// Batched candidate scoring vs the per-candidate loop it replaces: the
// same `batch` distinct swaps of one base document, scored through
// eval_swap_batch (one blocked gemm per layer) or through `batch` calls
// of eval_swap. The ratio at each size is the headline win of the
// batched scoring path.
void BM_WCnnSwapBatch(benchmark::State& state) {
  WCnnConfig config;
  config.embed_dim = task().config.embedding_dim;
  config.num_filters = 48;
  WCnn model(config, Matrix(task().paragram));
  const TokenSeq tokens = sample_tokens(100);
  auto evaluator = model.make_swap_evaluator(tokens);
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  std::vector<SwapCandidate> candidates;
  for (std::size_t i = 0; i < batch; ++i) {
    candidates.push_back(
        {i % tokens.size(), static_cast<WordId>(5 + i / tokens.size())});
  }
  Matrix scores;
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator->eval_swap_batch(candidates, scores));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_WCnnSwapBatch)->Arg(8)->Arg(32)->Arg(128);

void BM_WCnnSwapLooped(benchmark::State& state) {
  WCnnConfig config;
  config.embed_dim = task().config.embedding_dim;
  config.num_filters = 48;
  WCnn model(config, Matrix(task().paragram));
  const TokenSeq tokens = sample_tokens(100);
  auto evaluator = model.make_swap_evaluator(tokens);
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch; ++i) {
      benchmark::DoNotOptimize(evaluator->eval_swap(
          i % tokens.size(), static_cast<WordId>(5 + i / tokens.size())));
    }
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_WCnnSwapLooped)->Arg(8)->Arg(32)->Arg(128);

void BM_LstmSwapBatch(benchmark::State& state) {
  LstmConfig config;
  config.embed_dim = task().config.embedding_dim;
  config.hidden = 24;
  LstmClassifier model(config, Matrix(task().paragram));
  const TokenSeq tokens = sample_tokens(100);
  auto evaluator = model.make_swap_evaluator(tokens);
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  std::vector<SwapCandidate> candidates;
  for (std::size_t i = 0; i < batch; ++i) {
    candidates.push_back(
        {i % tokens.size(), static_cast<WordId>(5 + i / tokens.size())});
  }
  Matrix scores;
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator->eval_swap_batch(candidates, scores));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_LstmSwapBatch)->Arg(8)->Arg(32)->Arg(128);

void BM_LstmSwapLooped(benchmark::State& state) {
  LstmConfig config;
  config.embed_dim = task().config.embedding_dim;
  config.hidden = 24;
  LstmClassifier model(config, Matrix(task().paragram));
  const TokenSeq tokens = sample_tokens(100);
  auto evaluator = model.make_swap_evaluator(tokens);
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch; ++i) {
      benchmark::DoNotOptimize(evaluator->eval_swap(
          i % tokens.size(), static_cast<WordId>(5 + i / tokens.size())));
    }
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_LstmSwapLooped)->Arg(8)->Arg(32)->Arg(128);

void BM_LstmInputGradient(benchmark::State& state) {
  LstmConfig config;
  config.embed_dim = task().config.embedding_dim;
  config.hidden = 24;
  LstmClassifier model(config, Matrix(task().paragram));
  const TokenSeq tokens = sample_tokens(50);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.input_gradient(tokens, 1));
  }
}
BENCHMARK(BM_LstmInputGradient);

void BM_WmdExact(benchmark::State& state) {
  const Wmd wmd(task().paragram, Wmd::Method::kExact);
  const Sentence a = sample_tokens(static_cast<std::size_t>(state.range(0)));
  const Sentence b = sample_tokens(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(wmd.distance(a, b));
  }
}
BENCHMARK(BM_WmdExact)->Arg(6)->Arg(12)->Arg(24);

void BM_WmdRelaxed(benchmark::State& state) {
  const Wmd wmd(task().paragram, Wmd::Method::kRelaxed);
  const Sentence a = sample_tokens(static_cast<std::size_t>(state.range(0)));
  const Sentence b = sample_tokens(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(wmd.distance(a, b));
  }
}
BENCHMARK(BM_WmdRelaxed)->Arg(6)->Arg(12)->Arg(24);

void BM_LmReplacementDelta(benchmark::State& state) {
  static const NGramLm lm(task().train,
                          static_cast<std::size_t>(task().vocab.size()));
  const TokenSeq tokens = sample_tokens(50);
  std::size_t pos = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lm.replacement_delta(tokens, pos, 7));
    pos = (pos + 3) % tokens.size();
  }
}
BENCHMARK(BM_LmReplacementDelta);

}  // namespace

BENCHMARK_MAIN();
