// Ablation: WMD solver choices. The paraphrase filters call WMD millions
// of times, so the solver matters: this bench compares the exact
// min-cost-flow solve, the RWMD lower bound, and Sinkhorn on distance
// fidelity and throughput, plus the effect on the sentence-paraphrase sets
// the attack actually consumes.
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/eval/report.h"
#include "src/util/stopwatch.h"

int main() {
  using namespace advtext;
  using namespace advtext::bench;

  print_banner("Ablation: WMD solver (exact MCMF vs RWMD vs Sinkhorn)");
  const SynthTask task = make_yelp();
  const Wmd exact(task.paragram, Wmd::Method::kExact);
  const Wmd relaxed(task.paragram, Wmd::Method::kRelaxed);
  const Wmd sinkhorn(task.paragram, Wmd::Method::kSinkhorn);

  // Sample sentence pairs from the corpus.
  std::vector<std::pair<Sentence, Sentence>> pairs;
  for (std::size_t i = 0; i + 1 < task.test.docs.size() && pairs.size() < 200;
       ++i) {
    const auto& a = task.test.docs[i].sentences;
    const auto& b = task.test.docs[i + 1].sentences;
    for (std::size_t j = 0; j < std::min(a.size(), b.size()); ++j) {
      pairs.emplace_back(a[j], b[j]);
    }
  }

  struct SolverStats {
    const char* name;
    const Wmd* wmd;
    double mean_abs_err = 0.0;
    double max_under = 0.0;  // how far below exact (RWMD is a lower bound)
    double pairs_per_second = 0.0;
  };
  SolverStats stats[] = {{"exact", &exact},
                         {"relaxed (RWMD)", &relaxed},
                         {"sinkhorn", &sinkhorn}};

  std::vector<double> exact_values;
  exact_values.reserve(pairs.size());
  for (const auto& [a, b] : pairs) {
    exact_values.push_back(exact.distance(a, b));
  }

  TablePrinter table({"Solver", "mean |err|", "max under", "pairs/s"},
                     {15, 10, 10, 10});
  table.print_header();
  for (SolverStats& s : stats) {
    Stopwatch watch;
    double err = 0.0;
    double max_under = 0.0;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const double d = s.wmd->distance(pairs[i].first, pairs[i].second);
      err += std::abs(d - exact_values[i]);
      max_under = std::max(max_under, exact_values[i] - d);
    }
    s.mean_abs_err = err / static_cast<double>(pairs.size());
    s.max_under = max_under;
    s.pairs_per_second =
        static_cast<double>(pairs.size()) / watch.elapsed_seconds();
    table.print_row({s.name, format_double(s.mean_abs_err, 4),
                     format_double(s.max_under, 4),
                     format_double(s.pairs_per_second, 0)});
  }
  table.print_rule();

  // Effect on the paraphrase sets the attack consumes.
  print_banner("Sentence-paraphrase sets per solver (first 30 sentences)");
  const TaskAttackContext context(task);
  TablePrinter sets_table({"Solver", "mean |S_i|"}, {15, 10});
  sets_table.print_header();
  for (const SolverStats& s : stats) {
    double total = 0.0;
    std::size_t sentences = 0;
    for (const Document& doc : task.test.docs) {
      for (const Sentence& sentence : doc.sentences) {
        total += static_cast<double>(
            context.paraphraser().paraphrases(sentence, *s.wmd).size());
        if (++sentences >= 30) break;
      }
      if (sentences >= 30) break;
    }
    sets_table.print_row(
        {s.name, format_double(total / static_cast<double>(sentences), 2)});
  }
  sets_table.print_rule();
  std::printf(
      "\nShape check: RWMD under-estimates (admits more paraphrases) but\n"
      "is fastest; Sinkhorn over-estimates slightly; the exact solver is\n"
      "the reference.\n");
  return 0;
}
