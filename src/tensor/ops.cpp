#include "src/tensor/ops.h"

#include "src/util/check.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace advtext {

Activation parse_activation(const std::string& name) {
  if (name == "identity") return Activation::kIdentity;
  if (name == "relu") return Activation::kRelu;
  if (name == "tanh") return Activation::kTanh;
  if (name == "sigmoid") return Activation::kSigmoid;
  if (name == "log_sigmoid") return Activation::kLogSigmoid;
  throw std::invalid_argument("parse_activation: unknown activation " + name);
}

const char* activation_name(Activation a) {
  switch (a) {
    case Activation::kIdentity: return "identity";
    case Activation::kRelu: return "relu";
    case Activation::kTanh: return "tanh";
    case Activation::kSigmoid: return "sigmoid";
    case Activation::kLogSigmoid: return "log_sigmoid";
  }
  return "?";
}

float activate(Activation a, float x) {
  switch (a) {
    case Activation::kIdentity: return x;
    case Activation::kRelu: return x > 0.0f ? x : 0.0f;
    case Activation::kTanh: return std::tanh(x);
    case Activation::kSigmoid: return sigmoid(x);
    case Activation::kLogSigmoid:
      // -log(1 + e^{-x}), computed stably from log_sigmoid identities.
      return x >= 0.0f ? -std::log1p(std::exp(-x))
                       : x - std::log1p(std::exp(x));
  }
  return x;
}

float activate_grad(Activation a, float x) {
  switch (a) {
    case Activation::kIdentity: return 1.0f;
    case Activation::kRelu: return x > 0.0f ? 1.0f : 0.0f;
    case Activation::kTanh: {
      const float t = std::tanh(x);
      return 1.0f - t * t;
    }
    case Activation::kSigmoid: {
      const float s = sigmoid(x);
      return s * (1.0f - s);
    }
    case Activation::kLogSigmoid: return sigmoid(-x);
  }
  return 1.0f;
}

bool is_globally_concave(Activation a) {
  switch (a) {
    case Activation::kIdentity: return true;   // linear is (weakly) concave
    case Activation::kRelu: return false;      // convex, not concave
    case Activation::kTanh: return false;      // concave only on [0, inf)
    case Activation::kSigmoid: return false;   // concave only on [0, inf)
    case Activation::kLogSigmoid: return true;
  }
  return false;
}

void activate_inplace(Activation a, Vector& x) {
  for (float& v : x) v = activate(a, v);
}

void softmax_inplace(float* x, std::size_t n) {
  ADVTEXT_CHECK_SHAPE(n > 0) << "softmax: empty input";
  ADVTEXT_DCHECK(all_finite(x, n)) << "softmax: non-finite logit";
  const float mx = *std::max_element(x, x + n);
  float total = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::exp(x[i] - mx);
    total += x[i];
  }
  // Max-shifted exponentials are in (0, 1] and at least one is exactly 1,
  // so the normalizer is always >= 1 for finite input.
  ADVTEXT_DCHECK(total >= 1.0f) << "softmax: degenerate normalizer " << total;
  for (std::size_t i = 0; i < n; ++i) x[i] /= total;
}

Vector softmax(const Vector& logits) {
  Vector out = logits;
  softmax_inplace(out.data(), out.size());
  return out;
}

Vector log_softmax(const Vector& logits) {
  ADVTEXT_CHECK_SHAPE(!logits.empty()) << "log_softmax: empty input";
  ADVTEXT_DCHECK(all_finite(logits.data(), logits.size()))
      << "log_softmax: non-finite logit";
  const float mx = *std::max_element(logits.begin(), logits.end());
  float total = 0.0f;
  for (float v : logits) total += std::exp(v - mx);
  const float log_z = mx + std::log(total);
  Vector out(logits.size());
  for (std::size_t i = 0; i < logits.size(); ++i) out[i] = logits[i] - log_z;
  return out;
}

float cross_entropy(const Vector& logits, std::size_t label) {
  ADVTEXT_CHECK_SHAPE(label < logits.size())
      << "cross_entropy: label " << label << " out of range for "
      << logits.size() << " classes";
  return -log_softmax(logits)[label];
}

Vector cross_entropy_grad(const Vector& logits, std::size_t label) {
  ADVTEXT_CHECK_SHAPE(label < logits.size())
      << "cross_entropy_grad: label " << label << " out of range for "
      << logits.size() << " classes";
  Vector g = softmax(logits);
  g[label] -= 1.0f;
  return g;
}

}  // namespace advtext
