// Binary serialization for tensor types (Matrix / Vector).
//
// Sits one layer above src/util/serialize.h in the io:: stack: the envelope
// and primitives live there, the typed composite formats live next to the
// types they serialize. Same tagged little-endian format, same
// std::runtime_error-on-corruption contract.
#pragma once

#include <iosfwd>

#include "src/tensor/tensor.h"

namespace advtext::io {

void write_matrix(std::ostream& out, const Matrix& matrix);
Matrix read_matrix(std::istream& in);

void write_vector(std::ostream& out, const Vector& vector);
Vector read_vector(std::istream& in);

}  // namespace advtext::io
