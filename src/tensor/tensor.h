// Minimal dense linear algebra used by the neural-network substrate.
//
// advtext deliberately does not depend on BLAS: the models in this repo are
// laptop-scale and a simple row-major Matrix with a blocked gemm is both
// fast enough and fully deterministic across platforms.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace advtext {

using Vector = std::vector<float>;

/// Row-major dense float matrix.
class Matrix {
 public:
  Matrix() = default;

  /// Zero-initialized rows x cols matrix.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  /// Builds from nested initializer lists (used heavily in tests).
  Matrix(std::initializer_list<std::initializer_list<float>> values);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }

  float& operator()(std::size_t r, std::size_t c) {
    ADVTEXT_DCHECK(r < rows_ && c < cols_)
        << "Matrix(" << r << ", " << c << ") on " << rows_ << "x" << cols_;
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const {
    ADVTEXT_DCHECK(r < rows_ && c < cols_)
        << "Matrix(" << r << ", " << c << ") on " << rows_ << "x" << cols_;
    return data_[r * cols_ + c];
  }

  /// Bounds-checked element access; throws std::out_of_range with the
  /// offending indices and the matrix shape. Active in every build type —
  /// use operator() on hot paths.
  float& at(std::size_t r, std::size_t c) {
    if (r >= rows_ || c >= cols_) throw_at_out_of_range(r, c);
    return data_[r * cols_ + c];
  }
  float at(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_) throw_at_out_of_range(r, c);
    return data_[r * cols_ + c];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float* row(std::size_t r) { return data_.data() + r * cols_; }
  const float* row(std::size_t r) const { return data_.data() + r * cols_; }

  /// Copies row r into a Vector.
  Vector row_copy(std::size_t r) const;

  /// Overwrites row r with v (v.size() must equal cols()).
  void set_row(std::size_t r, const Vector& v);

  /// Sets every element to value.
  void fill(float value);

  /// Fills with N(0, stddev) values.
  void fill_normal(Rng& rng, float stddev);

  /// Fills with U(-bound, bound) values.
  void fill_uniform(Rng& rng, float bound);

  bool operator==(const Matrix& other) const = default;

 private:
  [[noreturn]] void throw_at_out_of_range(std::size_t r, std::size_t c) const;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

// ---- Vector ops -----------------------------------------------------------

/// Dot product; sizes must match.
float dot(const Vector& a, const Vector& b);

/// Dot product over raw pointers of length n.
float dot(const float* a, const float* b, std::size_t n);

/// y += alpha * x.
void axpy(float alpha, const Vector& x, Vector& y);

/// Elementwise y = a + b.
Vector add(const Vector& a, const Vector& b);

/// Elementwise y = a - b.
Vector sub(const Vector& a, const Vector& b);

/// Elementwise scale.
Vector scale(const Vector& a, float alpha);

/// Euclidean norm.
float norm2(const Vector& a);

/// Euclidean norm over a raw pointer of length n.
float norm2(const float* a, std::size_t n);

// ---- Matrix ops -----------------------------------------------------------

/// y = A * x (A is rows x cols, x has cols entries).
Vector matvec(const Matrix& a, const Vector& x);

/// y = A^T * x (x has rows entries, result has cols entries).
Vector matvec_transposed(const Matrix& a, const Vector& x);

/// C = A * B. Blocked triple loop; throws on shape mismatch.
Matrix matmul(const Matrix& a, const Matrix& b);

/// C = A * B^T over raw row-major buffers: A is arows x k, B is brows x k,
/// C is arows x brows. Each output element is one ascending-k dot(), so a
/// batched row is bit-identical to the per-candidate scalar path — this is
/// the primitive the batched swap evaluators build their "one gemm per
/// layer" on. Blocked over B's rows for locality; `b` may point into a
/// sub-range of a larger weight matrix (e.g. one GRU gate's row block).
void gemm_nt(const float* a, std::size_t arows, const float* b,
             std::size_t brows, std::size_t k, float* c);

/// Matrix wrapper over gemm_nt: C(i, j) = dot(a.row(i), b.row(j)).
Matrix matmul_nt(const Matrix& a, const Matrix& b);

/// A B operand of gemm_nt repacked once into the kernel's k-major tile
/// layout. gemm_nt repacks its B tile on every call; when the same weight
/// matrix is multiplied thousands of times (one recurrent gemm per
/// timestep of every batched suffix recurrence), packing it once per
/// rebase and calling gemm_nt_packed removes that per-call cost. Results
/// are bit-identical to gemm_nt / dot(): the pack only reorders storage,
/// each output element still accumulates in ascending-k order.
struct PackedB {
  std::vector<float> data;
  std::size_t brows = 0;
  std::size_t k = 0;
};

/// Pack b (brows x k, row-major) into `out` for gemm_nt_packed.
void gemm_pack_b(const float* b, std::size_t brows, std::size_t k,
                 PackedB& out);

/// C = A * B^T with B pre-packed by gemm_pack_b. Bit-identical to
/// gemm_nt(a, arows, b, brows, k, c).
void gemm_nt_packed(const float* a, std::size_t arows, const PackedB& b,
                    float* c);

/// C += alpha * x * y^T (rank-1 update; x has rows entries, y cols).
void add_outer(Matrix& c, float alpha, const Vector& x, const Vector& y);

/// Frobenius norm.
float frobenius_norm(const Matrix& a);

}  // namespace advtext
