#include "src/tensor/tensor.h"

#include "src/util/check.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace advtext {

Matrix::Matrix(std::initializer_list<std::initializer_list<float>> values) {
  rows_ = values.size();
  cols_ = rows_ == 0 ? 0 : values.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : values) {
    ADVTEXT_CHECK_SHAPE(row.size() == cols_) << "Matrix: ragged initializer";
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

void Matrix::throw_at_out_of_range(std::size_t r, std::size_t c) const {
  std::ostringstream oss;
  oss << "Matrix::at(" << r << ", " << c << "): out of range for " << rows_
      << "x" << cols_ << " matrix";
  throw std::out_of_range(oss.str());
}

Vector Matrix::row_copy(std::size_t r) const {
  ADVTEXT_CHECK_SHAPE(r < rows_)
      << "row_copy: row " << r << " out of range for " << rows_ << " rows";
  return Vector(row(r), row(r) + cols_);
}

void Matrix::set_row(std::size_t r, const Vector& v) {
  ADVTEXT_CHECK_SHAPE(r < rows_)
      << "set_row: row " << r << " out of range for " << rows_ << " rows";
  ADVTEXT_CHECK_SHAPE(v.size() == cols_)
      << "set_row: got " << v.size() << " values, want " << cols_;
  std::copy(v.begin(), v.end(), row(r));
}

void Matrix::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::fill_normal(Rng& rng, float stddev) {
  for (float& v : data_) v = static_cast<float>(rng.normal(0.0, stddev));
}

void Matrix::fill_uniform(Rng& rng, float bound) {
  for (float& v : data_) v = static_cast<float>(rng.uniform(-bound, bound));
}

float dot(const Vector& a, const Vector& b) {
  ADVTEXT_CHECK_SHAPE(a.size() == b.size())
      << "dot: " << a.size() << " vs " << b.size();
  return dot(a.data(), b.data(), a.size());
}

float dot(const float* a, const float* b, std::size_t n) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

void axpy(float alpha, const Vector& x, Vector& y) {
  ADVTEXT_CHECK_SHAPE(x.size() == y.size())
      << "axpy: " << x.size() << " vs " << y.size();
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

Vector add(const Vector& a, const Vector& b) {
  ADVTEXT_CHECK_SHAPE(a.size() == b.size())
      << "add: " << a.size() << " vs " << b.size();
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector sub(const Vector& a, const Vector& b) {
  ADVTEXT_CHECK_SHAPE(a.size() == b.size())
      << "sub: " << a.size() << " vs " << b.size();
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector scale(const Vector& a, float alpha) {
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = alpha * a[i];
  return out;
}

float norm2(const Vector& a) { return norm2(a.data(), a.size()); }

float norm2(const float* a, std::size_t n) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * a[i];
  return std::sqrt(acc);
}

Vector matvec(const Matrix& a, const Vector& x) {
  ADVTEXT_CHECK_SHAPE(a.cols() == x.size())
      << "matvec: A is " << a.rows() << "x" << a.cols() << ", x has "
      << x.size() << " entries";
  Vector y(a.rows(), 0.0f);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    y[r] = dot(a.row(r), x.data(), a.cols());
  }
  return y;
}

Vector matvec_transposed(const Matrix& a, const Vector& x) {
  ADVTEXT_CHECK_SHAPE(a.rows() == x.size())
      << "matvec_transposed: A is " << a.rows() << "x" << a.cols()
      << ", x has " << x.size() << " entries";
  Vector y(a.cols(), 0.0f);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const float xr = x[r];
    const float* row = a.row(r);
    for (std::size_t c = 0; c < a.cols(); ++c) y[c] += xr * row[c];
  }
  return y;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  ADVTEXT_CHECK_SHAPE(a.cols() == b.rows())
      << "matmul: A is " << a.rows() << "x" << a.cols() << ", B is "
      << b.rows() << "x" << b.cols();
  Matrix c(a.rows(), b.cols());
  constexpr std::size_t kBlock = 64;
  for (std::size_t i0 = 0; i0 < a.rows(); i0 += kBlock) {
    const std::size_t i1 = std::min(i0 + kBlock, a.rows());
    for (std::size_t k0 = 0; k0 < a.cols(); k0 += kBlock) {
      const std::size_t k1 = std::min(k0 + kBlock, a.cols());
      for (std::size_t i = i0; i < i1; ++i) {
        for (std::size_t k = k0; k < k1; ++k) {
          const float aik = a(i, k);
          const float* brow = b.row(k);
          float* crow = c.row(i);
          for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
        }
      }
    }
  }
  return c;
}

namespace {

// Width of the packed gemm micro-kernel: kNr independent ascending-k
// accumulator chains run side by side. Per lane the mul/add sequence is
// identical to dot() (baseline x86-64 has no FMA, so the compiler cannot
// contract one path and not the other); across lanes the chains are
// independent, which is what lets them vectorize and hide the ~4-cycle
// float-add latency that makes a lone dot() latency-bound.
constexpr std::size_t kNr = 8;

// C = A * Bt^T where `tiles` holds ceil(brows/kNr) k-major tiles of kNr
// columns each, trailing lanes zero-padded (padded lanes are computed but
// never stored, so the padding value is irrelevant to the output).
void gemm_nt_tiled(const float* a, std::size_t arows, const float* tiles,
                   std::size_t brows, std::size_t k, float* c) {
  for (std::size_t j0 = 0; j0 < brows; j0 += kNr) {
    const float* tile = tiles + (j0 / kNr) * k * kNr;
    const std::size_t lanes = std::min(kNr, brows - j0);
    for (std::size_t i = 0; i < arows; ++i) {
      const float* ai = a + i * k;
      float acc[kNr] = {0.0f};
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float av = ai[kk];
        const float* bt = tile + kk * kNr;
        for (std::size_t j = 0; j < kNr; ++j) acc[j] += av * bt[j];
      }
      float* ci = c + i * brows + j0;
      for (std::size_t j = 0; j < lanes; ++j) ci[j] = acc[j];
    }
  }
}

void pack_b_tiles(const float* b, std::size_t brows, std::size_t k,
                  float* tiles) {
  for (std::size_t j0 = 0; j0 < brows; j0 += kNr) {
    float* tile = tiles + (j0 / kNr) * k * kNr;
    const std::size_t lanes = std::min(kNr, brows - j0);
    for (std::size_t kk = 0; kk < k; ++kk) {
      for (std::size_t j = 0; j < lanes; ++j) {
        tile[kk * kNr + j] = b[(j0 + j) * k + kk];
      }
      for (std::size_t j = lanes; j < kNr; ++j) tile[kk * kNr + j] = 0.0f;
    }
  }
}

std::size_t tiled_size(std::size_t brows, std::size_t k) {
  return ((brows + kNr - 1) / kNr) * k * kNr;
}

}  // namespace

void gemm_nt(const float* a, std::size_t arows, const float* b,
             std::size_t brows, std::size_t k, float* c) {
  // Each C(i, j) is a single ascending-k dot(): the accumulation order is
  // exactly the scalar path's, so batching never changes a bit.
  if (arows < 4 && brows < kNr) {
    // Tiny problems cannot amortise the pack; the dot() loop is bit-exact
    // with the kernel, so routing by size never changes an output.
    for (std::size_t i = 0; i < arows; ++i) {
      const float* ai = a + i * k;
      float* ci = c + i * brows;
      for (std::size_t j = 0; j < brows; ++j) {
        ci[j] = dot(ai, b + j * k, k);
      }
    }
    return;
  }
  static thread_local std::vector<float> scratch;
  scratch.resize(tiled_size(brows, k));
  pack_b_tiles(b, brows, k, scratch.data());
  gemm_nt_tiled(a, arows, scratch.data(), brows, k, c);
}

void gemm_pack_b(const float* b, std::size_t brows, std::size_t k,
                 PackedB& out) {
  out.brows = brows;
  out.k = k;
  out.data.resize(tiled_size(brows, k));
  pack_b_tiles(b, brows, k, out.data.data());
}

void gemm_nt_packed(const float* a, std::size_t arows, const PackedB& b,
                    float* c) {
  gemm_nt_tiled(a, arows, b.data.data(), b.brows, b.k, c);
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  ADVTEXT_CHECK_SHAPE(a.cols() == b.cols())
      << "matmul_nt: A is " << a.rows() << "x" << a.cols() << ", B is "
      << b.rows() << "x" << b.cols();
  Matrix c(a.rows(), b.rows());
  gemm_nt(a.data(), a.rows(), b.data(), b.rows(), a.cols(), c.data());
  return c;
}

void add_outer(Matrix& c, float alpha, const Vector& x, const Vector& y) {
  ADVTEXT_CHECK_SHAPE(c.rows() == x.size() && c.cols() == y.size())
      << "add_outer: C is " << c.rows() << "x" << c.cols() << ", x has "
      << x.size() << " entries, y has " << y.size();
  for (std::size_t r = 0; r < c.rows(); ++r) {
    const float ax = alpha * x[r];
    float* row = c.row(r);
    for (std::size_t j = 0; j < c.cols(); ++j) row[j] += ax * y[j];
  }
}

float frobenius_norm(const Matrix& a) { return norm2(a.data(), a.size()); }

}  // namespace advtext
