// Scalar activations, their derivatives, and classification losses.
//
// Activations are exposed both as an enum (so model configs can select one
// at runtime — the submodularity theorems care about concavity, which we
// probe by switching activations in the property tests) and as plain
// functions for hot loops.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

#include "src/tensor/tensor.h"

namespace advtext {

/// Supported pointwise nonlinearities. kLogSigmoid = -log(1 + e^{-x}) is
/// the canonical globally concave, non-decreasing activation used to
/// exercise Theorem 2's hypothesis in the property tests.
enum class Activation { kIdentity, kRelu, kTanh, kSigmoid, kLogSigmoid };

/// Parses "identity" | "relu" | "tanh" | "sigmoid"; throws on anything else.
Activation parse_activation(const std::string& name);

/// Human-readable name.
const char* activation_name(Activation a);

/// Applies the activation to a scalar.
float activate(Activation a, float x);

/// Derivative of the activation at pre-activation value x.
float activate_grad(Activation a, float x);

/// True iff the activation is concave on its whole domain (hypothesis of
/// Theorem 2). ReLU is concave; sigmoid/tanh are not globally concave but
/// are concave on [0, inf); we report global concavity here.
bool is_globally_concave(Activation a);

/// In-place vector activation.
void activate_inplace(Activation a, Vector& x);

/// Numerically stable softmax (subtracts the max).
Vector softmax(const Vector& logits);

/// In-place softmax over a raw row of length n. The exact operation
/// sequence of softmax(); the batched evaluators use it to normalize gemm
/// output rows without per-row allocations while staying bit-identical.
void softmax_inplace(float* x, std::size_t n);

/// Numerically stable log-softmax.
Vector log_softmax(const Vector& logits);

/// Cross-entropy loss for a single example: -log softmax(logits)[label].
float cross_entropy(const Vector& logits, std::size_t label);

/// Gradient of cross_entropy w.r.t. logits: softmax(logits) - onehot(label).
Vector cross_entropy_grad(const Vector& logits, std::size_t label);

/// Fast branch-free e^x: range-reduced 2^f polynomial plus exponent-bit
/// reconstruction, ~1e-7 relative error, no libm call. The recurrent
/// models spend most of a batched suffix recurrence inside their gate
/// nonlinearities (~5 transcendentals per hidden unit per timestep);
/// libm's expf/tanhf are precise but scalar and ~4x the cost of the whole
/// surrounding gemm at these widths. This shares one cheap, vectorizable
/// definition between the scalar and batched paths, so batched ==
/// per-candidate stays bit-for-bit by construction.
inline float fast_exp(float x) {
  // Every select below is written in the integer domain (or as a bit
  // mask). GCC's if-converter refuses float-variable ternaries once a few
  // stack up in one body ("control flow in loop"), which silently
  // de-vectorizes the gate-nonlinearity passes; integer selects always
  // flatten. An exhaustive 2^32 sweep pins this formulation bit-identical
  // to the straightforward float-clamped one for every non-NaN input.
  float t = x * 1.4426950408889634f;
  // Upper clamp min(t, 126.0f) via signed-int compare of the bit pattern:
  // positive IEEE floats order like their bits, and negative t reads as a
  // negative int here so it never clamps. 0x42fc0000 = 126.0f.
  std::int32_t ti;
  std::memcpy(&ti, &t, sizeof(ti));
  ti = ti > 0x42fc0000 ? 0x42fc0000 : ti;
  std::memcpy(&t, &ti, sizeof(t));
  // floor(t) via truncation: cvttps truncates toward zero, so shift down
  // by one when truncation rounded up (negative non-integers). The
  // pre-clamp keeps the fixup free of signed overflow when the conversion
  // itself saturated (t below INT_MIN converts to INT_MIN).
  std::int32_t e = static_cast<std::int32_t>(t);
  e = e < -16777216 ? -16777216 : e;
  e -= static_cast<float>(e) > t ? 1 : 0;
  e = e < -126 ? -126 : e;
  float f = t - static_cast<float>(e);  // fractional part in [0, 1)
  // f < 0 only when the lower clamp fired; zero it via the sign-bit mask.
  std::uint32_t fb;
  std::memcpy(&fb, &f, sizeof(fb));
  fb &= ~static_cast<std::uint32_t>(static_cast<std::int32_t>(fb) >> 31);
  std::memcpy(&f, &fb, sizeof(f));
  // Degree-5 minimax-style polynomial for 2^f on [0, 1).
  float p = 1.3333558146428443e-3f;
  p = p * f + 9.6180437357078602e-3f;
  p = p * f + 5.5504108664821580e-2f;
  p = p * f + 2.4022650695910071e-1f;
  p = p * f + 6.9314718055994531e-1f;
  p = p * f + 1.0f;
  // 2^e through the exponent bits.
  const std::uint32_t bits = static_cast<std::uint32_t>(e + 127) << 23;
  float scale;
  std::memcpy(&scale, &bits, sizeof(scale));
  return p * scale;
}

/// Numerically stable sigmoid on fast_exp. Branchless |x| form so both
/// halves share one exp evaluation; the final select blends bit patterns
/// instead of using a float ternary for the same if-conversion reason as
/// fast_exp.
inline float sigmoid(float x) {
  const float z = fast_exp(-std::fabs(x));
  const float s = 1.0f / (1.0f + z);
  const float s1 = 1.0f - s;
  std::uint32_t sb;
  std::uint32_t s1b;
  std::memcpy(&sb, &s, sizeof(sb));
  std::memcpy(&s1b, &s1, sizeof(s1b));
  const std::uint32_t m = x >= 0.0f ? 0xffffffffu : 0u;
  const std::uint32_t rb = (sb & m) | (s1b & ~m);
  float r;
  std::memcpy(&r, &rb, sizeof(r));
  return r;
}

/// tanh on fast_exp: sign(x) * (1 - 2 / (e^{2|x|} + 1)). Shared by the
/// scalar and batched recurrences for the same bit-parity reason as
/// sigmoid; absolute error ~1e-7 like fast_exp.
inline float tanh_act(float x) {
  const float e = fast_exp(2.0f * std::fabs(x));
  const float t = 1.0f - 2.0f / (e + 1.0f);
  return x >= 0.0f ? t : -t;
}

}  // namespace advtext
