// Scalar activations, their derivatives, and classification losses.
//
// Activations are exposed both as an enum (so model configs can select one
// at runtime — the submodularity theorems care about concavity, which we
// probe by switching activations in the property tests) and as plain
// functions for hot loops.
#pragma once

#include <cstddef>
#include <string>

#include "src/tensor/tensor.h"

namespace advtext {

/// Supported pointwise nonlinearities. kLogSigmoid = -log(1 + e^{-x}) is
/// the canonical globally concave, non-decreasing activation used to
/// exercise Theorem 2's hypothesis in the property tests.
enum class Activation { kIdentity, kRelu, kTanh, kSigmoid, kLogSigmoid };

/// Parses "identity" | "relu" | "tanh" | "sigmoid"; throws on anything else.
Activation parse_activation(const std::string& name);

/// Human-readable name.
const char* activation_name(Activation a);

/// Applies the activation to a scalar.
float activate(Activation a, float x);

/// Derivative of the activation at pre-activation value x.
float activate_grad(Activation a, float x);

/// True iff the activation is concave on its whole domain (hypothesis of
/// Theorem 2). ReLU is concave; sigmoid/tanh are not globally concave but
/// are concave on [0, inf); we report global concavity here.
bool is_globally_concave(Activation a);

/// In-place vector activation.
void activate_inplace(Activation a, Vector& x);

/// Numerically stable softmax (subtracts the max).
Vector softmax(const Vector& logits);

/// Numerically stable log-softmax.
Vector log_softmax(const Vector& logits);

/// Cross-entropy loss for a single example: -log softmax(logits)[label].
float cross_entropy(const Vector& logits, std::size_t label);

/// Gradient of cross_entropy w.r.t. logits: softmax(logits) - onehot(label).
Vector cross_entropy_grad(const Vector& logits, std::size_t label);

/// Numerically stable sigmoid.
float sigmoid(float x);

}  // namespace advtext
