#include "src/tensor/serialize.h"

#include <cstdint>
#include <stdexcept>
#include <string>

#include "src/util/serialize.h"

namespace advtext::io {

void write_matrix(std::ostream& out, const Matrix& matrix) {
  write_u64(out, matrix.rows());
  write_u64(out, matrix.cols());
  write_floats(out, matrix.data(), matrix.size());
}

Matrix read_matrix(std::istream& in) {
  // Rows and cols are capped individually before the product so a flipped
  // high byte cannot overflow rows * cols into a small number.
  const std::uint64_t rows = read_size(in, "matrix.rows", kMaxMatrixSide);
  const std::uint64_t cols = read_size(in, "matrix.cols", kMaxMatrixSide);
  if (rows != 0 && cols > kMaxElements / rows) {
    throw std::runtime_error(
        "serialize: field 'matrix' claims " + std::to_string(rows) + "x" +
        std::to_string(cols) + " elements; corrupt or truncated file");
  }
  Matrix matrix(rows, cols);
  read_floats(in, matrix.data(), matrix.size());
  return matrix;
}

void write_vector(std::ostream& out, const Vector& vector) {
  write_u64(out, vector.size());
  write_floats(out, vector.data(), vector.size());
}

Vector read_vector(std::istream& in) {
  const std::uint64_t size = read_size(in, "vector.size", kMaxElements);
  Vector vector(size);
  read_floats(in, vector.data(), vector.size());
  return vector;
}

}  // namespace advtext::io
