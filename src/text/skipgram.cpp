#include "src/text/skipgram.h"

#include <algorithm>
#include <cmath>

#include "src/tensor/ops.h"
#include "src/util/rng.h"

namespace advtext {

Matrix train_skipgram(const Dataset& data, std::size_t vocab_size,
                      const SkipGramConfig& config) {
  Rng rng(config.seed);
  const std::size_t dim = config.dim;

  // Flatten corpus and count unigrams.
  std::vector<TokenSeq> streams;
  std::vector<double> counts(vocab_size, 0.0);
  std::size_t total_tokens = 0;
  for (const Document& doc : data.docs) {
    TokenSeq tokens = doc.flatten();
    for (WordId w : tokens) {
      if (w >= 0 && static_cast<std::size_t>(w) < vocab_size) {
        counts[static_cast<std::size_t>(w)] += 1.0;
        ++total_tokens;
      }
    }
    if (!tokens.empty()) streams.push_back(std::move(tokens));
  }

  // Unigram^(3/4) negative-sampling table.
  std::vector<double> neg_weights(vocab_size, 0.0);
  for (std::size_t w = 2; w < vocab_size; ++w) {  // skip <pad>, <unk>
    neg_weights[w] = std::pow(counts[w], 0.75);
  }

  Matrix in_vec(vocab_size, dim);
  Matrix out_vec(vocab_size, dim);
  in_vec.fill_uniform(rng, static_cast<float>(0.5 / dim));
  // out vectors start at zero (word2vec convention).

  const std::size_t total_pairs_estimate =
      std::max<std::size_t>(1, total_tokens * config.epochs);
  std::size_t seen_pairs = 0;

  Vector grad_in(dim);
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    for (const TokenSeq& tokens : streams) {
      for (std::size_t center = 0; center < tokens.size(); ++center) {
        const WordId cw = tokens[center];
        if (cw < 2) continue;
        if (config.subsample_threshold > 0.0) {
          const double freq = counts[static_cast<std::size_t>(cw)] /
                              static_cast<double>(total_tokens);
          const double keep =
              std::sqrt(config.subsample_threshold / freq);
          if (keep < 1.0 && !rng.bernoulli(keep)) continue;
        }
        const std::size_t reach = 1 + rng.uniform_index(config.window);
        const std::size_t lo = center >= reach ? center - reach : 0;
        const std::size_t hi =
            std::min(tokens.size() - 1, center + reach);
        for (std::size_t ctx = lo; ctx <= hi; ++ctx) {
          if (ctx == center) continue;
          const WordId ow = tokens[ctx];
          if (ow < 2) continue;
          ++seen_pairs;
          const double progress = static_cast<double>(seen_pairs) /
                                  static_cast<double>(total_pairs_estimate);
          const double lr = std::max(config.learning_rate * (1.0 - progress),
                                     config.learning_rate / 20.0);
          float* vin = in_vec.row(static_cast<std::size_t>(cw));
          std::fill(grad_in.begin(), grad_in.end(), 0.0f);
          // One positive + `negatives` sampled negatives.
          for (std::size_t s = 0; s <= config.negatives; ++s) {
            WordId target = ow;
            float label = 1.0f;
            if (s > 0) {
              target =
                  static_cast<WordId>(rng.categorical(neg_weights));
              if (target == ow) continue;
              label = 0.0f;
            }
            float* vout = out_vec.row(static_cast<std::size_t>(target));
            const float score = dot(vin, vout, dim);
            const float g =
                static_cast<float>(lr) * (label - sigmoid(score));
            for (std::size_t d = 0; d < dim; ++d) {
              grad_in[d] += g * vout[d];
              vout[d] += g * vin[d];
            }
          }
          for (std::size_t d = 0; d < dim; ++d) vin[d] += grad_in[d];
        }
      }
    }
  }
  return in_vec;
}

double cosine_similarity(const Matrix& embeddings, WordId a, WordId b) {
  const float* va = embeddings.row(static_cast<std::size_t>(a));
  const float* vb = embeddings.row(static_cast<std::size_t>(b));
  const std::size_t dim = embeddings.cols();
  const float na = norm2(va, dim);
  const float nb = norm2(vb, dim);
  if (na == 0.0f || nb == 0.0f) return 0.0;
  return static_cast<double>(dot(va, vb, dim)) / (na * nb);
}

std::vector<std::pair<WordId, double>> nearest_neighbors(
    const Matrix& embeddings, WordId word, std::size_t k,
    WordId first_valid_id) {
  std::vector<std::pair<WordId, double>> scored;
  const WordId vocab = static_cast<WordId>(embeddings.rows());
  for (WordId other = first_valid_id; other < vocab; ++other) {
    if (other == word) continue;
    scored.emplace_back(other, cosine_similarity(embeddings, word, other));
  }
  const std::size_t keep = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + keep, scored.end(),
                    [](const auto& x, const auto& y) {
                      if (x.second != y.second) return x.second > y.second;
                      return x.first < y.first;
                    });
  scored.resize(keep);
  return scored;
}

}  // namespace advtext
