#include "src/text/skipgram.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/tensor/ops.h"
#include "src/tensor/serialize.h"
#include "src/util/rng.h"
#include "src/util/robust.h"
#include "src/util/serialize.h"

namespace advtext {

namespace {

/// The SGNS training loop as a ResumableTraining: one step() is one full
/// epoch (the natural snapshot boundary — mid-epoch state would also need
/// the stream/token cursors). The corpus statistics (streams, unigram
/// counts, negative-sampling weights) are deterministic functions of the
/// data and are re-derived on construction; only the mutable training state
/// (epoch, pair counter, RNG stream, both embedding tables) is serialized.
class SkipGramLoop final : public ResumableTraining {
 public:
  SkipGramLoop(const Dataset& data, std::size_t vocab_size,
               const SkipGramConfig& config,
               const ResilienceConfig& resilience)
      : config_(config), resilience_(resilience), rng_(config.seed),
        in_vec_(vocab_size, config.dim), out_vec_(vocab_size, config.dim),
        counts_(vocab_size, 0.0), neg_weights_(vocab_size, 0.0) {
    for (const Document& doc : data.docs) {
      TokenSeq tokens = doc.flatten();
      for (WordId w : tokens) {
        if (w >= 0 && static_cast<std::size_t>(w) < vocab_size) {
          counts_[static_cast<std::size_t>(w)] += 1.0;
          ++total_tokens_;
        }
      }
      if (!tokens.empty()) streams_.push_back(std::move(tokens));
    }
    // Unigram^(3/4) negative-sampling table.
    for (std::size_t w = 2; w < vocab_size; ++w) {  // skip <pad>, <unk>
      neg_weights_[w] = std::pow(counts_[w], 0.75);
    }
    in_vec_.fill_uniform(rng_, static_cast<float>(0.5 / config.dim));
    // out vectors start at zero (word2vec convention).
    total_pairs_estimate_ =
        std::max<std::size_t>(1, total_tokens_ * config.epochs);
  }

  bool done() const override { return epoch_ >= config_.epochs; }

  double step() override {
    boundary_ = false;
    const std::size_t dim = config_.dim;
    double epoch_loss = 0.0;
    std::size_t epoch_pairs = 0;
    Vector grad_in(dim);
    for (const TokenSeq& tokens : streams_) {
      for (std::size_t center = 0; center < tokens.size(); ++center) {
        const WordId cw = tokens[center];
        if (cw < 2) continue;
        if (config_.subsample_threshold > 0.0) {
          const double freq = counts_[static_cast<std::size_t>(cw)] /
                              static_cast<double>(total_tokens_);
          const double keep =
              std::sqrt(config_.subsample_threshold / freq);
          if (keep < 1.0 && !rng_.bernoulli(keep)) continue;
        }
        const std::size_t reach = 1 + rng_.uniform_index(config_.window);
        const std::size_t lo = center >= reach ? center - reach : 0;
        const std::size_t hi =
            std::min(tokens.size() - 1, center + reach);
        for (std::size_t ctx = lo; ctx <= hi; ++ctx) {
          if (ctx == center) continue;
          const WordId ow = tokens[ctx];
          if (ow < 2) continue;
          ++seen_pairs_;
          ++epoch_pairs;
          const double progress =
              static_cast<double>(seen_pairs_) /
              static_cast<double>(total_pairs_estimate_);
          const double lr =
              std::max(config_.learning_rate * (1.0 - progress),
                       config_.learning_rate / 20.0) *
              lr_scale_;
          float* vin = in_vec_.row(static_cast<std::size_t>(cw));
          std::fill(grad_in.begin(), grad_in.end(), 0.0f);
          // One positive + `negatives` sampled negatives.
          for (std::size_t s = 0; s <= config_.negatives; ++s) {
            WordId target = ow;
            float label = 1.0f;
            if (s > 0) {
              target =
                  static_cast<WordId>(rng_.categorical(neg_weights_));
              if (target == ow) continue;
              label = 0.0f;
            }
            float* vout = out_vec_.row(static_cast<std::size_t>(target));
            const float score = dot(vin, vout, dim);
            const float p = sigmoid(score);
            // -log P(label | pair): divergence signal only; does not feed
            // back into the updates.
            epoch_loss -= std::log(std::max(
                1e-7, static_cast<double>(label > 0.5f ? p : 1.0f - p)));
            const float g = static_cast<float>(lr) * (label - p);
            for (std::size_t d = 0; d < dim; ++d) {
              grad_in[d] += g * vout[d];
              vout[d] += g * vin[d];
            }
          }
          for (std::size_t d = 0; d < dim; ++d) vin[d] += grad_in[d];
        }
      }
    }
    ++epoch_;
    boundary_ = true;
    double mean_loss =
        epoch_pairs == 0
            ? 0.0
            : epoch_loss / static_cast<double>(epoch_pairs);
    mean_loss = FaultInjector::instance().poison("train.loss", mean_loss);
    epoch_losses_.push_back(mean_loss);
    return mean_loss;
  }

  bool at_boundary() const override { return boundary_; }

  void save_state(std::ostream& out) const override {
    io::write_magic(out);
    io::write_u64(out, epoch_);
    io::write_u64(out, seen_pairs_);
    io::write_double(out, lr_scale_);
    io::write_doubles(out, epoch_losses_);
    const RngState rng_state = rng_.state();
    for (const std::uint64_t word : rng_state) io::write_u64(out, word);
    io::write_matrix(out, in_vec_);
    io::write_matrix(out, out_vec_);
  }

  void load_state(std::istream& in) override {
    io::read_magic(in);
    epoch_ = io::read_u64(in);
    seen_pairs_ = io::read_u64(in);
    lr_scale_ = io::read_double(in);
    epoch_losses_ = io::read_doubles(in);
    RngState rng_state{};
    for (std::uint64_t& word : rng_state) word = io::read_u64(in);
    rng_.set_state(rng_state);
    Matrix in_vec = io::read_matrix(in);
    Matrix out_vec = io::read_matrix(in);
    if (in_vec.rows() != in_vec_.rows() || in_vec.cols() != in_vec_.cols()) {
      throw std::runtime_error(
          "skip-gram snapshot shape mismatch (vocab or dim changed between "
          "save and resume?)");
    }
    in_vec_ = std::move(in_vec);
    out_vec_ = std::move(out_vec);
    boundary_ = false;
  }

  void on_rollback(std::size_t attempt) override {
    lr_scale_ = std::pow(resilience_.lr_backoff,
                         static_cast<double>(attempt));
  }

  void on_recover() override { lr_scale_ = 1.0; }

  Matrix take_embeddings() { return std::move(in_vec_); }
  const std::vector<double>& epoch_losses() const { return epoch_losses_; }
  std::size_t epochs_run() const { return epoch_; }

 private:
  SkipGramConfig config_;
  ResilienceConfig resilience_;
  Rng rng_;
  Matrix in_vec_;
  Matrix out_vec_;
  std::vector<double> counts_;
  std::vector<double> neg_weights_;
  std::vector<TokenSeq> streams_;
  std::size_t total_tokens_ = 0;
  std::size_t total_pairs_estimate_ = 1;

  // Replayable training state (serialized).
  std::size_t epoch_ = 0;
  std::size_t seen_pairs_ = 0;
  double lr_scale_ = 1.0;
  std::vector<double> epoch_losses_;
  bool boundary_ = false;
};

}  // namespace

Matrix train_skipgram(const Dataset& data, std::size_t vocab_size,
                      const SkipGramConfig& config,
                      const ResilienceConfig& resilience,
                      SkipGramReport* report) {
  SkipGramLoop loop(data, vocab_size, config, resilience);
  TrainSupervisor supervisor(resilience);
  const SupervisorReport outcome = supervisor.run(loop);
  if (report != nullptr) {
    report->termination = outcome.termination;
    report->epochs_run = loop.epochs_run();
    report->epoch_losses = loop.epoch_losses();
    report->rollbacks = outcome.rollbacks;
    report->snapshots_written = outcome.snapshots_written;
    report->snapshot_write_failures = outcome.snapshot_write_failures;
    report->snapshot_write_retries = outcome.snapshot_write_retries;
    report->resumed = outcome.resumed;
    report->warnings = outcome.warnings;
  }
  return loop.take_embeddings();
}

Matrix train_skipgram(const Dataset& data, std::size_t vocab_size,
                      const SkipGramConfig& config) {
  return train_skipgram(data, vocab_size, config, ResilienceConfig{},
                        nullptr);
}

double cosine_similarity(const Matrix& embeddings, WordId a, WordId b) {
  const float* va = embeddings.row(static_cast<std::size_t>(a));
  const float* vb = embeddings.row(static_cast<std::size_t>(b));
  const std::size_t dim = embeddings.cols();
  const float na = norm2(va, dim);
  const float nb = norm2(vb, dim);
  if (na == 0.0f || nb == 0.0f) return 0.0;
  return static_cast<double>(dot(va, vb, dim)) / (na * nb);
}

std::vector<std::pair<WordId, double>> nearest_neighbors(
    const Matrix& embeddings, WordId word, std::size_t k,
    WordId first_valid_id) {
  std::vector<std::pair<WordId, double>> scored;
  const WordId vocab = static_cast<WordId>(embeddings.rows());
  for (WordId other = first_valid_id; other < vocab; ++other) {
    if (other == word) continue;
    scored.emplace_back(other, cosine_similarity(embeddings, word, other));
  }
  const std::size_t keep = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + keep, scored.end(),
                    [](const auto& x, const auto& y) {
                      if (x.second != y.second) return x.second > y.second;
                      return x.first < y.first;
                    });
  scored.resize(keep);
  return scored;
}

}  // namespace advtext
