// Word-level paraphrase candidate sets (Alg. 1, step 7).
//
// For every vocabulary word this index precomputes the k nearest
// neighbours in the paragram embedding space whose WMD similarity clears
// δw. At attack time, candidates_for() instantiates per-position candidate
// lists for a document and applies the syntactic language-model filter
// |ln P(x) - ln P(x')| <= δ (δ = inf disables it, as the paper does for
// the corrupted Trec07p emails).
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "src/text/corpus.h"
#include "src/text/ngram_lm.h"
#include "src/text/wmd.h"

namespace advtext {

struct WordNeighborConfig {
  std::size_t max_neighbors = 15;   ///< paper: k = 15
  /// Similarity floor. The paper uses spaCy's WMD similarity with
  /// δw = 0.75; our similarity is exp(-distance) on a different embedding
  /// scale, so the equivalent operating point (admit a synonym cluster,
  /// reject across clusters) sits at 0.5 here.
  double min_similarity = 0.5;
  /// Syntactic bound δ on |Δ ln P|; infinity disables the LM filter.
  /// Calibrated to our bigram LM: synonym swaps measure |Δ ln P| ≈ 1-3,
  /// corrupted-token swaps ≈ 3-6, so 3.0 keeps ~90% of synonyms while
  /// pruning junk (the paper's δ² = 2 is on a different LM's scale).
  double lm_delta = 3.0;
};

class ParaphraseIndex {
 public:
  /// Precomputes neighbour lists for all words. Ids below
  /// `first_valid_id` (the <pad>/<unk> specials) get empty lists and are
  /// never offered as candidates.
  ParaphraseIndex(const Matrix& paragram_embeddings,
                  const WordNeighborConfig& config,
                  WordId first_valid_id = 2);

  const WordNeighborConfig& config() const { return config_; }

  /// Precomputed semantic neighbours of a word (similarity-sorted).
  const std::vector<WordId>& neighbors(WordId word) const;

  /// Per-position candidate lists for a token sequence. When `lm` is
  /// non-null, candidates failing the |Δ ln P| <= lm_delta filter are
  /// dropped (evaluated locally from the bigram model).
  std::vector<std::vector<WordId>> candidates_for(const TokenSeq& tokens,
                                                  const NGramLm* lm) const;

 private:
  WordNeighborConfig config_;
  std::vector<std::vector<WordId>> neighbors_;
};

}  // namespace advtext
