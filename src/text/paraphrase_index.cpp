#include "src/text/paraphrase_index.h"

#include <algorithm>
#include <cmath>

namespace advtext {

ParaphraseIndex::ParaphraseIndex(const Matrix& paragram_embeddings,
                                 const WordNeighborConfig& config,
                                 WordId first_valid_id)
    : config_(config) {
  const WordId vocab = static_cast<WordId>(paragram_embeddings.rows());
  neighbors_.resize(static_cast<std::size_t>(vocab));
  const Wmd wmd(paragram_embeddings);
  for (WordId w = first_valid_id; w < vocab; ++w) {
    std::vector<std::pair<double, WordId>> scored;
    for (WordId other = first_valid_id; other < vocab; ++other) {
      if (other == w) continue;
      const double sim = wmd.word_similarity(w, other);
      if (sim >= config.min_similarity) scored.emplace_back(sim, other);
    }
    std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    if (scored.size() > config.max_neighbors) {
      scored.resize(config.max_neighbors);
    }
    auto& list = neighbors_[static_cast<std::size_t>(w)];
    list.reserve(scored.size());
    for (const auto& [sim, other] : scored) list.push_back(other);
  }
}

const std::vector<WordId>& ParaphraseIndex::neighbors(WordId word) const {
  static const std::vector<WordId> kEmpty;
  if (word < 0 || static_cast<std::size_t>(word) >= neighbors_.size()) {
    return kEmpty;
  }
  return neighbors_[static_cast<std::size_t>(word)];
}

std::vector<std::vector<WordId>> ParaphraseIndex::candidates_for(
    const TokenSeq& tokens, const NGramLm* lm) const {
  std::vector<std::vector<WordId>> out(tokens.size());
  for (std::size_t pos = 0; pos < tokens.size(); ++pos) {
    for (WordId candidate : neighbors(tokens[pos])) {
      if (lm != nullptr &&
          config_.lm_delta < std::numeric_limits<double>::infinity()) {
        const double delta =
            std::abs(lm->replacement_delta(tokens, pos, candidate));
        if (delta > config_.lm_delta) continue;
      }
      out[pos].push_back(candidate);
    }
  }
  return out;
}

}  // namespace advtext
