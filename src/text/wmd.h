// Word Mover's Distance (Kusner et al. 2015) over sentence pairs, plus the
// word-level special case the paper uses for word-paraphrase filtering.
//
// The paper uses WMD twice (Alg. 1):
//   * sentence neighbour sets: WMD(s_i, s) <= δs, and
//   * word neighbour sets:     WMD(w_i, w) <= δw (embedding distance).
// Similarities are reported in [0, 1] with 1 = identical (matching the
// spaCy convention cited in the paper); we map distance d to exp(-d).
#pragma once

#include <vector>

#include "src/optim/transport.h"
#include "src/tensor/tensor.h"
#include "src/text/corpus.h"

namespace advtext {

class Wmd {
 public:
  enum class Method { kExact, kRelaxed, kSinkhorn };

  /// `embeddings` must outlive this object (vocab_size x dim).
  explicit Wmd(const Matrix& embeddings, Method method = Method::kExact);

  Method method() const { return method_; }

  /// Euclidean distance between two word embeddings.
  double word_distance(WordId a, WordId b) const;

  /// exp(-word_distance); 1 for identical words.
  double word_similarity(WordId a, WordId b) const;

  /// WMD between two sentences (normalized bag-of-words mover distance).
  /// Returns 0 if both are empty, +inf if exactly one is empty.
  double distance(const Sentence& a, const Sentence& b) const;

  /// exp(-distance); in [0, 1], 1 for identical sentences.
  double similarity(const Sentence& a, const Sentence& b) const;

 private:
  /// Collapses a sentence into (distinct word ids, normalized weights).
  static void nbow(const Sentence& s, std::vector<WordId>* words,
                   std::vector<double>* weights);

  const Matrix& embeddings_;
  Method method_;
};

}  // namespace advtext
