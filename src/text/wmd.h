// Word Mover's Distance (Kusner et al. 2015) over sentence pairs, plus the
// word-level special case the paper uses for word-paraphrase filtering.
//
// The paper uses WMD twice (Alg. 1):
//   * sentence neighbour sets: WMD(s_i, s) <= δs, and
//   * word neighbour sets:     WMD(w_i, w) <= δw (embedding distance).
// Similarities are reported in [0, 1] with 1 = identical (matching the
// spaCy convention cited in the paper); we map distance d to exp(-d).
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "src/optim/transport.h"
#include "src/tensor/tensor.h"
#include "src/text/corpus.h"

namespace advtext {

/// Per-instance tally of graceful degradations (see Wmd::distance). The
/// counters are cumulative; the attack pipeline snapshots them around each
/// document to attribute degradations per doc.
struct WmdDegradation {
  std::size_t to_sinkhorn = 0;     ///< exact solve fell back to Sinkhorn
  std::size_t to_lower_bound = 0;  ///< Sinkhorn fell back to the nBOW bound
  std::size_t total() const { return to_sinkhorn + to_lower_bound; }
};

/// Optional cost bounds on the exact per-call transport solve.
struct WmdLimits {
  std::size_t exact_max_iterations = 0;  ///< 0 = solver default cap
  double exact_deadline_ms = 0.0;        ///< 0 = unlimited
};

class Wmd {
 public:
  enum class Method { kExact, kRelaxed, kSinkhorn };

  /// `embeddings` must outlive this object (vocab_size x dim).
  explicit Wmd(const Matrix& embeddings, Method method = Method::kExact);

  /// Copy shares the embedding matrix reference and configuration but
  /// starts a *fresh* degradation tally: the tally is per-instance
  /// accounting, not part of the metric. The parallel attack sweep copies
  /// one configured Wmd per worker so per-doc degradation deltas never mix
  /// across threads.
  Wmd(const Wmd& other)
      : embeddings_(other.embeddings_),
        method_(other.method_),
        limits_(other.limits_) {}
  Wmd& operator=(const Wmd&) = delete;  // reference member pins assignment

  Method method() const { return method_; }

  /// Bounds every subsequent exact solve (degradation kicks in on a hit).
  void set_limits(const WmdLimits& limits) { limits_ = limits; }
  const WmdLimits& limits() const { return limits_; }

  /// Snapshot of the degradations recorded so far. distance() is const (Wmd
  /// is shared read-only across the pipeline), so the tally is mutable
  /// state backed by per-instance atomics — concurrent distance() calls on
  /// one instance cannot corrupt the counters, and the snapshot is returned
  /// by value so callers never hold a reference into racing state. (The
  /// parallel sweep still gives each worker its own copy: atomics make the
  /// tally safe, not per-thread attributable.)
  WmdDegradation degradation() const {
    WmdDegradation snapshot;
    snapshot.to_sinkhorn = to_sinkhorn_.load(std::memory_order_relaxed);
    snapshot.to_lower_bound = to_lower_bound_.load(std::memory_order_relaxed);
    return snapshot;
  }
  void reset_degradation() const {
    to_sinkhorn_.store(0, std::memory_order_relaxed);
    to_lower_bound_.store(0, std::memory_order_relaxed);
  }

  /// Euclidean distance between two word embeddings.
  double word_distance(WordId a, WordId b) const;

  /// exp(-word_distance); 1 for identical words.
  double word_similarity(WordId a, WordId b) const;

  /// WMD between two sentences (normalized bag-of-words mover distance).
  /// Returns 0 if both are empty, +inf if exactly one is empty.
  ///
  /// Graceful degradation: if the exact solve hits its iteration cap or
  /// deadline (TransportLimitError) or fails at runtime (including an
  /// injected fault at "transport.exact"), the call falls back to the
  /// Sinkhorn approximation; if that also fails or returns a non-finite
  /// value, to the relaxed nBOW lower bound. Every fallback is recorded in
  /// degradation(). Logic/shape errors still propagate — degradation only
  /// masks *cost* failures, never contract violations.
  double distance(const Sentence& a, const Sentence& b) const;

  /// exp(-distance); in [0, 1], 1 for identical sentences.
  double similarity(const Sentence& a, const Sentence& b) const;

 private:
  /// Collapses a sentence into (distinct word ids, normalized weights).
  static void nbow(const Sentence& s, std::vector<WordId>* words,
                   std::vector<double>* weights);

  /// Runs the configured solver with the degradation chain.
  double solve_cost(const Matrix& cost, const std::vector<double>& pa,
                    const std::vector<double>& pb) const;

  const Matrix& embeddings_;
  Method method_;
  WmdLimits limits_;
  // Degradation tally (see degradation()). Atomic so a shared instance is
  // safe by construction even outside the pipeline's replica discipline.
  mutable std::atomic<std::size_t> to_sinkhorn_{0};
  mutable std::atomic<std::size_t> to_lower_bound_{0};
};

}  // namespace advtext
