// Corpus containers: documents as sentence-segmented word-id sequences.
//
// Documents keep their sentence structure because the paper's joint attack
// (Alg. 1) operates at both granularities: Alg. 2 swaps whole sentences,
// Alg. 3 swaps individual words. Classifiers consume the flattened id
// sequence.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/text/vocab.h"

namespace advtext {

/// One sentence as a list of word ids.
using Sentence = std::vector<WordId>;

/// Flattened token sequence (classifier input).
using TokenSeq = std::vector<WordId>;

/// A labelled document.
struct Document {
  std::vector<Sentence> sentences;
  int label = 0;

  /// Total number of word tokens.
  std::size_t num_words() const;

  /// Concatenation of all sentences.
  TokenSeq flatten() const;

  /// Maps a flat word position to (sentence index, offset in sentence).
  /// Throws if pos >= num_words().
  std::pair<std::size_t, std::size_t> locate(std::size_t pos) const;

  /// Renders the document as text using the vocabulary.
  std::string to_string(const Vocab& vocab) const;
};

/// A labelled dataset plus its vocabulary-independent metadata.
struct Dataset {
  std::vector<Document> docs;
  int num_classes = 2;

  std::size_t size() const { return docs.size(); }
};

/// Splits a dataset into train/test by a deterministic interleaving:
/// every k-th document (k = round(1/test_fraction)) goes to test.
std::pair<Dataset, Dataset> split_dataset(const Dataset& data,
                                          double test_fraction);

/// Parses raw text into a Document using the tokenizer and vocabulary
/// (unknown words map to Vocab::kUnk). Used by the examples.
Document document_from_text(const std::string& text, const Vocab& vocab,
                            int label);

/// Aggregate statistics used by the Table 6 reproduction.
struct CorpusStats {
  std::size_t num_docs = 0;
  double mean_words_per_doc = 0.0;
  double mean_sentences_per_doc = 0.0;
  std::vector<std::size_t> class_counts;
};

/// Computes corpus statistics.
CorpusStats compute_stats(const Dataset& data);

}  // namespace advtext
