#include "src/text/ngram_lm.h"

#include <cmath>
#include <stdexcept>

#include "src/util/det_accum.h"

namespace advtext {

NGramLm::NGramLm(const Dataset& data, std::size_t vocab_size,
                 const NGramLmConfig& config)
    : config_(config), vocab_size_(vocab_size) {
  std::unordered_map<long long, bool> seen_bigram;
  for (const Document& doc : data.docs) {
    for (const Sentence& sentence : doc.sentences) {
      WordId prev = kBos;
      for (WordId w : sentence) {
        if (w < 0 || static_cast<std::size_t>(w) >= vocab_size_) continue;
        const long long k = key(prev, w);
        const bool is_new = bigram_counts_.find(k) == bigram_counts_.end();
        bigram_counts_[k] += 1.0;
        context_totals_[prev] += 1.0;
        if (is_new) {
          context_types_[prev] += 1.0;
          continuation_types_[w] += 1.0;
          total_bigram_types_ += 1.0;
        }
        prev = w;
      }
    }
  }
}

double NGramLm::continuation(WordId word) const {
  if (total_bigram_types_ <= 0.0) {
    return 1.0 / static_cast<double>(vocab_size_);
  }
  auto it = continuation_types_.find(word);
  const double types = it == continuation_types_.end() ? 0.0 : it->second;
  // Small add-k so unseen words retain mass before the uniform mixture.
  return (types + 0.1) /
         (total_bigram_types_ + 0.1 * static_cast<double>(vocab_size_));
}

double NGramLm::conditional(WordId prev, WordId word) const {
  if (word < 0 || static_cast<std::size_t>(word) >= vocab_size_) {
    throw std::out_of_range("NGramLm::conditional: word out of range");
  }
  const double uniform = 1.0 / static_cast<double>(vocab_size_);
  double kn;
  auto total_it = context_totals_.find(prev);
  if (total_it == context_totals_.end() || total_it->second <= 0.0) {
    kn = continuation(word);
  } else {
    const double total = total_it->second;
    auto big_it = bigram_counts_.find(key(prev, word));
    const double count = big_it == bigram_counts_.end() ? 0.0 : big_it->second;
    const double types = context_types_.at(prev);
    const double discounted =
        std::max(count - config_.discount, 0.0) / total;
    const double backoff_weight = config_.discount * types / total;
    kn = discounted + backoff_weight * continuation(word);
  }
  return (1.0 - config_.uniform_mix) * kn + config_.uniform_mix * uniform;
}

double NGramLm::sentence_log_prob(const Sentence& sentence) const {
  double lp = 0.0;
  WordId prev = kBos;
  for (WordId w : sentence) {
    if (w < 0 || static_cast<std::size_t>(w) >= vocab_size_) continue;
    // ADVTEXT_ALLOW(float-accum): terms must follow token order; the bigram chain threads prev through the traversal
    lp += std::log(conditional(prev, w));
    prev = w;
  }
  return lp;
}

double NGramLm::document_log_prob(const Document& doc) const {
  return det_accumulate(doc.sentences.begin(), doc.sentences.end(), 0.0,
                        [this](double acc, const Sentence& s) {
                          return acc + sentence_log_prob(s);
                        });
}

double NGramLm::sequence_log_prob(const TokenSeq& tokens) const {
  return sentence_log_prob(tokens);
}

double NGramLm::replacement_delta(const TokenSeq& tokens, std::size_t pos,
                                  WordId candidate) const {
  if (pos >= tokens.size()) {
    throw std::out_of_range("NGramLm::replacement_delta: pos out of range");
  }
  const WordId prev = pos > 0 ? tokens[pos - 1] : kBos;
  const WordId old_word = tokens[pos];
  double delta = std::log(conditional(prev, candidate)) -
                 std::log(conditional(prev, old_word));
  if (pos + 1 < tokens.size()) {
    const WordId next = tokens[pos + 1];
    delta += std::log(conditional(candidate, next)) -
             std::log(conditional(old_word, next));
  }
  return delta;
}

double NGramLm::perplexity(const Document& doc) const {
  const std::size_t n = doc.num_words();
  if (n == 0) return 0.0;
  return std::exp(-document_log_prob(doc) / static_cast<double>(n));
}

}  // namespace advtext
