#include "src/text/corpus.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/text/tokenizer.h"

namespace advtext {

std::size_t Document::num_words() const {
  std::size_t n = 0;
  for (const Sentence& s : sentences) n += s.size();
  return n;
}

TokenSeq Document::flatten() const {
  TokenSeq out;
  out.reserve(num_words());
  for (const Sentence& s : sentences) out.insert(out.end(), s.begin(), s.end());
  return out;
}

std::pair<std::size_t, std::size_t> Document::locate(std::size_t pos) const {
  std::size_t offset = pos;
  for (std::size_t i = 0; i < sentences.size(); ++i) {
    if (offset < sentences[i].size()) return {i, offset};
    offset -= sentences[i].size();
  }
  throw std::out_of_range("Document::locate: position out of range");
}

std::string Document::to_string(const Vocab& vocab) const {
  std::string out;
  for (std::size_t i = 0; i < sentences.size(); ++i) {
    if (i > 0) out += ' ';
    for (std::size_t j = 0; j < sentences[i].size(); ++j) {
      if (j > 0) out += ' ';
      out += vocab.word(sentences[i][j]);
    }
    out += '.';
  }
  return out;
}

std::pair<Dataset, Dataset> split_dataset(const Dataset& data,
                                          double test_fraction) {
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    throw std::invalid_argument("split_dataset: fraction must be in (0,1)");
  }
  const std::size_t k = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::llround(1.0 / test_fraction)));
  Dataset train;
  Dataset test;
  train.num_classes = test.num_classes = data.num_classes;
  for (std::size_t i = 0; i < data.docs.size(); ++i) {
    if (i % k == k - 1) {
      test.docs.push_back(data.docs[i]);
    } else {
      train.docs.push_back(data.docs[i]);
    }
  }
  return {std::move(train), std::move(test)};
}

Document document_from_text(const std::string& text, const Vocab& vocab,
                            int label) {
  Document doc;
  doc.label = label;
  for (const auto& sentence_tokens : Tokenizer::sentence_words(text)) {
    Sentence s;
    s.reserve(sentence_tokens.size());
    for (const std::string& w : sentence_tokens) s.push_back(vocab.id(w));
    doc.sentences.push_back(std::move(s));
  }
  return doc;
}

CorpusStats compute_stats(const Dataset& data) {
  CorpusStats stats;
  stats.num_docs = data.docs.size();
  stats.class_counts.assign(static_cast<std::size_t>(data.num_classes), 0);
  if (data.docs.empty()) return stats;
  std::size_t words = 0;
  std::size_t sents = 0;
  for (const Document& doc : data.docs) {
    words += doc.num_words();
    sents += doc.sentences.size();
    if (doc.label >= 0 &&
        static_cast<std::size_t>(doc.label) < stats.class_counts.size()) {
      ++stats.class_counts[static_cast<std::size_t>(doc.label)];
    }
  }
  stats.mean_words_per_doc =
      static_cast<double>(words) / static_cast<double>(stats.num_docs);
  stats.mean_sentences_per_doc =
      static_cast<double>(sents) / static_cast<double>(stats.num_docs);
  return stats;
}

}  // namespace advtext
