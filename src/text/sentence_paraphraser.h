// Rule-based sentence paraphrase generation (the Para-NMT-50M stand-in).
//
// Alg. 1 (step 3) needs, for every sentence s_i, a neighbouring set S_i of
// at most k paraphrases with WMD(s_i, s) <= δs. The pretrained neural
// paraphraser the paper uses is unavailable offline, so this engine
// composes deterministic rewrite rules that produce the same *kind* of
// candidates (DESIGN.md §1): near-synonym substitutions, function-word
// rewrites, and light reorderings — semantically close under WMD, but with
// different surface statistics, which is what gives the sentence-level
// attack its leverage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/text/corpus.h"
#include "src/text/wmd.h"
#include "src/util/robust.h"

namespace advtext {

struct SentenceParaphraserConfig {
  std::size_t max_paraphrases = 15;  ///< paper: k = 15
  /// Similarity floor; see WordNeighborConfig::min_similarity for why
  /// this is 0.65 rather than the paper's 0.75 (different distance scale).
  double min_similarity = 0.65;
  /// How many synonym alternatives per word the rules may reach for.
  std::size_t synonyms_per_word = 4;
  std::uint64_t seed = 5;
};

class SentenceParaphraser {
 public:
  /// `word_neighbors[w]` lists near-synonyms of word w (similarity-sorted,
  /// e.g. from ParaphraseIndex); `is_function_word[w]` marks words the
  /// reordering rules may move or drop. Both indexed by word id.
  SentenceParaphraser(std::vector<std::vector<WordId>> word_neighbors,
                      std::vector<bool> is_function_word,
                      const SentenceParaphraserConfig& config = {});

  const SentenceParaphraserConfig& config() const { return config_; }

  /// Up to max_paraphrases candidates for `sentence`, each distinct from
  /// the original and passing similarity(s, s') >= min_similarity under
  /// the given WMD. Deterministic for a given sentence. The deadline is
  /// checked between WMD filters: once it expires, candidates generated so
  /// far are kept and the rest are skipped (a truncated-but-valid set).
  std::vector<Sentence> paraphrases(const Sentence& sentence, const Wmd& wmd,
                                    const Deadline& deadline = {}) const;

  /// Neighbouring sets for every sentence of a document (Alg. 1, step 3).
  /// On deadline expiry the remaining sentences get empty sets, so a
  /// per-document deadline bounds this WMD-heavy step too.
  std::vector<std::vector<Sentence>> neighbor_sets(
      const Document& doc, const Wmd& wmd,
      const Deadline& deadline = {}) const;

 private:
  /// All rule applications, before WMD filtering and truncation.
  std::vector<Sentence> generate_raw(const Sentence& sentence) const;

  std::vector<std::vector<WordId>> word_neighbors_;
  std::vector<bool> is_function_word_;
  SentenceParaphraserConfig config_;
};

}  // namespace advtext
