// Vocabulary: bidirectional word <-> integer-id mapping.
//
// Id 0 is reserved for padding and id 1 for out-of-vocabulary tokens,
// matching the paper's setup of a fixed top-K vocabulary with everything
// else mapped to <unk>.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace advtext {

/// Integer word id; kPad / kUnk are always present.
using WordId = int;

class Vocab {
 public:
  static constexpr WordId kPad = 0;
  static constexpr WordId kUnk = 1;

  /// Constructs a vocabulary containing only <pad> and <unk>.
  Vocab();

  /// Adds a word if absent; returns its id either way.
  WordId add(std::string_view word);

  /// Returns the id of a word, or kUnk if not present.
  WordId id(std::string_view word) const;

  /// True if the word (or id) is known.
  bool contains(std::string_view word) const;
  bool contains(WordId id) const { return id >= 0 && id < size(); }

  /// Surface form for an id; throws if out of range.
  const std::string& word(WordId id) const;

  /// Number of entries including the two specials.
  WordId size() const { return static_cast<WordId>(words_.size()); }

  /// Builds a vocabulary from word-frequency counts, keeping at most
  /// max_words most frequent words (ties broken lexicographically so the
  /// result is deterministic).
  static Vocab from_counts(
      const std::unordered_map<std::string, std::uint64_t>& counts,
      std::size_t max_words);

 private:
  std::vector<std::string> words_;
  std::unordered_map<std::string, WordId> index_;
};

}  // namespace advtext
