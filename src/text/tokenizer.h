// Word and sentence tokenization.
//
// The paper's pipeline (Alg. 1) first splits a document into sentences
// (sentence-level paraphrasing), then into words (word-level paraphrasing).
// This tokenizer implements both splits with simple deterministic rules:
// sentences end at . ! ? followed by whitespace; words are maximal runs of
// alphanumerics plus intra-word apostrophes, lowercased.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace advtext {

class Tokenizer {
 public:
  /// Lowercased word tokens of the text.
  static std::vector<std::string> words(std::string_view text);

  /// Sentence strings (trimmed, terminator retained).
  static std::vector<std::string> sentences(std::string_view text);

  /// Convenience: sentence split, then word split per sentence.
  static std::vector<std::vector<std::string>> sentence_words(
      std::string_view text);
};

}  // namespace advtext
