#include "src/text/tokenizer.h"

#include <cctype>

#include "src/util/string_util.h"

namespace advtext {

namespace {
bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '\'';
}
}  // namespace

std::vector<std::string> Tokenizer::words(std::string_view text) {
  std::vector<std::string> out;
  std::string current;
  for (char c : text) {
    if (is_word_char(c)) {
      current.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      // Strip leading/trailing apostrophes so "'tis'" -> "tis".
      while (!current.empty() && current.front() == '\'') {
        current.erase(current.begin());
      }
      while (!current.empty() && current.back() == '\'') current.pop_back();
      if (!current.empty()) out.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) {
    while (!current.empty() && current.front() == '\'') {
      current.erase(current.begin());
    }
    while (!current.empty() && current.back() == '\'') current.pop_back();
    if (!current.empty()) out.push_back(std::move(current));
  }
  return out;
}

std::vector<std::string> Tokenizer::sentences(std::string_view text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const bool terminator = c == '.' || c == '!' || c == '?';
    const bool boundary =
        terminator &&
        (i + 1 == text.size() ||
         std::isspace(static_cast<unsigned char>(text[i + 1])) != 0);
    if (boundary) {
      const std::string_view piece = trim(text.substr(start, i - start + 1));
      if (!piece.empty()) out.emplace_back(piece);
      start = i + 1;
    }
  }
  const std::string_view tail = trim(text.substr(start));
  if (!tail.empty()) out.emplace_back(tail);
  return out;
}

std::vector<std::vector<std::string>> Tokenizer::sentence_words(
    std::string_view text) {
  std::vector<std::vector<std::string>> out;
  for (const std::string& sentence : sentences(text)) {
    auto toks = words(sentence);
    if (!toks.empty()) out.push_back(std::move(toks));
  }
  return out;
}

}  // namespace advtext
