#include "src/text/serialize.h"

#include <cstdint>

#include "src/util/serialize.h"

namespace advtext::io {

void write_vocab(std::ostream& out, const Vocab& vocab) {
  // Specials (<pad>, <unk>) are rebuilt by the constructor; store the rest.
  write_u64(out, static_cast<std::uint64_t>(vocab.size()) - 2);
  for (WordId id = 2; id < vocab.size(); ++id) {
    write_string(out, vocab.word(id));
  }
}

Vocab read_vocab(std::istream& in) {
  Vocab vocab;
  const std::uint64_t words = read_size(in, "vocab.words", kMaxElements);
  for (std::uint64_t i = 0; i < words; ++i) {
    vocab.add(read_string(in));
  }
  return vocab;
}

void write_document(std::ostream& out, const Document& doc) {
  write_u64(out, static_cast<std::uint64_t>(doc.label));
  write_u64(out, doc.sentences.size());
  for (const Sentence& s : doc.sentences) {
    write_u64(out, s.size());
    for (WordId w : s) write_u64(out, static_cast<std::uint64_t>(w));
  }
}

Document read_document(std::istream& in) {
  Document doc;
  doc.label = static_cast<int>(read_u64(in));
  const std::uint64_t sentences =
      read_size(in, "document.sentences", kMaxSequences);
  doc.sentences.resize(sentences);
  for (auto& s : doc.sentences) {
    const std::uint64_t words = read_size(in, "sentence.words", kMaxElements);
    s.resize(words);
    for (auto& w : s) w = static_cast<WordId>(read_u64(in));
  }
  return doc;
}

void write_dataset(std::ostream& out, const Dataset& data) {
  write_u64(out, static_cast<std::uint64_t>(data.num_classes));
  write_u64(out, data.docs.size());
  for (const Document& doc : data.docs) write_document(out, doc);
}

Dataset read_dataset(std::istream& in) {
  Dataset data;
  data.num_classes = static_cast<int>(read_u64(in));
  const std::uint64_t docs = read_size(in, "dataset.docs", kMaxSequences);
  data.docs.reserve(docs);
  for (std::uint64_t i = 0; i < docs; ++i) {
    data.docs.push_back(read_document(in));
  }
  return data;
}

}  // namespace advtext::io
