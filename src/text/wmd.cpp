#include "src/text/wmd.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "src/util/check.h"
#include "src/util/det_accum.h"
#include "src/util/robust.h"

namespace advtext {

Wmd::Wmd(const Matrix& embeddings, Method method)
    : embeddings_(embeddings), method_(method) {}

double Wmd::word_distance(WordId a, WordId b) const {
  ADVTEXT_CHECK(a >= 0 && b >= 0 &&
                static_cast<std::size_t>(a) < embeddings_.rows() &&
                static_cast<std::size_t>(b) < embeddings_.rows())
      << "Wmd::word_distance: word ids " << a << ", " << b
      << " out of range for " << embeddings_.rows() << " embeddings";
  if (a == b) return 0.0;
  const std::size_t dim = embeddings_.cols();
  const float* va = embeddings_.row(static_cast<std::size_t>(a));
  const float* vb = embeddings_.row(static_cast<std::size_t>(b));
  return std::sqrt(det_sq_dist(va, vb, dim));
}

double Wmd::word_similarity(WordId a, WordId b) const {
  return std::exp(-word_distance(a, b));
}

void Wmd::nbow(const Sentence& s, std::vector<WordId>* words,
               std::vector<double>* weights) {
  std::unordered_map<WordId, double> counts;
  for (WordId w : s) counts[w] += 1.0;
  words->clear();
  weights->clear();
  // ADVTEXT_ALLOW(unordered-iteration): pairs are copied out and sorted by WordId immediately below
  for (const auto& [w, c] : counts) {
    words->push_back(w);
    weights->push_back(c);
  }
  // Deterministic order (hash maps are not).
  std::vector<std::size_t> idx(words->size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(), [&](std::size_t x, std::size_t y) {
    return (*words)[x] < (*words)[y];
  });
  std::vector<WordId> sorted_words(words->size());
  std::vector<double> sorted_weights(words->size());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    sorted_words[i] = (*words)[idx[i]];
    sorted_weights[i] = (*weights)[idx[i]];
  }
  *words = std::move(sorted_words);
  *weights = std::move(sorted_weights);
#if ADVTEXT_DCHECK_ENABLED
  // nBOW mass balance: the weights are raw token counts, so they must sum
  // to the sentence length exactly (they are small integers in doubles).
  const double total = det_sum(*weights);
  ADVTEXT_DCHECK(total == static_cast<double>(s.size()))
      << "Wmd::nbow: weights sum to " << total << " for " << s.size()
      << " tokens";
#endif
}

double Wmd::solve_cost(const Matrix& cost, const std::vector<double>& pa,
                       const std::vector<double>& pb) const {
  // Last line of defense: never throws for cost reasons, and is orders of
  // magnitude cheaper than either real solver.
  const auto lower_bound = [&] {
    to_lower_bound_.fetch_add(1, std::memory_order_relaxed);
    return transport_relaxed_lower_bound(cost, pa, pb);
  };
  // Middle tier: entropic approximation; poisonable at "wmd.sinkhorn" so
  // tests can force the full exact→Sinkhorn→nBOW chain.
  const auto sinkhorn = [&]() -> double {
    try {
      const SinkhornResult status = solve_transport_sinkhorn(cost, pa, pb);
      const double value =
          FaultInjector::instance().poison("wmd.sinkhorn", status.cost);
      if (std::isfinite(value)) return value;
    } catch (const std::runtime_error&) {
    }
    return lower_bound();
  };
  switch (method_) {
    case Method::kExact:
      try {
        TransportControl control;
        control.max_iterations = limits_.exact_max_iterations;
        if (limits_.exact_deadline_ms > 0.0) {
          control.deadline = Deadline::after_ms(limits_.exact_deadline_ms);
        }
        return solve_transport_exact(cost, pa, pb, nullptr, control);
      } catch (const std::runtime_error&) {
        // TransportLimitError (cap/deadline), degenerate-solve errors, and
        // injected faults all degrade; logic/shape errors propagate.
        to_sinkhorn_.fetch_add(1, std::memory_order_relaxed);
        return sinkhorn();
      }
    case Method::kSinkhorn:
      return sinkhorn();
    case Method::kRelaxed:
      return transport_relaxed_lower_bound(cost, pa, pb);
  }
  return lower_bound();  // unreachable
}

double Wmd::distance(const Sentence& a, const Sentence& b) const {
  FaultInjector::instance().maybe_fault("wmd.distance");
  if (a.empty() && b.empty()) return 0.0;
  if (a.empty() || b.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  std::vector<WordId> wa;
  std::vector<WordId> wb;
  std::vector<double> pa;
  std::vector<double> pb;
  nbow(a, &wa, &pa);
  nbow(b, &wb, &pb);
  if (wa == wb) {
    // Same multiset support; if the weights also match the distance is 0.
    bool same = pa.size() == pb.size();
    const double ta = det_sum(pa);
    const double tb = det_sum(pb);
    for (std::size_t i = 0; same && i < pa.size(); ++i) {
      same = std::abs(pa[i] / ta - pb[i] / tb) < 1e-12;
    }
    if (same) return 0.0;
  }
  Matrix cost(wa.size(), wb.size());
  for (std::size_t i = 0; i < wa.size(); ++i) {
    for (std::size_t j = 0; j < wb.size(); ++j) {
      cost(i, j) = static_cast<float>(word_distance(wa[i], wb[j]));
    }
  }
  ADVTEXT_DCHECK(all_finite(cost.data(), cost.size()))
      << "Wmd::distance: non-finite ground cost (corrupt embeddings?)";
  const double result = solve_cost(cost, pa, pb);
  ADVTEXT_DCHECK(std::isfinite(result) && result > -1e-9)
      << "Wmd::distance: solver returned " << result;
  return result;
}

double Wmd::similarity(const Sentence& a, const Sentence& b) const {
  return std::exp(-distance(a, b));
}

}  // namespace advtext
