#include "src/text/sentence_paraphraser.h"

#include <algorithm>
#include <set>

#include "src/util/rng.h"

namespace advtext {

namespace {

/// Content hash so rule choices are deterministic per sentence.
std::uint64_t sentence_hash(const Sentence& s, std::uint64_t seed) {
  std::uint64_t h = seed ^ 0x9e3779b97f4a7c15ULL;
  for (WordId w : s) {
    h ^= static_cast<std::uint64_t>(w) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
  }
  return h;
}

}  // namespace

SentenceParaphraser::SentenceParaphraser(
    std::vector<std::vector<WordId>> word_neighbors,
    std::vector<bool> is_function_word,
    const SentenceParaphraserConfig& config)
    : word_neighbors_(std::move(word_neighbors)),
      is_function_word_(std::move(is_function_word)),
      config_(config) {}

std::vector<Sentence> SentenceParaphraser::generate_raw(
    const Sentence& sentence) const {
  std::vector<Sentence> out;
  if (sentence.empty()) return out;
  const auto neighbors_of = [&](WordId w) -> const std::vector<WordId>& {
    static const std::vector<WordId> kEmpty;
    if (w < 0 || static_cast<std::size_t>(w) >= word_neighbors_.size()) {
      return kEmpty;
    }
    return word_neighbors_[static_cast<std::size_t>(w)];
  };
  const auto is_function = [&](WordId w) {
    return w >= 0 && static_cast<std::size_t>(w) < is_function_word_.size() &&
           is_function_word_[static_cast<std::size_t>(w)];
  };

  // Rule 0: full rewrites — substitute every substitutable word with one
  // of its near-synonyms in a single candidate. This is the move a neural
  // sentence paraphraser (Para-NMT style) makes: the whole surface changes
  // at once while the bag of meanings stays put. Variant index is
  // deterministic per (sentence, rewrite, position).
  {
    Rng rewrite_rng(sentence_hash(sentence, config_.seed ^ 0xabcdef));
    for (std::size_t variant = 0; variant < 8; ++variant) {
      // Alternate between light rewrites (most words kept) and deep
      // rewrites (every substitutable word replaced) — neural
      // paraphrasers produce both registers.
      const double keep_prob = variant % 2 == 0 ? 0.35 : 0.0;
      Sentence cand = sentence;
      bool changed = false;
      for (std::size_t p = 0; p < cand.size(); ++p) {
        const auto& nbrs = neighbors_of(sentence[p]);
        if (nbrs.empty()) continue;
        // Rewrites draw from the whole neighbour list — a neural
        // paraphraser is not restricted to the closest synonym.
        if (keep_prob > 0.0 && rewrite_rng.bernoulli(keep_prob)) continue;
        cand[p] = nbrs[rewrite_rng.uniform_index(nbrs.size())];
        changed = changed || cand[p] != sentence[p];
      }
      if (changed) out.push_back(std::move(cand));
    }
  }

  // Rule 1: single-word synonym substitutions.
  for (std::size_t p = 0; p < sentence.size(); ++p) {
    const auto& nbrs = neighbors_of(sentence[p]);
    const std::size_t take = std::min(config_.synonyms_per_word, nbrs.size());
    for (std::size_t t = 0; t < take; ++t) {
      Sentence cand = sentence;
      cand[p] = nbrs[t];
      out.push_back(std::move(cand));
    }
  }

  // Rule 2: two-word joint substitutions on deterministic position pairs.
  Rng rng(sentence_hash(sentence, config_.seed));
  std::vector<std::size_t> substitutable;
  for (std::size_t p = 0; p < sentence.size(); ++p) {
    if (!neighbors_of(sentence[p]).empty()) substitutable.push_back(p);
  }
  if (substitutable.size() >= 2) {
    const std::size_t num_pairs =
        std::min<std::size_t>(6, substitutable.size());
    for (std::size_t trial = 0; trial < num_pairs; ++trial) {
      const std::size_t p =
          substitutable[rng.uniform_index(substitutable.size())];
      std::size_t q = substitutable[rng.uniform_index(substitutable.size())];
      if (p == q) continue;
      const auto& np = neighbors_of(sentence[p]);
      const auto& nq = neighbors_of(sentence[q]);
      Sentence cand = sentence;
      cand[p] = np[rng.uniform_index(
          std::min(config_.synonyms_per_word, np.size()))];
      cand[q] = nq[rng.uniform_index(
          std::min(config_.synonyms_per_word, nq.size()))];
      out.push_back(std::move(cand));
    }
  }

  // Rule 3: swap adjacent function words.
  for (std::size_t p = 0; p + 1 < sentence.size(); ++p) {
    if (is_function(sentence[p]) && is_function(sentence[p + 1]) &&
        sentence[p] != sentence[p + 1]) {
      Sentence cand = sentence;
      std::swap(cand[p], cand[p + 1]);
      out.push_back(std::move(cand));
    }
  }

  // Rule 4: drop one function word (keep the sentence non-trivial).
  if (sentence.size() > 3) {
    for (std::size_t p = 0; p < sentence.size(); ++p) {
      if (!is_function(sentence[p])) continue;
      Sentence cand;
      cand.reserve(sentence.size() - 1);
      for (std::size_t q = 0; q < sentence.size(); ++q) {
        if (q != p) cand.push_back(sentence[q]);
      }
      out.push_back(std::move(cand));
    }
  }

  // Rule 5: a leading function word may move to the end (discourse-marker
  // style rewrite).
  if (sentence.size() > 2 && is_function(sentence.front())) {
    Sentence cand(sentence.begin() + 1, sentence.end());
    cand.push_back(sentence.front());
    out.push_back(std::move(cand));
  }

  return out;
}

std::vector<Sentence> SentenceParaphraser::paraphrases(
    const Sentence& sentence, const Wmd& wmd,
    const Deadline& deadline) const {
  std::vector<std::pair<double, Sentence>> scored;
  std::set<Sentence> seen;
  seen.insert(sentence);
  for (Sentence& cand : generate_raw(sentence)) {
    if (deadline.expired()) break;  // keep what cleared the filter so far
    if (!seen.insert(cand).second) continue;
    const double sim = wmd.similarity(sentence, cand);
    if (sim >= config_.min_similarity) {
      scored.emplace_back(sim, std::move(cand));
    }
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  // Keep the set DIVERSE when capping: taking only the most-similar
  // candidates would keep the lightest rewrites and drop the deep ones,
  // collapsing the attack surface. Interleave from both ends of the
  // similarity ranking (all entries already clear the threshold).
  std::vector<Sentence> out;
  if (scored.size() <= config_.max_paraphrases) {
    out.reserve(scored.size());
    for (auto& [sim, cand] : scored) out.push_back(std::move(cand));
    return out;
  }
  out.reserve(config_.max_paraphrases);
  std::size_t lo = 0;
  std::size_t hi = scored.size();
  while (out.size() < config_.max_paraphrases) {
    out.push_back(std::move(scored[lo++].second));
    if (out.size() < config_.max_paraphrases) {
      out.push_back(std::move(scored[--hi].second));
    }
  }
  return out;
}

std::vector<std::vector<Sentence>> SentenceParaphraser::neighbor_sets(
    const Document& doc, const Wmd& wmd, const Deadline& deadline) const {
  std::vector<std::vector<Sentence>> out;
  out.reserve(doc.sentences.size());
  for (const Sentence& s : doc.sentences) {
    if (deadline.expired()) {
      out.emplace_back();  // empty set: sentence stays unattackable
      continue;
    }
    out.push_back(paraphrases(s, wmd, deadline));
  }
  return out;
}

}  // namespace advtext
