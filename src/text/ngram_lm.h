// Interpolated Kneser-Ney bigram language model.
//
// Alg. 1 (step 7) filters word-paraphrase candidates by the syntactic
// constraint |ln P(x) - ln P(x')| <= δ, where P is a language model trained
// on the training split. A bigram KN model is the standard lightweight
// choice and — being bigram — lets the filter evaluate a single-word swap
// from the two affected conditional probabilities only, which the
// paraphrase index exploits.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "src/text/corpus.h"

namespace advtext {

struct NGramLmConfig {
  double discount = 0.75;       ///< absolute discount d in KN smoothing
  double uniform_mix = 0.02;    ///< floor mixture so probabilities never hit 0
};

class NGramLm {
 public:
  /// Trains on the sentences of every document in `data`. Each sentence is
  /// padded with a begin-of-sentence context.
  NGramLm(const Dataset& data, std::size_t vocab_size,
          const NGramLmConfig& config = {});

  std::size_t vocab_size() const { return vocab_size_; }

  /// P(word | prev) with interpolated KN smoothing; prev < 0 means
  /// beginning of sentence.
  double conditional(WordId prev, WordId word) const;

  /// Sum of ln P over a sentence (BOS-padded).
  double sentence_log_prob(const Sentence& sentence) const;

  /// Sum over all sentences.
  double document_log_prob(const Document& doc) const;

  /// ln P of a flat token stream treated as one BOS-padded sentence.
  double sequence_log_prob(const TokenSeq& tokens) const;

  /// Change in sequence_log_prob when tokens[pos] is replaced by
  /// `candidate` — computed from the two affected bigrams only.
  double replacement_delta(const TokenSeq& tokens, std::size_t pos,
                           WordId candidate) const;

  /// Per-word perplexity of a document: exp(-log_prob / num_words).
  double perplexity(const Document& doc) const;

 private:
  /// Continuation probability P_cont(w) = N1+(·,w) / N1+(··).
  double continuation(WordId word) const;

  NGramLmConfig config_;
  std::size_t vocab_size_;
  // kBos is used as the context index for sentence starts.
  static constexpr WordId kBos = -1;

  std::unordered_map<long long, double> bigram_counts_;  // key = ctx*V + w
  std::unordered_map<WordId, double> context_totals_;    // c(u, ·)
  std::unordered_map<WordId, double> context_types_;     // N1+(u, ·)
  std::unordered_map<WordId, double> continuation_types_;  // N1+(·, w)
  double total_bigram_types_ = 0.0;

  long long key(WordId prev, WordId word) const {
    return (static_cast<long long>(prev) + 1) *
               static_cast<long long>(vocab_size_ + 1) +
           static_cast<long long>(word);
  }
};

}  // namespace advtext
