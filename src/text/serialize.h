// Binary serialization for text types (Vocab / Document / Dataset).
//
// Typed composites over the primitives in src/util/serialize.h, living in
// the text layer so src/util/ never includes upward. Same tagged
// little-endian format, same std::runtime_error-on-corruption contract.
#pragma once

#include <iosfwd>

#include "src/text/corpus.h"
#include "src/text/vocab.h"

namespace advtext::io {

void write_vocab(std::ostream& out, const Vocab& vocab);
Vocab read_vocab(std::istream& in);

/// Single documents (label + sentence/word structure). Used by the attack
/// pipeline's checkpoint files; the whole-task writers reuse them.
void write_document(std::ostream& out, const Document& doc);
Document read_document(std::istream& in);

/// Labelled document collections (the train/test halves of a task).
void write_dataset(std::ostream& out, const Dataset& data);
Dataset read_dataset(std::istream& in);

}  // namespace advtext::io
