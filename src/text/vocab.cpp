#include "src/text/vocab.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "src/util/check.h"

namespace advtext {

Vocab::Vocab() {
  add("<pad>");
  add("<unk>");
}

WordId Vocab::add(std::string_view word) {
  auto it = index_.find(std::string(word));
  if (it != index_.end()) return it->second;
  const WordId id = static_cast<WordId>(words_.size());
  ADVTEXT_CHECK(id >= 0) << "Vocab::add: vocabulary overflowed WordId";
  words_.emplace_back(word);
  index_.emplace(words_.back(), id);
  ADVTEXT_DCHECK(words_.size() == index_.size())
      << "Vocab::add: word list and index diverged";
  return id;
}

WordId Vocab::id(std::string_view word) const {
  auto it = index_.find(std::string(word));
  return it == index_.end() ? kUnk : it->second;
}

bool Vocab::contains(std::string_view word) const {
  return index_.count(std::string(word)) > 0;
}

const std::string& Vocab::word(WordId id) const {
  // OOV reads are caller bugs (a corpus indexed against a different vocab,
  // or an attack proposing an id the model never saw); keep this check in
  // every build type and name the offending id.
  if (id < 0 || id >= size()) {
    std::ostringstream oss;
    oss << "Vocab::word: id " << id << " out of range for vocabulary of "
        << size() << " words";
    throw std::out_of_range(oss.str());
  }
  return words_[static_cast<std::size_t>(id)];
}

Vocab Vocab::from_counts(
    const std::unordered_map<std::string, std::uint64_t>& counts,
    std::size_t max_words) {
  std::vector<std::pair<std::string, std::uint64_t>> sorted(counts.begin(),
                                                            counts.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  Vocab vocab;
  for (const auto& [word, count] : sorted) {
    if (static_cast<std::size_t>(vocab.size()) >= max_words + 2) break;
    vocab.add(word);
  }
  return vocab;
}

}  // namespace advtext
