// Skip-gram with negative sampling (word2vec; Mikolov et al. 2013).
//
// The paper's classifiers use pretrained word2vec as their first layer. We
// cannot ship GoogleNews vectors, so this module trains SGNS embeddings on
// the (synthetic) training corpus from scratch — the real code path a
// practitioner would run. The tests verify that synonym-cluster members end
// up as mutual nearest neighbours, i.e. the property the paraphrase attacks
// rely on emerges from co-occurrence alone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/nn/supervisor.h"
#include "src/tensor/tensor.h"
#include "src/text/corpus.h"

namespace advtext {

struct SkipGramConfig {
  std::size_t dim = 16;
  std::size_t window = 4;        ///< symmetric context window
  std::size_t negatives = 5;     ///< negative samples per positive pair
  std::size_t epochs = 8;
  double learning_rate = 0.05;   ///< linearly decayed to lr/20
  double subsample_threshold = 0.0;  ///< 0 disables frequent-word dropping
  std::uint64_t seed = 3;
};

/// Resilience outcome of a supervised skip-gram run (epoch = snapshot unit).
struct SkipGramReport {
  TerminationReason termination = TerminationReason::kSucceeded;
  std::size_t epochs_run = 0;
  std::vector<double> epoch_losses;  ///< mean SGNS loss per epoch
  std::size_t rollbacks = 0;
  std::size_t snapshots_written = 0;
  std::size_t snapshot_write_failures = 0;
  std::size_t snapshot_write_retries = 0;
  bool resumed = false;
  std::vector<std::string> warnings;
};

/// Trains SGNS input vectors on the flattened documents of `data`.
/// Returns a vocab_size x dim embedding matrix (rows for words never seen
/// stay at their random initialization).
Matrix train_skipgram(const Dataset& data, std::size_t vocab_size,
                      const SkipGramConfig& config = {});

/// Supervised variant: per-epoch snapshots, resume, divergence rollback and
/// cooperative shutdown per `resilience`. With a default ResilienceConfig
/// the returned matrix is bitwise identical to the plain overload.
Matrix train_skipgram(const Dataset& data, std::size_t vocab_size,
                      const SkipGramConfig& config,
                      const ResilienceConfig& resilience,
                      SkipGramReport* report = nullptr);

/// Top-k nearest neighbours of `word` by cosine similarity (excluding the
/// word itself and ids < first_valid_id, defaulting past <pad>/<unk>).
std::vector<std::pair<WordId, double>> nearest_neighbors(
    const Matrix& embeddings, WordId word, std::size_t k,
    WordId first_valid_id = 2);

/// Cosine similarity between two embedding rows (0 if either is zero).
double cosine_similarity(const Matrix& embeddings, WordId a, WordId b);

}  // namespace advtext
