#include "src/data/serialize.h"

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "src/tensor/serialize.h"
#include "src/text/serialize.h"
#include "src/util/serialize.h"

namespace advtext::io {

namespace {

void fail(const char* what) {
  throw std::runtime_error(std::string("serialize: ") + what);
}

}  // namespace

void save_task(const SynthTask& task, const std::string& path) {
  std::ostringstream out;
  write_magic(out);
  write_string(out, "task");
  // Config (field by field; keep order in sync with load_task).
  const SynthConfig& c = task.config;
  write_string(out, c.name);
  write_u64(out, c.seed);
  write_u64(out, c.num_train);
  write_u64(out, c.num_test);
  write_double(out, c.class1_fraction);
  write_u64(out, c.num_concepts);
  write_u64(out, c.cluster_size);
  write_double(out, c.neutral_fraction);
  write_u64(out, c.num_noise_words);
  write_u64(out, c.min_sentences);
  write_u64(out, c.max_sentences);
  write_u64(out, c.min_words_per_sentence);
  write_u64(out, c.max_words_per_sentence);
  write_double(out, c.function_word_rate);
  write_double(out, c.noise_token_rate);
  write_double(out, c.aligned_concept_rate);
  write_double(out, c.variant_label_correlation);
  write_double(out, c.strength_decay);
  write_u64(out, c.embedding_dim);
  write_double(out, c.polarity_embed_scale);
  write_double(out, c.cluster_noise);
  write_double(out, c.mild_doc_fraction);
  write_double(out, c.embed_evidence_fidelity);

  write_vocab(out, task.vocab);
  write_dataset(out, task.train);
  write_dataset(out, task.test);
  write_ints(out, task.concept_of_word);
  write_ints(out, task.variant_of_word);
  write_doubles(out, task.word_polarity);
  write_doubles(out, task.word_meaning);
  write_bools(out, task.is_function_word);
  write_bools(out, task.is_noise_word);
  write_matrix(out, task.paragram);
  write_u64(out, task.concept_members.size());
  for (const auto& members : task.concept_members) {
    write_ints(out, std::vector<int>(members.begin(), members.end()));
  }
  write_u64(out, task.function_clusters.size());
  for (const auto& cluster : task.function_clusters) {
    write_ints(out, std::vector<int>(cluster.begin(), cluster.end()));
  }
  if (!out) fail("write failed");
  save_artifact(path, out.str());
}

SynthTask load_task(const std::string& path) {
  std::istringstream in(load_artifact(path));
  read_magic(in);
  if (read_string(in) != "task") fail("not a task file");
  SynthTask task;
  SynthConfig& c = task.config;
  c.name = read_string(in);
  c.seed = read_u64(in);
  c.num_train = read_u64(in);
  c.num_test = read_u64(in);
  c.class1_fraction = read_double(in);
  c.num_concepts = read_u64(in);
  c.cluster_size = read_u64(in);
  c.neutral_fraction = read_double(in);
  c.num_noise_words = read_u64(in);
  c.min_sentences = read_u64(in);
  c.max_sentences = read_u64(in);
  c.min_words_per_sentence = read_u64(in);
  c.max_words_per_sentence = read_u64(in);
  c.function_word_rate = read_double(in);
  c.noise_token_rate = read_double(in);
  c.aligned_concept_rate = read_double(in);
  c.variant_label_correlation = read_double(in);
  c.strength_decay = read_double(in);
  c.embedding_dim = read_u64(in);
  c.polarity_embed_scale = read_double(in);
  c.cluster_noise = read_double(in);
  c.mild_doc_fraction = read_double(in);
  c.embed_evidence_fidelity = read_double(in);

  task.vocab = read_vocab(in);
  task.train = read_dataset(in);
  task.test = read_dataset(in);
  task.concept_of_word = read_ints(in);
  task.variant_of_word = read_ints(in);
  task.word_polarity = read_doubles(in);
  task.word_meaning = read_doubles(in);
  task.is_function_word = read_bools(in);
  task.is_noise_word = read_bools(in);
  task.paragram = read_matrix(in);
  const std::uint64_t concepts =
      read_size(in, "task.concept_members", kMaxSequences);
  task.concept_members.resize(concepts);
  for (auto& members : task.concept_members) {
    const auto ints = read_ints(in);
    members.assign(ints.begin(), ints.end());
  }
  const std::uint64_t clusters =
      read_size(in, "task.function_clusters", kMaxSequences);
  task.function_clusters.resize(clusters);
  for (auto& cluster : task.function_clusters) {
    const auto ints = read_ints(in);
    cluster.assign(ints.begin(), ints.end());
  }
  return task;
}

}  // namespace advtext::io
