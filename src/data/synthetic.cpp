#include "src/data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "src/util/det_accum.h"

namespace advtext {

namespace {

// Hand-written clusters of interchangeable function words. Polarity-free;
// the sentence paraphraser swaps within a cluster to vary surface form.
const std::vector<std::vector<std::string>>& function_word_clusters() {
  static const std::vector<std::vector<std::string>> kClusters = {
      {"the", "a", "this", "that"},
      {"is", "was", "seems", "appears"},
      {"and", "plus", "also", "moreover"},
      {"i", "we", "they", "you"},
      {"to", "for", "with", "into"},
      {"it", "he", "she", "one"},
      {"very", "quite", "really", "rather"},
      {"but", "yet", "though", "however"},
      {"of", "in", "on", "at"},
      {"so", "thus", "hence", "then"},
  };
  return kClusters;
}

// Deterministic pronounceable pseudo-word built from consonant-vowel
// syllables; used for content concepts (we have no offline English lexicon).
std::string make_pseudo_word(Rng& rng, std::set<std::string>& used) {
  static const char* kConsonants = "bcdfgklmnprstvz";
  static const char* kVowels = "aeiou";
  for (;;) {
    const std::size_t syllables = 2 + rng.uniform_index(2);  // 2 or 3
    std::string word;
    for (std::size_t s = 0; s < syllables; ++s) {
      word.push_back(kConsonants[rng.uniform_index(15)]);
      word.push_back(kVowels[rng.uniform_index(5)]);
    }
    if (rng.bernoulli(0.3)) word.push_back(kConsonants[rng.uniform_index(15)]);
    if (used.insert(word).second) return word;
  }
}

// Corrupted token: consonant-heavy string, TREC07p-style junk.
std::string make_noise_word(Rng& rng, std::set<std::string>& used) {
  static const char* kChars = "qwxzjkvbJKQ0123456789";
  for (;;) {
    std::string word = "nz";
    const std::size_t len = 3 + rng.uniform_index(5);
    for (std::size_t i = 0; i < len; ++i) {
      word.push_back(kChars[rng.uniform_index(21)]);
    }
    if (used.insert(word).second) return word;
  }
}

// Samples a variant index with weights rho^j (favour_strong) or
// rho^(K-1-j) (favour weak), interpolated with uniform by `correlation`.
std::size_t sample_variant(Rng& rng, std::size_t cluster_size,
                           bool favour_strong, double correlation) {
  constexpr double kRho = 0.45;
  std::vector<double> weights(cluster_size);
  for (std::size_t j = 0; j < cluster_size; ++j) {
    const double skew =
        favour_strong ? std::pow(kRho, static_cast<double>(j))
                      : std::pow(kRho, static_cast<double>(cluster_size - 1 - j));
    weights[j] = correlation * skew + (1.0 - correlation) / cluster_size;
  }
  return rng.categorical(weights);
}

}  // namespace

double SynthTask::meaning_score(const Document& doc) const {
  double score = 0.0;
  for (const Sentence& s : doc.sentences) {
    for (WordId w : s) {
      if (w >= 0 && static_cast<std::size_t>(w) < word_meaning.size()) {
        // ADVTEXT_ALLOW(float-accum): terms follow document token order, which is part of the document identity
        score += word_meaning[static_cast<std::size_t>(w)];
      }
    }
  }
  return score;
}

int SynthTask::oracle_label(const Document& doc) const {
  return meaning_score(doc) >= 0.0 ? 1 : 0;
}

double SynthTask::oracle_margin(const Document& doc) const {
  std::size_t content = 0;
  for (const Sentence& s : doc.sentences) {
    for (WordId w : s) {
      if (w >= 0 && static_cast<std::size_t>(w) < concept_of_word.size() &&
          concept_of_word[static_cast<std::size_t>(w)] >= 0) {
        ++content;
      }
    }
  }
  if (content == 0) return 0.0;
  return std::abs(meaning_score(doc)) / static_cast<double>(content);
}

SynthTask make_task(const SynthConfig& config) {
  if (config.cluster_size < 2) {
    throw std::invalid_argument("make_task: cluster_size must be >= 2");
  }
  SynthTask task;
  task.config = config;
  Rng rng(config.seed);
  std::set<std::string> used_words;

  const std::size_t dim = config.embedding_dim;

  // --- Vocabulary & latent semantics -------------------------------------
  auto init_word_meta = [&task](WordId id) {
    const auto n = static_cast<std::size_t>(id) + 1;
    task.concept_of_word.resize(n, -1);
    task.variant_of_word.resize(n, -1);
    task.word_polarity.resize(n, 0.0);
    task.word_meaning.resize(n, 0.0);
    task.is_function_word.resize(n, false);
    task.is_noise_word.resize(n, false);
  };
  init_word_meta(Vocab::kUnk);

  // Function words.
  for (const auto& cluster : function_word_clusters()) {
    std::vector<WordId> ids;
    for (const std::string& w : cluster) {
      const WordId id = task.vocab.add(w);
      used_words.insert(w);
      init_word_meta(id);
      task.is_function_word[static_cast<std::size_t>(id)] = true;
      ids.push_back(id);
    }
    task.function_clusters.push_back(std::move(ids));
  }

  // Content concepts. Polarity: neutral_fraction of concepts ~0, the rest
  // split evenly between positive (class 1) and negative (class 0) with
  // magnitude in [0.4, 1.0].
  const std::size_t num_neutral = static_cast<std::size_t>(
      std::llround(config.neutral_fraction *
                   static_cast<double>(config.num_concepts)));
  // Polarity magnitudes are skewed: a minority of "hot" concepts carry most
  // of the evidence (like "great"/"terrible" in real sentiment data), the
  // rest are mild. Classifiers then rely on a few salient words per
  // document — the words the attacks find and replace.
  std::vector<double> concept_polarity(config.num_concepts, 0.0);
  for (std::size_t c = num_neutral; c < config.num_concepts; ++c) {
    const double magnitude = rng.bernoulli(0.35) ? rng.uniform(0.8, 1.0)
                                                 : rng.uniform(0.05, 0.2);
    const double sign = (c % 2 == 0) ? 1.0 : -1.0;
    concept_polarity[c] = sign * magnitude;
  }

  task.concept_members.resize(config.num_concepts);
  for (std::size_t c = 0; c < config.num_concepts; ++c) {
    for (std::size_t j = 0; j < config.cluster_size; ++j) {
      const std::string word = make_pseudo_word(rng, used_words);
      const WordId id = task.vocab.add(word);
      init_word_meta(id);
      const double frac =
          static_cast<double>(j) /
          static_cast<double>(config.cluster_size - 1);
      // Surface strength decays steeply and flips sign at the tail
      // (canonical 1.0 down to 1 - strength_decay); meaning decays toward
      // a softened-but-same-sign residue (weak variants read like hedged
      // versions of the canonical word).
      const double s = 1.0 - config.strength_decay * frac;
      const double m = 1.0 - 0.45 * frac;
      task.concept_of_word[static_cast<std::size_t>(id)] =
          static_cast<int>(c);
      task.variant_of_word[static_cast<std::size_t>(id)] =
          static_cast<int>(j);
      task.word_polarity[static_cast<std::size_t>(id)] =
          concept_polarity[c] * s;
      task.word_meaning[static_cast<std::size_t>(id)] =
          concept_polarity[c] * m;
      task.concept_members[c].push_back(id);
    }
  }

  // Noise words.
  std::vector<WordId> noise_ids;
  for (std::size_t i = 0; i < config.num_noise_words; ++i) {
    const WordId id = task.vocab.add(make_noise_word(rng, used_words));
    init_word_meta(id);
    task.is_noise_word[static_cast<std::size_t>(id)] = true;
    noise_ids.push_back(id);
  }

  // --- Paragram-style embeddings ------------------------------------------
  // embedding(word) = cluster_center + surface_polarity * scale * u + noise,
  // where u is one shared unit direction. Cluster siblings end up close;
  // the classifier-exploitable evidence is linearly readable along u.
  task.paragram = Matrix(static_cast<std::size_t>(task.vocab.size()), dim);
  Vector pol_dir(dim);
  {
    for (std::size_t d = 0; d < dim; ++d) {
      pol_dir[d] = static_cast<float>(rng.normal());
    }
    const double norm = std::sqrt(det_dot(pol_dir.data(), pol_dir.data(), dim));
    for (float& v : pol_dir) v = static_cast<float>(v / norm);
  }
  const double center_scale = 1.0 / std::sqrt(static_cast<double>(dim));
  auto fill_embedding = [&](WordId id, const Vector& center) {
    const auto widx = static_cast<std::size_t>(id);
    // The evidence coordinate mixes the word's true surface evidence with
    // an idiosyncratic per-word component (see embed_evidence_fidelity):
    // pretrained embeddings are correlated with, but not equal to, what a
    // downstream classifier learns about each word.
    const double fidelity = config.embed_evidence_fidelity;
    const double pol = task.word_polarity[widx];
    const double magnitude =
        task.concept_of_word[widx] >= 0
            ? std::abs(task.word_meaning[widx])
            : 0.0;
    const double embed_pol =
        fidelity * pol + (1.0 - fidelity) * magnitude * rng.normal(0.0, 1.0);
    for (std::size_t d = 0; d < dim; ++d) {
      const double noise =
          rng.normal(0.0, config.cluster_noise * center_scale);
      task.paragram(widx, d) = static_cast<float>(
          center[d] + embed_pol * config.polarity_embed_scale * pol_dir[d] +
          noise);
    }
  };
  auto random_center = [&]() {
    Vector center(dim);
    for (std::size_t d = 0; d < dim; ++d) {
      center[d] = static_cast<float>(rng.normal(0.0, center_scale));
    }
    return center;
  };
  for (const auto& cluster : task.function_clusters) {
    const Vector center = random_center();
    for (WordId id : cluster) fill_embedding(id, center);
  }
  for (const auto& members : task.concept_members) {
    const Vector center = random_center();
    for (WordId id : members) fill_embedding(id, center);
  }
  for (WordId id : noise_ids) fill_embedding(id, random_center());
  // <unk> stays at the origin; <pad> stays at zero as well.

  // Aligned / misaligned / neutral concept pools, plus mild-only variants
  // used by low-margin documents.
  std::vector<std::size_t> pos_concepts;
  std::vector<std::size_t> neg_concepts;
  std::vector<std::size_t> neutral_concepts;
  std::vector<std::size_t> pos_mild;
  std::vector<std::size_t> neg_mild;
  for (std::size_t c = 0; c < config.num_concepts; ++c) {
    if (concept_polarity[c] > 0.05) {
      pos_concepts.push_back(c);
      if (concept_polarity[c] < 0.5) pos_mild.push_back(c);
    } else if (concept_polarity[c] < -0.05) {
      neg_concepts.push_back(c);
      if (concept_polarity[c] > -0.5) neg_mild.push_back(c);
    } else {
      neutral_concepts.push_back(c);
    }
  }
  if (pos_concepts.empty() || neg_concepts.empty()) {
    throw std::invalid_argument("make_task: need polar concepts on each side");
  }
  if (pos_mild.empty()) pos_mild = pos_concepts;
  if (neg_mild.empty()) neg_mild = neg_concepts;

  // --- Document generation -------------------------------------------------
  auto gen_document = [&](int label) {
    Document doc;
    doc.label = label;
    const bool positive = label == 1;
    // Low-margin documents draw only from mild concepts.
    const bool mild_doc = rng.bernoulli(config.mild_doc_fraction);
    const auto& pos_pool = mild_doc ? pos_mild : pos_concepts;
    const auto& neg_pool = mild_doc ? neg_mild : neg_concepts;
    const std::size_t num_sentences =
        config.min_sentences +
        rng.uniform_index(config.max_sentences - config.min_sentences + 1);
    for (std::size_t si = 0; si < num_sentences; ++si) {
      const std::size_t len =
          config.min_words_per_sentence +
          rng.uniform_index(config.max_words_per_sentence -
                            config.min_words_per_sentence + 1);
      Sentence sentence;
      sentence.reserve(len);
      for (std::size_t wi = 0; wi < len; ++wi) {
        const double roll = rng.uniform();
        // The first slot of each sentence is always a content word (keeps
        // sentences contentful); its concept is drawn like any other so
        // concept frequency stays label-neutral.
        const bool force_content = wi == 0;
        if (!force_content && roll < config.function_word_rate) {
          const auto& cluster = task.function_clusters[rng.uniform_index(
              task.function_clusters.size())];
          // Function words skew to the canonical pair for LM naturalness.
          const std::size_t v = rng.bernoulli(0.75)
                                    ? rng.uniform_index(2)
                                    : rng.uniform_index(cluster.size());
          sentence.push_back(cluster[v]);
          continue;
        }
        if (!force_content && !noise_ids.empty() &&
            roll < config.function_word_rate + config.noise_token_rate) {
          sentence.push_back(noise_ids[rng.uniform_index(noise_ids.size())]);
          continue;
        }
        // Content word.
        double pick = rng.uniform();
        const std::vector<std::size_t>* pool = nullptr;
        bool aligned = false;
        if (pick < config.aligned_concept_rate) {
          pool = positive ? &pos_pool : &neg_pool;
          aligned = true;
        } else if (pick < config.aligned_concept_rate +
                              (1.0 - config.aligned_concept_rate) / 2.0 &&
                   !neutral_concepts.empty()) {
          pool = &neutral_concepts;
        } else {
          pool = positive ? &neg_pool : &pos_pool;
        }
        const std::size_t c = (*pool)[rng.uniform_index(pool->size())];
        // Aligned concepts use strong variants; misaligned use weak ones.
        // Neutral concepts have no label signal: uniform variant.
        std::size_t v;
        if (concept_polarity[c] == 0.0) {
          v = rng.uniform_index(config.cluster_size);
        } else {
          const bool concept_supports_label =
              (concept_polarity[c] > 0.0) == positive;
          v = sample_variant(rng, config.cluster_size, concept_supports_label,
                             config.variant_label_correlation);
          (void)aligned;
        }
        sentence.push_back(task.concept_members[c][v]);
      }
      doc.sentences.push_back(std::move(sentence));
    }
    return doc;
  };

  auto gen_split = [&](std::size_t count) {
    Dataset data;
    data.num_classes = 2;
    data.docs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      const int label = rng.bernoulli(config.class1_fraction) ? 1 : 0;
      data.docs.push_back(gen_document(label));
    }
    return data;
  };
  task.train = gen_split(config.num_train);
  task.test = gen_split(config.num_test);
  return task;
}

SynthTask make_news(std::uint64_t seed) {
  SynthConfig config;
  config.name = "News";
  config.seed = seed;
  config.num_train = 700;
  config.num_test = 80;
  config.class1_fraction = 0.5;  // paper: fake:real is 1:1
  config.min_sentences = 6;
  config.max_sentences = 10;
  config.min_words_per_sentence = 7;
  config.max_words_per_sentence = 13;
  config.num_concepts = 48;
  config.variant_label_correlation = 0.9;
  return make_task(config);
}

SynthTask make_trec07p(std::uint64_t seed) {
  SynthConfig config;
  config.name = "Trec07p";
  config.seed = seed;
  config.num_train = 900;
  config.num_test = 80;
  config.class1_fraction = 2.0 / 3.0;  // paper: ham:spam is 1:2
  config.min_sentences = 4;
  config.max_sentences = 8;
  config.min_words_per_sentence = 6;
  config.max_words_per_sentence = 11;
  config.noise_token_rate = 0.12;  // corrupted tokens; LM filter disabled
  config.mild_doc_fraction = 0.25; // spam is rarely subtle
  
  config.variant_label_correlation = 0.92;
  return make_task(config);
}

SynthTask make_yelp(std::uint64_t seed) {
  SynthConfig config;
  config.name = "Yelp";
  config.seed = seed;
  config.num_train = 1100;
  config.num_test = 90;
  config.class1_fraction = 0.5;
  config.min_sentences = 3;
  config.max_sentences = 6;
  config.min_words_per_sentence = 5;
  config.max_words_per_sentence = 10;
  config.num_concepts = 40;
  config.variant_label_correlation = 0.95;  // reviews rely on polar words
  return make_task(config);
}

std::vector<SynthTask> make_all_tasks(std::uint64_t seed) {
  std::vector<SynthTask> tasks;
  tasks.push_back(make_news(seed * 101 + 11));
  tasks.push_back(make_trec07p(seed * 101 + 22));
  tasks.push_back(make_yelp(seed * 101 + 33));
  return tasks;
}

}  // namespace advtext
