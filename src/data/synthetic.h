// Synthetic text-classification task generator.
//
// The paper evaluates on three real corpora (fake-news repo, TREC07p spam,
// Yelp polarity) with pretrained word2vec / Paragram-SL999 embeddings and a
// Para-NMT-50M sentence paraphraser. None of those artifacts is available
// offline, so this module synthesizes tasks with the properties the attacks
// actually exploit (see DESIGN.md §1):
//
//  * Words are organized into *synonym clusters* ("concepts"). Every concept
//    carries a latent polarity (evidence toward class 1) and each cluster
//    member j has a surface-strength multiplier s_j that decays across the
//    cluster — the canonical variant (j=0) carries full evidence, later
//    variants are weaker or mildly opposite.
//  * During generation, the choice of variant correlates with the document
//    label (strong variants co-occur with the label their concept supports).
//    Trained classifiers therefore latch onto variant identity — a
//    non-robust surface feature — while the *meaning* (concept polarity,
//    what a human reads) is almost unchanged across a cluster. Swapping a
//    canonical word for a weak cluster sibling is exactly the kind of
//    label-preserving perturbation the paper's attacks perform.
//  * Paragram-style embeddings place cluster siblings near each other and
//    expose the surface evidence along a shared direction, so WMD-based
//    neighbour sets recover the clusters and classifier gradients point at
//    the influential words.
//  * A deterministic "oracle" labels documents from concept meanings only;
//    it is the stand-in for the human raters of Table 4.
//
// All generation is seeded and fully deterministic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/tensor/tensor.h"
#include "src/text/corpus.h"
#include "src/text/vocab.h"
#include "src/util/rng.h"

namespace advtext {

/// Knobs for one synthetic task. Defaults are a mid-size task; the
/// make_news/make_trec07p/make_yelp factories override them to mirror the
/// per-dataset shapes in the paper's Table 6 (scaled down).
struct SynthConfig {
  std::string name = "synth";
  std::uint64_t seed = 1;

  std::size_t num_train = 900;
  std::size_t num_test = 80;
  /// Fraction of documents with label 1 (paper: Trec07p spam ratio is 2/3).
  double class1_fraction = 0.5;

  std::size_t num_concepts = 48;    ///< content synonym clusters
  std::size_t cluster_size = 10;    ///< words per cluster (paper: k=15 nbrs)
  double neutral_fraction = 0.3;    ///< concepts with ~zero polarity
  std::size_t num_noise_words = 24; ///< corrupted tokens (Trec07p-style)

  std::size_t min_sentences = 4;
  std::size_t max_sentences = 8;
  std::size_t min_words_per_sentence = 6;
  std::size_t max_words_per_sentence = 12;

  double function_word_rate = 0.35;  ///< fraction of function-word slots
  double noise_token_rate = 0.0;     ///< fraction of corrupted-token slots
  /// P(concept sign matches doc label). Near 0.5 the *concept identity*
  /// carries almost no label signal, so classifiers are forced onto the
  /// variant-polarity direction — the brittle feature the attacks flip.
  double aligned_concept_rate = 0.5;
  /// 0 = variant chosen uniformly; 1 = strongly label-correlated variants.
  double variant_label_correlation = 0.97;
  /// Scales how steeply surface strength s_j decays across a cluster. The
  /// weakest variant carries surface evidence (1 - strength_decay) times
  /// the canonical one — with the default 1.5 it mildly *flips* sign,
  /// which is what gives the attacks room to work while meaning decays
  /// far more slowly (see word_meaning).
  double strength_decay = 1.6;

  std::size_t embedding_dim = 16;
  /// Magnitude of the shared polarity direction in the paragram embeddings.
  /// Kept small so WMD neighbourhoods span whole synonym clusters (the
  /// Paragram property) while a linear probe can still read the evidence.
  double polarity_embed_scale = 0.40;
  /// Within-cluster embedding noise (controls neighbour-set tightness).
  double cluster_noise = 0.08;
  /// How faithfully the embedding's evidence coordinate tracks the word's
  /// actual (learned) surface evidence: 1 = perfectly linear (first-order
  /// attacks become near-exact, unlike on real embeddings), 0 = the
  /// geometry says nothing about the evidence (gradient-based attacks
  /// collapse entirely). Real pretrained embeddings sit in between; the
  /// default keeps gradients *partially* informative, reproducing the
  /// paper's ordering greedy > gradient.
  double embed_evidence_fidelity = 0.55;
  /// Fraction of documents built only from mild concepts: low-margin
  /// documents, the ones real attacks flip first (real corpora mix
  /// strongly and weakly opinionated texts).
  double mild_doc_fraction = 0.4;
};

/// A fully materialized synthetic task: data, vocabulary, embeddings, and
/// the latent semantics needed by the human-evaluation simulator.
struct SynthTask {
  SynthConfig config;
  Vocab vocab;
  Dataset train;
  Dataset test;

  /// word id -> concept id, or -1 for function/noise/special words.
  std::vector<int> concept_of_word;
  /// word id -> cluster-member index (0 = canonical), or -1.
  std::vector<int> variant_of_word;
  /// word id -> surface evidence toward class 1 (what classifiers learn).
  std::vector<double> word_polarity;
  /// word id -> meaning evidence toward class 1 (what the oracle reads);
  /// nearly constant within a cluster.
  std::vector<double> word_meaning;
  /// true for hand-listed function words (usable in paraphrase rules).
  std::vector<bool> is_function_word;
  /// true for corrupted/noise tokens.
  std::vector<bool> is_noise_word;

  /// Paragram-style word embeddings, vocab.size() x embedding_dim.
  /// Stands in for both pretrained word2vec (classifier input layer) and
  /// Paragram-SL999 (paraphrase neighbourhood space).
  Matrix paragram;

  /// Cluster members (word ids) per concept, canonical first.
  std::vector<std::vector<WordId>> concept_members;
  /// Function-word clusters (interchangeable within a cluster).
  std::vector<std::vector<WordId>> function_clusters;

  /// Meaning score of a document: sum of word_meaning over its tokens.
  double meaning_score(const Document& doc) const;

  /// Deterministic human-proxy label: sign of meaning_score (>= 0 -> 1).
  int oracle_label(const Document& doc) const;

  /// |meaning_score| normalized by content-word count; low values mean even
  /// a human would be unsure (used by the Table 4 simulator).
  double oracle_margin(const Document& doc) const;
};

/// Builds a task from a config.
SynthTask make_task(const SynthConfig& config);

/// Fake-news-detection-shaped task: few, long documents.
SynthTask make_news(std::uint64_t seed = 11);

/// Spam-filtering-shaped task: 1:2 ham:spam ratio, corrupted tokens
/// (the paper disables the LM filter on Trec07p for this reason).
SynthTask make_trec07p(std::uint64_t seed = 22);

/// Sentiment-analysis-shaped task: many short, strongly polar documents.
SynthTask make_yelp(std::uint64_t seed = 33);

/// All three, in paper order (News, Trec07p, Yelp).
std::vector<SynthTask> make_all_tasks(std::uint64_t seed = 7);

}  // namespace advtext
