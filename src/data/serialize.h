// Binary serialization for whole synthetic tasks.
//
// The top of the typed io:: stack: composes the vocab/dataset serializers
// (src/text/serialize.h), the matrix serializer (src/tensor/serialize.h)
// and the envelope (src/util/serialize.h) into one durable artifact per
// task, so every attack run can start from the identical corpus.
#pragma once

#include <string>

#include "src/data/synthetic.h"

namespace advtext::io {

/// Saves / loads a complete synthetic task (config, data, semantics,
/// embeddings) so every attack run can start from the identical corpus.
void save_task(const SynthTask& task, const std::string& path);
SynthTask load_task(const std::string& path);

}  // namespace advtext::io
