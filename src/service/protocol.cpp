#include "src/service/protocol.h"

#include <sstream>
#include <string>

#include "src/text/serialize.h"
#include "src/util/serialize.h"

namespace advtext {

const char* to_string(RejectReason reason) {
  switch (reason) {
    case RejectReason::kOverload:
      return "overload";
    case RejectReason::kClientBudgetExhausted:
      return "client_budget_exhausted";
    case RejectReason::kUnknownModel:
      return "unknown_model";
    case RejectReason::kShuttingDown:
      return "shutting_down";
    case RejectReason::kMalformed:
      return "malformed";
    case RejectReason::kResource:
      return "resource";
    case RejectReason::kInternal:
      return "internal";
  }
  return "unknown";
}

namespace {

void write_type(std::ostream& out, MessageType type) {
  io::write_u64(out, static_cast<std::uint64_t>(type));
}

MessageType decode_type(std::uint64_t raw) {
  if (raw < static_cast<std::uint64_t>(MessageType::kJobRequest) ||
      raw > static_cast<std::uint64_t>(MessageType::kJobComplete)) {
    throw ProtocolError("protocol: unknown message type tag " +
                        std::to_string(raw));
  }
  return static_cast<MessageType>(raw);
}

void expect_type(std::istream& in, MessageType want, const char* name) {
  const MessageType got = decode_type(io::read_u64(in));
  if (got != want) {
    throw ProtocolError(std::string("protocol: expected a ") + name +
                        " payload, got message type " +
                        std::to_string(static_cast<std::uint64_t>(got)));
  }
}

/// Every decoder ends here: trailing bytes mean the peer and we disagree
/// about the message layout — reject rather than silently ignore.
void expect_consumed(std::istream& in, const char* name) {
  if (in.peek() != std::char_traits<char>::eof()) {
    throw ProtocolError(std::string("protocol: trailing bytes after ") +
                        name + " payload");
  }
}

TerminationReason read_wire_termination(std::istream& in) {
  const std::uint64_t raw = io::read_u64(in);
  if (raw > static_cast<std::uint64_t>(TerminationReason::kError)) {
    throw ProtocolError("protocol: invalid termination reason " +
                        std::to_string(raw));
  }
  return static_cast<TerminationReason>(raw);
}

RejectReason read_wire_reject_reason(std::istream& in) {
  const std::uint64_t raw = io::read_u64(in);
  if (raw < static_cast<std::uint64_t>(RejectReason::kOverload) ||
      raw > static_cast<std::uint64_t>(RejectReason::kResource)) {
    throw ProtocolError("protocol: invalid reject reason " +
                        std::to_string(raw));
  }
  return static_cast<RejectReason>(raw);
}

}  // namespace

std::string encode_job_request(const JobRequest& request) {
  std::ostringstream out;
  write_type(out, MessageType::kJobRequest);
  io::write_string(out, request.client);
  io::write_string(out, request.model);
  io::write_u64(out, request.max_docs);
  io::write_double(out, request.deadline_ms);
  io::write_u64(out, request.max_queries);
  io::write_double(out, request.job_deadline_ms);
  io::write_u64(out, request.job_max_queries);
  io::write_double(out, request.sentence_fraction);
  io::write_double(out, request.word_fraction);
  io::write_u64(out, request.method);
  return out.str();
}

std::string encode_job_accepted(const JobAccepted& accepted) {
  std::ostringstream out;
  write_type(out, MessageType::kJobAccepted);
  io::write_u64(out, accepted.job_id);
  return out.str();
}

std::string encode_job_rejected(const JobRejected& rejected) {
  std::ostringstream out;
  write_type(out, MessageType::kJobRejected);
  io::write_u64(out, static_cast<std::uint64_t>(rejected.reason));
  io::write_string(out, rejected.message);
  return out.str();
}

std::string encode_doc_result(const DocRecord& record) {
  std::ostringstream out;
  write_type(out, MessageType::kDocResult);
  write_record(out, record);
  return out.str();
}

std::string encode_job_complete(const JobComplete& complete) {
  std::ostringstream out;
  write_type(out, MessageType::kJobComplete);
  io::write_u64(out, complete.job_id);
  io::write_u64(out, static_cast<std::uint64_t>(complete.termination));
  io::write_u64(out, complete.docs_evaluated);
  io::write_u64(out, complete.docs_attacked);
  io::write_u64(out, complete.docs_failed);
  io::write_u64(out, complete.sweep_queries_used);
  io::write_u64(out, complete.cache_hits);
  io::write_u64(out, complete.cache_misses);
  io::write_u64(out, complete.queries_saved);
  io::write_double(out, complete.success_rate);
  io::write_double(out, complete.adversarial_accuracy);
  return out.str();
}

MessageType peek_type(const std::string& payload) {
  std::istringstream in(payload);
  try {
    return decode_type(io::read_u64(in));
  } catch (const ProtocolError&) {
    throw;
  } catch (const std::runtime_error& error) {
    // A truncated tag read surfaces as an io:: error; it is still a
    // malformed payload, so report it as one.
    throw ProtocolError(std::string("protocol: unreadable message type: ") +
                        error.what());
  }
}

namespace {

/// Runs a decoder body, converting io:: stream failures (truncation, size
/// guards) into ProtocolError so callers see exactly one malformed-input
/// exception type.
template <typename T, typename Fn>
T decode_payload(const std::string& payload, const char* name, Fn body) {
  std::istringstream in(payload);
  try {
    T value = body(in);
    expect_consumed(in, name);
    return value;
  } catch (const ProtocolError&) {
    throw;
  } catch (const std::runtime_error& error) {
    throw ProtocolError(std::string("protocol: malformed ") + name +
                        " payload: " + error.what());
  }
}

}  // namespace

JobRequest decode_job_request(const std::string& payload) {
  return decode_payload<JobRequest>(
      payload, "JobRequest", [](std::istream& in) {
        expect_type(in, MessageType::kJobRequest, "JobRequest");
        JobRequest request;
        request.client = io::read_string(in);
        request.model = io::read_string(in);
        request.max_docs = io::read_u64(in);
        request.deadline_ms = io::read_double(in);
        request.max_queries = io::read_u64(in);
        request.job_deadline_ms = io::read_double(in);
        request.job_max_queries = io::read_u64(in);
        request.sentence_fraction = io::read_double(in);
        request.word_fraction = io::read_double(in);
        request.method = io::read_u64(in);
        if (request.method > 2) {
          throw ProtocolError("protocol: unknown word-attack method " +
                              std::to_string(request.method));
        }
        if (request.client.empty()) {
          throw ProtocolError(
              "protocol: JobRequest needs a non-empty client name");
        }
        return request;
      });
}

JobAccepted decode_job_accepted(const std::string& payload) {
  return decode_payload<JobAccepted>(
      payload, "JobAccepted", [](std::istream& in) {
        expect_type(in, MessageType::kJobAccepted, "JobAccepted");
        JobAccepted accepted;
        accepted.job_id = io::read_u64(in);
        return accepted;
      });
}

JobRejected decode_job_rejected(const std::string& payload) {
  return decode_payload<JobRejected>(
      payload, "JobRejected", [](std::istream& in) {
        expect_type(in, MessageType::kJobRejected, "JobRejected");
        JobRejected rejected;
        rejected.reason = read_wire_reject_reason(in);
        rejected.message = io::read_string(in);
        return rejected;
      });
}

DocRecord decode_doc_result(const std::string& payload) {
  return decode_payload<DocRecord>(
      payload, "DocResult", [](std::istream& in) {
        expect_type(in, MessageType::kDocResult, "DocResult");
        return read_record(in);
      });
}

JobComplete decode_job_complete(const std::string& payload) {
  return decode_payload<JobComplete>(
      payload, "JobComplete", [](std::istream& in) {
        expect_type(in, MessageType::kJobComplete, "JobComplete");
        JobComplete complete;
        complete.job_id = io::read_u64(in);
        complete.termination = read_wire_termination(in);
        complete.docs_evaluated = io::read_u64(in);
        complete.docs_attacked = io::read_u64(in);
        complete.docs_failed = io::read_u64(in);
        complete.sweep_queries_used = io::read_u64(in);
        complete.cache_hits = io::read_u64(in);
        complete.cache_misses = io::read_u64(in);
        complete.queries_saved = io::read_u64(in);
        complete.success_rate = io::read_double(in);
        complete.adversarial_accuracy = io::read_double(in);
        return complete;
      });
}

void write_record(std::ostream& out, const DocRecord& record) {
  io::write_u64(out, record.doc_index);
  io::write_u64(out, record.kind);
  io::write_u64(out, record.retried);
  io::write_u64(out, record.wmd_to_sinkhorn);
  io::write_u64(out, record.wmd_to_lower);
  if (record.kind == 1) {
    io::write_u64(out, record.flipped);
    io::write_u64(out, record.attack.success ? 1 : 0);
    io::write_u64(out, static_cast<std::uint64_t>(record.attack.termination));
    io::write_double(out, record.attack.final_target_proba);
    io::write_u64(out, record.attack.sentences_changed);
    io::write_u64(out, record.attack.words_changed);
    io::write_u64(out, record.attack.queries);
    // attack.seconds deliberately omitted: timing is not replayable state,
    // and leaving it out keeps result streams bitwise-deterministic.
    io::write_document(out, record.attack.adv_doc);
  } else if (record.kind == 2) {
    io::write_u64(out, static_cast<std::uint64_t>(record.attack.termination));
    io::write_string(out, record.error);
  }
}

DocRecord read_record(std::istream& in) {
  DocRecord record;
  record.doc_index = io::read_u64(in);
  record.kind = io::read_u64(in);
  if (record.kind > 2) {
    throw ProtocolError("protocol: unknown DocRecord kind " +
                        std::to_string(record.kind));
  }
  record.retried = io::read_u64(in);
  record.wmd_to_sinkhorn = io::read_u64(in);
  record.wmd_to_lower = io::read_u64(in);
  if (record.kind == 1) {
    record.flipped = io::read_u64(in);
    record.attack.success = io::read_u64(in) != 0;
    record.attack.termination = read_wire_termination(in);
    record.attack.final_target_proba = io::read_double(in);
    record.attack.sentences_changed =
        static_cast<std::size_t>(io::read_u64(in));
    record.attack.words_changed = static_cast<std::size_t>(io::read_u64(in));
    record.attack.queries = static_cast<std::size_t>(io::read_u64(in));
    record.attack.adv_doc = io::read_document(in);
  } else if (record.kind == 2) {
    record.attack.termination = read_wire_termination(in);
    record.error = io::read_string(in);
  }
  return record;
}

}  // namespace advtext
