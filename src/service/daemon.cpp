#include "src/service/daemon.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/util/check.h"
#include "src/util/io_file.h"
#include "src/util/serialize.h"
#include "src/util/stop_token.h"

namespace advtext {

namespace {

constexpr const char* kJournalTag = "advtextd-job";
constexpr const char* kResultTag = "advtextd-result";

/// Consecutive missing job ids tolerated while scanning the journal
/// directory: a failed journal write may leave a hole in the id sequence,
/// and recovery must not orphan every job behind it.
constexpr std::uint64_t kRecoveryScanSlack = 16;

WordAttackMethod decode_method(std::uint64_t method) {
  switch (method) {
    case 1:
      return WordAttackMethod::kObjectiveGreedy;
    case 2:
      return WordAttackMethod::kGradient;
    default:
      return WordAttackMethod::kGradientGuidedGreedy;
  }
}

/// The job-wide wall clock granted at admission (and re-granted, fresh, to
/// recovered jobs: a Deadline is a live admission construct on the
/// monotonic clock, not replayable state — the *results* stay bitwise
/// deterministic regardless, because timing never enters them).
Deadline admission_deadline(const JobRequest& request,
                            const DaemonConfig& config) {
  double ms = request.job_deadline_ms;
  if (config.max_job_deadline_ms > 0.0 &&
      (ms <= 0.0 || ms > config.max_job_deadline_ms)) {
    ms = config.max_job_deadline_ms;
  }
  return ms > 0.0 ? Deadline::after_ms(ms) : Deadline::unlimited();
}

/// Best-effort frame send: the peer may be gone; that is its problem, not
/// the daemon's. Returns false when the write failed.
bool try_write_frame(Connection& conn, const std::string& payload) {
  if (!conn.valid()) return false;
  try {
    conn.write_frame(payload);
    return true;
  } catch (const std::runtime_error&) {
    return false;
  }
}

/// A result file is a done-marker only if it is a complete, checksummed
/// result artifact. Presence alone is not enough: a torn write can leave a
/// partial file at the final path, and load_artifact's footer-less legacy
/// fallback must not vouch for such a fragment.
bool result_artifact_valid(const std::string& path) {
  try {
    io::ArtifactInfo info;
    std::istringstream in(io::load_artifact(path, &info));
    if (!info.checksummed) return false;
    io::read_magic(in);
    return io::read_string(in) == kResultTag;
  } catch (const std::runtime_error&) {
    return false;
  }
}

std::string encode_result_artifact(std::uint64_t job_id,
                                   const JobComplete& summary,
                                   const std::string& record_bytes,
                                   std::uint64_t record_count) {
  std::ostringstream out;
  io::write_magic(out);
  io::write_string(out, kResultTag);
  io::write_u64(out, job_id);
  io::write_u64(out, static_cast<std::uint64_t>(summary.termination));
  io::write_u64(out, summary.docs_evaluated);
  io::write_u64(out, summary.docs_attacked);
  io::write_u64(out, summary.docs_failed);
  io::write_u64(out, summary.sweep_queries_used);
  io::write_double(out, summary.success_rate);
  io::write_double(out, summary.adversarial_accuracy);
  io::write_u64(out, record_count);
  out << record_bytes;
  return out.str();
}

}  // namespace

AttackDaemon::AttackDaemon(const SynthTask& task,
                           const TaskAttackContext& context,
                           std::vector<ServedModel> models,
                           const DaemonConfig& config)
    : task_(task), context_(context), config_(config),
      retry_(config.io_retry) {
  ADVTEXT_CHECK(!config_.state_dir.empty())
      << "AttackDaemon needs a state_dir (its recoverable state lives there)";
  ADVTEXT_CHECK(config_.workers >= 1) << "AttackDaemon needs >= 1 worker";
  ADVTEXT_CHECK(!models.empty()) << "AttackDaemon needs a served model";
  for (ServedModel& served : models) {
    ADVTEXT_CHECK(served.model != nullptr)
        << "AttackDaemon: served model '" << served.name << "' is null";
    const bool inserted =
        models_.emplace(served.name, served.model).second;
    ADVTEXT_CHECK(inserted)
        << "AttackDaemon: duplicate served model name '" << served.name
        << "'";
  }
  if (::mkdir(config_.state_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    throw std::runtime_error("advtextd: cannot create state dir '" +
                             config_.state_dir +
                             "': " + std::strerror(errno));
  }
}

std::string AttackDaemon::job_path(std::uint64_t id,
                                   const char* suffix) const {
  return config_.state_dir + "/job" + std::to_string(id) + suffix;
}

const TextClassifier* AttackDaemon::find_model(
    const std::string& name) const {
  const auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second;
}

void AttackDaemon::record_io_retries(const Outcome<std::size_t>& outcome) {
  if (outcome.ok() && outcome.value() > 1) {
    stats_.io_retries += outcome.value() - 1;
  }
}

void AttackDaemon::handle_connection(Connection conn) {
  try {
    conn.set_read_timeout_ms(config_.read_timeout_ms);
    std::string payload;
    if (!conn.read_frame(payload)) return;  // connected, then left cleanly
    const JobRequest request = decode_job_request(payload);

    // Admission control under the lock: the job is typed-rejected here or
    // owns a journaled id beyond here — never silently queued unbounded.
    std::uint64_t id = 0;
    bool rejected = false;
    JobRejected rejection;
    MemoryReservation memory;
    {
      MutexLock lock(mu_);
      if (closing_) {
        rejected = true;
        rejection = {RejectReason::kShuttingDown, "daemon is draining"};
      } else if (find_model(request.model) == nullptr) {
        rejected = true;
        ++stats_.rejected_unknown_model;
        rejection = {RejectReason::kUnknownModel,
                     "no served model named '" + request.model + "'"};
      } else if (queue_.size() >= config_.max_pending_jobs) {
        rejected = true;
        ++stats_.rejected_overload;
        rejection = {RejectReason::kOverload,
                     "pending queue is full (" +
                         std::to_string(config_.max_pending_jobs) +
                         " jobs); retry later"};
      } else {
        if (config_.per_client_max_queries > 0) {
          auto& slot = client_budgets_[request.client];
          if (slot == nullptr) {
            slot = std::make_unique<QueryBudget>(
                config_.per_client_max_queries);
          }
          if (slot->exhausted()) {
            rejected = true;
            ++stats_.rejected_budget;
            rejection = {RejectReason::kClientBudgetExhausted,
                         "client '" + request.client +
                             "' has spent its query budget"};
          }
        }
        if (!rejected) {
          // Resource governance: a job that cannot reserve its working
          // memory is shed with a typed rejection — memory pressure behaves
          // like overload, never like an OOM abort.
          memory = MemoryReservation::try_acquire(config_.job_memory_bytes);
          if (!memory.ok()) {
            rejected = true;
            ++stats_.rejected_resource;
            rejection = {RejectReason::kResource,
                         "process memory budget exhausted; retry later"};
          }
        }
        if (!rejected) {
          id = next_job_id_++;
          ++stats_.jobs_accepted;
        }
      }
    }
    if (rejected) {
      (void)try_write_frame(conn, encode_job_rejected(rejection));
      return;
    }

    // Journal before acknowledging: "accepted" must mean "survives a
    // SIGKILL". The journal is the request verbatim, so recovery re-runs
    // exactly what was admitted.
    std::ostringstream journal;
    io::write_magic(journal);
    io::write_string(journal, kJournalTag);
    io::write_u64(journal, id);
    io::write_string(journal, encode_job_request(request));
    const std::string journal_path = job_path(id, ".job");
    const Outcome<std::size_t> saved = retry_.run(
        "job journal write",
        [&] { io::save_artifact(journal_path, journal.str()); });
    {
      MutexLock lock(mu_);
      record_io_retries(saved);
      if (!saved.ok()) {
        // Unjournaled means unaccepted: give the id back statistically
        // (the id hole itself is fine — recovery scans past holes).
        --stats_.jobs_accepted;
        stats_.warnings.push_back("job-journal-failed: " +
                                  saved.failure().message);
      }
    }
    if (!saved.ok()) {
      // Drop any torn fragment the failed write left at the final path:
      // "unjournaled means unaccepted", and recovery must not conjure a
      // kError result for an id the client was told is not accepted.
      (void)remove_file(journal_path);
      (void)try_write_frame(
          conn, encode_job_rejected(
                    {RejectReason::kInternal,
                     "could not journal the job; not accepted"}));
      return;
    }

    // Ack, then enqueue. A failed ack does NOT cancel the job — it is
    // journaled, and journaled jobs always complete; the client just will
    // not see the stream.
    const bool acked =
        try_write_frame(conn, encode_job_accepted(JobAccepted{id}));
    PendingJob job;
    job.id = id;
    job.request = request;
    job.deadline = admission_deadline(request, config_);
    job.memory = std::move(memory);
    if (acked) job.conn = std::make_unique<Connection>(std::move(conn));
    {
      MutexLock lock(mu_);
      queue_.push_back(std::move(job));
      queue_cv_.notify_one();
    }
  } catch (const ProtocolError& error) {
    // Bad bytes kill the conversation, never the daemon. Typed reply is
    // best-effort: the peer may already be gone.
    {
      MutexLock lock(mu_);
      ++stats_.rejected_malformed;
    }
    if (conn.valid()) {
      (void)try_write_frame(
          conn,
          encode_job_rejected({RejectReason::kMalformed, error.what()}));
    }
    // ADVTEXT_ALLOW(severity-drop): connection-scope failure — no job exists yet, so there is no job severity to fold; the drop is counted in accept_failures and warned
  } catch (const std::runtime_error& error) {
    // Transport-level failure (vanished peer, injected service.read /
    // service.write fault): drop the connection, count it, keep serving.
    MutexLock lock(mu_);
    ++stats_.accept_failures;
    stats_.warnings.push_back(std::string("connection-failed: ") +
                              error.what());
  }
}

void AttackDaemon::worker_loop() {
  Heartbeat* const heart = ThreadPool::current();
  while (true) {
    PendingJob job;
    {
      MutexLock lock(mu_);
      while (queue_.empty() && !closing_) {
        (void)queue_cv_.wait_for_ms(mu_, 100);
        // Waiting for work is liveness, not a stall: each wait slice beats
        // so the watchdog only fires on jobs that stop making progress.
        if (heart != nullptr) heart->beat();
      }
      if (StopToken::instance().stop_requested()) {
        // Abandon the queue: every queued job is journaled and will be
        // re-run by recover() on the next start.
        break;
      }
      if (queue_.empty()) break;  // closing_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      run_job(std::move(job));
    } catch (const std::runtime_error& error) {
      // run_job absorbs its own failures; anything surfacing here is
      // unexpected but must not take the worker (and the pool) down.
      MutexLock lock(mu_);
      ++stats_.jobs_errored;
      stats_.worst_job = worse_of(stats_.worst_job, TerminationReason::kError);
      stats_.warnings.push_back(std::string("job-failed: ") + error.what());
    }
  }
}

void AttackDaemon::run_job(PendingJob job) {
  // Register with the watchdog: while this job runs, a stall report on this
  // worker's heartbeat maps back to the job, and every client-connection
  // write serializes through `active` so the stall handler and the worker
  // never race on the socket.
  Heartbeat* const heart = ThreadPool::current();
  auto active = std::make_shared<ActiveJob>();
  active->id = job.id;
  {
    MutexLock conn_lock(active->mu);
    active->conn = job.conn.get();
  }
  if (heart != nullptr) {
    heart->set_tag("job" + std::to_string(job.id));
    heart->beat();
    MutexLock lock(mu_);
    active_jobs_[heart] = active;
  }
  // Deregister on every exit path; past this, the stall handler can no
  // longer reach the (about to die) connection.
  struct Deregister {
    AttackDaemon* daemon;
    Heartbeat* heart;
    std::shared_ptr<ActiveJob> active;
    ~Deregister() {
      {
        MutexLock conn_lock(active->mu);
        active->conn = nullptr;
      }
      if (heart != nullptr) {
        MutexLock lock(daemon->mu_);
        daemon->active_jobs_.erase(heart);
      }
    }
  } deregister{this, heart, active};

  // Exactly-one-terminal-frame send: suppressed if the watchdog already
  // settled this client with a typed kDeadlineExceeded.
  const auto send_terminal = [&](const JobComplete& summary) {
    MutexLock conn_lock(active->mu);
    if (active->settled || active->conn == nullptr) return;
    active->settled = true;
    (void)try_write_frame(*active->conn, encode_job_complete(summary));
  };

  const TextClassifier* model = find_model(job.request.model);
  if (model == nullptr) {
    // Only reachable for recovered jobs whose model set changed across the
    // restart. Persist a kError result so recovery does not loop on it.
    JobComplete summary;
    summary.job_id = job.id;
    summary.termination = TerminationReason::kError;
    const std::string artifact =
        encode_result_artifact(job.id, summary, std::string(), 0);
    const Outcome<std::size_t> saved = retry_.run(
        "result write",
        [&] { io::save_artifact(job_path(job.id, ".result"), artifact); });
    MutexLock lock(mu_);
    record_io_retries(saved);
    ++stats_.jobs_errored;
    stats_.worst_job = worse_of(stats_.worst_job, TerminationReason::kError);
    stats_.warnings.push_back(
        "job " + std::to_string(job.id) + " names unknown model '" +
        job.request.model + "' after recovery; recorded as kError");
    return;
  }

  // Per-client ledger: the pointer is stable (map slots are unique_ptrs and
  // never erased); remaining() is read once so the job's sweep cap is fixed
  // at start.
  QueryBudget* ledger = nullptr;
  std::size_t client_remaining = 0;
  if (config_.per_client_max_queries > 0) {
    MutexLock lock(mu_);
    auto& slot = client_budgets_[job.request.client];
    if (slot == nullptr) {
      slot = std::make_unique<QueryBudget>(config_.per_client_max_queries);
    }
    ledger = slot.get();
    client_remaining = ledger->remaining();
  }

  AttackEvalConfig eval;
  eval.joint.sentence_fraction = job.request.sentence_fraction;
  eval.joint.word_fraction = job.request.word_fraction;
  eval.joint.deadline_ms = job.request.deadline_ms;
  eval.joint.max_queries = static_cast<std::size_t>(job.request.max_queries);
  eval.joint.word_method = decode_method(job.request.method);
  eval.max_docs = static_cast<std::size_t>(job.request.max_docs);
  eval.checkpoint_path = job_path(job.id, ".ckpt");
  eval.checkpoint_every = config_.checkpoint_every;
  eval.resume = file_exists(eval.checkpoint_path);
  eval.threads = 1;  // one worker per job; jobs are the parallelism unit
  eval.query_cache_bytes = config_.query_cache_bytes;
  eval.sweep_deadline = job.deadline;
  std::size_t sweep_cap = static_cast<std::size_t>(job.request.job_max_queries);
  if (ledger != nullptr) {
    // Admission already vetoed an exhausted ledger, but concurrent jobs of
    // the same client may have drained it since; a zero grant must read as
    // "stop almost immediately", not "unlimited".
    const std::size_t grant = client_remaining == 0 ? 1 : client_remaining;
    sweep_cap = sweep_cap == 0 ? grant : (sweep_cap < grant ? sweep_cap : grant);
  }
  eval.sweep_max_queries = sweep_cap;

  // Stream each committed record to the client AND into the result-artifact
  // byte stream. Both use the wire encoding (timing excluded), so the
  // artifact is bitwise-deterministic and the client stream mirrors it.
  std::ostringstream record_bytes;
  std::uint64_t record_count = 0;
  bool client_gone = (job.conn == nullptr);
  eval.on_commit = [&](const DocRecord& record) {
    // Each committed doc is observable progress for the watchdog.
    if (heart != nullptr) heart->beat();
    write_record(record_bytes, record);
    ++record_count;
    if (client_gone) return;
    MutexLock conn_lock(active->mu);
    if (active->settled || active->conn == nullptr) {
      // The watchdog already settled this client with a typed terminal
      // frame; results keep persisting to disk only.
      client_gone = true;
      return;
    }
    Connection* conn = active->conn;
    const std::string frame = encode_doc_result(record);
    const Outcome<std::size_t> sent =
        retry_.run("doc result stream", [&] { conn->write_frame(frame); });
    MutexLock lock(mu_);
    record_io_retries(sent);
    if (!sent.ok()) {
      // The job outlives its client: results still persist to disk.
      client_gone = true;
      ++stats_.stream_write_failures;
    }
  };

  AttackEvalResult result;
  bool ran = false;
  std::string sweep_error;
  for (int attempt = 0; attempt < 2 && !ran; ++attempt) {
    try {
      result = evaluate_attack(*model, task_, context_, eval);
      ran = true;
      // ADVTEXT_ALLOW(severity-drop): first-strike retry — the second strike persists a kError JobComplete just below (!ran path), so a repeated failure does reach the severity lattice
    } catch (const std::runtime_error& error) {
      // A throwing sweep at this level means an unreadable/corrupt
      // checkpoint (per-doc failures are isolated inside the sweep). Drop
      // the checkpoint and retry once from scratch; replayed records from
      // the aborted first try are discarded.
      sweep_error = error.what();
      remove_file(eval.checkpoint_path);
      eval.resume = false;
      record_bytes.str(std::string());
      record_count = 0;
    }
  }
  if (!ran) {
    // Two strikes: persist a kError result so the job is terminally
    // recorded (recovery must not re-run it forever).
    JobComplete summary;
    summary.job_id = job.id;
    summary.termination = TerminationReason::kError;
    const std::string artifact =
        encode_result_artifact(job.id, summary, std::string(), 0);
    const Outcome<std::size_t> saved = retry_.run(
        "result write",
        [&] { io::save_artifact(job_path(job.id, ".result"), artifact); });
    if (!saved.ok()) (void)remove_file(job_path(job.id, ".result"));
    if (!client_gone) send_terminal(summary);
    MutexLock lock(mu_);
    record_io_retries(saved);
    ++stats_.jobs_errored;
    stats_.worst_job = worse_of(stats_.worst_job, TerminationReason::kError);
    stats_.warnings.push_back("job " + std::to_string(job.id) +
                              " failed twice: " + sweep_error);
    return;
  }

  JobComplete summary;
  summary.job_id = job.id;
  summary.termination = result.termination;
  summary.docs_evaluated = result.docs_evaluated;
  summary.docs_attacked = result.docs_attacked;
  summary.docs_failed = result.docs_failed;
  summary.sweep_queries_used = result.sweep_queries_used;
  summary.cache_hits = result.cache_hits;
  summary.cache_misses = result.cache_misses;
  summary.queries_saved = result.queries_saved;
  summary.success_rate = result.success_rate;
  summary.adversarial_accuracy = result.adversarial_accuracy;

  if (result.termination == TerminationReason::kStopped) {
    // Interrupted, not finished: keep the journal and checkpoint so the
    // next start resumes the job; tell the client what happened.
    if (!client_gone) send_terminal(summary);
    MutexLock lock(mu_);
    stats_.worst_job =
        worse_of(stats_.worst_job, TerminationReason::kStopped);
    return;
  }

  // Done: persist the result artifact (the done-marker recovery checks),
  // settle the client's ledger, release the checkpoint, ack the client.
  const std::string artifact = encode_result_artifact(
      job.id, summary, record_bytes.str(), record_count);
  const Outcome<std::size_t> saved = retry_.run(
      "result write",
      [&] { io::save_artifact(job_path(job.id, ".result"), artifact); });
  if (saved.ok()) {
    remove_file(eval.checkpoint_path);
  }
  if (ledger != nullptr) {
    // Post-hoc clamped settlement, same idiom as the sweep budget itself.
    (void)ledger->charge_up_to(result.sweep_queries_used);
  }
  if (!client_gone) send_terminal(summary);
  MutexLock lock(mu_);
  record_io_retries(saved);
  if (!saved.ok()) {
    // The client got its answer but the done-marker did not land: drop any
    // torn fragment and leave journal + checkpoint so recovery re-runs
    // (deterministically) rather than lose the job.
    (void)remove_file(job_path(job.id, ".result"));
    stats_.warnings.push_back("result-write-failed for job " +
                              std::to_string(job.id) + ": " +
                              saved.failure().message);
  }
  ++stats_.jobs_completed;
  stats_.worst_job = worse_of(stats_.worst_job, result.termination);
}

void AttackDaemon::on_worker_stall(const Heartbeat* heart,
                                   const std::string& tag,
                                   double stalled_ms) {
  std::shared_ptr<ActiveJob> active;
  {
    MutexLock lock(mu_);
    ++stats_.jobs_stalled;
    stats_.worst_job =
        worse_of(stats_.worst_job, TerminationReason::kDeadlineExceeded);
    stats_.warnings.push_back(
        "watchdog-stall: '" + tag + "' made no progress for " +
        std::to_string(static_cast<long>(stalled_ms)) + " ms");
    const auto it = active_jobs_.find(heart);
    if (it != active_jobs_.end()) active = it->second;
  }
  if (active == nullptr) return;
  // Best-effort settlement. If the stuck worker is wedged INSIDE a client
  // write (it holds active->mu), skip: the stall is already counted, and
  // blocking the monitor thread here would un-watch every other worker.
  if (!active->mu.try_lock()) return;
  if (!active->settled && active->conn != nullptr) {
    active->settled = true;
    JobComplete summary;
    summary.job_id = active->id;
    summary.termination = TerminationReason::kDeadlineExceeded;
    (void)try_write_frame(*active->conn, encode_job_complete(summary));
  }
  active->mu.unlock();
}

std::size_t AttackDaemon::recover() {
  // Scan the journal directory by id. Holes (failed journal writes) are
  // tolerated up to kRecoveryScanSlack consecutive misses.
  std::vector<std::uint64_t> todo;
  std::uint64_t last_seen = 0;
  std::uint64_t miss_streak = 0;
  for (std::uint64_t id = 1; miss_streak < kRecoveryScanSlack; ++id) {
    // A shutdown request during a long journal scan must win immediately;
    // anything not yet scanned is still journaled and recovers next start.
    if (StopToken::instance().stop_requested()) break;
    if (!file_exists(job_path(id, ".job"))) {
      ++miss_streak;
      continue;
    }
    miss_streak = 0;
    last_seen = id;
    // Validate the done-marker, not just its existence: partial/corrupt
    // results re-run (idempotent — the re-run's save overwrites them with
    // the bitwise-identical true result).
    if (!file_exists(job_path(id, ".result")) ||
        !result_artifact_valid(job_path(id, ".result"))) {
      todo.push_back(id);
    }
  }
  {
    MutexLock lock(mu_);
    if (next_job_id_ <= last_seen) next_job_id_ = last_seen + 1;
  }

  std::size_t recovered = 0;
  for (const std::uint64_t id : todo) {
    JobRequest request;
    try {
      std::istringstream in(io::load_artifact(job_path(id, ".job")));
      io::read_magic(in);
      if (io::read_string(in) != kJournalTag) {
        throw std::runtime_error("not an advtextd job journal");
      }
      const std::uint64_t journaled_id = io::read_u64(in);
      if (journaled_id != id) {
        throw std::runtime_error("journal id does not match its filename");
      }
      request = decode_job_request(io::read_string(in));
    } catch (const std::runtime_error& error) {
      // Unreadable journal: the request is gone, so the job cannot be
      // re-run. Record a terminal kError result (otherwise every future
      // recovery rescans it) and say so loudly.
      JobComplete summary;
      summary.job_id = id;
      summary.termination = TerminationReason::kError;
      const std::string artifact =
          encode_result_artifact(id, summary, std::string(), 0);
      const Outcome<std::size_t> saved = retry_.run(
          "result write",
          [&] { io::save_artifact(job_path(id, ".result"), artifact); });
      MutexLock lock(mu_);
      record_io_retries(saved);
      ++stats_.jobs_errored;
      stats_.worst_job =
          worse_of(stats_.worst_job, TerminationReason::kError);
      stats_.warnings.push_back("job " + std::to_string(id) +
                                " journal unreadable: " + error.what());
      continue;
    }
    // Re-run synchronously, ascending id: deterministic order, and the
    // checkpoint (if any) resumes the interrupted sweep bitwise.
    PendingJob job;
    job.id = id;
    job.request = request;
    job.deadline = admission_deadline(request, config_);
    run_job(std::move(job));
    ++recovered;
    MutexLock lock(mu_);
    ++stats_.jobs_recovered;
  }
  return recovered;
}

TerminationReason AttackDaemon::serve() {
  ADVTEXT_CHECK(!config_.socket_path.empty())
      << "AttackDaemon::serve needs a socket_path";
  ServerSocket server(config_.socket_path);
  bool stopped = false;
  {
    ThreadPool pool(config_.workers);
    // The watchdog watches the pool's heartbeats and must die before the
    // pool does (declaration order gives reverse destruction). Its handler
    // settles the stuck job's client with a typed terminal frame; the job's
    // journal stays, so a restart still re-runs it to the true result.
    const std::vector<const Heartbeat*> hearts = pool.heartbeats();
    std::optional<Watchdog> watchdog;
    if (config_.watchdog_stall_ms > 0.0) {
      Watchdog::Config wd;
      wd.stall_ms = config_.watchdog_stall_ms;
      wd.poll_ms = config_.watchdog_poll_ms;
      watchdog.emplace(hearts, wd,
                       [this, hearts](std::size_t index,
                                      const std::string& tag,
                                      double stalled_ms) {
                         on_worker_stall(hearts[index], tag, stalled_ms);
                       });
    }
    for (std::size_t w = 0; w < config_.workers; ++w) {
      // A fresh pool never rejects; the return only matters at shutdown.
      (void)pool.submit([this] { worker_loop(); });
    }
    while (true) {
      if (StopToken::instance().stop_requested()) {
        stopped = true;
        break;
      }
      {
        MutexLock lock(mu_);
        if (config_.max_jobs != 0 &&
            stats_.jobs_accepted >= config_.max_jobs) {
          break;
        }
      }
      std::optional<Connection> conn;
      try {
        conn = server.accept(config_.accept_timeout_ms);
        // ADVTEXT_ALLOW(severity-drop): accept-loop failure — no job exists, so no severity to fold; counted in accept_failures and the daemon keeps listening by design
      } catch (const std::runtime_error&) {
        // Includes injected service.accept faults: count, keep listening.
        MutexLock lock(mu_);
        ++stats_.accept_failures;
        continue;
      }
      if (!conn.has_value()) continue;
      handle_connection(std::move(*conn));
    }
    {
      MutexLock lock(mu_);
      closing_ = true;
      queue_cv_.notify_all();
    }
    pool.wait_idle();
  }  // joins the workers
  return stopped ? TerminationReason::kStopped
                 : TerminationReason::kSucceeded;
}

}  // namespace advtext
