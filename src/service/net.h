// Local-socket transport for advtextd. This header/source pair is the ONLY
// place in the tree allowed to touch raw socket primitives (socket(),
// accept(), sockaddr_un, ...) — the `raw-socket` analyzer rule enforces the
// confinement, mirroring how sync.h confines raw threads. Everything above
// this layer speaks Connection frames and protocol.h messages.
//
// Framing: a frame is a 4-byte little-endian payload length followed by the
// payload. Lengths above kMaxFramePayloadBytes are rejected before any
// allocation. A clean peer close at a frame boundary is a normal end of
// conversation; bytes that stop mid-frame are a ProtocolError.
//
// Fault-injection sites: "service.accept" (ServerSocket::accept),
// "service.read" (Connection::read_frame), "service.write"
// (Connection::write_frame) — armed, they throw InjectedFault exactly where
// a real I/O failure would surface, so the daemon's recovery paths are
// deterministic and CI-testable.
#pragma once

#include <optional>
#include <string>

namespace advtext {

/// One connected stream socket (move-only fd owner). Blocking I/O; an
/// optional receive timeout bounds how long a read can stall the owner.
class Connection {
 public:
  Connection() = default;
  explicit Connection(int fd) : fd_(fd) {}
  ~Connection();

  Connection(Connection&& other) noexcept;
  Connection& operator=(Connection&& other) noexcept;
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  bool valid() const { return fd_ >= 0; }
  void close();

  /// Bound every subsequent read; a stalled peer then surfaces as a
  /// ProtocolError instead of hanging a daemon worker forever.
  void set_read_timeout_ms(double ms);

  /// Reads one frame into `payload`. Returns false on a clean peer close at
  /// a frame boundary. Throws ProtocolError on malformed framing (partial
  /// header, oversized length, truncated payload, read timeout) and
  /// std::runtime_error on transport failure.
  bool read_frame(std::string& payload);

  /// Writes one frame (length prefix + payload). Throws std::runtime_error
  /// on transport failure; never raises SIGPIPE.
  void write_frame(const std::string& payload);

  /// Writes bytes with no framing. Test hook: lets a client forge corrupt
  /// frames (bad lengths, truncated payloads) to exercise the daemon's
  /// malformed-input handling.
  void write_raw(const std::string& bytes);

 private:
  int fd_ = -1;
};

/// A listening AF_UNIX socket bound to a filesystem path. The constructor
/// replaces a stale socket file; the destructor closes and unlinks.
class ServerSocket {
 public:
  explicit ServerSocket(const std::string& path);
  ~ServerSocket();

  ServerSocket(const ServerSocket&) = delete;
  ServerSocket& operator=(const ServerSocket&) = delete;

  const std::string& path() const { return path_; }

  /// Waits up to timeout_ms for a pending connection; std::nullopt on
  /// timeout (lets the accept loop poll its stop conditions). Throws
  /// std::runtime_error on accept failure.
  std::optional<Connection> accept(double timeout_ms);

 private:
  std::string path_;
  int fd_ = -1;
};

/// Client side: connects to a daemon's socket path. Throws
/// std::runtime_error when the daemon is not (yet) listening — callers
/// retry under a RetryPolicy.
Connection connect_unix(const std::string& path);

}  // namespace advtext
