// advtextd core: a fault-tolerant attack-as-a-service daemon.
//
// The expensive part of every attack sweep is fixed per task — trained
// models, paraphrase index, WMD, language model. The daemon loads them
// once, listens on a local AF_UNIX socket, and multiplexes attack jobs
// from many clients onto a worker pool, so repeated sweeps (parameter
// scans, load tests, CI benches) stop paying the startup cost.
//
// Robustness invariants, in the order they matter:
//
//   * Admission control, not queueing: a job is either REJECTED with a
//     typed RejectReason (overload, spent client budget, unknown model,
//     malformed bytes, shutdown) before any work happens, or ACCEPTED —
//     and an accepted job is journaled to disk before the accept is even
//     acknowledged. The pending queue is bounded (max_pending_jobs);
//     overload sheds load instead of growing memory.
//   * Crash recovery: accepted ⇒ eventually completed. Each job writes the
//     standard atomic checkpoints while it runs; a SIGKILLed daemon, on
//     restart, finds every journaled job without a result artifact and
//     re-runs it — resuming from its checkpoint — to a bitwise-identical
//     result (the persisted result encoding excludes wall-clock timing).
//   * Fault isolation: a client can disconnect, stall, or send garbage and
//     only its own connection dies; transient I/O failures (including the
//     service.read / service.write / service.accept injection sites) are
//     absorbed by RetryPolicy with named stat counters; job outcomes fold
//     onto the TerminationReason severity lattice.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/eval/pipeline.h"
#include "src/service/net.h"
#include "src/service/protocol.h"
#include "src/util/robust.h"
#include "src/util/sync.h"

namespace advtext {

/// One model the daemon serves, keyed by JobRequest::model. The classifier
/// must outlive the daemon and is shared read-only across workers (jobs
/// never mutate it).
struct ServedModel {
  std::string name;
  const TextClassifier* model = nullptr;
};

struct DaemonConfig {
  /// AF_UNIX socket path the daemon listens on (keep it short: the kernel
  /// caps sun_path at ~107 bytes).
  std::string socket_path;
  /// Directory for job journals, checkpoints, and result artifacts — the
  /// daemon's recoverable state. Created if missing (one level).
  std::string state_dir;
  /// Attack worker threads; each runs one job at a time.
  std::size_t workers = 2;
  /// Bounded pending-job queue: admissions beyond workers + this many
  /// queued jobs are rejected kOverload. The cap is what turns overload
  /// into typed rejections instead of unbounded memory growth.
  std::size_t max_pending_jobs = 4;
  /// Lifetime model-query budget per client name (0 = unlimited). A client
  /// whose ledger is spent gets kClientBudgetExhausted at admission.
  std::size_t per_client_max_queries = 0;
  /// Cap on a job's requested job_deadline_ms (0 = no cap). Requests above
  /// the cap — or with no deadline of their own — are clamped to it.
  double max_job_deadline_ms = 0.0;
  /// Checkpoint cadence while a job runs (AttackEvalConfig::checkpoint_every).
  std::size_t checkpoint_every = 4;
  /// Accept-poll granularity: how often the accept loop re-checks its stop
  /// conditions when idle.
  double accept_timeout_ms = 50.0;
  /// Receive timeout for a connected client's request frame: a stalled
  /// client costs at most this long, then its connection dies.
  double read_timeout_ms = 2000.0;
  /// Exit the accept loop after admitting this many jobs (0 = serve until
  /// stopped). Tests and benches use it for a deterministic drain.
  std::size_t max_jobs = 0;
  /// Retry policy for the daemon's own transient I/O: job journals, result
  /// artifacts, and streamed result frames.
  RetryPolicy::Config io_retry;
  /// Watchdog stall bound: a worker that is busy on a job but makes no
  /// observable progress (no committed doc, no queue-wait wake) for this
  /// long is reported stalled — the client gets a typed kDeadlineExceeded
  /// JobComplete within stall + poll, the daemon keeps serving, and the
  /// journaled job stays recoverable. 0 disables the watchdog.
  double watchdog_stall_ms = 30000.0;
  /// Watchdog poll cadence (detection slack on top of the stall bound).
  double watchdog_poll_ms = 50.0;
  /// MemoryBudget bytes reserved per admitted job (stream frames, record
  /// buffer, checkpoint payload). When the process budget cannot cover it
  /// the job is shed with a typed RejectReason::kResource — overload
  /// shedding for memory instead of an OOM abort.
  std::size_t job_memory_bytes = std::size_t{1} << 20;
  /// Per-worker memoizing query cache budget for served sweeps
  /// (AttackEvalConfig::query_cache_bytes; `--query-cache-mb`, 0 disables).
  std::size_t query_cache_bytes = 32u << 20;
};

/// Operational counters, readable after serve()/recover() return.
struct DaemonStats {
  std::size_t jobs_accepted = 0;
  std::size_t jobs_completed = 0;
  std::size_t jobs_recovered = 0;  ///< re-run by recover()
  /// Jobs whose sweep failed twice (fresh retry included): a kError result
  /// artifact is persisted so recovery does not loop on them.
  std::size_t jobs_errored = 0;
  std::size_t rejected_overload = 0;
  std::size_t rejected_budget = 0;
  std::size_t rejected_unknown_model = 0;
  std::size_t rejected_malformed = 0;
  /// Jobs shed at admission because the process MemoryBudget could not
  /// cover job_memory_bytes (typed RejectReason::kResource).
  std::size_t rejected_resource = 0;
  /// Stall episodes the watchdog settled: the client got a typed
  /// kDeadlineExceeded JobComplete while the worker stayed stuck. The job's
  /// journal stays, so a restart re-runs it.
  std::size_t jobs_stalled = 0;
  std::size_t accept_failures = 0;       ///< accept() throws absorbed
  std::size_t stream_write_failures = 0; ///< per-doc frames a client missed
  std::size_t io_retries = 0;            ///< RetryPolicy attempts absorbed
  /// Severity fold (worse_of) over every finished job's termination.
  TerminationReason worst_job = TerminationReason::kSucceeded;
  std::vector<std::string> warnings;
};

/// The daemon. Single-owner lifecycle: construct, optionally recover(),
/// then serve() once; stats() afterwards.
class AttackDaemon {
 public:
  AttackDaemon(const SynthTask& task, const TaskAttackContext& context,
               std::vector<ServedModel> models, const DaemonConfig& config);

  /// Replays the journal directory: every accepted job without a result
  /// artifact is re-run (ascending job id, synchronously, resuming its
  /// checkpoint) to the result the original run would have produced.
  /// Returns the number of jobs re-run. Call before serve().
  std::size_t recover();

  /// Accept loop: admits jobs until StopToken fires or max_jobs is
  /// reached, drains the queue, joins the workers. Returns kStopped on a
  /// signalled stop (journaled in-flight jobs stay resumable), kSucceeded
  /// on a natural max_jobs drain.
  TerminationReason serve();

  /// Snapshot of the counters (copied under the lock, so it is safe to
  /// call while serve() is still running on other threads).
  DaemonStats stats() const {
    MutexLock lock(mu_);
    return stats_;
  }

 private:
  struct PendingJob {
    std::uint64_t id = 0;
    JobRequest request;
    Deadline deadline;  ///< admission-time job deadline (wall-clock)
    /// Client connection for streamed results; null for recovered jobs
    /// (their client is long gone) or when the accept ack failed.
    std::unique_ptr<Connection> conn;
    /// MemoryBudget reservation made at admission; travels with the job and
    /// releases when the job object dies. Recovered jobs run unreserved
    /// (recovery is serial and must always make progress).
    MemoryReservation memory;
  };

  /// A job currently running on a worker, registered so the watchdog's
  /// stall handler can settle its client with a typed JobComplete while the
  /// worker itself stays stuck. Every touch of the client connection after
  /// the job starts — streamed frames, the terminal JobComplete, a stall
  /// settlement — serializes on `mu`, and `settled` guarantees the client
  /// sees exactly one terminal frame.
  struct ActiveJob {
    std::uint64_t id = 0;
    Mutex mu;
    Connection* conn ADVTEXT_GUARDED_BY(mu) = nullptr;
    bool settled ADVTEXT_GUARDED_BY(mu) = false;
  };

  std::string job_path(std::uint64_t id, const char* suffix) const;
  const TextClassifier* find_model(const std::string& name) const;

  /// Worker thread body: pop accepted jobs until the queue drains at
  /// shutdown (or a stop request abandons it to recovery).
  void worker_loop();

  /// One client conversation on the accept thread: read the request frame,
  /// admit or reject, journal + ack, enqueue. All protocol and transport
  /// errors are absorbed here (the connection dies, the daemon lives).
  void handle_connection(Connection conn);

  /// Runs one accepted job on a worker: sweep with checkpointing, stream
  /// DocResult frames, persist the result artifact, settle the client
  /// ledger, send JobComplete. Never throws.
  void run_job(PendingJob job);

  void record_io_retries(const Outcome<std::size_t>& outcome)
      ADVTEXT_REQUIRES(mu_);

  /// Watchdog stall handler (monitor thread): records the stall and — if
  /// the stuck worker's job still has a live, unsettled client — sends a
  /// typed kDeadlineExceeded JobComplete so the client is released within
  /// the watchdog bound. Deliberately does NOT persist a result artifact:
  /// the journal stays, so recovery re-runs the job to its true result.
  void on_worker_stall(const Heartbeat* heart, const std::string& tag,
                       double stalled_ms);

  const SynthTask& task_;
  const TaskAttackContext& context_;
  std::map<std::string, const TextClassifier*> models_;
  DaemonConfig config_;
  RetryPolicy retry_;

  mutable Mutex mu_;
  CondVar queue_cv_;
  std::deque<PendingJob> queue_ ADVTEXT_GUARDED_BY(mu_);
  bool closing_ ADVTEXT_GUARDED_BY(mu_) = false;
  std::uint64_t next_job_id_ ADVTEXT_GUARDED_BY(mu_) = 1;
  /// Lifetime query ledgers keyed by client name. std::map: deterministic
  /// iteration order (matches the repo's no-unordered-iteration rule).
  std::map<std::string, std::unique_ptr<QueryBudget>> client_budgets_
      ADVTEXT_GUARDED_BY(mu_);
  /// Jobs currently running, keyed by the pool heartbeat of the worker
  /// running them — the key the watchdog's stall report hands back.
  std::map<const Heartbeat*, std::shared_ptr<ActiveJob>> active_jobs_
      ADVTEXT_GUARDED_BY(mu_);
  DaemonStats stats_ ADVTEXT_GUARDED_BY(mu_);
};

}  // namespace advtext
