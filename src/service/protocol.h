// advtextd wire protocol: typed, length-prefixed messages over a local
// stream socket.
//
// Framing (net.h): every message travels as a 4-byte little-endian payload
// length followed by the payload; payloads above kMaxFramePayloadBytes are
// rejected before any allocation, so a hostile or corrupt length prefix can
// never balloon daemon memory. Inside a payload the first u64 is the
// MessageType tag, then the message's fields in io:: serialization (the
// same fixed-width little-endian encoding the checkpoint artifacts use).
//
// Conversation, client side:
//   -> JobRequest
//   <- JobRejected (typed reason; connection done)            | or
//   <- JobAccepted, then zero or more DocResult frames streamed strictly
//      in ascending doc_index order as the sweep commits them, then one
//      JobComplete with the job's aggregate summary.
//
// Determinism contract: the wire encoding of a DocRecord deliberately
// EXCLUDES attack.seconds — timing is a measurement of a particular run,
// not replayable state — so the byte stream a client sees (and the result
// artifact the daemon persists, which reuses this encoding) is
// bitwise-identical between an uninterrupted job and a killed-and-recovered
// one. Everything else in the record is replayed raw from the checkpoint.
//
// Malformed input (bad tag, out-of-range enum, trailing bytes, truncated
// payload) throws ProtocolError: the daemon kills that connection with a
// typed rejection and keeps serving — a client can never crash the daemon
// with bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "src/eval/pipeline.h"

namespace advtext {

/// Hard ceiling on a single frame's payload. Large enough for any DocResult
/// (documents are capped well below this by io::kMaxStringBytes-style
/// guards), small enough that a forged length prefix cannot OOM the daemon.
constexpr std::size_t kMaxFramePayloadBytes = 1u << 20;

/// A peer sent bytes that do not parse as the protocol (bad tag, bad enum,
/// truncated or oversized frame, trailing garbage). Kills the connection,
/// never the daemon.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what)
      : std::runtime_error(what) {}
};

enum class MessageType : std::uint64_t {
  kJobRequest = 1,
  kJobAccepted = 2,
  kJobRejected = 3,
  kDocResult = 4,
  kJobComplete = 5,
};

/// Why admission control refused a job. Typed so load generators and tests
/// can distinguish overload shedding from client error.
enum class RejectReason : std::uint64_t {
  kOverload = 1,               ///< pending-job queue full: back off, retry
  kClientBudgetExhausted = 2,  ///< this client's query ledger is spent
  kUnknownModel = 3,           ///< no served model under that name
  kShuttingDown = 4,           ///< daemon is draining; no new admissions
  kMalformed = 5,              ///< request did not parse / violated limits
  kInternal = 6,               ///< daemon-side failure before the job ran
  kResource = 7,               ///< MemoryBudget denied the job's reservation
};

const char* to_string(RejectReason reason);

/// One attack job. `client` keys the per-client admission budget; `model`
/// names a served model. Per-doc knobs mirror JointAttackConfig; job-wide
/// knobs (job_deadline_ms / job_max_queries) map onto the sweep-granular
/// controls of AttackEvalConfig.
struct JobRequest {
  std::string client;
  std::string model;
  std::uint64_t max_docs = 0;       ///< 0 = whole test set
  double deadline_ms = 0.0;         ///< per-document wall clock (0 = none)
  std::uint64_t max_queries = 0;    ///< per-document query cap (0 = none)
  double job_deadline_ms = 0.0;     ///< whole-job wall clock (0 = none)
  std::uint64_t job_max_queries = 0;  ///< whole-job query cap (0 = none)
  double sentence_fraction = 0.2;   ///< λs
  double word_fraction = 0.2;       ///< λw
  /// 0 = gradient-guided greedy (Alg. 3), 1 = objective greedy, 2 = gradient.
  std::uint64_t method = 0;
};

struct JobAccepted {
  std::uint64_t job_id = 0;
};

struct JobRejected {
  RejectReason reason = RejectReason::kInternal;
  std::string message;
};

/// Job-level aggregate, sent after the last DocResult. `termination` is the
/// sweep's worst-of severity fold (kSucceeded / kBudgetExhausted /
/// kDeadlineExceeded / kStopped / kError).
struct JobComplete {
  std::uint64_t job_id = 0;
  TerminationReason termination = TerminationReason::kSucceeded;
  std::uint64_t docs_evaluated = 0;
  std::uint64_t docs_attacked = 0;
  std::uint64_t docs_failed = 0;
  std::uint64_t sweep_queries_used = 0;
  /// Query-cache totals over the job's fresh attacked documents (zeros
  /// when the daemon runs with the cache disabled or the job was replayed
  /// from a checkpoint). queries_saved == cache_hits: forwards avoided.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t queries_saved = 0;
  double success_rate = 0.0;
  double adversarial_accuracy = 0.0;
};

// Payload encoders: the returned string is one frame payload (type tag +
// fields), ready for Connection::write_frame.
std::string encode_job_request(const JobRequest& request);
std::string encode_job_accepted(const JobAccepted& accepted);
std::string encode_job_rejected(const JobRejected& rejected);
std::string encode_doc_result(const DocRecord& record);
std::string encode_job_complete(const JobComplete& complete);

/// Type tag of a received payload without consuming it (dispatch).
MessageType peek_type(const std::string& payload);

// Payload decoders. Each validates the type tag, every enum range, and
// that the payload has no trailing bytes; violations throw ProtocolError.
JobRequest decode_job_request(const std::string& payload);
JobAccepted decode_job_accepted(const std::string& payload);
JobRejected decode_job_rejected(const std::string& payload);
DocRecord decode_doc_result(const std::string& payload);
JobComplete decode_job_complete(const std::string& payload);

// Stream-level DocRecord (de)serialization shared by the DocResult payload
// and the daemon's persisted result artifacts. Excludes attack.seconds (see
// the determinism contract above); read_record leaves it 0.0.
void write_record(std::ostream& out, const DocRecord& record);
DocRecord read_record(std::istream& in);

}  // namespace advtext
