#include "src/service/net.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "src/service/protocol.h"
#include "src/util/check.h"
#include "src/util/robust.h"

namespace advtext {

namespace {

std::string errno_message(const char* what) {
  return std::string("net: ") + what + " failed: " + std::strerror(errno);
}

/// recv() until `n` bytes or EOF, retrying EINTR. Returns bytes read (< n
/// only at EOF). Throws ProtocolError on a receive-timeout stall and
/// std::runtime_error on transport failure.
std::size_t recv_fully(int fd, char* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) break;  // peer closed
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      throw ProtocolError("net: read timed out mid-frame");
    }
    throw std::runtime_error(errno_message("recv"));
  }
  return got;
}

/// send() until everything is written, retrying EINTR. MSG_NOSIGNAL: a
/// vanished peer must surface as EPIPE here, not SIGPIPE-kill the daemon.
void send_fully(int fd, const char* buf, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (r >= 0) {
      sent += static_cast<std::size_t>(r);
      continue;
    }
    if (errno == EINTR) continue;
    throw std::runtime_error(errno_message("send"));
  }
}

}  // namespace

Connection::~Connection() { close(); }

Connection::Connection(Connection&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

Connection& Connection::operator=(Connection&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Connection::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Connection::set_read_timeout_ms(double ms) {
  ADVTEXT_CHECK(valid()) << "Connection::set_read_timeout_ms on a closed fd";
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(ms / 1000.0);
  tv.tv_usec = static_cast<suseconds_t>(
      (ms - static_cast<double>(tv.tv_sec) * 1000.0) * 1000.0);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    throw std::runtime_error(errno_message("setsockopt(SO_RCVTIMEO)"));
  }
}

bool Connection::read_frame(std::string& payload) {
  ADVTEXT_CHECK(valid()) << "Connection::read_frame on a closed fd";
  FaultInjector::instance().maybe_fault("service.read");
  unsigned char header[4];
  const std::size_t header_got =
      recv_fully(fd_, reinterpret_cast<char*>(header), sizeof(header));
  if (header_got == 0) return false;  // clean close at a frame boundary
  if (header_got < sizeof(header)) {
    throw ProtocolError("net: peer closed mid frame header");
  }
  const std::size_t length =
      static_cast<std::size_t>(header[0]) |
      (static_cast<std::size_t>(header[1]) << 8) |
      (static_cast<std::size_t>(header[2]) << 16) |
      (static_cast<std::size_t>(header[3]) << 24);
  if (length > kMaxFramePayloadBytes) {
    // Reject before allocating: a forged length must not balloon memory.
    throw ProtocolError("net: frame payload of " + std::to_string(length) +
                        " bytes exceeds the " +
                        std::to_string(kMaxFramePayloadBytes) + " byte cap");
  }
  // Charge the transient receive buffer against the process MemoryBudget:
  // under memory pressure an oversized frame is refused (typed
  // ProtocolError kills this conversation only), never allocated past the
  // budget. The reservation releases when the frame is handed off.
  MemoryReservation frame_memory = MemoryReservation::try_acquire(length);
  if (length != 0 && !frame_memory.ok()) {
    throw ProtocolError("net: frame payload of " + std::to_string(length) +
                        " bytes denied by the process memory budget");
  }
  payload.resize(length);
  if (length != 0 && recv_fully(fd_, payload.data(), length) < length) {
    throw ProtocolError("net: peer closed mid frame payload");
  }
  return true;
}

void Connection::write_frame(const std::string& payload) {
  ADVTEXT_CHECK(valid()) << "Connection::write_frame on a closed fd";
  ADVTEXT_CHECK(payload.size() <= kMaxFramePayloadBytes)
      << "Connection::write_frame: payload exceeds the frame cap";
  FaultInjector::instance().maybe_fault("service.write");
  const std::size_t length = payload.size();
  unsigned char header[4] = {
      static_cast<unsigned char>(length & 0xFF),
      static_cast<unsigned char>((length >> 8) & 0xFF),
      static_cast<unsigned char>((length >> 16) & 0xFF),
      static_cast<unsigned char>((length >> 24) & 0xFF),
  };
  send_fully(fd_, reinterpret_cast<const char*>(header), sizeof(header));
  send_fully(fd_, payload.data(), payload.size());
}

void Connection::write_raw(const std::string& bytes) {
  ADVTEXT_CHECK(valid()) << "Connection::write_raw on a closed fd";
  send_fully(fd_, bytes.data(), bytes.size());
}

namespace {

void fill_unix_address(const std::string& path, sockaddr_un* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  ADVTEXT_CHECK(path.size() < sizeof(addr->sun_path))
      << "unix socket path is too long (" << path.size() << " bytes): "
      << path;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
}

}  // namespace

ServerSocket::ServerSocket(const std::string& path) : path_(path) {
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error(errno_message("socket"));
  sockaddr_un addr;
  fill_unix_address(path_, &addr);
  // Replace a stale socket file from a killed daemon: bind() would
  // otherwise fail with EADDRINUSE even though nobody is listening.
  std::remove(path_.c_str());
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string message = errno_message("bind");
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error(message + " (path: " + path_ + ")");
  }
  if (::listen(fd_, 16) != 0) {
    const std::string message = errno_message("listen");
    ::close(fd_);
    fd_ = -1;
    std::remove(path_.c_str());
    throw std::runtime_error(message);
  }
}

ServerSocket::~ServerSocket() {
  if (fd_ >= 0) ::close(fd_);
  std::remove(path_.c_str());
}

std::optional<Connection> ServerSocket::accept(double timeout_ms) {
  ADVTEXT_CHECK(fd_ >= 0) << "ServerSocket::accept on a closed socket";
  FaultInjector::instance().maybe_fault("service.accept");
  struct pollfd pfd;
  pfd.fd = fd_;
  pfd.events = POLLIN;
  pfd.revents = 0;
  const int ready = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
  if (ready == 0) return std::nullopt;
  if (ready < 0) {
    if (errno == EINTR) return std::nullopt;  // let the loop poll its stops
    throw std::runtime_error(errno_message("poll"));
  }
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) {
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
        errno == ECONNABORTED) {
      return std::nullopt;  // raced with a vanished client; not fatal
    }
    throw std::runtime_error(errno_message("accept"));
  }
  return Connection(client);
}

Connection connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error(errno_message("socket"));
  sockaddr_un addr;
  fill_unix_address(path, &addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string message = errno_message("connect");
    ::close(fd);
    throw std::runtime_error(message + " (path: " + path + ")");
  }
  return Connection(fd);
}

}  // namespace advtext
