#include "src/nn/sharded_supervisor.h"

#include <memory>
#include <sstream>
#include <utility>

#include "src/util/check.h"
#include "src/util/det_accum.h"
#include "src/util/serialize.h"
#include "src/util/stop_token.h"
#include "src/util/sync.h"

namespace advtext {
namespace {

// Decorates a shard's training loop so that barrier alignment survives a
// stop/resume cycle: `awaiting_barrier` (the shard reached an epoch
// boundary and has not yet passed the averaging barrier) and the number of
// barriers completed ride in front of the inner loop's own state. A shard
// stopped while parked at a barrier therefore re-arrives at the *same*
// barrier on resume, which is what makes a drained stop bitwise-replayable.
class ShardMember final : public ResumableTraining {
 public:
  explicit ShardMember(ResumableTraining& inner) : inner_(inner) {}

  bool done() const override { return inner_.done(); }
  double step() override { return inner_.step(); }
  bool at_boundary() const override { return inner_.at_boundary(); }

  void save_state(std::ostream& out) const override {
    io::write_u64(out, awaiting_barrier ? 1 : 0);
    io::write_u64(out, barriers_done);
    inner_.save_state(out);
  }

  void load_state(std::istream& in) override {
    awaiting_barrier = io::read_u64(in) != 0;
    barriers_done = static_cast<std::size_t>(io::read_u64(in));
    inner_.load_state(in);
  }

  void on_rollback(std::size_t attempt) override {
    inner_.on_rollback(attempt);
  }
  void on_recover() override { inner_.on_recover(); }

  // Owned (read and written) exclusively by the shard's worker thread; the
  // averaging thread never touches members, only ShardSpec::params.
  bool awaiting_barrier = false;
  std::size_t barriers_done = 0;

 private:
  ResumableTraining& inner_;
};

// The averaging barrier plus shard liveness book-keeping. All state is
// guarded by one mutex and verified by the Clang thread-safety analysis.
//
// Lifecycle of a shard, from the coordinator's point of view:
//   kRunning --arrive()--> kArrived --release--> kRunning   (another epoch)
//   kArrived --stop while waiting--> kStopped               (drain)
//   kRunning --depart(kDone/kDead/kStopped)--> terminal
//
// A barrier releases when no shard is left in kRunning and at least one is
// kArrived: the completing thread (last arriver, or a departing shard whose
// exit unblocks the group) averages parameters over the arrived shards in
// ascending shard order, bumps the generation, and flips them back to
// kRunning. Once any stop is observed (`stop_draining_`), releases are
// forbidden forever: every shard — mid-epoch or parked — flushes where it
// is, so all per-shard snapshots describe the same pending generation.
class Coordinator {
 public:
  enum class State { kRunning, kArrived, kDone, kDead, kStopped };
  enum class Arrival { kReleased, kStopped };

  explicit Coordinator(std::vector<ShardSpec>& shards) : shards_(shards) {
    MutexLock lock(mu_);
    state_.assign(shards_.size(), State::kRunning);
  }

  /// Blocks shard `k` at the averaging barrier. Returns kReleased once the
  /// barrier completed (parameters averaged; proceed to commit), or
  /// kStopped if a drain started while waiting — the shard is then already
  /// marked departed and must flush + exit without committing.
  Arrival arrive(std::size_t k) ADVTEXT_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    state_[k] = State::kArrived;
    const std::size_t my_generation = generation_;
    if (!stop_draining_) maybe_release_locked();
    for (;;) {
      if (generation_ != my_generation) return Arrival::kReleased;
      if (stop_draining_ || StopToken::instance().stop_requested()) {
        // Abandon the barrier: from here on nobody may average without this
        // shard, or resume could not replay the round.
        stop_draining_ = true;
        state_[k] = State::kStopped;
        cv_.notify_all();
        return Arrival::kStopped;
      }
      // Timed wait so a StopToken signal (which carries no notify) is
      // still observed promptly.
      cv_.wait_for_ms(mu_, 50);
    }
  }

  /// Removes shard `k` from the group. A stop-departure starts the drain; a
  /// done/dead departure may complete a barrier the others are parked at.
  /// Idempotent: a shard that already departed (e.g. stopped inside
  /// arrive()) is left untouched.
  void depart(std::size_t k, State terminal) ADVTEXT_EXCLUDES(mu_) {
    ADVTEXT_CHECK(terminal == State::kDone || terminal == State::kDead ||
                  terminal == State::kStopped);
    MutexLock lock(mu_);
    if (state_[k] != State::kRunning && state_[k] != State::kArrived) return;
    state_[k] = terminal;
    if (terminal == State::kStopped) {
      stop_draining_ = true;
    } else if (!stop_draining_) {
      maybe_release_locked();
    }
    cv_.notify_all();
  }

  /// True once any shard stopped (or is about to): every session's external
  /// stop predicate, so one shard's stop drains all of them.
  bool draining() const ADVTEXT_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return stop_draining_;
  }

  std::size_t rounds() const ADVTEXT_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return rounds_;
  }

 private:
  /// Completes the barrier if every live shard has arrived. Averaging runs
  /// under the mutex: arrivers' parameter writes happen-before via their
  /// arrive() lock acquisition, and waiters re-acquire the mutex before
  /// reading the averaged values back.
  void maybe_release_locked() ADVTEXT_REQUIRES(mu_) {
    std::size_t arrived = 0;
    for (const State state : state_) {
      if (state == State::kRunning) return;  // someone is still training
      if (state == State::kArrived) ++arrived;
    }
    if (arrived == 0) return;
    average_locked();
    ++generation_;
    ++rounds_;
    for (State& state : state_) {
      if (state == State::kArrived) state = State::kRunning;
    }
    cv_.notify_all();
  }

  /// Element-wise parameter mean over the arrived shards, accumulated in
  /// double and iterated in ascending shard order — a fixed reduction
  /// order, so the result is independent of which thread executes it.
  void average_locked() ADVTEXT_REQUIRES(mu_) {
    std::vector<std::size_t> cohort;
    for (std::size_t k = 0; k < state_.size(); ++k) {
      if (state_[k] == State::kArrived) cohort.push_back(k);
    }
    if (cohort.size() < 2) return;  // nothing to average against
    const std::vector<ParamRef>& head = shards_[cohort.front()].params;
    for (std::size_t t = 0; t < head.size(); ++t) {
      for (const std::size_t k : cohort) {
        ADVTEXT_CHECK(shards_[k].params.size() == head.size() &&
                      shards_[k].params[t].size == head[t].size)
            << "shard parameter layouts must match for averaging";
      }
      for (std::size_t i = 0; i < head[t].size; ++i) {
        const double sum = det_accumulate(
            cohort.begin(), cohort.end(), 0.0, [&](double acc, std::size_t k) {
              return acc + static_cast<double>(shards_[k].params[t].value[i]);
            });
        const float mean =
            static_cast<float>(sum / static_cast<double>(cohort.size()));
        for (const std::size_t k : cohort) {
          shards_[k].params[t].value[i] = mean;
        }
      }
    }
  }

  std::vector<ShardSpec>& shards_;
  mutable Mutex mu_;
  CondVar cv_;
  std::vector<State> state_ ADVTEXT_GUARDED_BY(mu_);
  std::size_t generation_ ADVTEXT_GUARDED_BY(mu_) = 0;
  std::size_t rounds_ ADVTEXT_GUARDED_BY(mu_) = 0;
  bool stop_draining_ ADVTEXT_GUARDED_BY(mu_) = false;
};

// One shard's whole life: resume, train epoch-by-epoch, meet the barrier,
// commit after averaging, depart. Runs on a pool worker; must not throw.
void run_shard(std::size_t k, ShardMember& member, SupervisorSession& session,
               Coordinator& coord) {
  session.initialize();
  for (;;) {
    if (member.awaiting_barrier) {
      if (coord.arrive(k) == Coordinator::Arrival::kStopped) {
        // Drained while parked: flush with awaiting_barrier still set so
        // resume re-arrives at this same barrier.
        session.finish(SupervisorSession::StepStatus::kStopped);
        return;  // arrive() already recorded the departure
      }
      member.awaiting_barrier = false;
      ++member.barriers_done;
      // The averaged parameters become the shard's rollback target and its
      // published snapshot — exactly the serial boundary commit, one
      // averaging step later.
      session.commit_boundary();
      continue;
    }
    const SupervisorSession::StepStatus status =
        session.step_until_boundary(/*commit_at_boundary=*/false);
    switch (status) {
      case SupervisorSession::StepStatus::kBoundary:
        member.awaiting_barrier = true;
        break;
      case SupervisorSession::StepStatus::kDone:
        session.finish(status);
        coord.depart(k, Coordinator::State::kDone);
        return;
      case SupervisorSession::StepStatus::kStopped:
        session.finish(status);
        coord.depart(k, Coordinator::State::kStopped);
        return;
      case SupervisorSession::StepStatus::kError:
        session.finish(status);
        coord.depart(k, Coordinator::State::kDead);
        return;
    }
  }
}

}  // namespace

ShardedTrainSupervisor::ShardedTrainSupervisor(std::vector<ShardSpec> shards)
    : shards_(std::move(shards)) {
  ADVTEXT_CHECK(!shards_.empty())
      << "ShardedTrainSupervisor needs at least one shard";
  for (const ShardSpec& spec : shards_) {
    ADVTEXT_CHECK(spec.loop != nullptr) << "every shard needs a loop";
  }
}

ShardedReport ShardedTrainSupervisor::run() {
  const std::size_t shard_count = shards_.size();

  // The caller installs the StopToken once (from the main thread) if it
  // wants signal handling; per-shard installs from workers would race.
  std::vector<std::unique_ptr<ShardMember>> members;
  std::vector<std::unique_ptr<SupervisorSession>> sessions;
  members.reserve(shard_count);
  sessions.reserve(shard_count);
  Coordinator coord(shards_);
  for (std::size_t k = 0; k < shard_count; ++k) {
    members.push_back(std::make_unique<ShardMember>(*shards_[k].loop));
    ResilienceConfig config = shards_[k].resilience;
    config.install_stop_token = false;
    sessions.push_back(std::make_unique<SupervisorSession>(*members[k],
                                                           config));
    sessions[k]->set_external_stop([&coord] { return coord.draining(); });
  }

  {
    ThreadPool pool(shard_count);
    for (std::size_t k = 0; k < shard_count; ++k) {
      pool.submit([k, &members, &sessions, &coord] {
        run_shard(k, *members[k], *sessions[k], coord);
      });
    }
    pool.wait_idle();
  }  // join before touching any shard state from this thread

  ShardedReport report;
  report.shards.reserve(shard_count);
  report.shard_barriers.reserve(shard_count);
  bool any_stopped = false;
  bool any_succeeded = false;
  for (std::size_t k = 0; k < shard_count; ++k) {
    SupervisorReport shard_report = sessions[k]->take_report();
    for (const std::string& warning : shard_report.warnings) {
      report.warnings.push_back("shard " + std::to_string(k) + ": " +
                                warning);
    }
    switch (shard_report.termination) {
      case TerminationReason::kStopped:
        any_stopped = true;
        break;
      case TerminationReason::kError:
        report.dead_shards.push_back(k);
        break;
      case TerminationReason::kSucceeded:
        any_succeeded = true;
        break;
      default:
        break;
    }
    report.shard_barriers.push_back(members[k]->barriers_done);
    report.shards.push_back(std::move(shard_report));
  }
  report.averaging_rounds = coord.rounds();

  if (any_stopped) {
    report.termination = TerminationReason::kStopped;
  } else if (!any_succeeded) {
    report.termination = TerminationReason::kError;
    report.warnings.push_back("all shards exhausted their rollback budget");
  } else {
    report.termination = TerminationReason::kSucceeded;
    if (!report.dead_shards.empty()) {
      report.warnings.push_back(
          "degraded: " + std::to_string(report.dead_shards.size()) + " of " +
          std::to_string(shard_count) +
          " shards died; result averaged over survivors");
    }
  }

  // Result shard: deepest successful shard (most barriers), ties to the
  // lowest index. After a clean run every survivor in the final cohort
  // holds identical parameters, so the choice only matters under
  // degradation or stop.
  std::size_t best = 0;
  bool have_best = false;
  for (std::size_t k = 0; k < shard_count; ++k) {
    const bool eligible =
        report.shards[k].termination == TerminationReason::kSucceeded ||
        (!any_succeeded &&
         report.shards[k].termination == TerminationReason::kStopped);
    if (!eligible) continue;
    if (!have_best ||
        members[k]->barriers_done > members[best]->barriers_done) {
      best = k;
      have_best = true;
    }
  }
  report.result_shard = best;
  return report;
}

}  // namespace advtext
