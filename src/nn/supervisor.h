// Training supervisor: checkpointed, self-healing execution of long
// training loops.
//
// Every experiment in the paper sits on top of training runs — the
// WCNN/LSTM classifiers, the skip-gram embeddings, and the adversarial-
// retraining defense (§5, Table 6) retrains on augmented data, our single
// longest code path. PR 2 made the *attack* side fault-tolerant; this layer
// is its training-side twin, reusing the same TerminationReason vocabulary:
//
//   * snapshots  — a ResumableTraining loop serializes its complete state
//                  (model params, optimizer moments, RNG streams, epoch /
//                  batch cursor) at boundaries and every snapshot_every
//                  steps. SnapshotRotation publishes generations
//                  <base>.ckpt.1 (newest) .. .ckpt.K atomically with a
//                  CRC32 + version footer; a truncated or bit-flipped
//                  newest generation falls back to the previous one with a
//                  named warning. Resume replays to bitwise-identical final
//                  weights vs an uninterrupted run.
//   * divergence — a non-finite or spiking step loss rolls the loop back to
//                  the last good state with learning-rate backoff (capped
//                  retries) instead of aborting the run.
//   * shutdown   — the sigatomic StopToken (SIGINT/SIGTERM) is polled
//                  between steps; a requested stop flushes a final snapshot
//                  and returns TerminationReason::kStopped so callers exit
//                  with a distinct code.
//
// Fault-injection sites: "train.loss" (step-loss poisoning, armed by the
// loops), "ckpt.write" / "ckpt.read" (io::save_artifact / load_artifact),
// so every recovery path is deterministic and CI-testable.
#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "src/util/robust.h"

namespace advtext {

/// Resilience policy shared by every supervised trainer. Defaults keep an
/// un-configured run behaviourally identical to the pre-supervisor code
/// path (no disk snapshots, in-memory rollback only, no signal handlers).
struct ResilienceConfig {
  /// Base path for on-disk snapshots; generations live at
  /// <path>.ckpt.1 (newest) .. <path>.ckpt.<keep_generations>. Empty keeps
  /// snapshots in memory only (rollback still works, resume does not).
  std::string snapshot_path;
  /// Extra mid-run snapshots every N supervisor steps (0 = only at loop
  /// boundaries, e.g. epoch ends, and on stop/completion).
  std::size_t snapshot_every = 0;
  /// On-disk generations kept per snapshot path (>= 1). Two generations
  /// survive a corrupted newest file.
  std::size_t keep_generations = 2;
  /// Load the newest valid snapshot generation before training. All
  /// generations invalid (or none present) falls back to a fresh start
  /// with a named warning.
  bool resume = false;
  /// Consecutive failed retries of the same stretch tolerated before giving
  /// up with kError. The counter resets once a step succeeds, so sporadic
  /// transient faults (bit flips, injected NaNs) are absorbed indefinitely
  /// while a genuinely diverged run — one that keeps failing straight after
  /// every rollback — still aborts promptly.
  std::size_t max_rollbacks = 3;
  /// Learning-rate multiplier applied per consecutive rollback (loop-side,
  /// via ResumableTraining::on_rollback): lr = base_lr * lr_backoff^attempt.
  /// The loop's on_recover() restores the base rate after a clean step.
  double lr_backoff = 0.5;
  /// A finite step loss above spike_factor * EWMA(loss) + 1.0 counts as
  /// divergence (0 disables spike detection; non-finite always triggers).
  double spike_factor = 50.0;
  /// Operational kill switch / step budget: stop cleanly (kStopped, with a
  /// final snapshot) after this many supervisor steps. 0 = unlimited.
  std::size_t max_steps = 0;
  /// Flush a final snapshot when stopping on StopToken/max_steps. Disable
  /// to simulate a hard kill (tests) — resume then replays from the last
  /// periodic snapshot.
  bool flush_on_stop = true;
  /// Install the SIGINT/SIGTERM handlers at run start (CLIs). The token is
  /// polled either way, so embedders can request_stop() programmatically.
  bool install_stop_token = false;
  /// Bounded retries for a failed snapshot publish (transient disk errors,
  /// injected ckpt.write faults). Defaults: 3 attempts, millisecond-scale
  /// capped backoff with deterministic jitter. Only after every attempt
  /// fails does the publish count as a snapshot_write_failure.
  RetryPolicy::Config snapshot_retry;
};

/// A training loop the supervisor can drive. One step() is the unit of
/// divergence detection and the snapshot granularity (a mini-batch for the
/// classifier trainer, an epoch for skip-gram).
class ResumableTraining {
 public:
  virtual ~ResumableTraining() = default;

  /// True when training has reached its natural end (all epochs done or an
  /// early-stop condition fired).
  virtual bool done() const = 0;

  /// Runs one unit of work and returns its (mean) loss. The supervisor
  /// checks the value for divergence; exceptions derived from
  /// std::runtime_error are treated as divergence too.
  virtual double step() = 0;

  /// True when the last step() ended a natural snapshot boundary (epoch
  /// end); the supervisor always snapshots there.
  virtual bool at_boundary() const = 0;

  /// Serializes the complete loop state — everything the remaining steps
  /// consume — such that load_state() + the same step sequence reproduces
  /// an uninterrupted run bitwise.
  virtual void save_state(std::ostream& out) const = 0;
  virtual void load_state(std::istream& in) = 0;

  /// Called after a rollback restored the last good state; `attempt` counts
  /// consecutive failures of the current stretch (1..max_rollbacks).
  /// Typical response: set the learning rate to base * lr_backoff^attempt.
  virtual void on_rollback(std::size_t attempt) = 0;

  /// Called once when a step succeeds after one or more rollbacks: the
  /// divergence passed, so the loop may undo its backoff (restore the base
  /// learning rate).
  virtual void on_recover() {}
};

/// Generation-rotated, checksummed snapshot files: write() publishes to
/// <base>.ckpt.1 after shifting older generations up, read_latest() returns
/// the newest generation that passes integrity checks.
class SnapshotRotation {
 public:
  SnapshotRotation(std::string base_path, std::size_t generations);

  static std::string generation_path(const std::string& base,
                                     std::size_t generation);

  /// Rotates generations then atomically publishes `payload` (with CRC32 +
  /// version footer) as generation 1. Throws std::runtime_error on write
  /// failure (the previous generations stay intact).
  void write(const std::string& payload) const;

  /// Newest generation whose checksum verifies; rejected generations append
  /// a named warning. std::nullopt when no generation is readable.
  /// [[nodiscard]]: ignoring the payload means the caller resumed from
  /// nothing while believing it restored state.
  [[nodiscard]] std::optional<std::string> read_latest(
      std::vector<std::string>* warnings) const;

 private:
  std::string base_;
  std::size_t generations_;
};

/// What the supervisor did. Loops fold the relevant fields into their own
/// reports (TrainReport, SkipGramReport).
struct SupervisorReport {
  TerminationReason termination = TerminationReason::kSucceeded;
  std::size_t steps = 0;
  std::size_t rollbacks = 0;
  std::size_t snapshots_written = 0;
  /// Snapshot publishes that failed (disk full, injected ckpt.write fault)
  /// even after snapshot_retry ran out of attempts: training continues —
  /// losing a snapshot must not lose the run.
  std::size_t snapshot_write_failures = 0;
  /// Extra publish attempts consumed by RetryPolicy before a snapshot
  /// landed (0 when every publish succeeded first try).
  std::size_t snapshot_write_retries = 0;
  bool resumed = false;
  int stop_signal = 0;  ///< signal that requested the stop (0 = none)
  std::vector<std::string> warnings;
};

/// One supervised run of a ResumableTraining loop, decomposed so callers
/// can interleave work between epoch boundaries. TrainSupervisor::run() is
/// the plain serial composition; ShardedTrainSupervisor drives one session
/// per shard and inserts a parameter-averaging barrier at each boundary.
///
/// Lifecycle: initialize() once (resume handling + initial rollback
/// target), then step_until_boundary() repeatedly; on kBoundary either let
/// the session commit (`commit_at_boundary=true`, serial behaviour) or do
/// external work first and call commit_boundary() yourself; on any other
/// status call finish(status) exactly once and read report().
class SupervisorSession {
 public:
  // [[nodiscard]]: every StepStatus encodes what the caller must do next
  // (commit, finish, or stop); dropping one desynchronizes the session
  // lifecycle.
  enum class [[nodiscard]] StepStatus {
    kBoundary,  ///< loop hit a natural snapshot boundary (epoch end)
    kDone,      ///< loop reports done(); finish() flushes + kSucceeded
    kStopped,   ///< StopToken / max_steps / external stop; resumable
    kError,     ///< divergence beyond max_rollbacks; run lost
  };

  SupervisorSession(ResumableTraining& loop, const ResilienceConfig& config);

  /// Extra stop condition polled alongside the StopToken (sharded training
  /// uses it to drain every shard once any shard stops). Set before
  /// initialize(); null means no external stop.
  void set_external_stop(std::function<bool()> predicate);

  /// Resume handling (when configured) + the initial in-memory rollback
  /// target. Must be called exactly once, before stepping.
  void initialize();

  /// Runs steps — with divergence detection, rollback and periodic
  /// snapshots — until a boundary, completion, a stop, or rollback
  /// exhaustion. With `commit_at_boundary`, a boundary also refreshes the
  /// rollback target and publishes a snapshot before returning.
  StepStatus step_until_boundary(bool commit_at_boundary);

  /// Refreshes the rollback target from the loop's current state and
  /// publishes it as a snapshot. Used by callers that mutate the loop at a
  /// boundary (parameter averaging) after step_until_boundary(false).
  void commit_boundary();

  /// Records the terminal status: final snapshot flush on kDone (and on
  /// kStopped when flush_on_stop), termination + stop-signal bookkeeping.
  void finish(StepStatus status);

  const SupervisorReport& report() const { return report_; }
  SupervisorReport take_report() { return std::move(report_); }

 private:
  bool stop_requested() const;
  std::string serialize_loop() const;
  void publish(const std::string& state);

  ResumableTraining& loop_;
  ResilienceConfig config_;
  bool has_disk_;
  SnapshotRotation rotation_;
  SupervisorReport report_;
  std::function<bool()> external_stop_;
  std::string last_good_;
  double ewma_ = 0.0;
  bool ewma_primed_ = false;
  std::size_t consecutive_failures_ = 0;
};

/// Drives a ResumableTraining loop to completion under a ResilienceConfig.
class TrainSupervisor {
 public:
  explicit TrainSupervisor(const ResilienceConfig& config)
      : config_(config) {}

  SupervisorReport run(ResumableTraining& loop) const;

 private:
  ResilienceConfig config_;
};

}  // namespace advtext
