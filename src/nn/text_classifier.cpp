#include "src/nn/text_classifier.h"

#include <algorithm>
#include <atomic>

namespace advtext {

namespace {

std::atomic<bool> g_sequential_scoring{false};

/// Fallback evaluator: one full forward pass per candidate.
class FullForwardEvaluator : public SwapEvaluator {
 public:
  FullForwardEvaluator(const TextClassifier& model, const TokenSeq& base)
      : model_(model) {
    rebase(base);
  }

 protected:
  std::size_t do_num_classes() const override { return model_.num_classes(); }

  void do_rebase(const TokenSeq& /*tokens*/) override {}

  Vector do_eval_swap(std::size_t pos, WordId candidate) override {
    TokenSeq tokens = base_tokens_;
    tokens.at(pos) = candidate;
    return model_.predict_proba(tokens);
  }

  Vector do_eval_tokens(const TokenSeq& tokens) override {
    return model_.predict_proba(tokens);
  }

 private:
  const TextClassifier& model_;
};

}  // namespace

void set_sequential_scoring(bool sequential) {
  g_sequential_scoring.store(sequential, std::memory_order_relaxed);
}

bool sequential_scoring() {
  return g_sequential_scoring.load(std::memory_order_relaxed);
}

// ---- SwapEvaluator shell ---------------------------------------------------

void SwapEvaluator::rebase(const TokenSeq& tokens) {
  base_tokens_ = tokens;
  do_rebase(base_tokens_);
}

void SwapEvaluator::bind_control(const AttackControl* control) {
  control_ = control;
}

QueryCache* SwapEvaluator::active_cache() const {
  if (!cacheable_ || control_ == nullptr || control_->cache == nullptr) {
    return nullptr;
  }
  return control_->cache->enabled() ? control_->cache : nullptr;
}

std::uint64_t SwapEvaluator::swap_key(std::size_t pos,
                                      WordId candidate) const {
  // Streamed hash of the full resulting sequence: prefix bytes, the
  // candidate word, then the suffix. Identical to hashing the materialized
  // swapped sequence, so swap keys and eval_tokens keys unify.
  std::uint64_t h = fnv1a64_append(kFnv1a64Seed, base_tokens_.data(),
                                   pos * sizeof(WordId));
  h = fnv1a64_append(h, &candidate, sizeof(WordId));
  h = fnv1a64_append(h, base_tokens_.data() + pos + 1,
                     (base_tokens_.size() - pos - 1) * sizeof(WordId));
  return h;
}

void SwapEvaluator::charge_one() {
  if (control_ != nullptr && control_->budget != nullptr) {
    control_->charge(1);
    ++charged_;
  }
}

Vector SwapEvaluator::eval_swap(std::size_t pos, WordId candidate) {
  ADVTEXT_CHECK_SHAPE(pos < base_tokens_.size())
      << "eval_swap: position " << pos << " out of range for base of "
      << base_tokens_.size() << " tokens";
  QueryCache* cache = active_cache();
  if (cache != nullptr) {
    const std::uint64_t key = swap_key(pos, candidate);
    if (const std::vector<float>* hit = cache->lookup(key)) {
      ++queries_;
      ++hits_;
      return *hit;
    }
    ++queries_;
    ++misses_;
    charge_one();
    Vector proba = do_eval_swap(pos, candidate);
    cache->insert(key, proba);
    return proba;
  }
  ++queries_;
  ++misses_;
  charge_one();
  return do_eval_swap(pos, candidate);
}

Vector SwapEvaluator::eval_tokens(const TokenSeq& tokens) {
  QueryCache* cache = active_cache();
  if (cache != nullptr) {
    const std::uint64_t key =
        fnv1a64(tokens.data(), tokens.size() * sizeof(WordId));
    if (const std::vector<float>* hit = cache->lookup(key)) {
      ++queries_;
      ++hits_;
      return *hit;
    }
    ++queries_;
    ++misses_;
    charge_one();
    Vector proba = do_eval_tokens(tokens);
    cache->insert(key, proba);
    return proba;
  }
  ++queries_;
  ++misses_;
  charge_one();
  return do_eval_tokens(tokens);
}

BatchStatus SwapEvaluator::eval_swap_batch(const SwapCandidate* candidates,
                                           std::size_t count, Matrix& out) {
  const std::size_t classes = do_num_classes();
  if (out.rows() != count || out.cols() != classes) {
    out = Matrix(count, classes);
  }
  QueryCache* cache = active_cache();
  miss_cands_.clear();
  miss_rows_.clear();
  miss_keys_.clear();
  alias_rows_.clear();
  pending_.clear();

  // Phase A: walk the batch in request order, replicating the seed
  // per-candidate loop's control checks (deadline before every row, budget
  // before every miss) so budget-limited truncation lands on the same
  // logical query index as the sequential path.
  BatchStatus status;
  for (std::size_t i = 0; i < count; ++i) {
    if (control_ != nullptr && control_->deadline.expired()) {
      status.out_of_time = true;
      break;
    }
    ADVTEXT_CHECK_SHAPE(candidates[i].pos < base_tokens_.size())
        << "eval_swap_batch: position " << candidates[i].pos
        << " out of range for base of " << base_tokens_.size() << " tokens";
    if (cache != nullptr) {
      const std::uint64_t key = swap_key(candidates[i].pos,
                                         candidates[i].word);
      if (const std::vector<float>* hit = cache->lookup(key)) {
        std::copy(hit->begin(), hit->end(), out.row(i));
        ++queries_;
        ++hits_;
        ++status.evaluated;
        continue;
      }
      const auto pending = pending_.find(key);
      if (pending != pending_.end()) {
        // In-batch duplicate of a still-pending miss: copy its row after
        // phase B computes it. Costs nothing and is not charged.
        alias_rows_.emplace_back(i, pending->second);
        ++queries_;
        ++hits_;
        ++status.evaluated;
        continue;
      }
      if (control_ != nullptr && control_->budget_exhausted()) {
        status.out_of_budget = true;
        break;
      }
      pending_.emplace(key, i);
      miss_keys_.push_back(key);
    } else if (control_ != nullptr && control_->budget_exhausted()) {
      status.out_of_budget = true;
      break;
    }
    ++queries_;
    ++misses_;
    charge_one();
    miss_cands_.push_back(candidates[i]);
    miss_rows_.push_back(i);
    ++status.evaluated;
  }

  // Phase B: score every miss in one batched forward (or, under the bench
  // seed-path switch, through the per-candidate hook row by row).
  if (!miss_rows_.empty()) {
    if (sequential_scoring()) {
      for (std::size_t m = 0; m < miss_rows_.size(); ++m) {
        const Vector proba =
            do_eval_swap(miss_cands_[m].pos, miss_cands_[m].word);
        std::copy(proba.begin(), proba.end(), out.row(miss_rows_[m]));
      }
    } else {
      do_eval_swap_batch(miss_cands_.data(), miss_rows_.data(),
                         miss_rows_.size(), out);
    }
    if (cache != nullptr) {
      for (std::size_t m = 0; m < miss_rows_.size(); ++m) {
        const float* r = out.row(miss_rows_[m]);
        row_scratch_.assign(r, r + classes);
        cache->insert(miss_keys_[m], row_scratch_);
      }
    }
  }
  for (const auto& [dst, src] : alias_rows_) {
    std::copy(out.row(src), out.row(src) + classes, out.row(dst));
  }
  return status;
}

BatchStatus SwapEvaluator::eval_swap_batch(
    const std::vector<SwapCandidate>& candidates, Matrix& out) {
  return eval_swap_batch(candidates.data(), candidates.size(), out);
}

BatchStatus SwapEvaluator::eval_tokens_batch(const TokenSeq* docs,
                                             std::size_t count, Matrix& out) {
  const std::size_t classes = do_num_classes();
  if (out.rows() != count || out.cols() != classes) {
    out = Matrix(count, classes);
  }
  QueryCache* cache = active_cache();
  miss_docs_.clear();
  miss_rows_.clear();
  miss_keys_.clear();
  alias_rows_.clear();
  pending_.clear();

  BatchStatus status;
  for (std::size_t i = 0; i < count; ++i) {
    if (control_ != nullptr && control_->deadline.expired()) {
      status.out_of_time = true;
      break;
    }
    if (cache != nullptr) {
      const std::uint64_t key =
          fnv1a64(docs[i].data(), docs[i].size() * sizeof(WordId));
      if (const std::vector<float>* hit = cache->lookup(key)) {
        std::copy(hit->begin(), hit->end(), out.row(i));
        ++queries_;
        ++hits_;
        ++status.evaluated;
        continue;
      }
      const auto pending = pending_.find(key);
      if (pending != pending_.end()) {
        alias_rows_.emplace_back(i, pending->second);
        ++queries_;
        ++hits_;
        ++status.evaluated;
        continue;
      }
      if (control_ != nullptr && control_->budget_exhausted()) {
        status.out_of_budget = true;
        break;
      }
      pending_.emplace(key, i);
      miss_keys_.push_back(key);
    } else if (control_ != nullptr && control_->budget_exhausted()) {
      status.out_of_budget = true;
      break;
    }
    ++queries_;
    ++misses_;
    charge_one();
    miss_docs_.push_back(&docs[i]);
    miss_rows_.push_back(i);
    ++status.evaluated;
  }

  if (!miss_rows_.empty()) {
    if (sequential_scoring()) {
      for (std::size_t m = 0; m < miss_rows_.size(); ++m) {
        const Vector proba = do_eval_tokens(*miss_docs_[m]);
        std::copy(proba.begin(), proba.end(), out.row(miss_rows_[m]));
      }
    } else {
      do_eval_tokens_batch(miss_docs_.data(), miss_rows_.data(),
                           miss_rows_.size(), out);
    }
    if (cache != nullptr) {
      for (std::size_t m = 0; m < miss_rows_.size(); ++m) {
        const float* r = out.row(miss_rows_[m]);
        row_scratch_.assign(r, r + classes);
        cache->insert(miss_keys_[m], row_scratch_);
      }
    }
  }
  for (const auto& [dst, src] : alias_rows_) {
    std::copy(out.row(src), out.row(src) + classes, out.row(dst));
  }
  return status;
}

BatchStatus SwapEvaluator::eval_tokens_batch(const std::vector<TokenSeq>& docs,
                                             Matrix& out) {
  return eval_tokens_batch(docs.data(), docs.size(), out);
}

void SwapEvaluator::do_eval_swap_batch(const SwapCandidate* candidates,
                                       const std::size_t* rows,
                                       std::size_t count, Matrix& out) {
  for (std::size_t m = 0; m < count; ++m) {
    const Vector proba = do_eval_swap(candidates[m].pos, candidates[m].word);
    std::copy(proba.begin(), proba.end(), out.row(rows[m]));
  }
}

void SwapEvaluator::do_eval_tokens_batch(const TokenSeq* const* docs,
                                         const std::size_t* rows,
                                         std::size_t count, Matrix& out) {
  for (std::size_t m = 0; m < count; ++m) {
    const Vector proba = do_eval_tokens(*docs[m]);
    std::copy(proba.begin(), proba.end(), out.row(rows[m]));
  }
}

// ---- TextClassifier --------------------------------------------------------

Matrix TextClassifier::predict_proba_batch(
    const std::vector<TokenSeq>& docs) const {
  Matrix out(docs.size(), num_classes());
  for (std::size_t i = 0; i < docs.size(); ++i) {
    const Vector proba = predict_proba(docs[i]);
    std::copy(proba.begin(), proba.end(), out.row(i));
  }
  return out;
}

std::size_t TextClassifier::predict(const TokenSeq& tokens) const {
  const Vector proba = predict_proba(tokens);
  return static_cast<std::size_t>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
}

std::unique_ptr<SwapEvaluator> TextClassifier::make_swap_evaluator(
    const TokenSeq& base) const {
  return std::make_unique<FullForwardEvaluator>(*this, base);
}

}  // namespace advtext
