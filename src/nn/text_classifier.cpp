#include "src/nn/text_classifier.h"

#include <algorithm>

namespace advtext {

namespace {

/// Fallback evaluator: one full forward pass per candidate.
class FullForwardEvaluator : public SwapEvaluator {
 public:
  FullForwardEvaluator(const TextClassifier& model, TokenSeq base)
      : model_(model), base_(std::move(base)) {}

  void rebase(const TokenSeq& tokens) override { base_ = tokens; }

  Vector eval_swap(std::size_t pos, WordId candidate) override {
    ++queries_;
    TokenSeq tokens = base_;
    tokens.at(pos) = candidate;
    return model_.predict_proba(tokens);
  }

  Vector eval_tokens(const TokenSeq& tokens) override {
    ++queries_;
    return model_.predict_proba(tokens);
  }

 private:
  const TextClassifier& model_;
  TokenSeq base_;
};

}  // namespace

std::size_t TextClassifier::predict(const TokenSeq& tokens) const {
  const Vector proba = predict_proba(tokens);
  return static_cast<std::size_t>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
}

std::unique_ptr<SwapEvaluator> TextClassifier::make_swap_evaluator(
    const TokenSeq& base) const {
  return std::make_unique<FullForwardEvaluator>(*this, base);
}

}  // namespace advtext
