// Simplified word-level CNN of Theorem 1 (paper eq. 4).
//
// Compared to the trainable WCnn this model drops dropout and softmax and
// outputs the scalar  C(v_{1:n}) = w' · ĉ + b'  where ĉ is the per-filter
// max-over-time of φ(w_j · v_window + b_j). Theorem 1 states that when
//   (i)  windows do not overlap (stride s >= window h),
//   (ii) the output weights w' are all non-negative, and
//   (iii) every allowed replacement increases each filter's pre-activation,
// the attack set function f(S) is submodular. This class exists to let the
// property tests instantiate the theorem's exact hypotheses (and violate
// them one at a time for negative tests).
#pragma once

#include <cstddef>
#include <cstdint>

#include "src/tensor/ops.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace advtext {

struct SimpleWCnnConfig {
  std::size_t embed_dim = 4;
  std::size_t num_filters = 3;
  std::size_t window = 2;   ///< h, the n-gram size
  std::size_t stride = 2;   ///< s; theorem requires s >= h
  Activation activation = Activation::kRelu;  ///< non-decreasing φ
  std::uint64_t seed = 1;
  bool nonnegative_output_weights = true;     ///< theorem hypothesis (ii)
};

class SimpleWCnn {
 public:
  explicit SimpleWCnn(const SimpleWCnnConfig& config);

  const SimpleWCnnConfig& config() const { return config_; }

  /// Scalar classifier output for an n x D embedded document. Windows are
  /// taken at offsets 0, s, 2s, ... while a full window fits.
  double score(const Matrix& embedded) const;

  /// Number of (complete) windows for an n-word document.
  std::size_t num_windows(std::size_t num_words) const;

  /// Pre-activation of filter f on the window starting at word `start`.
  double filter_preact(const Matrix& embedded, std::size_t f,
                       std::size_t start) const;

  /// Theorem hypothesis (iii): true iff replacing the word at offset
  /// `offset_in_window` from `original` to `candidate` does not decrease
  /// any filter's pre-activation (checked on the relevant filter segment).
  bool replacement_increases_filters(std::size_t offset_in_window,
                                     const Vector& original,
                                     const Vector& candidate) const;

  /// Direct access for tests that want to break a hypothesis.
  Matrix& filters() { return filters_; }
  Vector& filter_bias() { return filter_bias_; }
  Vector& output_weights() { return out_w_; }
  double& output_bias() { return out_b_; }

 private:
  SimpleWCnnConfig config_;
  Matrix filters_;     // F x (h * D)
  Vector filter_bias_; // F
  Vector out_w_;       // F, non-negative under the theorem hypothesis
  double out_b_ = 0.0;
};

}  // namespace advtext
