#include "src/nn/bow_classifier.h"

#include "src/util/check.h"

#include <algorithm>
#include <cmath>

#include "src/tensor/ops.h"

namespace advtext {

BowClassifier::BowClassifier(const BowClassifierConfig& config)
    : config_(config),
      weights_(config.num_classes, config.vocab_size),
      weights_grad_(config.num_classes, config.vocab_size),
      bias_(config.num_classes, 0.0f),
      bias_grad_(config.num_classes, 0.0f) {
  ADVTEXT_CHECK_SHAPE(config.vocab_size > 0) << "BowClassifier: empty vocab";
  Rng rng(config.seed);
  weights_.fill_normal(
      rng, static_cast<float>(
               0.1 / std::sqrt(static_cast<double>(config.vocab_size))));
}

const Matrix& BowClassifier::embedding_table() const {
  if (identity_ == nullptr) {
    identity_ =
        std::make_unique<Matrix>(config_.vocab_size, config_.vocab_size);
    for (std::size_t i = 0; i < config_.vocab_size; ++i) {
      (*identity_)(i, i) = 1.0f;
    }
  }
  return *identity_;
}

Vector BowClassifier::predict_proba(const TokenSeq& tokens) const {
  Vector logits = bias_;
  for (WordId w : tokens) {
    ADVTEXT_CHECK_SHAPE(w >= 0 && static_cast<std::size_t>(w) < config_.vocab_size) << "BowClassifier: token out of range";
    for (std::size_t c = 0; c < config_.num_classes; ++c) {
      logits[c] += weights_(c, static_cast<std::size_t>(w));
    }
  }
  return softmax(logits);
}

Matrix BowClassifier::input_gradient(const TokenSeq& tokens,
                                     std::size_t target,
                                     Vector* proba) const {
  // d p_target / d count_w = sum_c p_t (1[c=t] - p_c) W[c][w]; position i's
  // row in one-hot space is that gradient evaluated at w = token_i's
  // coordinate, i.e. the full vocab-gradient (shared across positions).
  const Vector p = predict_proba(tokens);
  if (proba != nullptr) *proba = p;
  Vector coeff(config_.num_classes);
  for (std::size_t c = 0; c < config_.num_classes; ++c) {
    coeff[c] = p[target] * ((c == target ? 1.0f : 0.0f) - p[c]);
  }
  Matrix grad(tokens.size(), config_.vocab_size);
  Vector vocab_grad(config_.vocab_size, 0.0f);
  for (std::size_t c = 0; c < config_.num_classes; ++c) {
    const float* row = weights_.row(c);
    for (std::size_t w = 0; w < config_.vocab_size; ++w) {
      vocab_grad[w] += coeff[c] * row[w];
    }
  }
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    grad.set_row(i, vocab_grad);
  }
  return grad;
}

float BowClassifier::forward_backward(const TokenSeq& tokens,
                                      std::size_t label) {
  ADVTEXT_CHECK_SHAPE(label < config_.num_classes) << "BowClassifier: label out of range";
  Vector logits = bias_;
  for (WordId w : tokens) {
    for (std::size_t c = 0; c < config_.num_classes; ++c) {
      logits[c] += weights_(c, static_cast<std::size_t>(w));
    }
  }
  const float loss = cross_entropy(logits, label);
  const Vector dlogits = cross_entropy_grad(logits, label);
  for (std::size_t c = 0; c < config_.num_classes; ++c) {
    bias_grad_[c] += dlogits[c];
    float* grow = weights_grad_.row(c);
    for (WordId w : tokens) {
      grow[static_cast<std::size_t>(w)] += dlogits[c];
    }
  }
  return loss;
}

std::vector<ParamRef> BowClassifier::params() {
  return {{weights_.data(), weights_grad_.data(), weights_.size()},
          {bias_.data(), bias_grad_.data(), bias_.size()}};
}

void BowClassifier::zero_grad() {
  weights_grad_.fill(0.0f);
  std::fill(bias_grad_.begin(), bias_grad_.end(), 0.0f);
}

double BowClassifier::swap_logit_delta(std::size_t target, WordId from,
                                       WordId to) const {
  return static_cast<double>(
             weights_(target, static_cast<std::size_t>(to))) -
         weights_(target, static_cast<std::size_t>(from));
}

namespace {

/// Count-model swaps are O(num_classes): logits update incrementally.
class BowSwapEvaluator : public SwapEvaluator {
 public:
  BowSwapEvaluator(const BowClassifier& model, const Matrix& weights,
                   const Vector& bias, const TokenSeq& base)
      : model_(model), weights_(weights), bias_(bias) {
    rebase(base);
  }

 protected:
  std::size_t do_num_classes() const override { return model_.num_classes(); }

  void do_rebase(const TokenSeq& tokens) override {
    logits_ = bias_;
    for (WordId w : tokens) {
      for (std::size_t c = 0; c < weights_.rows(); ++c) {
        logits_[c] += weights_(c, static_cast<std::size_t>(w));
      }
    }
  }

  Vector do_eval_swap(std::size_t pos, WordId candidate) override {
    Vector logits = logits_;
    for (std::size_t c = 0; c < weights_.rows(); ++c) {
      logits[c] += weights_(c, static_cast<std::size_t>(candidate)) -
                   weights_(c, static_cast<std::size_t>(base_tokens_.at(pos)));
    }
    return softmax(logits);
  }

  Vector do_eval_tokens(const TokenSeq& tokens) override {
    return model_.predict_proba(tokens);
  }

  // A count model's swap is already O(num_classes); there is no gemm to
  // win, so the batched hook just reuses one logits scratch across rows
  // instead of allocating a Vector per candidate.
  void do_eval_swap_batch(const SwapCandidate* candidates,
                          const std::size_t* rows, std::size_t count,
                          Matrix& out) override {
    const std::size_t classes = weights_.rows();
    for (std::size_t m = 0; m < count; ++m) {
      float* logits = out.row(rows[m]);
      for (std::size_t c = 0; c < classes; ++c) {
        logits[c] =
            logits_[c] +
            (weights_(c, static_cast<std::size_t>(candidates[m].word)) -
             weights_(c, static_cast<std::size_t>(
                             base_tokens_.at(candidates[m].pos))));
      }
      softmax_inplace(logits, classes);
    }
  }

 private:
  const BowClassifier& model_;
  const Matrix& weights_;
  const Vector& bias_;
  Vector logits_;
};

}  // namespace

std::unique_ptr<SwapEvaluator> BowClassifier::make_swap_evaluator(
    const TokenSeq& base) const {
  return std::make_unique<BowSwapEvaluator>(*this, weights_, bias_, base);
}

}  // namespace advtext
