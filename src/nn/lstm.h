// One-layer LSTM text classifier (Hochreiter & Schmidhuber 1997), as used
// in the paper: embedding -> LSTM -> fully connected softmax on the final
// hidden state. Full backpropagation-through-time is implemented by hand,
// both for training and for the per-word input-embedding gradients that
// drive the attacks.
//
// The SwapEvaluator caches the hidden/cell state trajectory of the base
// document; a candidate that first differs at position p only needs the
// suffix recurrence from p, roughly halving the cost of the massive
// candidate sweeps in the greedy attacks.
#pragma once

#include <cstdint>
#include <memory>

#include "src/nn/embedding.h"
#include "src/nn/text_classifier.h"
#include "src/util/rng.h"

namespace advtext {

struct LstmConfig {
  std::size_t embed_dim = 16;
  std::size_t hidden = 32;       ///< paper: 512; scaled down (DESIGN.md §4)
  std::size_t num_classes = 2;
  float train_dropout = 0.05f;   ///< dropout on the final hidden state
  std::uint64_t seed = 1;
};

class LstmClassifier final : public TrainableClassifier {
 public:
  LstmClassifier(const LstmConfig& config, Matrix pretrained_embeddings,
                 bool freeze_embedding = true);

  std::size_t num_classes() const override { return config_.num_classes; }
  std::size_t embedding_dim() const override { return config_.embed_dim; }
  const Matrix& embedding_table() const override {
    return embedding_.table();
  }

  Vector predict_proba(const TokenSeq& tokens) const override;
  Matrix predict_proba_batch(const std::vector<TokenSeq>& docs) const override;
  Matrix input_gradient(const TokenSeq& tokens, std::size_t target,
                        Vector* proba = nullptr) const override;
  std::unique_ptr<SwapEvaluator> make_swap_evaluator(
      const TokenSeq& base) const override;

  float forward_backward(const TokenSeq& tokens, std::size_t label) override;
  std::vector<ParamRef> params() override;
  void zero_grad() override;

  const LstmConfig& config() const { return config_; }
  const EmbeddingLayer& embedding() const { return embedding_; }

  // -- Internal recurrence, exposed for the SwapEvaluator -------------------

  /// One LSTM step: consumes embedding row x (dim D) and state (h, c);
  /// writes the next state in place.
  void step(const float* x, Vector& h, Vector& c) const;

  /// Probabilities from a final hidden state.
  Vector proba_from_hidden(const Vector& h) const;

  // Batched recurrence primitives. Every output element is the same
  // ascending-k dot the scalar step computes, so
  //   gate_preact_x + gate_preact_h + step_from_preact == step
  // bit-for-bit per row; the batched evaluators stack rows so each piece
  // is one gemm per timestep instead of 8H small dots per candidate.

  /// zx = X * Wx^T for m stacked embedding rows (m x D -> m x 4H).
  void gate_preact_x(const float* x, std::size_t m, float* zx) const;

  /// zh = H * Wh^T for m stacked hidden rows (m x H -> m x 4H).
  void gate_preact_h(const float* h, std::size_t m, float* zh) const;

  /// One-time pack of the gate weights for the packed overloads below.
  /// The caller owns the buffers and must repack after any weight update;
  /// the batched evaluators pack at rebase time, when weights are frozen.
  void pack_gate_weights(PackedB* wx, PackedB* wh) const;

  /// Bit-identical to the unpacked overloads, minus the per-call repack
  /// of the weight tile (one recurrent gemm runs per timestep, so that
  /// repack is the dominant per-call overhead at small batch widths).
  void gate_preact_x(const PackedB& wx, const float* x, std::size_t m,
                     float* zx) const;
  void gate_preact_h(const PackedB& wh, const float* h, std::size_t m,
                     float* zh) const;

  /// One step for one row from precomputed pre-activations; updates the
  /// raw h and c rows (length hidden) in place.
  void step_from_preact(const float* zx, const float* zh, float* h,
                        float* c) const;

  /// Batched output head: class probabilities for m stacked hidden rows,
  /// written row-major into proba (m x num_classes).
  void proba_from_hidden_batch(const float* h, std::size_t m,
                               float* proba) const;

  // Dropout RNG round-trip for bitwise-identical training resume.
  std::vector<std::uint64_t> stochastic_state() const override {
    const RngState s = rng_.state();
    return {s.begin(), s.end()};
  }
  void set_stochastic_state(const std::vector<std::uint64_t>& words) override {
    RngState s{};
    for (std::size_t i = 0; i < s.size() && i < words.size(); ++i)
      s[i] = words[i];
    rng_.set_state(s);
  }

 private:
  /// Per-step activations recorded during the stateful forward pass.
  struct StepTrace {
    Vector i, f, g, o, c, tanh_c, h;
  };

  /// Forward pass recording traces; returns final probabilities.
  Vector forward_traced(const TokenSeq& tokens, std::vector<StepTrace>* traces,
                        Matrix* embedded) const;

  /// Shared backpropagation-through-time core. Starting from dh at the
  /// final step, walks the recurrence backwards; for every step it invokes
  /// `on_step(t, dz, h_prev)` (used by training to accumulate parameter
  /// gradients) and, when input_grad is non-null, writes dL/dx_t into its
  /// rows. Const: touches no member gradient buffers itself.
  template <typename OnStep>
  void bptt(const Matrix& embedded, const std::vector<StepTrace>& traces,
            Vector dh_final, OnStep&& on_step, Matrix* input_grad) const;

  LstmConfig config_;
  EmbeddingLayer embedding_;

  Matrix wx_;        // 4H x D   (gate order: i, f, g, o)
  Matrix wx_grad_;
  Matrix wh_;        // 4H x H
  Matrix wh_grad_;
  Vector b_;         // 4H
  Vector b_grad_;
  Matrix out_w_;     // C x H
  Matrix out_w_grad_;
  Vector out_b_;     // C
  Vector out_b_grad_;

  mutable Rng rng_;
};

}  // namespace advtext
