// One-layer LSTM text classifier (Hochreiter & Schmidhuber 1997), as used
// in the paper: embedding -> LSTM -> fully connected softmax on the final
// hidden state. Full backpropagation-through-time is implemented by hand,
// both for training and for the per-word input-embedding gradients that
// drive the attacks.
//
// The SwapEvaluator caches the hidden/cell state trajectory of the base
// document; a candidate that first differs at position p only needs the
// suffix recurrence from p, roughly halving the cost of the massive
// candidate sweeps in the greedy attacks.
#pragma once

#include <cstdint>
#include <memory>

#include "src/nn/embedding.h"
#include "src/nn/text_classifier.h"
#include "src/util/rng.h"

namespace advtext {

struct LstmConfig {
  std::size_t embed_dim = 16;
  std::size_t hidden = 32;       ///< paper: 512; scaled down (DESIGN.md §4)
  std::size_t num_classes = 2;
  float train_dropout = 0.05f;   ///< dropout on the final hidden state
  std::uint64_t seed = 1;
};

class LstmClassifier final : public TrainableClassifier {
 public:
  LstmClassifier(const LstmConfig& config, Matrix pretrained_embeddings,
                 bool freeze_embedding = true);

  std::size_t num_classes() const override { return config_.num_classes; }
  std::size_t embedding_dim() const override { return config_.embed_dim; }
  const Matrix& embedding_table() const override {
    return embedding_.table();
  }

  Vector predict_proba(const TokenSeq& tokens) const override;
  Matrix input_gradient(const TokenSeq& tokens, std::size_t target,
                        Vector* proba = nullptr) const override;
  std::unique_ptr<SwapEvaluator> make_swap_evaluator(
      const TokenSeq& base) const override;

  float forward_backward(const TokenSeq& tokens, std::size_t label) override;
  std::vector<ParamRef> params() override;
  void zero_grad() override;

  const LstmConfig& config() const { return config_; }
  const EmbeddingLayer& embedding() const { return embedding_; }

  // -- Internal recurrence, exposed for the SwapEvaluator -------------------

  /// One LSTM step: consumes embedding row x (dim D) and state (h, c);
  /// writes the next state in place.
  void step(const float* x, Vector& h, Vector& c) const;

  /// Probabilities from a final hidden state.
  Vector proba_from_hidden(const Vector& h) const;

  // Dropout RNG round-trip for bitwise-identical training resume.
  std::vector<std::uint64_t> stochastic_state() const override {
    const RngState s = rng_.state();
    return {s.begin(), s.end()};
  }
  void set_stochastic_state(const std::vector<std::uint64_t>& words) override {
    RngState s{};
    for (std::size_t i = 0; i < s.size() && i < words.size(); ++i)
      s[i] = words[i];
    rng_.set_state(s);
  }

 private:
  /// Per-step activations recorded during the stateful forward pass.
  struct StepTrace {
    Vector i, f, g, o, c, tanh_c, h;
  };

  /// Forward pass recording traces; returns final probabilities.
  Vector forward_traced(const TokenSeq& tokens, std::vector<StepTrace>* traces,
                        Matrix* embedded) const;

  /// Shared backpropagation-through-time core. Starting from dh at the
  /// final step, walks the recurrence backwards; for every step it invokes
  /// `on_step(t, dz, h_prev)` (used by training to accumulate parameter
  /// gradients) and, when input_grad is non-null, writes dL/dx_t into its
  /// rows. Const: touches no member gradient buffers itself.
  template <typename OnStep>
  void bptt(const Matrix& embedded, const std::vector<StepTrace>& traces,
            Vector dh_final, OnStep&& on_step, Matrix* input_grad) const;

  LstmConfig config_;
  EmbeddingLayer embedding_;

  Matrix wx_;        // 4H x D   (gate order: i, f, g, o)
  Matrix wx_grad_;
  Matrix wh_;        // 4H x H
  Matrix wh_grad_;
  Vector b_;         // 4H
  Vector b_grad_;
  Matrix out_w_;     // C x H
  Matrix out_w_grad_;
  Vector out_b_;     // C
  Vector out_b_grad_;

  mutable Rng rng_;
};

}  // namespace advtext
