#include "src/nn/wcnn.h"

#include "src/util/check.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/tensor/ops.h"

namespace advtext {

WCnn::WCnn(const WCnnConfig& config, Matrix pretrained_embeddings,
           bool freeze_embedding)
    : config_(config),
      embedding_(std::move(pretrained_embeddings)),
      conv_w_(config.num_filters, config.kernel * config.embed_dim),
      conv_w_grad_(config.num_filters, config.kernel * config.embed_dim),
      conv_b_(config.num_filters, 0.0f),
      conv_b_grad_(config.num_filters, 0.0f),
      out_w_(config.num_classes, config.num_filters),
      out_w_grad_(config.num_classes, config.num_filters),
      out_b_(config.num_classes, 0.0f),
      out_b_grad_(config.num_classes, 0.0f),
      rng_(config.seed) {
  ADVTEXT_CHECK_SHAPE(embedding_.dim() == config_.embed_dim) << "WCnn: embedding dim mismatch";
  embedding_.set_frozen(freeze_embedding);
  const float conv_bound = static_cast<float>(
      std::sqrt(6.0 / static_cast<double>(config.kernel * config.embed_dim +
                                          config.num_filters)));
  conv_w_.fill_uniform(rng_, conv_bound);
  const float out_bound = static_cast<float>(
      std::sqrt(6.0 / static_cast<double>(config.num_filters +
                                          config.num_classes)));
  out_w_.fill_uniform(rng_, out_bound);
}

TokenSeq WCnn::padded(const TokenSeq& tokens) const {
  TokenSeq out = tokens;
  while (out.size() < config_.kernel) out.push_back(Vocab::kPad);
  return out;
}

void WCnn::window_preact(const Matrix& embedded, std::size_t win,
                         float* out) const {
  const std::size_t span = config_.kernel * config_.embed_dim;
  const float* window = embedded.row(win);  // rows are contiguous
  for (std::size_t f = 0; f < config_.num_filters; ++f) {
    out[f] = dot(conv_w_.row(f), window, span) + conv_b_[f];
  }
}

Matrix WCnn::conv_preact(const Matrix& embedded) const {
  const std::size_t num_windows = embedded.rows() - config_.kernel + 1;
  Matrix preact(num_windows, config_.num_filters);
  for (std::size_t i = 0; i < num_windows; ++i) {
    window_preact(embedded, i, preact.row(i));
  }
  return preact;
}

Vector WCnn::max_pool(const Matrix& preact,
                      std::vector<std::size_t>* argmax) const {
  Vector pooled(config_.num_filters,
                -std::numeric_limits<float>::infinity());
  if (argmax != nullptr) argmax->assign(config_.num_filters, 0);
  for (std::size_t i = 0; i < preact.rows(); ++i) {
    const float* row = preact.row(i);
    for (std::size_t f = 0; f < config_.num_filters; ++f) {
      const float a = std::max(0.0f, row[f]);  // ReLU
      if (a > pooled[f]) {
        pooled[f] = a;
        if (argmax != nullptr) (*argmax)[f] = i;
      }
    }
  }
  return pooled;
}

Vector WCnn::output_logits(const Vector& pooled) const {
  Vector logits = matvec(out_w_, pooled);
  for (std::size_t c = 0; c < logits.size(); ++c) logits[c] += out_b_[c];
  return logits;
}

void WCnn::apply_mc_dropout(Vector& pooled) const {
  apply_mc_dropout(pooled.data(), pooled.size());
}

void WCnn::apply_mc_dropout(float* pooled, std::size_t n) const {
  const float p = config_.mc_dropout;
  if (p <= 0.0f) return;
  const float scale = 1.0f / (1.0f - p);
  for (std::size_t f = 0; f < n; ++f) {
    pooled[f] = rng_.bernoulli(p) ? 0.0f : pooled[f] * scale;
  }
}

void WCnn::window_preact_batch(const float* windows, std::size_t m,
                               float* out) const {
  const std::size_t span = config_.kernel * config_.embed_dim;
  const std::size_t nf = config_.num_filters;
  gemm_nt(windows, m, conv_w_.data(), nf, span, out);
  for (std::size_t i = 0; i < m; ++i) {
    float* row = out + i * nf;
    for (std::size_t f = 0; f < nf; ++f) row[f] += conv_b_[f];
  }
}

void WCnn::proba_from_pooled_batch(const float* pooled, std::size_t m,
                                   float* proba) const {
  const std::size_t classes = config_.num_classes;
  gemm_nt(pooled, m, out_w_.data(), classes, config_.num_filters, proba);
  for (std::size_t i = 0; i < m; ++i) {
    float* row = proba + i * classes;
    for (std::size_t c = 0; c < classes; ++c) row[c] += out_b_[c];
    softmax_inplace(row, classes);
  }
}

Vector WCnn::predict_proba(const TokenSeq& tokens) const {
  const Matrix embedded = embedding_.lookup(padded(tokens));
  const Matrix preact = conv_preact(embedded);
  Vector pooled = max_pool(preact);
  apply_mc_dropout(pooled);
  return softmax(output_logits(pooled));
}

Matrix WCnn::predict_proba_batch(const std::vector<TokenSeq>& docs) const {
  const std::size_t count = docs.size();
  Matrix out(count, config_.num_classes);
  if (count == 0) return out;
  const std::size_t dim = config_.embed_dim;
  const std::size_t span = config_.kernel * dim;
  const std::size_t nf = config_.num_filters;
  // Stack every window of every document; one gemm convolves them all.
  std::vector<std::size_t> win_start(count + 1);
  std::vector<Matrix> embedded(count);
  std::size_t total = 0;
  for (std::size_t m = 0; m < count; ++m) {
    embedded[m] = embedding_.lookup(padded(docs[m]));
    win_start[m] = total;
    total += embedded[m].rows() - config_.kernel + 1;
  }
  win_start[count] = total;
  Matrix windows(total, span);
  for (std::size_t m = 0; m < count; ++m) {
    const std::size_t nw = win_start[m + 1] - win_start[m];
    for (std::size_t w = 0; w < nw; ++w) {
      const float* src = embedded[m].row(w);  // rows are contiguous
      std::copy(src, src + span, windows.row(win_start[m] + w));
    }
  }
  Matrix preact(total, nf);
  window_preact_batch(windows.data(), total, preact.data());
  // Pool + (in document order, for the RNG stream) MC dropout.
  Matrix pooled(count, nf);
  for (std::size_t m = 0; m < count; ++m) {
    float* prow = pooled.row(m);
    std::fill(prow, prow + nf, -std::numeric_limits<float>::infinity());
    for (std::size_t w = win_start[m]; w < win_start[m + 1]; ++w) {
      const float* row = preact.row(w);
      for (std::size_t f = 0; f < nf; ++f) {
        const float a = std::max(0.0f, row[f]);  // ReLU
        if (a > prow[f]) prow[f] = a;
      }
    }
    apply_mc_dropout(prow, nf);
  }
  proba_from_pooled_batch(pooled.data(), count, out.data());
  return out;
}

Matrix WCnn::input_gradient(const TokenSeq& tokens, std::size_t target,
                            Vector* proba) const {
  ADVTEXT_CHECK_SHAPE(target < config_.num_classes) << "WCnn::input_gradient: target out of range";
  const TokenSeq pad_tokens = padded(tokens);
  const Matrix embedded = embedding_.lookup(pad_tokens);
  const Matrix preact = conv_preact(embedded);
  std::vector<std::size_t> argmax;
  Vector pooled = max_pool(preact, &argmax);
  // Inference MC dropout applies to gradient queries too: the attacker
  // differentiates the same stochastic model it evaluates (§6.4), so the
  // mask gates both the forward value and the backward path.
  std::vector<float> mc_mask(pooled.size(), 1.0f);
  if (config_.mc_dropout > 0.0f) {
    const float scale = 1.0f / (1.0f - config_.mc_dropout);
    for (std::size_t f = 0; f < pooled.size(); ++f) {
      mc_mask[f] = rng_.bernoulli(config_.mc_dropout) ? 0.0f : scale;
      pooled[f] *= mc_mask[f];
    }
  }
  const Vector logits = output_logits(pooled);
  const Vector p = softmax(logits);
  if (proba != nullptr) *proba = p;

  // d p_target / d logits = p_t * (onehot(t) - p)
  Vector dlogits(p.size());
  for (std::size_t c = 0; c < p.size(); ++c) {
    dlogits[c] = p[target] * ((c == target ? 1.0f : 0.0f) - p[c]);
  }
  // d pooled = out_w^T dlogits (through the dropout mask)
  Vector dpooled = matvec_transposed(out_w_, dlogits);
  for (std::size_t f = 0; f < dpooled.size(); ++f) dpooled[f] *= mc_mask[f];

  Matrix grad(tokens.size(), config_.embed_dim);
  for (std::size_t f = 0; f < config_.num_filters; ++f) {
    const std::size_t win = argmax[f];
    const float pre = preact(win, f);
    if (pre <= 0.0f) continue;  // ReLU gate (pooled value was 0)
    const float dpre = dpooled[f];
    if (dpre == 0.0f) continue;
    const float* wf = conv_w_.row(f);
    for (std::size_t j = 0; j < config_.kernel; ++j) {
      const std::size_t word = win + j;
      if (word >= tokens.size()) continue;  // padding rows
      float* grow = grad.row(word);
      const float* wseg = wf + j * config_.embed_dim;
      for (std::size_t d = 0; d < config_.embed_dim; ++d) {
        grow[d] += dpre * wseg[d];
      }
    }
  }
  return grad;
}

float WCnn::forward_backward(const TokenSeq& tokens, std::size_t label) {
  ADVTEXT_CHECK_SHAPE(label < config_.num_classes) << "WCnn::forward_backward: label out of range";
  const TokenSeq pad_tokens = padded(tokens);
  const Matrix embedded = embedding_.lookup(pad_tokens);
  const Matrix preact = conv_preact(embedded);
  std::vector<std::size_t> argmax;
  Vector pooled = max_pool(preact, &argmax);

  // Training dropout on the pooled layer (inverted scaling).
  std::vector<float> mask(pooled.size(), 1.0f);
  const float p = config_.train_dropout;
  if (p > 0.0f) {
    const float scale = 1.0f / (1.0f - p);
    for (std::size_t f = 0; f < pooled.size(); ++f) {
      mask[f] = rng_.bernoulli(p) ? 0.0f : scale;
      pooled[f] *= mask[f];
    }
  }

  const Vector logits = output_logits(pooled);
  const float loss = cross_entropy(logits, label);
  const Vector dlogits = cross_entropy_grad(logits, label);

  // Output layer grads.
  add_outer(out_w_grad_, 1.0f, dlogits, pooled);
  for (std::size_t c = 0; c < dlogits.size(); ++c) {
    out_b_grad_[c] += dlogits[c];
  }
  Vector dpooled = matvec_transposed(out_w_, dlogits);
  for (std::size_t f = 0; f < dpooled.size(); ++f) dpooled[f] *= mask[f];

  // Conv grads through the max-pool winners.
  for (std::size_t f = 0; f < config_.num_filters; ++f) {
    const std::size_t win = argmax[f];
    const float pre = preact(win, f);
    if (pre <= 0.0f) continue;
    const float dpre = dpooled[f];
    if (dpre == 0.0f) continue;
    const float* window = embedded.row(win);
    float* wg = conv_w_grad_.row(f);
    const std::size_t span = config_.kernel * config_.embed_dim;
    for (std::size_t i = 0; i < span; ++i) wg[i] += dpre * window[i];
    conv_b_grad_[f] += dpre;
    if (!embedding_.frozen()) {
      const float* wf = conv_w_.row(f);
      for (std::size_t j = 0; j < config_.kernel; ++j) {
        const std::size_t word = win + j;
        Vector g(config_.embed_dim);
        const float* wseg = wf + j * config_.embed_dim;
        for (std::size_t d = 0; d < config_.embed_dim; ++d) {
          g[d] = dpre * wseg[d];
        }
        embedding_.accumulate_grad(pad_tokens[word], g.data());
      }
    }
  }
  return loss;
}

std::vector<ParamRef> WCnn::params() {
  std::vector<ParamRef> refs = {
      {conv_w_.data(), conv_w_grad_.data(), conv_w_.size()},
      {conv_b_.data(), conv_b_grad_.data(), conv_b_.size()},
      {out_w_.data(), out_w_grad_.data(), out_w_.size()},
      {out_b_.data(), out_b_grad_.data(), out_b_.size()},
  };
  if (!embedding_.frozen()) {
    refs.push_back({embedding_.mutable_table().data(),
                    embedding_.grad().data(),
                    embedding_.mutable_table().size()});
  }
  return refs;
}

void WCnn::zero_grad() {
  conv_w_grad_.fill(0.0f);
  std::fill(conv_b_grad_.begin(), conv_b_grad_.end(), 0.0f);
  out_w_grad_.fill(0.0f);
  std::fill(out_b_grad_.begin(), out_b_grad_.end(), 0.0f);
  embedding_.zero_grad();
}

// ---- Incremental swap evaluator --------------------------------------------

namespace {

/// Caches the padded embedding matrix, conv pre-activations and per-filter
/// prefix/suffix running maxima of the (ReLU'd) feature maps. A swap at
/// position p touches only windows [p-kernel+1, p], a contiguous range, so
/// the new pooled vector is max(prefix-before, new windows, suffix-after).
class WCnnSwapEvaluatorImpl : public SwapEvaluator {
 public:
  WCnnSwapEvaluatorImpl(const WCnn& model, const TokenSeq& base)
      : model_(model) {
    rebase(base);
  }

 protected:
  std::size_t do_num_classes() const override { return model_.num_classes(); }

  void do_rebase(const TokenSeq& tokens) override {
    // MC-dropout forwards are stochastic draws; memoizing one would change
    // results, so the shell's cache is bypassed whenever dropout is live.
    cacheable_ = model_.config().mc_dropout <= 0.0f;
    base_len_ = tokens.size();
    padded_ = model_.padded(tokens);
    embedded_ = model_.embedding().lookup(padded_);
    preact_ = model_.conv_preact(embedded_);
    const std::size_t nw = preact_.rows();
    const std::size_t nf = model_.config().num_filters;
    // prefix_[i] = max over windows < i; suffix_[i] = max over windows >= i.
    prefix_ = Matrix(nw + 1, nf);
    suffix_ = Matrix(nw + 1, nf);
    for (std::size_t f = 0; f < nf; ++f) {
      prefix_(0, f) = 0.0f;  // ReLU output lower bound; empty max = 0
      suffix_(nw, f) = 0.0f;
    }
    for (std::size_t i = 0; i < nw; ++i) {
      for (std::size_t f = 0; f < nf; ++f) {
        prefix_(i + 1, f) =
            std::max(prefix_(i, f), std::max(0.0f, preact_(i, f)));
      }
    }
    for (std::size_t i = nw; i > 0; --i) {
      for (std::size_t f = 0; f < nf; ++f) {
        suffix_(i - 1, f) =
            std::max(suffix_(i, f), std::max(0.0f, preact_(i - 1, f)));
      }
    }
  }

  Vector do_eval_swap(std::size_t pos, WordId candidate) override {
    ADVTEXT_CHECK_SHAPE(pos < base_len_) << "eval_swap: position out of range";
    const auto& cfg = model_.config();
    const std::size_t nw = preact_.rows();
    const std::size_t lo =
        pos >= cfg.kernel - 1 ? pos - (cfg.kernel - 1) : 0;
    const std::size_t hi = std::min(pos, nw - 1);

    // Temporarily patch the embedding row, recompute affected windows.
    const Vector saved = embedded_.row_copy(pos);
    const float* cand_vec = model_.embedding().vector(candidate);
    for (std::size_t d = 0; d < cfg.embed_dim; ++d) {
      embedded_(pos, d) = cand_vec[d];
    }
    Vector pooled(cfg.num_filters);
    std::vector<float> scratch(cfg.num_filters);
    for (std::size_t f = 0; f < cfg.num_filters; ++f) {
      pooled[f] = std::max(prefix_(lo, f), suffix_(hi + 1, f));
    }
    for (std::size_t i = lo; i <= hi; ++i) {
      model_.window_preact(embedded_, i, scratch.data());
      for (std::size_t f = 0; f < cfg.num_filters; ++f) {
        pooled[f] = std::max(pooled[f], std::max(0.0f, scratch[f]));
      }
    }
    embedded_.set_row(pos, saved);

    model_.apply_mc_dropout(pooled);
    return softmax(model_.output_logits(pooled));
  }

  Vector do_eval_tokens(const TokenSeq& tokens) override {
    // Multi-position candidate: recompute only windows covering changed
    // positions, take the column max with cached unaffected windows.
    if (tokens.size() != base_len_) return model_.predict_proba(tokens);
    const auto& cfg = model_.config();
    const std::size_t nw = preact_.rows();
    std::vector<bool> dirty(nw, false);
    std::vector<std::pair<std::size_t, Vector>> patched;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      if (tokens[i] == padded_[i]) continue;
      patched.emplace_back(i, embedded_.row_copy(i));
      const float* cand = model_.embedding().vector(tokens[i]);
      for (std::size_t d = 0; d < cfg.embed_dim; ++d) {
        embedded_(i, d) = cand[d];
      }
      const std::size_t lo = i >= cfg.kernel - 1 ? i - (cfg.kernel - 1) : 0;
      const std::size_t hi = std::min(i, nw - 1);
      for (std::size_t w = lo; w <= hi; ++w) dirty[w] = true;
    }
    Vector pooled(cfg.num_filters, 0.0f);
    std::vector<float> scratch(cfg.num_filters);
    for (std::size_t w = 0; w < nw; ++w) {
      const float* row = preact_.row(w);
      if (dirty[w]) {
        model_.window_preact(embedded_, w, scratch.data());
        row = scratch.data();
      }
      for (std::size_t f = 0; f < cfg.num_filters; ++f) {
        pooled[f] = std::max(pooled[f], std::max(0.0f, row[f]));
      }
    }
    for (auto& [i, saved] : patched) embedded_.set_row(i, saved);

    model_.apply_mc_dropout(pooled);
    return softmax(model_.output_logits(pooled));
  }

  // Batched candidate scoring: every affected window of every candidate
  // (at most `kernel` each) is stacked into one matrix and re-convolved by
  // a single gemm; pooling then reads the cached prefix/suffix maxima per
  // row. MC-dropout draws happen per row in request order, so the RNG
  // stream matches the sequential path exactly.
  void do_eval_swap_batch(const SwapCandidate* candidates,
                          const std::size_t* rows, std::size_t count,
                          Matrix& out) override {
    const auto& cfg = model_.config();
    const std::size_t dim = cfg.embed_dim;
    const std::size_t span = cfg.kernel * dim;
    const std::size_t nf = cfg.num_filters;
    const std::size_t nw = preact_.rows();
    const std::size_t classes = model_.num_classes();
    win_start_.resize(count + 1);
    std::size_t total = 0;
    for (std::size_t m = 0; m < count; ++m) {
      win_start_[m] = total;
      const std::size_t pos = candidates[m].pos;
      const std::size_t lo =
          pos >= cfg.kernel - 1 ? pos - (cfg.kernel - 1) : 0;
      const std::size_t hi = std::min(pos, nw - 1);
      total += hi - lo + 1;
    }
    win_start_[count] = total;
    ensure_window_scratch(total, span, nf);
    for (std::size_t m = 0; m < count; ++m) {
      const std::size_t pos = candidates[m].pos;
      const std::size_t lo =
          pos >= cfg.kernel - 1 ? pos - (cfg.kernel - 1) : 0;
      const std::size_t hi = std::min(pos, nw - 1);
      const float* cand_vec = model_.embedding().vector(candidates[m].word);
      for (std::size_t w = lo; w <= hi; ++w) {
        float* dst = wins_.row(win_start_[m] + (w - lo));
        const float* src = embedded_.row(w);  // rows are contiguous
        std::copy(src, src + span, dst);
        std::copy(cand_vec, cand_vec + dim, dst + (pos - w) * dim);
      }
    }
    model_.window_preact_batch(wins_.data(), total, wpre_.data());
    if (pooled_.rows() < count || pooled_.cols() != nf) {
      pooled_ = Matrix(count, nf);
    }
    for (std::size_t m = 0; m < count; ++m) {
      const std::size_t pos = candidates[m].pos;
      const std::size_t lo =
          pos >= cfg.kernel - 1 ? pos - (cfg.kernel - 1) : 0;
      const std::size_t hi = std::min(pos, nw - 1);
      float* pooled = pooled_.row(m);
      for (std::size_t f = 0; f < nf; ++f) {
        pooled[f] = std::max(prefix_(lo, f), suffix_(hi + 1, f));
      }
      for (std::size_t w = lo; w <= hi; ++w) {
        const float* row = wpre_.row(win_start_[m] + (w - lo));
        for (std::size_t f = 0; f < nf; ++f) {
          pooled[f] = std::max(pooled[f], std::max(0.0f, row[f]));
        }
      }
      model_.apply_mc_dropout(pooled, nf);
    }
    proba_.resize(count * classes);
    model_.proba_from_pooled_batch(pooled_.data(), count, proba_.data());
    for (std::size_t m = 0; m < count; ++m) {
      const float* src = proba_.data() + m * classes;
      std::copy(src, src + classes, out.row(rows[m]));
    }
  }

  void do_eval_tokens_batch(const TokenSeq* const* docs,
                            const std::size_t* rows, std::size_t count,
                            Matrix& out) override {
    const auto& cfg = model_.config();
    const std::size_t dim = cfg.embed_dim;
    const std::size_t span = cfg.kernel * dim;
    const std::size_t nf = cfg.num_filters;
    const std::size_t nw = preact_.rows();
    const std::size_t classes = model_.num_classes();
    // Pass 1 (draws no RNG): collect each row's dirty windows and stack
    // their patched contents for one gemm. Length-mismatched rows fall
    // back to a full forward in pass 2.
    win_start_.resize(count + 1);
    dirty_list_.clear();
    is_fallback_.assign(count, 0);
    for (std::size_t m = 0; m < count; ++m) {
      win_start_[m] = dirty_list_.size();
      const TokenSeq& doc = *docs[m];
      if (doc.size() != base_len_) {
        is_fallback_[m] = 1;
        continue;
      }
      for (std::size_t w = 0; w < nw; ++w) {
        bool dirty = false;
        for (std::size_t o = 0; o < cfg.kernel && w + o < doc.size(); ++o) {
          if (doc[w + o] != padded_[w + o]) {
            dirty = true;
            break;
          }
        }
        if (dirty) dirty_list_.push_back(w);
      }
    }
    win_start_[count] = dirty_list_.size();
    const std::size_t total = dirty_list_.size();
    ensure_window_scratch(total, span, nf);
    for (std::size_t m = 0; m < count; ++m) {
      const TokenSeq& doc = *docs[m];
      for (std::size_t k = win_start_[m]; k < win_start_[m + 1]; ++k) {
        const std::size_t w = dirty_list_[k];
        float* dst = wins_.row(k);
        const float* src = embedded_.row(w);
        std::copy(src, src + span, dst);
        for (std::size_t o = 0; o < cfg.kernel && w + o < doc.size(); ++o) {
          if (doc[w + o] == padded_[w + o]) continue;
          const float* xt = model_.embedding().vector(doc[w + o]);
          std::copy(xt, xt + dim, dst + o * dim);
        }
      }
    }
    if (total > 0) {
      model_.window_preact_batch(wins_.data(), total, wpre_.data());
    }
    // Pass 2, in request order so MC-dropout draws match the sequential
    // path: fallbacks run a full forward; cached rows pool from clean
    // preacts plus the re-convolved dirty windows.
    if (pooled_.rows() < count || pooled_.cols() != nf) {
      pooled_ = Matrix(count, nf);
    }
    brow_out_.clear();
    std::size_t bcount = 0;
    for (std::size_t m = 0; m < count; ++m) {
      if (is_fallback_[m]) {
        const Vector proba = model_.predict_proba(*docs[m]);
        std::copy(proba.begin(), proba.end(), out.row(rows[m]));
        continue;
      }
      float* pooled = pooled_.row(bcount);
      std::fill(pooled, pooled + nf, 0.0f);
      std::size_t k = win_start_[m];
      for (std::size_t w = 0; w < nw; ++w) {
        const float* row = preact_.row(w);
        if (k < win_start_[m + 1] && dirty_list_[k] == w) {
          row = wpre_.row(k);
          ++k;
        }
        for (std::size_t f = 0; f < nf; ++f) {
          pooled[f] = std::max(pooled[f], std::max(0.0f, row[f]));
        }
      }
      model_.apply_mc_dropout(pooled, nf);
      brow_out_.push_back(rows[m]);
      ++bcount;
    }
    if (bcount == 0) return;
    proba_.resize(bcount * classes);
    model_.proba_from_pooled_batch(pooled_.data(), bcount, proba_.data());
    for (std::size_t b = 0; b < bcount; ++b) {
      const float* src = proba_.data() + b * classes;
      std::copy(src, src + classes, out.row(brow_out_[b]));
    }
  }

 private:
  void ensure_window_scratch(std::size_t total, std::size_t span,
                             std::size_t nf) {
    if (wins_.rows() < total || wins_.cols() != span) {
      wins_ = Matrix(total, span);
    }
    if (wpre_.rows() < total || wpre_.cols() != nf) {
      wpre_ = Matrix(total, nf);
    }
  }

  const WCnn& model_;
  std::size_t base_len_ = 0;
  TokenSeq padded_;
  Matrix embedded_;  // padded
  Matrix preact_;    // windows x filters
  Matrix prefix_;    // (windows+1) x filters running max of ReLU'd maps
  Matrix suffix_;

  // Batch scratch, reused across rounds.
  std::vector<std::size_t> win_start_;
  std::vector<std::size_t> dirty_list_;
  std::vector<char> is_fallback_;
  std::vector<std::size_t> brow_out_;
  Matrix wins_;    // stacked patched windows
  Matrix wpre_;    // their re-convolved pre-activations
  Matrix pooled_;
  Vector proba_;
};

}  // namespace

std::unique_ptr<SwapEvaluator> WCnn::make_swap_evaluator(
    const TokenSeq& base) const {
  return std::make_unique<WCnnSwapEvaluatorImpl>(*this, base);
}

}  // namespace advtext
