#include "src/nn/wcnn.h"

#include "src/util/check.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/tensor/ops.h"

namespace advtext {

WCnn::WCnn(const WCnnConfig& config, Matrix pretrained_embeddings,
           bool freeze_embedding)
    : config_(config),
      embedding_(std::move(pretrained_embeddings)),
      conv_w_(config.num_filters, config.kernel * config.embed_dim),
      conv_w_grad_(config.num_filters, config.kernel * config.embed_dim),
      conv_b_(config.num_filters, 0.0f),
      conv_b_grad_(config.num_filters, 0.0f),
      out_w_(config.num_classes, config.num_filters),
      out_w_grad_(config.num_classes, config.num_filters),
      out_b_(config.num_classes, 0.0f),
      out_b_grad_(config.num_classes, 0.0f),
      rng_(config.seed) {
  ADVTEXT_CHECK_SHAPE(embedding_.dim() == config_.embed_dim) << "WCnn: embedding dim mismatch";
  embedding_.set_frozen(freeze_embedding);
  const float conv_bound = static_cast<float>(
      std::sqrt(6.0 / static_cast<double>(config.kernel * config.embed_dim +
                                          config.num_filters)));
  conv_w_.fill_uniform(rng_, conv_bound);
  const float out_bound = static_cast<float>(
      std::sqrt(6.0 / static_cast<double>(config.num_filters +
                                          config.num_classes)));
  out_w_.fill_uniform(rng_, out_bound);
}

TokenSeq WCnn::padded(const TokenSeq& tokens) const {
  TokenSeq out = tokens;
  while (out.size() < config_.kernel) out.push_back(Vocab::kPad);
  return out;
}

void WCnn::window_preact(const Matrix& embedded, std::size_t win,
                         float* out) const {
  const std::size_t span = config_.kernel * config_.embed_dim;
  const float* window = embedded.row(win);  // rows are contiguous
  for (std::size_t f = 0; f < config_.num_filters; ++f) {
    out[f] = dot(conv_w_.row(f), window, span) + conv_b_[f];
  }
}

Matrix WCnn::conv_preact(const Matrix& embedded) const {
  const std::size_t num_windows = embedded.rows() - config_.kernel + 1;
  Matrix preact(num_windows, config_.num_filters);
  for (std::size_t i = 0; i < num_windows; ++i) {
    window_preact(embedded, i, preact.row(i));
  }
  return preact;
}

Vector WCnn::max_pool(const Matrix& preact,
                      std::vector<std::size_t>* argmax) const {
  Vector pooled(config_.num_filters,
                -std::numeric_limits<float>::infinity());
  if (argmax != nullptr) argmax->assign(config_.num_filters, 0);
  for (std::size_t i = 0; i < preact.rows(); ++i) {
    const float* row = preact.row(i);
    for (std::size_t f = 0; f < config_.num_filters; ++f) {
      const float a = std::max(0.0f, row[f]);  // ReLU
      if (a > pooled[f]) {
        pooled[f] = a;
        if (argmax != nullptr) (*argmax)[f] = i;
      }
    }
  }
  return pooled;
}

Vector WCnn::output_logits(const Vector& pooled) const {
  Vector logits = matvec(out_w_, pooled);
  for (std::size_t c = 0; c < logits.size(); ++c) logits[c] += out_b_[c];
  return logits;
}

void WCnn::apply_mc_dropout(Vector& pooled) const {
  const float p = config_.mc_dropout;
  if (p <= 0.0f) return;
  const float scale = 1.0f / (1.0f - p);
  for (float& v : pooled) {
    v = rng_.bernoulli(p) ? 0.0f : v * scale;
  }
}

Vector WCnn::predict_proba(const TokenSeq& tokens) const {
  const Matrix embedded = embedding_.lookup(padded(tokens));
  const Matrix preact = conv_preact(embedded);
  Vector pooled = max_pool(preact);
  apply_mc_dropout(pooled);
  return softmax(output_logits(pooled));
}

Matrix WCnn::input_gradient(const TokenSeq& tokens, std::size_t target,
                            Vector* proba) const {
  ADVTEXT_CHECK_SHAPE(target < config_.num_classes) << "WCnn::input_gradient: target out of range";
  const TokenSeq pad_tokens = padded(tokens);
  const Matrix embedded = embedding_.lookup(pad_tokens);
  const Matrix preact = conv_preact(embedded);
  std::vector<std::size_t> argmax;
  Vector pooled = max_pool(preact, &argmax);
  // Inference MC dropout applies to gradient queries too: the attacker
  // differentiates the same stochastic model it evaluates (§6.4), so the
  // mask gates both the forward value and the backward path.
  std::vector<float> mc_mask(pooled.size(), 1.0f);
  if (config_.mc_dropout > 0.0f) {
    const float scale = 1.0f / (1.0f - config_.mc_dropout);
    for (std::size_t f = 0; f < pooled.size(); ++f) {
      mc_mask[f] = rng_.bernoulli(config_.mc_dropout) ? 0.0f : scale;
      pooled[f] *= mc_mask[f];
    }
  }
  const Vector logits = output_logits(pooled);
  const Vector p = softmax(logits);
  if (proba != nullptr) *proba = p;

  // d p_target / d logits = p_t * (onehot(t) - p)
  Vector dlogits(p.size());
  for (std::size_t c = 0; c < p.size(); ++c) {
    dlogits[c] = p[target] * ((c == target ? 1.0f : 0.0f) - p[c]);
  }
  // d pooled = out_w^T dlogits (through the dropout mask)
  Vector dpooled = matvec_transposed(out_w_, dlogits);
  for (std::size_t f = 0; f < dpooled.size(); ++f) dpooled[f] *= mc_mask[f];

  Matrix grad(tokens.size(), config_.embed_dim);
  for (std::size_t f = 0; f < config_.num_filters; ++f) {
    const std::size_t win = argmax[f];
    const float pre = preact(win, f);
    if (pre <= 0.0f) continue;  // ReLU gate (pooled value was 0)
    const float dpre = dpooled[f];
    if (dpre == 0.0f) continue;
    const float* wf = conv_w_.row(f);
    for (std::size_t j = 0; j < config_.kernel; ++j) {
      const std::size_t word = win + j;
      if (word >= tokens.size()) continue;  // padding rows
      float* grow = grad.row(word);
      const float* wseg = wf + j * config_.embed_dim;
      for (std::size_t d = 0; d < config_.embed_dim; ++d) {
        grow[d] += dpre * wseg[d];
      }
    }
  }
  return grad;
}

float WCnn::forward_backward(const TokenSeq& tokens, std::size_t label) {
  ADVTEXT_CHECK_SHAPE(label < config_.num_classes) << "WCnn::forward_backward: label out of range";
  const TokenSeq pad_tokens = padded(tokens);
  const Matrix embedded = embedding_.lookup(pad_tokens);
  const Matrix preact = conv_preact(embedded);
  std::vector<std::size_t> argmax;
  Vector pooled = max_pool(preact, &argmax);

  // Training dropout on the pooled layer (inverted scaling).
  std::vector<float> mask(pooled.size(), 1.0f);
  const float p = config_.train_dropout;
  if (p > 0.0f) {
    const float scale = 1.0f / (1.0f - p);
    for (std::size_t f = 0; f < pooled.size(); ++f) {
      mask[f] = rng_.bernoulli(p) ? 0.0f : scale;
      pooled[f] *= mask[f];
    }
  }

  const Vector logits = output_logits(pooled);
  const float loss = cross_entropy(logits, label);
  const Vector dlogits = cross_entropy_grad(logits, label);

  // Output layer grads.
  add_outer(out_w_grad_, 1.0f, dlogits, pooled);
  for (std::size_t c = 0; c < dlogits.size(); ++c) {
    out_b_grad_[c] += dlogits[c];
  }
  Vector dpooled = matvec_transposed(out_w_, dlogits);
  for (std::size_t f = 0; f < dpooled.size(); ++f) dpooled[f] *= mask[f];

  // Conv grads through the max-pool winners.
  for (std::size_t f = 0; f < config_.num_filters; ++f) {
    const std::size_t win = argmax[f];
    const float pre = preact(win, f);
    if (pre <= 0.0f) continue;
    const float dpre = dpooled[f];
    if (dpre == 0.0f) continue;
    const float* window = embedded.row(win);
    float* wg = conv_w_grad_.row(f);
    const std::size_t span = config_.kernel * config_.embed_dim;
    for (std::size_t i = 0; i < span; ++i) wg[i] += dpre * window[i];
    conv_b_grad_[f] += dpre;
    if (!embedding_.frozen()) {
      const float* wf = conv_w_.row(f);
      for (std::size_t j = 0; j < config_.kernel; ++j) {
        const std::size_t word = win + j;
        Vector g(config_.embed_dim);
        const float* wseg = wf + j * config_.embed_dim;
        for (std::size_t d = 0; d < config_.embed_dim; ++d) {
          g[d] = dpre * wseg[d];
        }
        embedding_.accumulate_grad(pad_tokens[word], g.data());
      }
    }
  }
  return loss;
}

std::vector<ParamRef> WCnn::params() {
  std::vector<ParamRef> refs = {
      {conv_w_.data(), conv_w_grad_.data(), conv_w_.size()},
      {conv_b_.data(), conv_b_grad_.data(), conv_b_.size()},
      {out_w_.data(), out_w_grad_.data(), out_w_.size()},
      {out_b_.data(), out_b_grad_.data(), out_b_.size()},
  };
  if (!embedding_.frozen()) {
    refs.push_back({embedding_.mutable_table().data(),
                    embedding_.grad().data(),
                    embedding_.mutable_table().size()});
  }
  return refs;
}

void WCnn::zero_grad() {
  conv_w_grad_.fill(0.0f);
  std::fill(conv_b_grad_.begin(), conv_b_grad_.end(), 0.0f);
  out_w_grad_.fill(0.0f);
  std::fill(out_b_grad_.begin(), out_b_grad_.end(), 0.0f);
  embedding_.zero_grad();
}

// ---- Incremental swap evaluator --------------------------------------------

namespace {

/// Caches the padded embedding matrix, conv pre-activations and per-filter
/// prefix/suffix running maxima of the (ReLU'd) feature maps. A swap at
/// position p touches only windows [p-kernel+1, p], a contiguous range, so
/// the new pooled vector is max(prefix-before, new windows, suffix-after).
class WCnnSwapEvaluatorImpl : public SwapEvaluator {
 public:
  WCnnSwapEvaluatorImpl(const WCnn& model, const TokenSeq& base)
      : model_(model) {
    rebase(base);
  }

  void rebase(const TokenSeq& tokens) override {
    base_len_ = tokens.size();
    padded_ = model_.padded(tokens);
    embedded_ = model_.embedding().lookup(padded_);
    preact_ = model_.conv_preact(embedded_);
    const std::size_t nw = preact_.rows();
    const std::size_t nf = model_.config().num_filters;
    // prefix_[i] = max over windows < i; suffix_[i] = max over windows >= i.
    prefix_ = Matrix(nw + 1, nf);
    suffix_ = Matrix(nw + 1, nf);
    for (std::size_t f = 0; f < nf; ++f) {
      prefix_(0, f) = 0.0f;  // ReLU output lower bound; empty max = 0
      suffix_(nw, f) = 0.0f;
    }
    for (std::size_t i = 0; i < nw; ++i) {
      for (std::size_t f = 0; f < nf; ++f) {
        prefix_(i + 1, f) =
            std::max(prefix_(i, f), std::max(0.0f, preact_(i, f)));
      }
    }
    for (std::size_t i = nw; i > 0; --i) {
      for (std::size_t f = 0; f < nf; ++f) {
        suffix_(i - 1, f) =
            std::max(suffix_(i, f), std::max(0.0f, preact_(i - 1, f)));
      }
    }
  }

  Vector eval_swap(std::size_t pos, WordId candidate) override {
    ++queries_;
    ADVTEXT_CHECK_SHAPE(pos < base_len_) << "eval_swap: position out of range";
    const auto& cfg = model_.config();
    const std::size_t nw = preact_.rows();
    const std::size_t lo =
        pos >= cfg.kernel - 1 ? pos - (cfg.kernel - 1) : 0;
    const std::size_t hi = std::min(pos, nw - 1);

    // Temporarily patch the embedding row, recompute affected windows.
    const Vector saved = embedded_.row_copy(pos);
    const float* cand_vec = model_.embedding().vector(candidate);
    for (std::size_t d = 0; d < cfg.embed_dim; ++d) {
      embedded_(pos, d) = cand_vec[d];
    }
    Vector pooled(cfg.num_filters);
    std::vector<float> scratch(cfg.num_filters);
    for (std::size_t f = 0; f < cfg.num_filters; ++f) {
      pooled[f] = std::max(prefix_(lo, f), suffix_(hi + 1, f));
    }
    for (std::size_t i = lo; i <= hi; ++i) {
      model_.window_preact(embedded_, i, scratch.data());
      for (std::size_t f = 0; f < cfg.num_filters; ++f) {
        pooled[f] = std::max(pooled[f], std::max(0.0f, scratch[f]));
      }
    }
    embedded_.set_row(pos, saved);

    model_.apply_mc_dropout(pooled);
    return softmax(model_.output_logits(pooled));
  }

  Vector eval_tokens(const TokenSeq& tokens) override {
    ++queries_;
    // Multi-position candidate: recompute only windows covering changed
    // positions, take the column max with cached unaffected windows.
    if (tokens.size() != base_len_) return model_.predict_proba(tokens);
    const auto& cfg = model_.config();
    const std::size_t nw = preact_.rows();
    std::vector<bool> dirty(nw, false);
    std::vector<std::pair<std::size_t, Vector>> patched;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      if (tokens[i] == padded_[i]) continue;
      patched.emplace_back(i, embedded_.row_copy(i));
      const float* cand = model_.embedding().vector(tokens[i]);
      for (std::size_t d = 0; d < cfg.embed_dim; ++d) {
        embedded_(i, d) = cand[d];
      }
      const std::size_t lo = i >= cfg.kernel - 1 ? i - (cfg.kernel - 1) : 0;
      const std::size_t hi = std::min(i, nw - 1);
      for (std::size_t w = lo; w <= hi; ++w) dirty[w] = true;
    }
    Vector pooled(cfg.num_filters, 0.0f);
    std::vector<float> scratch(cfg.num_filters);
    for (std::size_t w = 0; w < nw; ++w) {
      const float* row = preact_.row(w);
      if (dirty[w]) {
        model_.window_preact(embedded_, w, scratch.data());
        row = scratch.data();
      }
      for (std::size_t f = 0; f < cfg.num_filters; ++f) {
        pooled[f] = std::max(pooled[f], std::max(0.0f, row[f]));
      }
    }
    for (auto& [i, saved] : patched) embedded_.set_row(i, saved);

    model_.apply_mc_dropout(pooled);
    return softmax(model_.output_logits(pooled));
  }

 private:
  const WCnn& model_;
  std::size_t base_len_ = 0;
  TokenSeq padded_;
  Matrix embedded_;  // padded
  Matrix preact_;    // windows x filters
  Matrix prefix_;    // (windows+1) x filters running max of ReLU'd maps
  Matrix suffix_;
};

}  // namespace

std::unique_ptr<SwapEvaluator> WCnn::make_swap_evaluator(
    const TokenSeq& base) const {
  return std::make_unique<WCnnSwapEvaluatorImpl>(*this, base);
}

}  // namespace advtext
