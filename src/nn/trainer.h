// Mini-batch Adam trainer for TrainableClassifier models.
//
// Mirrors the paper's training recipe at laptop scale: mini-batches of 16,
// a held-out validation slice used to pick the stopping epoch, and frozen
// pretrained embeddings as the first layer.
#pragma once

#include <cstdint>
#include <vector>

#include "src/nn/text_classifier.h"
#include "src/text/corpus.h"

namespace advtext {

struct TrainConfig {
  std::size_t epochs = 12;
  std::size_t batch_size = 16;   ///< paper: constant mini-batch of 16
  double learning_rate = 1e-2;
  double weight_decay = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  /// Global gradient-norm clip applied per batch (0 disables). Standard
  /// stabilizer for BPTT on longer documents.
  double clip_norm = 5.0;
  /// Fraction of the training set held out to pick the stopping epoch
  /// (paper: 10%). 0 disables validation-based selection.
  double validation_fraction = 0.1;
  std::uint64_t seed = 17;
  bool verbose = false;
};

struct TrainReport {
  std::size_t epochs_run = 0;
  double final_train_loss = 0.0;
  double best_validation_accuracy = 0.0;
  std::vector<double> epoch_losses;
};

/// Adam optimizer over raw parameter views. State is indexed by parameter
/// order, so the same ParamRef layout must be passed to every step.
class Adam {
 public:
  explicit Adam(const TrainConfig& config) : config_(config) {}

  /// Applies one update given accumulated gradients (scaled by 1/batch).
  void step(const std::vector<ParamRef>& params, double batch_scale);

 private:
  TrainConfig config_;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
  std::size_t t_ = 0;
};

/// Trains the model on `data` with the given config. Documents are
/// flattened to token sequences; empty documents are skipped.
TrainReport train_classifier(TrainableClassifier& model, const Dataset& data,
                             const TrainConfig& config = {});

}  // namespace advtext
