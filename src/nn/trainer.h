// Mini-batch Adam trainer for TrainableClassifier models.
//
// Mirrors the paper's training recipe at laptop scale: mini-batches of 16,
// a held-out validation slice used to pick the stopping epoch, and frozen
// pretrained embeddings as the first layer.
//
// Training runs under the TrainSupervisor (src/nn/supervisor.h): the loop
// exposes its full state (model params, Adam moments, RNG streams, epoch /
// batch cursor) for periodic snapshots, divergence rollback with
// learning-rate backoff, and cooperative shutdown. The plain overload keeps
// the default policy (no disk snapshots) and is numerically identical to
// the pre-supervisor trainer.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/nn/supervisor.h"
#include "src/nn/text_classifier.h"
#include "src/text/corpus.h"

namespace advtext {

struct TrainConfig {
  std::size_t epochs = 12;
  std::size_t batch_size = 16;   ///< paper: constant mini-batch of 16
  double learning_rate = 1e-2;
  double weight_decay = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  /// Global gradient-norm clip applied per batch (0 disables). Standard
  /// stabilizer for BPTT on longer documents.
  double clip_norm = 5.0;
  /// Fraction of the training set held out to pick the stopping epoch
  /// (paper: 10%). 0 disables validation-based selection.
  double validation_fraction = 0.1;
  std::uint64_t seed = 17;
  bool verbose = false;
};

struct TrainReport {
  std::size_t epochs_run = 0;
  double final_train_loss = 0.0;
  double best_validation_accuracy = 0.0;
  std::vector<double> epoch_losses;

  // -- Resilience outcome (filled by the supervised overload; the plain
  //    overload reports kSucceeded / zeros unless something went wrong) --
  TerminationReason termination = TerminationReason::kSucceeded;
  std::size_t clipped_steps = 0;          ///< batches hit by clip_norm
  std::size_t rollbacks = 0;              ///< divergence recoveries
  std::size_t lr_backoffs = 0;            ///< learning-rate halvings applied
  std::size_t snapshots_written = 0;
  std::size_t snapshot_write_failures = 0;
  bool resumed = false;                   ///< started from a disk snapshot
  std::vector<std::string> warnings;
};

/// Adam optimizer over raw parameter views. State is indexed by parameter
/// order, so the same ParamRef layout must be passed to every step.
class Adam {
 public:
  explicit Adam(const TrainConfig& config)
      : config_(config), lr_(config.learning_rate) {}

  /// Applies one update given accumulated gradients (scaled by 1/batch).
  void step(const std::vector<ParamRef>& params, double batch_scale);

  /// Current learning rate (mutable for divergence backoff; starts at
  /// TrainConfig::learning_rate).
  double learning_rate() const { return lr_; }
  void set_learning_rate(double lr) { lr_ = lr; }

  /// Batches whose gradient norm exceeded clip_norm and were rescaled.
  std::size_t clipped_steps() const { return clipped_steps_; }

  /// Moment/step-count round-trip for training snapshots. load_state
  /// requires the same parameter layout the saved optimizer stepped on.
  void save_state(std::ostream& out) const;
  void load_state(std::istream& in);

 private:
  TrainConfig config_;
  double lr_;
  std::size_t clipped_steps_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
  std::size_t t_ = 0;
};

/// Trains the model on `data` with the given config. Documents are
/// flattened to token sequences; empty documents are skipped.
TrainReport train_classifier(TrainableClassifier& model, const Dataset& data,
                             const TrainConfig& config = {});

/// Supervised variant: snapshots, resume, divergence rollback and
/// cooperative shutdown per `resilience`. With a default-constructed
/// ResilienceConfig this is numerically identical to the plain overload.
TrainReport train_classifier(TrainableClassifier& model, const Dataset& data,
                             const TrainConfig& config,
                             const ResilienceConfig& resilience);

}  // namespace advtext
