// Mini-batch Adam trainer for TrainableClassifier models.
//
// Mirrors the paper's training recipe at laptop scale: mini-batches of 16,
// a held-out validation slice used to pick the stopping epoch, and frozen
// pretrained embeddings as the first layer.
//
// Training runs under the TrainSupervisor (src/nn/supervisor.h): the loop
// exposes its full state (model params, Adam moments, RNG streams, epoch /
// batch cursor) for periodic snapshots, divergence rollback with
// learning-rate backoff, and cooperative shutdown. The plain overload keeps
// the default policy (no disk snapshots) and is numerically identical to
// the pre-supervisor trainer.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "src/nn/supervisor.h"
#include "src/nn/text_classifier.h"
#include "src/text/corpus.h"

namespace advtext {

struct TrainConfig {
  std::size_t epochs = 12;
  std::size_t batch_size = 16;   ///< paper: constant mini-batch of 16
  double learning_rate = 1e-2;
  double weight_decay = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  /// Global gradient-norm clip applied per batch (0 disables). Standard
  /// stabilizer for BPTT on longer documents.
  double clip_norm = 5.0;
  /// Fraction of the training set held out to pick the stopping epoch
  /// (paper: 10%). 0 disables validation-based selection.
  double validation_fraction = 0.1;
  std::uint64_t seed = 17;
  bool verbose = false;
};

struct TrainReport {
  std::size_t epochs_run = 0;
  double final_train_loss = 0.0;
  double best_validation_accuracy = 0.0;
  std::vector<double> epoch_losses;

  // -- Resilience outcome (filled by the supervised overload; the plain
  //    overload reports kSucceeded / zeros unless something went wrong) --
  TerminationReason termination = TerminationReason::kSucceeded;
  std::size_t clipped_steps = 0;          ///< batches hit by clip_norm
  std::size_t rollbacks = 0;              ///< divergence recoveries
  std::size_t lr_backoffs = 0;            ///< learning-rate halvings applied
  std::size_t snapshots_written = 0;
  std::size_t snapshot_write_failures = 0;
  std::size_t snapshot_write_retries = 0;  ///< RetryPolicy attempts absorbed
  bool resumed = false;                   ///< started from a disk snapshot
  std::vector<std::string> warnings;
};

/// Adam optimizer over raw parameter views. State is indexed by parameter
/// order, so the same ParamRef layout must be passed to every step.
class Adam {
 public:
  explicit Adam(const TrainConfig& config)
      : config_(config), lr_(config.learning_rate) {}

  /// Applies one update given accumulated gradients (scaled by 1/batch).
  void step(const std::vector<ParamRef>& params, double batch_scale);

  /// Current learning rate (mutable for divergence backoff; starts at
  /// TrainConfig::learning_rate).
  double learning_rate() const { return lr_; }
  void set_learning_rate(double lr) { lr_ = lr; }

  /// Batches whose gradient norm exceeded clip_norm and were rescaled.
  std::size_t clipped_steps() const { return clipped_steps_; }

  /// Moment/step-count round-trip for training snapshots. load_state
  /// requires the same parameter layout the saved optimizer stepped on.
  void save_state(std::ostream& out) const;
  void load_state(std::istream& in);

 private:
  TrainConfig config_;
  double lr_;
  std::size_t clipped_steps_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
  std::size_t t_ = 0;
};

/// Trains the model on `data` with the given config. Documents are
/// flattened to token sequences; empty documents are skipped.
TrainReport train_classifier(TrainableClassifier& model, const Dataset& data,
                             const TrainConfig& config = {});

/// Supervised variant: snapshots, resume, divergence rollback and
/// cooperative shutdown per `resilience`. With a default-constructed
/// ResilienceConfig this is numerically identical to the plain overload.
TrainReport train_classifier(TrainableClassifier& model, const Dataset& data,
                             const TrainConfig& config,
                             const ResilienceConfig& resilience);

/// Data-shard parallel training (ShardedTrainSupervisor underneath).
struct ShardConfig {
  /// Worker shards. 1 runs the sharded machinery with a single shard —
  /// bitwise identical to the serial supervised trainer (same seed, same
  /// step sequence, same snapshot path, no averaging).
  std::size_t shards = 1;
};

/// train_classifier_sharded outcome. `train` is the merged view callers of
/// the serial trainer expect (result-shard curves, summed counters, overall
/// termination); the per-shard detail rides alongside.
struct ShardedTrainReport {
  TrainReport train;
  std::size_t shards = 1;
  /// Shard whose parameters were copied back into the primary model.
  std::size_t result_shard = 0;
  /// Shards dropped after exhausting their rollback budget (the run
  /// degrades to the survivors; only all shards dying is an error).
  std::vector<std::size_t> dead_shards;
  std::vector<SupervisorReport> shard_reports;
  /// Parameter-averaging barriers released (aligned epoch boundaries).
  std::size_t averaging_rounds = 0;
};

/// Trains `model` across `shard_config.shards` data shards in parallel:
/// documents are dealt round-robin, shard k trains a replica (shard 0 uses
/// `model` itself) seeded with config.seed + k and fault-site
/// "train.loss@shard<k>", parameters are averaged at aligned epoch
/// boundaries, and the result shard's parameters end up in `model`.
/// Snapshots go to "<snapshot_path>.shard<k>" per shard (shards=1 keeps the
/// bare path); resume replays a cooperatively stopped run bitwise.
/// `make_replica` must build a model with the same architecture as `model`
/// (its parameters are overwritten with a copy of the primary's before
/// training starts).
ShardedTrainReport train_classifier_sharded(
    TrainableClassifier& model,
    const std::function<std::unique_ptr<TrainableClassifier>()>& make_replica,
    const Dataset& data, const TrainConfig& config,
    const ResilienceConfig& resilience, const ShardConfig& shard_config);

}  // namespace advtext
