#include "src/nn/gru.h"

#include "src/util/check.h"

#include <algorithm>
#include <cmath>

#include "src/tensor/ops.h"

namespace advtext {

GruClassifier::GruClassifier(const GruConfig& config,
                             Matrix pretrained_embeddings,
                             bool freeze_embedding)
    : config_(config),
      embedding_(std::move(pretrained_embeddings)),
      wx_(3 * config.hidden, config.embed_dim),
      wx_grad_(3 * config.hidden, config.embed_dim),
      uh_(3 * config.hidden, config.hidden),
      uh_grad_(3 * config.hidden, config.hidden),
      b_(3 * config.hidden, 0.0f),
      b_grad_(3 * config.hidden, 0.0f),
      out_w_(config.num_classes, config.hidden),
      out_w_grad_(config.num_classes, config.hidden),
      out_b_(config.num_classes, 0.0f),
      out_b_grad_(config.num_classes, 0.0f),
      rng_(config.seed) {
  ADVTEXT_CHECK_SHAPE(embedding_.dim() == config_.embed_dim) << "GruClassifier: embedding dim mismatch";
  embedding_.set_frozen(freeze_embedding);
  const float bx = static_cast<float>(
      std::sqrt(6.0 / static_cast<double>(config.embed_dim + config.hidden)));
  wx_.fill_uniform(rng_, bx);
  const float bh = static_cast<float>(
      std::sqrt(3.0 / static_cast<double>(config.hidden)));
  uh_.fill_uniform(rng_, bh);
  const float bo = static_cast<float>(std::sqrt(
      6.0 / static_cast<double>(config.hidden + config.num_classes)));
  out_w_.fill_uniform(rng_, bo);
}

void GruClassifier::step(const float* x, Vector& h) const {
  const std::size_t hidden = config_.hidden;
  Vector z(hidden);
  Vector r(hidden);
  for (std::size_t j = 0; j < hidden; ++j) {
    z[j] = sigmoid(dot(wx_.row(j), x, config_.embed_dim) +
                   dot(uh_.row(j), h.data(), hidden) + b_[j]);
    r[j] = sigmoid(dot(wx_.row(hidden + j), x, config_.embed_dim) +
                   dot(uh_.row(hidden + j), h.data(), hidden) +
                   b_[hidden + j]);
  }
  Vector rn(hidden);
  for (std::size_t j = 0; j < hidden; ++j) rn[j] = r[j] * h[j];
  for (std::size_t j = 0; j < hidden; ++j) {
    const float cand =
        tanh_act(dot(wx_.row(2 * hidden + j), x, config_.embed_dim) +
                  dot(uh_.row(2 * hidden + j), rn.data(), hidden) +
                  b_[2 * hidden + j]);
    h[j] = (1.0f - z[j]) * h[j] + z[j] * cand;
  }
}

Vector GruClassifier::proba_from_hidden(const Vector& h) const {
  Vector logits = matvec(out_w_, h);
  for (std::size_t c = 0; c < logits.size(); ++c) logits[c] += out_b_[c];
  return softmax(logits);
}

void GruClassifier::gate_preact_x(const float* x, std::size_t m,
                                  float* zx) const {
  gemm_nt(x, m, wx_.data(), 3 * config_.hidden, config_.embed_dim, zx);
}

void GruClassifier::gate_preact_zr(const float* h, std::size_t m,
                                   float* azr) const {
  gemm_nt(h, m, uh_.data(), 2 * config_.hidden, config_.hidden, azr);
}

void GruClassifier::gate_preact_cand(const float* rn, std::size_t m,
                                     float* acand) const {
  const std::size_t hidden = config_.hidden;
  gemm_nt(rn, m, uh_.data() + 2 * hidden * hidden, hidden, hidden, acand);
}

void GruClassifier::pack_gate_weights(PackedB* wx, PackedB* uh_zr,
                                      PackedB* uh_cand) const {
  const std::size_t hidden = config_.hidden;
  gemm_pack_b(wx_.data(), 3 * hidden, config_.embed_dim, *wx);
  gemm_pack_b(uh_.data(), 2 * hidden, hidden, *uh_zr);
  gemm_pack_b(uh_.data() + 2 * hidden * hidden, hidden, hidden, *uh_cand);
}

void GruClassifier::gate_preact_x(const PackedB& wx, const float* x,
                                  std::size_t m, float* zx) const {
  gemm_nt_packed(x, m, wx, zx);
}

void GruClassifier::gate_preact_zr(const PackedB& uh_zr, const float* h,
                                   std::size_t m, float* azr) const {
  gemm_nt_packed(h, m, uh_zr, azr);
}

void GruClassifier::gate_preact_cand(const PackedB& uh_cand, const float* rn,
                                     std::size_t m, float* acand) const {
  gemm_nt_packed(rn, m, uh_cand, acand);
}

void GruClassifier::step_gates(const float* zx, const float* azr,
                               const float* h, float* z, float* rn) const {
  // Contiguous elementwise passes (see LstmClassifier::step_from_preact):
  // same per-element expression order as the fused loop, but each pass
  // vectorizes. Bit-identical to the scalar step().
  const std::size_t hidden = config_.hidden;
  constexpr std::size_t kMaxHidden = 256;
  ADVTEXT_CHECK_SHAPE(hidden <= kMaxHidden)
      << "step_gates: hidden exceeds scratch bound";
  float s[2 * kMaxHidden];
  for (std::size_t r = 0; r < 2 * hidden; ++r) {
    s[r] = zx[r] + azr[r] + b_[r];
  }
  for (std::size_t r = 0; r < 2 * hidden; ++r) s[r] = sigmoid(s[r]);
  for (std::size_t j = 0; j < hidden; ++j) {
    z[j] = s[j];
    rn[j] = s[hidden + j] * h[j];
  }
}

void GruClassifier::step_combine(const float* zx, const float* acand,
                                 const float* z, float* h) const {
  const std::size_t hidden = config_.hidden;
  constexpr std::size_t kMaxHidden = 256;
  ADVTEXT_CHECK_SHAPE(hidden <= kMaxHidden)
      << "step_combine: hidden exceeds scratch bound";
  float cand[kMaxHidden];
  for (std::size_t j = 0; j < hidden; ++j) {
    cand[j] = zx[2 * hidden + j] + acand[j] + b_[2 * hidden + j];
  }
  for (std::size_t j = 0; j < hidden; ++j) cand[j] = tanh_act(cand[j]);
  for (std::size_t j = 0; j < hidden; ++j) {
    h[j] = (1.0f - z[j]) * h[j] + z[j] * cand[j];
  }
}

void GruClassifier::proba_from_hidden_batch(const float* h, std::size_t m,
                                            float* proba) const {
  const std::size_t classes = config_.num_classes;
  gemm_nt(h, m, out_w_.data(), classes, config_.hidden, proba);
  for (std::size_t i = 0; i < m; ++i) {
    float* row = proba + i * classes;
    for (std::size_t c = 0; c < classes; ++c) row[c] += out_b_[c];
    softmax_inplace(row, classes);
  }
}

Vector GruClassifier::forward_traced(const TokenSeq& tokens,
                                     std::vector<StepTrace>* traces,
                                     Matrix* embedded) const {
  ADVTEXT_CHECK_SHAPE(!tokens.empty()) << "GruClassifier: empty input";
  const std::size_t hidden = config_.hidden;
  Matrix emb = embedding_.lookup(tokens);
  Vector h(hidden, 0.0f);
  if (traces != nullptr) traces->resize(tokens.size());
  for (std::size_t t = 0; t < tokens.size(); ++t) {
    const float* x = emb.row(t);
    StepTrace trace;
    trace.z.resize(hidden);
    trace.r.resize(hidden);
    trace.htilde.resize(hidden);
    trace.h.resize(hidden);
    Vector rn(hidden);
    for (std::size_t j = 0; j < hidden; ++j) {
      trace.z[j] = sigmoid(dot(wx_.row(j), x, config_.embed_dim) +
                           dot(uh_.row(j), h.data(), hidden) + b_[j]);
      trace.r[j] =
          sigmoid(dot(wx_.row(hidden + j), x, config_.embed_dim) +
                  dot(uh_.row(hidden + j), h.data(), hidden) +
                  b_[hidden + j]);
      rn[j] = trace.r[j] * h[j];
    }
    for (std::size_t j = 0; j < hidden; ++j) {
      trace.htilde[j] =
          tanh_act(dot(wx_.row(2 * hidden + j), x, config_.embed_dim) +
                    dot(uh_.row(2 * hidden + j), rn.data(), hidden) +
                    b_[2 * hidden + j]);
      trace.h[j] =
          (1.0f - trace.z[j]) * h[j] + trace.z[j] * trace.htilde[j];
    }
    h = trace.h;
    if (traces != nullptr) (*traces)[t] = std::move(trace);
  }
  if (embedded != nullptr) *embedded = std::move(emb);
  return proba_from_hidden(h);
}

Vector GruClassifier::predict_proba(const TokenSeq& tokens) const {
  ADVTEXT_CHECK_SHAPE(!tokens.empty()) << "GruClassifier: empty input";
  const Matrix emb = embedding_.lookup(tokens);
  Vector h(config_.hidden, 0.0f);
  for (std::size_t t = 0; t < tokens.size(); ++t) step(emb.row(t), h);
  return proba_from_hidden(h);
}

Matrix GruClassifier::predict_proba_batch(
    const std::vector<TokenSeq>& docs) const {
  const std::size_t count = docs.size();
  Matrix out(count, config_.num_classes);
  if (count == 0) return out;
  for (const TokenSeq& doc : docs) {
    ADVTEXT_CHECK_SHAPE(!doc.empty()) << "GruClassifier: empty input";
  }
  const std::size_t hidden = config_.hidden;
  const std::size_t dim = config_.embed_dim;
  // Longest documents first so the active set is a shrinking prefix.
  std::vector<std::size_t> order(count);
  for (std::size_t i = 0; i < count; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return docs[a].size() > docs[b].size();
                   });
  Matrix h(count, hidden);  // zero-initialized == the scalar initial state
  Matrix x(count, dim);
  Matrix zx(count, 3 * hidden);
  Matrix azr(count, 2 * hidden);
  Matrix z(count, hidden);
  Matrix rn(count, hidden);
  Matrix acand(count, hidden);
  PackedB wx_packed, uh_zr_packed, uh_cand_packed;
  pack_gate_weights(&wx_packed, &uh_zr_packed, &uh_cand_packed);
  const std::size_t maxlen = docs[order[0]].size();
  std::size_t active = count;
  for (std::size_t t = 0; t < maxlen; ++t) {
    while (active > 0 && docs[order[active - 1]].size() <= t) --active;
    for (std::size_t j = 0; j < active; ++j) {
      const float* xt = embedding_.vector(docs[order[j]][t]);
      std::copy(xt, xt + dim, x.row(j));
    }
    gate_preact_x(wx_packed, x.data(), active, zx.data());
    gate_preact_zr(uh_zr_packed, h.data(), active, azr.data());
    for (std::size_t j = 0; j < active; ++j) {
      step_gates(zx.row(j), azr.row(j), h.row(j), z.row(j), rn.row(j));
    }
    gate_preact_cand(uh_cand_packed, rn.data(), active, acand.data());
    for (std::size_t j = 0; j < active; ++j) {
      step_combine(zx.row(j), acand.row(j), z.row(j), h.row(j));
    }
  }
  Matrix proba(count, config_.num_classes);
  proba_from_hidden_batch(h.data(), count, proba.data());
  for (std::size_t j = 0; j < count; ++j) {
    std::copy(proba.row(j), proba.row(j) + config_.num_classes,
              out.row(order[j]));
  }
  return out;
}

template <typename OnGrads>
void GruClassifier::bptt(const Matrix& embedded,
                         const std::vector<StepTrace>& traces,
                         Vector dh_final, OnGrads&& on_grads,
                         Matrix* input_grad) const {
  const std::size_t hidden = config_.hidden;
  Vector dh = std::move(dh_final);
  Vector daz(hidden);
  Vector dar(hidden);
  Vector dah(hidden);
  for (std::size_t t = traces.size(); t-- > 0;) {
    const StepTrace& tr = traces[t];
    // n = h_{t-1} (zero vector at t = 0).
    static const Vector kZero;
    const Vector* n_ptr = t > 0 ? &traces[t - 1].h : nullptr;
    Vector dn(hidden, 0.0f);
    Vector drn(hidden, 0.0f);
    for (std::size_t j = 0; j < hidden; ++j) {
      const float n = n_ptr != nullptr ? (*n_ptr)[j] : 0.0f;
      const float dhj = dh[j];
      const float dhtilde = dhj * tr.z[j];
      const float dz = dhj * (tr.htilde[j] - n);
      dn[j] += dhj * (1.0f - tr.z[j]);
      dah[j] = dhtilde * (1.0f - tr.htilde[j] * tr.htilde[j]);
      daz[j] = dz * tr.z[j] * (1.0f - tr.z[j]);
    }
    // d(r∘n) = Uh^T dah; then dr and dn contributions.
    for (std::size_t j = 0; j < hidden; ++j) drn[j] = 0.0f;
    for (std::size_t row = 0; row < hidden; ++row) {
      const float da = dah[row];
      if (da == 0.0f) continue;
      const float* u = uh_.row(2 * hidden + row);
      for (std::size_t j = 0; j < hidden; ++j) drn[j] += da * u[j];
    }
    for (std::size_t j = 0; j < hidden; ++j) {
      const float n = n_ptr != nullptr ? (*n_ptr)[j] : 0.0f;
      const float dr = drn[j] * n;
      dar[j] = dr * tr.r[j] * (1.0f - tr.r[j]);
      dn[j] += drn[j] * tr.r[j];
    }
    on_grads(t, daz, dar, dah, n_ptr);
    // dn += Uz^T daz + Ur^T dar.
    for (std::size_t row = 0; row < hidden; ++row) {
      const float dz = daz[row];
      const float dr = dar[row];
      const float* uz = uh_.row(row);
      const float* ur = uh_.row(hidden + row);
      for (std::size_t j = 0; j < hidden; ++j) {
        dn[j] += dz * uz[j] + dr * ur[j];
      }
    }
    if (input_grad != nullptr) {
      float* gx = input_grad->row(t);
      for (std::size_t row = 0; row < hidden; ++row) {
        const float dz = daz[row];
        const float dr = dar[row];
        const float da = dah[row];
        const float* wz = wx_.row(row);
        const float* wr = wx_.row(hidden + row);
        const float* wh = wx_.row(2 * hidden + row);
        for (std::size_t d = 0; d < config_.embed_dim; ++d) {
          gx[d] += dz * wz[d] + dr * wr[d] + da * wh[d];
        }
      }
    }
    dh = std::move(dn);
    (void)kZero;
  }
  (void)embedded;
}

Matrix GruClassifier::input_gradient(const TokenSeq& tokens,
                                     std::size_t target,
                                     Vector* proba) const {
  ADVTEXT_CHECK_SHAPE(target < config_.num_classes) << "GruClassifier::input_gradient: target out of range";
  std::vector<StepTrace> traces;
  Matrix embedded;
  const Vector p = forward_traced(tokens, &traces, &embedded);
  if (proba != nullptr) *proba = p;
  Vector dlogits(p.size());
  for (std::size_t c = 0; c < p.size(); ++c) {
    dlogits[c] = p[target] * ((c == target ? 1.0f : 0.0f) - p[c]);
  }
  Vector dh = matvec_transposed(out_w_, dlogits);
  Matrix grad(tokens.size(), config_.embed_dim);
  bptt(embedded, traces, std::move(dh),
       [](std::size_t, const Vector&, const Vector&, const Vector&,
          const Vector*) {},
       &grad);
  return grad;
}

float GruClassifier::forward_backward(const TokenSeq& tokens,
                                      std::size_t label) {
  ADVTEXT_CHECK_SHAPE(label < config_.num_classes) << "GruClassifier::forward_backward: label out of range";
  std::vector<StepTrace> traces;
  Matrix embedded;
  forward_traced(tokens, &traces, &embedded);

  Vector h_final = traces.back().h;
  std::vector<float> mask(config_.hidden, 1.0f);
  const float p = config_.train_dropout;
  if (p > 0.0f) {
    const float scale = 1.0f / (1.0f - p);
    for (std::size_t j = 0; j < config_.hidden; ++j) {
      mask[j] = rng_.bernoulli(p) ? 0.0f : scale;
      h_final[j] *= mask[j];
    }
  }
  Vector logits = matvec(out_w_, h_final);
  for (std::size_t c = 0; c < logits.size(); ++c) logits[c] += out_b_[c];
  const float loss = cross_entropy(logits, label);
  const Vector dlogits = cross_entropy_grad(logits, label);

  add_outer(out_w_grad_, 1.0f, dlogits, h_final);
  for (std::size_t c = 0; c < dlogits.size(); ++c) {
    out_b_grad_[c] += dlogits[c];
  }
  Vector dh = matvec_transposed(out_w_, dlogits);
  for (std::size_t j = 0; j < config_.hidden; ++j) dh[j] *= mask[j];

  const bool train_embedding = !embedding_.frozen();
  Matrix input_grad(tokens.size(), config_.embed_dim);
  const std::size_t hidden = config_.hidden;
  bptt(
      embedded, traces, std::move(dh),
      [&](std::size_t t, const Vector& daz, const Vector& dar,
          const Vector& dah, const Vector* n_ptr) {
        const float* x = embedded.row(t);
        // Candidate-gate U gradient uses r∘n; gate gradients use n.
        const StepTrace& tr = traces[t];
        for (std::size_t row = 0; row < hidden; ++row) {
          const float gates[3] = {daz[row], dar[row], dah[row]};
          for (std::size_t g = 0; g < 3; ++g) {
            const float dv = gates[g];
            if (dv == 0.0f) continue;
            const std::size_t stacked = g * hidden + row;
            float* wxg = wx_grad_.row(stacked);
            for (std::size_t d = 0; d < config_.embed_dim; ++d) {
              wxg[d] += dv * x[d];
            }
            b_grad_[stacked] += dv;
            if (n_ptr != nullptr) {
              float* uhg = uh_grad_.row(stacked);
              for (std::size_t j = 0; j < hidden; ++j) {
                const float basis =
                    g == 2 ? tr.r[j] * (*n_ptr)[j] : (*n_ptr)[j];
                uhg[j] += dv * basis;
              }
            }
          }
        }
      },
      train_embedding ? &input_grad : nullptr);
  if (train_embedding) {
    for (std::size_t t = 0; t < tokens.size(); ++t) {
      embedding_.accumulate_grad(tokens[t], input_grad.row(t));
    }
  }
  return loss;
}

std::vector<ParamRef> GruClassifier::params() {
  std::vector<ParamRef> refs = {
      {wx_.data(), wx_grad_.data(), wx_.size()},
      {uh_.data(), uh_grad_.data(), uh_.size()},
      {b_.data(), b_grad_.data(), b_.size()},
      {out_w_.data(), out_w_grad_.data(), out_w_.size()},
      {out_b_.data(), out_b_grad_.data(), out_b_.size()},
  };
  if (!embedding_.frozen()) {
    refs.push_back({embedding_.mutable_table().data(),
                    embedding_.grad().data(),
                    embedding_.mutable_table().size()});
  }
  return refs;
}

void GruClassifier::zero_grad() {
  wx_grad_.fill(0.0f);
  uh_grad_.fill(0.0f);
  std::fill(b_grad_.begin(), b_grad_.end(), 0.0f);
  out_w_grad_.fill(0.0f);
  std::fill(out_b_grad_.begin(), out_b_grad_.end(), 0.0f);
  embedding_.zero_grad();
}

namespace {

class GruSwapEvaluator : public SwapEvaluator {
 public:
  GruSwapEvaluator(const GruClassifier& model, const TokenSeq& base)
      : model_(model) {
    rebase(base);
  }

 protected:
  std::size_t do_num_classes() const override { return model_.num_classes(); }

  void do_rebase(const TokenSeq& tokens) override {
    ADVTEXT_CHECK_SHAPE(!tokens.empty()) << "GruSwapEvaluator: empty base";
    // Weights are frozen for the lifetime of an attack; pack them once so
    // every per-timestep gemm of the batched paths skips the tile repack.
    model_.pack_gate_weights(&wx_packed_, &uh_zr_packed_, &uh_cand_packed_);
    const std::size_t hidden = model_.config().hidden;
    states_.assign(tokens.size() + 1, Vector(hidden, 0.0f));
    const Matrix emb = model_.embedding().lookup(tokens);
    Vector h(hidden, 0.0f);
    for (std::size_t t = 0; t < tokens.size(); ++t) {
      model_.step(emb.row(t), h);
      states_[t + 1] = h;
    }
  }

  Vector do_eval_swap(std::size_t pos, WordId candidate) override {
    ADVTEXT_CHECK_SHAPE(pos < base_tokens_.size())
        << "eval_swap: position out of range";
    Vector h = states_[pos];
    model_.step(model_.embedding().vector(candidate), h);
    for (std::size_t t = pos + 1; t < base_tokens_.size(); ++t) {
      model_.step(model_.embedding().vector(base_tokens_[t]), h);
    }
    return model_.proba_from_hidden(h);
  }

  Vector do_eval_tokens(const TokenSeq& tokens) override {
    if (tokens.size() != base_tokens_.size()) {
      return model_.predict_proba(tokens);
    }
    std::size_t first = 0;
    while (first < tokens.size() && tokens[first] == base_tokens_[first]) {
      ++first;
    }
    if (first == tokens.size()) {
      return model_.proba_from_hidden(states_.back());
    }
    Vector h = states_[first];
    for (std::size_t t = first; t < tokens.size(); ++t) {
      model_.step(model_.embedding().vector(tokens[t]), h);
    }
    return model_.proba_from_hidden(h);
  }

  // Batched candidate scoring: rows sorted by swap position form a growing
  // active prefix; per timestep each gemm covers every active row, and the
  // shared suffix token's input pre-activation is computed once (see the
  // LSTM evaluator for the same layout).
  void do_eval_swap_batch(const SwapCandidate* candidates,
                          const std::size_t* rows, std::size_t count,
                          Matrix& out) override {
    const std::size_t dim = model_.config().embed_dim;
    const std::size_t n = base_tokens_.size();
    order_.resize(count);
    for (std::size_t i = 0; i < count; ++i) order_[i] = i;
    std::stable_sort(order_.begin(), order_.end(),
                     [&](std::size_t a, std::size_t b) {
                       return candidates[a].pos < candidates[b].pos;
                     });
    ensure_scratch(count);
    std::size_t active = 0;
    for (std::size_t t = candidates[order_[0]].pos; t < n; ++t) {
      std::size_t newly = 0;
      while (active + newly < count &&
             candidates[order_[active + newly]].pos == t) {
        const std::size_t slot = active + newly;
        std::copy(states_[t].begin(), states_[t].end(), h_.row(slot));
        const float* xc =
            model_.embedding().vector(candidates[order_[slot]].word);
        std::copy(xc, xc + dim, x_.row(newly));
        ++newly;
      }
      const std::size_t prev_active = active;
      active += newly;
      if (newly > 0) {
        model_.gate_preact_x(wx_packed_, x_.data(), newly, zx_.data());
      }
      if (prev_active > 0) {
        model_.gate_preact_x(wx_packed_,
                             model_.embedding().vector(base_tokens_[t]), 1,
                             zx_base_.data());
      }
      zx_ptr_.resize(active);
      for (std::size_t j = 0; j < active; ++j) {
        zx_ptr_[j] = j < prev_active ? zx_base_.data()
                                     : zx_.row(j - prev_active);
      }
      step_active(active);
    }
    finish_rows(rows, count, out);
  }

  void do_eval_tokens_batch(const TokenSeq* const* docs,
                            const std::size_t* rows, std::size_t count,
                            Matrix& out) override {
    const std::size_t dim = model_.config().embed_dim;
    const std::size_t n = base_tokens_.size();
    const std::size_t classes = model_.num_classes();
    batch_rows_.clear();
    first_diff_.clear();
    for (std::size_t m = 0; m < count; ++m) {
      const TokenSeq& doc = *docs[m];
      if (doc.size() != n) {
        const Vector proba = model_.predict_proba(doc);
        std::copy(proba.begin(), proba.end(), out.row(rows[m]));
        continue;
      }
      std::size_t first = 0;
      while (first < n && doc[first] == base_tokens_[first]) ++first;
      if (first == n) {
        const Vector proba = model_.proba_from_hidden(states_.back());
        std::copy(proba.begin(), proba.end(), out.row(rows[m]));
        continue;
      }
      batch_rows_.push_back(m);
      first_diff_.push_back(first);
    }
    const std::size_t bcount = batch_rows_.size();
    if (bcount == 0) return;
    order_.resize(bcount);
    for (std::size_t i = 0; i < bcount; ++i) order_[i] = i;
    std::stable_sort(order_.begin(), order_.end(),
                     [&](std::size_t a, std::size_t b) {
                       return first_diff_[a] < first_diff_[b];
                     });
    ensure_scratch(bcount);
    std::size_t active = 0;
    for (std::size_t t = first_diff_[order_[0]]; t < n; ++t) {
      while (active < bcount && first_diff_[order_[active]] == t) {
        std::copy(states_[t].begin(), states_[t].end(), h_.row(active));
        ++active;
      }
      std::size_t own = 0;
      bool any_shared = false;
      zx_ptr_.resize(active);
      for (std::size_t j = 0; j < active; ++j) {
        const WordId w = (*docs[batch_rows_[order_[j]]])[t];
        if (w == base_tokens_[t]) {
          zx_ptr_[j] = nullptr;  // patched to zx_base_ below
          any_shared = true;
        } else {
          const float* xt = model_.embedding().vector(w);
          std::copy(xt, xt + dim, x_.row(own));
          zx_ptr_[j] = zx_.row(own);
          ++own;
        }
      }
      if (own > 0) {
        model_.gate_preact_x(wx_packed_, x_.data(), own, zx_.data());
      }
      if (any_shared) {
        model_.gate_preact_x(wx_packed_,
                             model_.embedding().vector(base_tokens_[t]), 1,
                             zx_base_.data());
        for (std::size_t j = 0; j < active; ++j) {
          if (zx_ptr_[j] == nullptr) zx_ptr_[j] = zx_base_.data();
        }
      }
      step_active(active);
    }
    proba_.resize(bcount * classes);
    model_.proba_from_hidden_batch(h_.data(), bcount, proba_.data());
    for (std::size_t j = 0; j < bcount; ++j) {
      const float* src = proba_.data() + j * classes;
      std::copy(src, src + classes, out.row(rows[batch_rows_[order_[j]]]));
    }
  }

 private:
  void ensure_scratch(std::size_t count) {
    const std::size_t hidden = model_.config().hidden;
    if (h_.rows() < count || h_.cols() != hidden) {
      h_ = Matrix(count, hidden);
      x_ = Matrix(count, model_.config().embed_dim);
      zx_ = Matrix(count, 3 * hidden);
      azr_ = Matrix(count, 2 * hidden);
      z_ = Matrix(count, hidden);
      rn_ = Matrix(count, hidden);
      acand_ = Matrix(count, hidden);
    }
    zx_base_.resize(3 * hidden);
  }

  /// One timestep over the active prefix; zx_ptr_ must hold each row's
  /// input pre-activation.
  void step_active(std::size_t active) {
    model_.gate_preact_zr(uh_zr_packed_, h_.data(), active, azr_.data());
    for (std::size_t j = 0; j < active; ++j) {
      model_.step_gates(zx_ptr_[j], azr_.row(j), h_.row(j), z_.row(j),
                        rn_.row(j));
    }
    model_.gate_preact_cand(uh_cand_packed_, rn_.data(), active,
                            acand_.data());
    for (std::size_t j = 0; j < active; ++j) {
      model_.step_combine(zx_ptr_[j], acand_.row(j), z_.row(j), h_.row(j));
    }
  }

  void finish_rows(const std::size_t* rows, std::size_t count, Matrix& out) {
    const std::size_t classes = model_.num_classes();
    proba_.resize(count * classes);
    model_.proba_from_hidden_batch(h_.data(), count, proba_.data());
    for (std::size_t j = 0; j < count; ++j) {
      const float* src = proba_.data() + j * classes;
      std::copy(src, src + classes, out.row(rows[order_[j]]));
    }
  }

  const GruClassifier& model_;
  std::vector<Vector> states_;
  PackedB wx_packed_, uh_zr_packed_, uh_cand_packed_;

  std::vector<std::size_t> order_;
  std::vector<std::size_t> batch_rows_;
  std::vector<std::size_t> first_diff_;
  std::vector<const float*> zx_ptr_;
  Matrix h_, x_, zx_, azr_, z_, rn_, acand_;
  Vector zx_base_;
  Vector proba_;
};

}  // namespace

std::unique_ptr<SwapEvaluator> GruClassifier::make_swap_evaluator(
    const TokenSeq& base) const {
  return std::make_unique<GruSwapEvaluator>(*this, base);
}

}  // namespace advtext
