#include "src/nn/gru.h"

#include "src/util/check.h"

#include <algorithm>
#include <cmath>

#include "src/tensor/ops.h"

namespace advtext {

GruClassifier::GruClassifier(const GruConfig& config,
                             Matrix pretrained_embeddings,
                             bool freeze_embedding)
    : config_(config),
      embedding_(std::move(pretrained_embeddings)),
      wx_(3 * config.hidden, config.embed_dim),
      wx_grad_(3 * config.hidden, config.embed_dim),
      uh_(3 * config.hidden, config.hidden),
      uh_grad_(3 * config.hidden, config.hidden),
      b_(3 * config.hidden, 0.0f),
      b_grad_(3 * config.hidden, 0.0f),
      out_w_(config.num_classes, config.hidden),
      out_w_grad_(config.num_classes, config.hidden),
      out_b_(config.num_classes, 0.0f),
      out_b_grad_(config.num_classes, 0.0f),
      rng_(config.seed) {
  ADVTEXT_CHECK_SHAPE(embedding_.dim() == config_.embed_dim) << "GruClassifier: embedding dim mismatch";
  embedding_.set_frozen(freeze_embedding);
  const float bx = static_cast<float>(
      std::sqrt(6.0 / static_cast<double>(config.embed_dim + config.hidden)));
  wx_.fill_uniform(rng_, bx);
  const float bh = static_cast<float>(
      std::sqrt(3.0 / static_cast<double>(config.hidden)));
  uh_.fill_uniform(rng_, bh);
  const float bo = static_cast<float>(std::sqrt(
      6.0 / static_cast<double>(config.hidden + config.num_classes)));
  out_w_.fill_uniform(rng_, bo);
}

void GruClassifier::step(const float* x, Vector& h) const {
  const std::size_t hidden = config_.hidden;
  Vector z(hidden);
  Vector r(hidden);
  for (std::size_t j = 0; j < hidden; ++j) {
    z[j] = sigmoid(dot(wx_.row(j), x, config_.embed_dim) +
                   dot(uh_.row(j), h.data(), hidden) + b_[j]);
    r[j] = sigmoid(dot(wx_.row(hidden + j), x, config_.embed_dim) +
                   dot(uh_.row(hidden + j), h.data(), hidden) +
                   b_[hidden + j]);
  }
  Vector rn(hidden);
  for (std::size_t j = 0; j < hidden; ++j) rn[j] = r[j] * h[j];
  for (std::size_t j = 0; j < hidden; ++j) {
    const float cand =
        std::tanh(dot(wx_.row(2 * hidden + j), x, config_.embed_dim) +
                  dot(uh_.row(2 * hidden + j), rn.data(), hidden) +
                  b_[2 * hidden + j]);
    h[j] = (1.0f - z[j]) * h[j] + z[j] * cand;
  }
}

Vector GruClassifier::proba_from_hidden(const Vector& h) const {
  Vector logits = matvec(out_w_, h);
  for (std::size_t c = 0; c < logits.size(); ++c) logits[c] += out_b_[c];
  return softmax(logits);
}

Vector GruClassifier::forward_traced(const TokenSeq& tokens,
                                     std::vector<StepTrace>* traces,
                                     Matrix* embedded) const {
  ADVTEXT_CHECK_SHAPE(!tokens.empty()) << "GruClassifier: empty input";
  const std::size_t hidden = config_.hidden;
  Matrix emb = embedding_.lookup(tokens);
  Vector h(hidden, 0.0f);
  if (traces != nullptr) traces->resize(tokens.size());
  for (std::size_t t = 0; t < tokens.size(); ++t) {
    const float* x = emb.row(t);
    StepTrace trace;
    trace.z.resize(hidden);
    trace.r.resize(hidden);
    trace.htilde.resize(hidden);
    trace.h.resize(hidden);
    Vector rn(hidden);
    for (std::size_t j = 0; j < hidden; ++j) {
      trace.z[j] = sigmoid(dot(wx_.row(j), x, config_.embed_dim) +
                           dot(uh_.row(j), h.data(), hidden) + b_[j]);
      trace.r[j] =
          sigmoid(dot(wx_.row(hidden + j), x, config_.embed_dim) +
                  dot(uh_.row(hidden + j), h.data(), hidden) +
                  b_[hidden + j]);
      rn[j] = trace.r[j] * h[j];
    }
    for (std::size_t j = 0; j < hidden; ++j) {
      trace.htilde[j] =
          std::tanh(dot(wx_.row(2 * hidden + j), x, config_.embed_dim) +
                    dot(uh_.row(2 * hidden + j), rn.data(), hidden) +
                    b_[2 * hidden + j]);
      trace.h[j] =
          (1.0f - trace.z[j]) * h[j] + trace.z[j] * trace.htilde[j];
    }
    h = trace.h;
    if (traces != nullptr) (*traces)[t] = std::move(trace);
  }
  if (embedded != nullptr) *embedded = std::move(emb);
  return proba_from_hidden(h);
}

Vector GruClassifier::predict_proba(const TokenSeq& tokens) const {
  ADVTEXT_CHECK_SHAPE(!tokens.empty()) << "GruClassifier: empty input";
  const Matrix emb = embedding_.lookup(tokens);
  Vector h(config_.hidden, 0.0f);
  for (std::size_t t = 0; t < tokens.size(); ++t) step(emb.row(t), h);
  return proba_from_hidden(h);
}

template <typename OnGrads>
void GruClassifier::bptt(const Matrix& embedded,
                         const std::vector<StepTrace>& traces,
                         Vector dh_final, OnGrads&& on_grads,
                         Matrix* input_grad) const {
  const std::size_t hidden = config_.hidden;
  Vector dh = std::move(dh_final);
  Vector daz(hidden);
  Vector dar(hidden);
  Vector dah(hidden);
  for (std::size_t t = traces.size(); t-- > 0;) {
    const StepTrace& tr = traces[t];
    // n = h_{t-1} (zero vector at t = 0).
    static const Vector kZero;
    const Vector* n_ptr = t > 0 ? &traces[t - 1].h : nullptr;
    Vector dn(hidden, 0.0f);
    Vector drn(hidden, 0.0f);
    for (std::size_t j = 0; j < hidden; ++j) {
      const float n = n_ptr != nullptr ? (*n_ptr)[j] : 0.0f;
      const float dhj = dh[j];
      const float dhtilde = dhj * tr.z[j];
      const float dz = dhj * (tr.htilde[j] - n);
      dn[j] += dhj * (1.0f - tr.z[j]);
      dah[j] = dhtilde * (1.0f - tr.htilde[j] * tr.htilde[j]);
      daz[j] = dz * tr.z[j] * (1.0f - tr.z[j]);
    }
    // d(r∘n) = Uh^T dah; then dr and dn contributions.
    for (std::size_t j = 0; j < hidden; ++j) drn[j] = 0.0f;
    for (std::size_t row = 0; row < hidden; ++row) {
      const float da = dah[row];
      if (da == 0.0f) continue;
      const float* u = uh_.row(2 * hidden + row);
      for (std::size_t j = 0; j < hidden; ++j) drn[j] += da * u[j];
    }
    for (std::size_t j = 0; j < hidden; ++j) {
      const float n = n_ptr != nullptr ? (*n_ptr)[j] : 0.0f;
      const float dr = drn[j] * n;
      dar[j] = dr * tr.r[j] * (1.0f - tr.r[j]);
      dn[j] += drn[j] * tr.r[j];
    }
    on_grads(t, daz, dar, dah, n_ptr);
    // dn += Uz^T daz + Ur^T dar.
    for (std::size_t row = 0; row < hidden; ++row) {
      const float dz = daz[row];
      const float dr = dar[row];
      const float* uz = uh_.row(row);
      const float* ur = uh_.row(hidden + row);
      for (std::size_t j = 0; j < hidden; ++j) {
        dn[j] += dz * uz[j] + dr * ur[j];
      }
    }
    if (input_grad != nullptr) {
      float* gx = input_grad->row(t);
      for (std::size_t row = 0; row < hidden; ++row) {
        const float dz = daz[row];
        const float dr = dar[row];
        const float da = dah[row];
        const float* wz = wx_.row(row);
        const float* wr = wx_.row(hidden + row);
        const float* wh = wx_.row(2 * hidden + row);
        for (std::size_t d = 0; d < config_.embed_dim; ++d) {
          gx[d] += dz * wz[d] + dr * wr[d] + da * wh[d];
        }
      }
    }
    dh = std::move(dn);
    (void)kZero;
  }
  (void)embedded;
}

Matrix GruClassifier::input_gradient(const TokenSeq& tokens,
                                     std::size_t target,
                                     Vector* proba) const {
  ADVTEXT_CHECK_SHAPE(target < config_.num_classes) << "GruClassifier::input_gradient: target out of range";
  std::vector<StepTrace> traces;
  Matrix embedded;
  const Vector p = forward_traced(tokens, &traces, &embedded);
  if (proba != nullptr) *proba = p;
  Vector dlogits(p.size());
  for (std::size_t c = 0; c < p.size(); ++c) {
    dlogits[c] = p[target] * ((c == target ? 1.0f : 0.0f) - p[c]);
  }
  Vector dh = matvec_transposed(out_w_, dlogits);
  Matrix grad(tokens.size(), config_.embed_dim);
  bptt(embedded, traces, std::move(dh),
       [](std::size_t, const Vector&, const Vector&, const Vector&,
          const Vector*) {},
       &grad);
  return grad;
}

float GruClassifier::forward_backward(const TokenSeq& tokens,
                                      std::size_t label) {
  ADVTEXT_CHECK_SHAPE(label < config_.num_classes) << "GruClassifier::forward_backward: label out of range";
  std::vector<StepTrace> traces;
  Matrix embedded;
  forward_traced(tokens, &traces, &embedded);

  Vector h_final = traces.back().h;
  std::vector<float> mask(config_.hidden, 1.0f);
  const float p = config_.train_dropout;
  if (p > 0.0f) {
    const float scale = 1.0f / (1.0f - p);
    for (std::size_t j = 0; j < config_.hidden; ++j) {
      mask[j] = rng_.bernoulli(p) ? 0.0f : scale;
      h_final[j] *= mask[j];
    }
  }
  Vector logits = matvec(out_w_, h_final);
  for (std::size_t c = 0; c < logits.size(); ++c) logits[c] += out_b_[c];
  const float loss = cross_entropy(logits, label);
  const Vector dlogits = cross_entropy_grad(logits, label);

  add_outer(out_w_grad_, 1.0f, dlogits, h_final);
  for (std::size_t c = 0; c < dlogits.size(); ++c) {
    out_b_grad_[c] += dlogits[c];
  }
  Vector dh = matvec_transposed(out_w_, dlogits);
  for (std::size_t j = 0; j < config_.hidden; ++j) dh[j] *= mask[j];

  const bool train_embedding = !embedding_.frozen();
  Matrix input_grad(tokens.size(), config_.embed_dim);
  const std::size_t hidden = config_.hidden;
  bptt(
      embedded, traces, std::move(dh),
      [&](std::size_t t, const Vector& daz, const Vector& dar,
          const Vector& dah, const Vector* n_ptr) {
        const float* x = embedded.row(t);
        // Candidate-gate U gradient uses r∘n; gate gradients use n.
        const StepTrace& tr = traces[t];
        for (std::size_t row = 0; row < hidden; ++row) {
          const float gates[3] = {daz[row], dar[row], dah[row]};
          for (std::size_t g = 0; g < 3; ++g) {
            const float dv = gates[g];
            if (dv == 0.0f) continue;
            const std::size_t stacked = g * hidden + row;
            float* wxg = wx_grad_.row(stacked);
            for (std::size_t d = 0; d < config_.embed_dim; ++d) {
              wxg[d] += dv * x[d];
            }
            b_grad_[stacked] += dv;
            if (n_ptr != nullptr) {
              float* uhg = uh_grad_.row(stacked);
              for (std::size_t j = 0; j < hidden; ++j) {
                const float basis =
                    g == 2 ? tr.r[j] * (*n_ptr)[j] : (*n_ptr)[j];
                uhg[j] += dv * basis;
              }
            }
          }
        }
      },
      train_embedding ? &input_grad : nullptr);
  if (train_embedding) {
    for (std::size_t t = 0; t < tokens.size(); ++t) {
      embedding_.accumulate_grad(tokens[t], input_grad.row(t));
    }
  }
  return loss;
}

std::vector<ParamRef> GruClassifier::params() {
  std::vector<ParamRef> refs = {
      {wx_.data(), wx_grad_.data(), wx_.size()},
      {uh_.data(), uh_grad_.data(), uh_.size()},
      {b_.data(), b_grad_.data(), b_.size()},
      {out_w_.data(), out_w_grad_.data(), out_w_.size()},
      {out_b_.data(), out_b_grad_.data(), out_b_.size()},
  };
  if (!embedding_.frozen()) {
    refs.push_back({embedding_.mutable_table().data(),
                    embedding_.grad().data(),
                    embedding_.mutable_table().size()});
  }
  return refs;
}

void GruClassifier::zero_grad() {
  wx_grad_.fill(0.0f);
  uh_grad_.fill(0.0f);
  std::fill(b_grad_.begin(), b_grad_.end(), 0.0f);
  out_w_grad_.fill(0.0f);
  std::fill(out_b_grad_.begin(), out_b_grad_.end(), 0.0f);
  embedding_.zero_grad();
}

namespace {

class GruSwapEvaluator : public SwapEvaluator {
 public:
  GruSwapEvaluator(const GruClassifier& model, const TokenSeq& base)
      : model_(model) {
    rebase(base);
  }

  void rebase(const TokenSeq& tokens) override {
    ADVTEXT_CHECK_SHAPE(!tokens.empty()) << "GruSwapEvaluator: empty base";
    base_ = tokens;
    const std::size_t hidden = model_.config().hidden;
    states_.assign(tokens.size() + 1, Vector(hidden, 0.0f));
    const Matrix emb = model_.embedding().lookup(tokens);
    Vector h(hidden, 0.0f);
    for (std::size_t t = 0; t < tokens.size(); ++t) {
      model_.step(emb.row(t), h);
      states_[t + 1] = h;
    }
  }

  Vector eval_swap(std::size_t pos, WordId candidate) override {
    ++queries_;
    ADVTEXT_CHECK_SHAPE(pos < base_.size()) << "eval_swap: position out of range";
    Vector h = states_[pos];
    model_.step(model_.embedding().vector(candidate), h);
    for (std::size_t t = pos + 1; t < base_.size(); ++t) {
      model_.step(model_.embedding().vector(base_[t]), h);
    }
    return model_.proba_from_hidden(h);
  }

  Vector eval_tokens(const TokenSeq& tokens) override {
    ++queries_;
    if (tokens.size() != base_.size()) return model_.predict_proba(tokens);
    std::size_t first = 0;
    while (first < tokens.size() && tokens[first] == base_[first]) ++first;
    if (first == tokens.size()) {
      return model_.proba_from_hidden(states_.back());
    }
    Vector h = states_[first];
    for (std::size_t t = first; t < tokens.size(); ++t) {
      model_.step(model_.embedding().vector(tokens[t]), h);
    }
    return model_.proba_from_hidden(h);
  }

 private:
  const GruClassifier& model_;
  TokenSeq base_;
  std::vector<Vector> states_;
};

}  // namespace

std::unique_ptr<SwapEvaluator> GruClassifier::make_swap_evaluator(
    const TokenSeq& base) const {
  return std::make_unique<GruSwapEvaluator>(*this, base);
}

}  // namespace advtext
