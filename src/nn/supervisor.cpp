#include "src/nn/supervisor.h"

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/util/check.h"
#include "src/util/io_file.h"
#include "src/util/serialize.h"
#include "src/util/stop_token.h"

namespace advtext {

SnapshotRotation::SnapshotRotation(std::string base_path,
                                   std::size_t generations)
    : base_(std::move(base_path)), generations_(generations) {
  ADVTEXT_CHECK(generations_ >= 1)
      << "SnapshotRotation needs at least one generation";
}

std::string SnapshotRotation::generation_path(const std::string& base,
                                              std::size_t generation) {
  return base + ".ckpt." + std::to_string(generation);
}

void SnapshotRotation::write(const std::string& payload) const {
  // Shift N-1 -> N, ..., 1 -> 2 before publishing, so an interrupted or
  // failed publish leaves the previous snapshot intact one generation up.
  // ADVTEXT_ALLOW(unpolled-loop): bounded by keep_generations (a small config constant); aborting a half-shifted rotation would corrupt the ladder
  for (std::size_t gen = generations_; gen >= 2; --gen) {
    const std::string older = generation_path(base_, gen);
    const std::string newer = generation_path(base_, gen - 1);
    remove_file(older);
    rename_file(newer, older);  // no-op if newer is absent
  }
  io::save_artifact(generation_path(base_, 1), payload);
}

std::optional<std::string> SnapshotRotation::read_latest(
    std::vector<std::string>* warnings) const {
  // ADVTEXT_ALLOW(unpolled-loop): bounded by keep_generations; each iteration is one artifact probe, and a partial scan could resume from a stale generation
  for (std::size_t gen = 1; gen <= generations_; ++gen) {
    const std::string path = generation_path(base_, gen);
    // Probe existence quietly: a missing generation is normal (fresh run,
    // fewer snapshots than generations), not a corruption event.
    if (!file_exists(path)) continue;
    try {
      return io::load_artifact(path);
    } catch (const std::runtime_error& error) {
      if (warnings != nullptr) {
        warnings->push_back("snapshot generation " + std::to_string(gen) +
                            " (" + path + ") rejected: " + error.what() +
                            "; falling back to older generation");
      }
    }
  }
  return std::nullopt;
}

namespace {

void restore_loop(ResumableTraining& loop, const std::string& state) {
  std::istringstream in(state);
  loop.load_state(in);
}

}  // namespace

SupervisorSession::SupervisorSession(ResumableTraining& loop,
                                     const ResilienceConfig& config)
    : loop_(loop),
      config_(config),
      has_disk_(!config.snapshot_path.empty()),
      rotation_(has_disk_ ? config.snapshot_path : std::string("."),
                config.keep_generations) {}

void SupervisorSession::set_external_stop(std::function<bool()> predicate) {
  external_stop_ = std::move(predicate);
}

std::string SupervisorSession::serialize_loop() const {
  std::ostringstream out;
  loop_.save_state(out);
  return out.str();
}

bool SupervisorSession::stop_requested() const {
  if (StopToken::instance().stop_requested()) return true;
  if (config_.max_steps != 0 && report_.steps >= config_.max_steps) {
    return true;
  }
  return external_stop_ && external_stop_();
}

void SupervisorSession::publish(const std::string& state) {
  if (!has_disk_) return;
  // Transient write failures (sporadic disk errors, injected ckpt.write
  // faults) are retried with capped backoff; the retry RNG is the policy's
  // own, so the training trajectory is bit-for-bit unperturbed.
  const RetryPolicy retry(config_.snapshot_retry);
  const Outcome<std::size_t> outcome =
      retry.run("snapshot write", [&] { rotation_.write(state); });
  if (outcome.ok()) {
    ++report_.snapshots_written;
    if (outcome.value() > 1) {
      const std::size_t retries = outcome.value() - 1;
      report_.snapshot_write_retries += retries;
      report_.warnings.push_back(
          "snapshot-write-retried: publish succeeded on attempt " +
          std::to_string(outcome.value()));
    }
  } else {
    // Losing a snapshot must not lose the run: degrade, count, continue.
    ++report_.snapshot_write_failures;
    report_.warnings.push_back("snapshot-write-failed: " +
                               outcome.failure().message);
  }
}

void SupervisorSession::initialize() {
  if (config_.install_stop_token) StopToken::instance().install();
  if (config_.resume && has_disk_) {
    // Walk generations newest-first, validating the *complete* restore —
    // not just the checksum. A truncated file can pass load_artifact (it
    // looks like a seed-era footer-less artifact) and only fail while
    // deserializing the loop state; that too must fall back.
    const std::string pristine = serialize_loop();
    bool restored = false;
    // ADVTEXT_ALLOW(unpolled-loop): bounded by keep_generations; startup restore scan must complete or the run resumes from a worse generation than it has
    for (std::size_t gen = 1;
         gen <= config_.keep_generations && !restored; ++gen) {
      const std::string path =
          SnapshotRotation::generation_path(config_.snapshot_path, gen);
      if (!file_exists(path)) continue;  // missing generation: not an error
      try {
        restore_loop(loop_, io::load_artifact(path));
        restored = true;
        if (gen > 1) {
          report_.warnings.push_back(
              "resumed from older snapshot generation " +
              std::to_string(gen) + " (" + path + ")");
        }
      } catch (const std::runtime_error& error) {
        report_.warnings.push_back(
            "snapshot generation " + std::to_string(gen) + " (" + path +
            ") rejected: " + error.what() +
            "; falling back to older generation");
      }
    }
    if (restored) {
      report_.resumed = true;
    } else {
      // A rejected generation may have half-applied its state before the
      // failure; rebuild the fresh-start state exactly.
      restore_loop(loop_, pristine);
      report_.warnings.push_back(
          "resume requested but no readable snapshot generation under '" +
          config_.snapshot_path + "'; starting fresh");
    }
  }

  // Rollback target. Kept in memory so divergence recovery works even with
  // no snapshot path configured.
  last_good_ = serialize_loop();
}

SupervisorSession::StepStatus SupervisorSession::step_until_boundary(
    bool commit_at_boundary) {
  while (!loop_.done()) {
    if (stop_requested()) return StepStatus::kStopped;

    bool diverged = false;
    std::string divergence_note;
    try {
      const double loss = loop_.step();
      ++report_.steps;
      if (!std::isfinite(loss)) {
        diverged = true;
        divergence_note = "non-finite step loss";
      } else if (config_.spike_factor > 0.0 && ewma_primed_ &&
                 loss > config_.spike_factor * ewma_ + 1.0) {
        diverged = true;
        std::ostringstream note;
        note << "loss spike " << loss << " vs EWMA " << ewma_;
        divergence_note = note.str();
      } else {
        ewma_ = ewma_primed_ ? 0.9 * ewma_ + 0.1 * loss : loss;
        ewma_primed_ = true;
      }
    } catch (const std::runtime_error& error) {
      ++report_.steps;
      diverged = true;
      divergence_note = std::string("step threw: ") + error.what();
    }

    if (diverged) {
      if (consecutive_failures_ >= config_.max_rollbacks) {
        report_.warnings.push_back(
            "divergence (" + divergence_note + ") after exhausting " +
            std::to_string(config_.max_rollbacks) +
            " consecutive rollbacks; aborting training");
        return StepStatus::kError;
      }
      ++consecutive_failures_;
      ++report_.rollbacks;
      restore_loop(loop_, last_good_);
      loop_.on_rollback(consecutive_failures_);
      report_.warnings.push_back("divergence (" + divergence_note +
                                 "); rolled back to last good state, attempt " +
                                 std::to_string(consecutive_failures_));
      // Reset the loss statistics: the backoff changes the loss scale.
      ewma_primed_ = false;
      continue;
    }
    if (consecutive_failures_ > 0) {
      // The divergence passed: let the loop undo its backoff.
      consecutive_failures_ = 0;
      loop_.on_recover();
    }

    const bool periodic = config_.snapshot_every != 0 &&
                          report_.steps % config_.snapshot_every == 0;
    if (loop_.at_boundary()) {
      // A boundary subsumes a coinciding periodic snapshot: the commit —
      // internal here, or external after the caller's averaging — covers it.
      if (commit_at_boundary) commit_boundary();
      return StepStatus::kBoundary;
    }
    if (periodic) commit_boundary();
  }
  return StepStatus::kDone;
}

void SupervisorSession::commit_boundary() {
  last_good_ = serialize_loop();
  publish(last_good_);
}

void SupervisorSession::finish(StepStatus status) {
  switch (status) {
    case StepStatus::kDone:
      // Natural completion: flush the final state so resume of a finished
      // run is a no-op replay.
      publish(serialize_loop());
      report_.termination = TerminationReason::kSucceeded;
      break;
    case StepStatus::kStopped:
      report_.termination = TerminationReason::kStopped;
      report_.stop_signal = StopToken::instance().signal_number();
      if (config_.flush_on_stop) publish(serialize_loop());
      break;
    case StepStatus::kError:
      report_.termination = TerminationReason::kError;
      break;
    case StepStatus::kBoundary:
      ADVTEXT_CHECK(false) << "finish(kBoundary): boundaries are not "
                              "terminal; keep stepping";
      break;
  }
}

SupervisorReport TrainSupervisor::run(ResumableTraining& loop) const {
  SupervisorSession session(loop, config_);
  session.initialize();
  for (;;) {
    const SupervisorSession::StepStatus status =
        session.step_until_boundary(/*commit_at_boundary=*/true);
    if (status == SupervisorSession::StepStatus::kBoundary) continue;
    session.finish(status);
    return session.take_report();
  }
}

}  // namespace advtext
