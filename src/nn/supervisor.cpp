#include "src/nn/supervisor.h"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/util/check.h"
#include "src/util/serialize.h"
#include "src/util/stop_token.h"

namespace advtext {

SnapshotRotation::SnapshotRotation(std::string base_path,
                                   std::size_t generations)
    : base_(std::move(base_path)), generations_(generations) {
  ADVTEXT_CHECK(generations_ >= 1)
      << "SnapshotRotation needs at least one generation";
}

std::string SnapshotRotation::generation_path(const std::string& base,
                                              std::size_t generation) {
  return base + ".ckpt." + std::to_string(generation);
}

void SnapshotRotation::write(const std::string& payload) const {
  // Shift N-1 -> N, ..., 1 -> 2 before publishing, so an interrupted or
  // failed publish leaves the previous snapshot intact one generation up.
  for (std::size_t gen = generations_; gen >= 2; --gen) {
    const std::string older = generation_path(base_, gen);
    const std::string newer = generation_path(base_, gen - 1);
    std::remove(older.c_str());
    std::rename(newer.c_str(), older.c_str());  // no-op if newer is absent
  }
  io::save_artifact(generation_path(base_, 1), payload);
}

std::optional<std::string> SnapshotRotation::read_latest(
    std::vector<std::string>* warnings) const {
  for (std::size_t gen = 1; gen <= generations_; ++gen) {
    const std::string path = generation_path(base_, gen);
    {
      // Probe existence quietly: a missing generation is normal (fresh run,
      // fewer snapshots than generations), not a corruption event.
      std::FILE* probe = std::fopen(path.c_str(), "rb");
      if (probe == nullptr) continue;
      std::fclose(probe);
    }
    try {
      return io::load_artifact(path);
    } catch (const std::runtime_error& error) {
      if (warnings != nullptr) {
        warnings->push_back("snapshot generation " + std::to_string(gen) +
                            " (" + path + ") rejected: " + error.what() +
                            "; falling back to older generation");
      }
    }
  }
  return std::nullopt;
}

namespace {

std::string serialize_loop(const ResumableTraining& loop) {
  std::ostringstream out;
  loop.save_state(out);
  return out.str();
}

void restore_loop(ResumableTraining& loop, const std::string& state) {
  std::istringstream in(state);
  loop.load_state(in);
}

}  // namespace

SupervisorReport TrainSupervisor::run(ResumableTraining& loop) const {
  SupervisorReport report;
  StopToken& stop = StopToken::instance();
  if (config_.install_stop_token) stop.install();

  const bool has_disk = !config_.snapshot_path.empty();
  SnapshotRotation rotation(has_disk ? config_.snapshot_path : std::string("."),
                            config_.keep_generations);

  if (config_.resume && has_disk) {
    // Walk generations newest-first, validating the *complete* restore —
    // not just the checksum. A truncated file can pass load_artifact (it
    // looks like a seed-era footer-less artifact) and only fail while
    // deserializing the loop state; that too must fall back.
    const std::string pristine = serialize_loop(loop);
    bool restored = false;
    for (std::size_t gen = 1;
         gen <= config_.keep_generations && !restored; ++gen) {
      const std::string path =
          SnapshotRotation::generation_path(config_.snapshot_path, gen);
      std::FILE* probe = std::fopen(path.c_str(), "rb");
      if (probe == nullptr) continue;  // missing generation: not an error
      std::fclose(probe);
      try {
        restore_loop(loop, io::load_artifact(path));
        restored = true;
        if (gen > 1) {
          report.warnings.push_back(
              "resumed from older snapshot generation " +
              std::to_string(gen) + " (" + path + ")");
        }
      } catch (const std::runtime_error& error) {
        report.warnings.push_back(
            "snapshot generation " + std::to_string(gen) + " (" + path +
            ") rejected: " + error.what() +
            "; falling back to older generation");
      }
    }
    if (restored) {
      report.resumed = true;
    } else {
      // A rejected generation may have half-applied its state before the
      // failure; rebuild the fresh-start state exactly.
      restore_loop(loop, pristine);
      report.warnings.push_back(
          "resume requested but no readable snapshot generation under '" +
          config_.snapshot_path + "'; starting fresh");
    }
  }

  auto publish = [&](const std::string& state) {
    if (!has_disk) return;
    try {
      rotation.write(state);
      ++report.snapshots_written;
    } catch (const std::runtime_error& error) {
      // Losing a snapshot must not lose the run: degrade, count, continue.
      ++report.snapshot_write_failures;
      report.warnings.push_back(std::string("snapshot write failed: ") +
                                error.what());
    }
  };

  // Rollback target. Kept in memory so divergence recovery works even with
  // no snapshot path configured.
  std::string last_good = serialize_loop(loop);
  double ewma = 0.0;
  bool ewma_primed = false;
  // Failed retries of the *current* stretch; resets on a clean step so the
  // cap bounds genuine divergence, not the run's total transient-fault count.
  std::size_t consecutive_failures = 0;

  while (!loop.done()) {
    if (stop.stop_requested() ||
        (config_.max_steps != 0 && report.steps >= config_.max_steps)) {
      report.termination = TerminationReason::kStopped;
      report.stop_signal = stop.signal_number();
      if (config_.flush_on_stop) publish(serialize_loop(loop));
      return report;
    }

    bool diverged = false;
    std::string divergence_note;
    try {
      const double loss = loop.step();
      ++report.steps;
      if (!std::isfinite(loss)) {
        diverged = true;
        divergence_note = "non-finite step loss";
      } else if (config_.spike_factor > 0.0 && ewma_primed &&
                 loss > config_.spike_factor * ewma + 1.0) {
        diverged = true;
        std::ostringstream note;
        note << "loss spike " << loss << " vs EWMA " << ewma;
        divergence_note = note.str();
      } else {
        ewma = ewma_primed ? 0.9 * ewma + 0.1 * loss : loss;
        ewma_primed = true;
      }
    } catch (const std::runtime_error& error) {
      ++report.steps;
      diverged = true;
      divergence_note = std::string("step threw: ") + error.what();
    }

    if (diverged) {
      if (consecutive_failures >= config_.max_rollbacks) {
        report.termination = TerminationReason::kError;
        report.warnings.push_back(
            "divergence (" + divergence_note + ") after exhausting " +
            std::to_string(config_.max_rollbacks) +
            " consecutive rollbacks; aborting training");
        return report;
      }
      ++consecutive_failures;
      ++report.rollbacks;
      restore_loop(loop, last_good);
      loop.on_rollback(consecutive_failures);
      report.warnings.push_back("divergence (" + divergence_note +
                                "); rolled back to last good state, attempt " +
                                std::to_string(consecutive_failures));
      // Reset the loss statistics: the backoff changes the loss scale.
      ewma_primed = false;
      continue;
    }
    if (consecutive_failures > 0) {
      // The divergence passed: let the loop undo its backoff.
      consecutive_failures = 0;
      loop.on_recover();
    }

    const bool periodic = config_.snapshot_every != 0 &&
                          report.steps % config_.snapshot_every == 0;
    if (loop.at_boundary() || periodic) {
      last_good = serialize_loop(loop);
      publish(last_good);
    }
  }

  // Natural completion: flush the final state so resume of a finished run
  // is a no-op replay.
  publish(serialize_loop(loop));
  report.termination = TerminationReason::kSucceeded;
  return report;
}

}  // namespace advtext
