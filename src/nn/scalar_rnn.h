// Recurrent network with one-dimensional hidden units of Theorem 2
// (paper eq. 5):
//
//   h_0 = h_init (constant),   h_t = φ(w h_{t-1} + m·v_{t-1} + b),
//   C(v_{1:T}) = y · h_T.
//
// Theorem 2: if w > 0 and y > 0 and φ is non-decreasing and concave, the
// attack set function is submodular. The property tests instantiate this
// model with kLogSigmoid (globally concave) to confirm the theorem, and
// with convex/sign-violating settings for negative tests.
#pragma once

#include <cstddef>
#include <cstdint>

#include "src/tensor/ops.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace advtext {

struct ScalarRnnConfig {
  std::size_t embed_dim = 4;
  Activation activation = Activation::kLogSigmoid;
  double recurrent_weight = 0.8;  ///< w; theorem requires > 0
  double output_weight = 1.0;     ///< y; theorem requires > 0
  double bias = 0.1;
  double h_init = 0.0;            ///< the constant C in the proof
  std::uint64_t seed = 1;
};

class ScalarRnn {
 public:
  explicit ScalarRnn(const ScalarRnnConfig& config);

  const ScalarRnnConfig& config() const { return config_; }

  /// Classifier output y * h_T for a T x D embedded document.
  double score(const Matrix& embedded) const;

  /// Hidden state after consuming all rows (exposed for proofs-as-tests:
  /// Lemma 1's diminishing-effect statement is checked directly).
  double final_hidden(const Matrix& embedded) const;

  /// Input projection m·v + b for one embedding row (the proof's v^{(j)}_i).
  double input_drive(const Vector& v) const;

  Vector& input_weights() { return m_; }
  double& recurrent_weight() { return w_; }
  double& output_weight() { return y_; }

 private:
  ScalarRnnConfig config_;
  double w_;
  double y_;
  double b_;
  Vector m_;  // D
};

}  // namespace advtext
