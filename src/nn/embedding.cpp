#include "src/nn/embedding.h"

#include <cmath>
#include <stdexcept>

namespace advtext {

EmbeddingLayer::EmbeddingLayer(std::size_t vocab_size, std::size_t dim,
                               Rng& rng)
    : table_(vocab_size, dim), grad_(vocab_size, dim) {
  table_.fill_normal(rng,
                     static_cast<float>(1.0 / std::sqrt(
                                            static_cast<double>(dim))));
}

EmbeddingLayer::EmbeddingLayer(Matrix pretrained)
    : table_(std::move(pretrained)),
      grad_(table_.rows(), table_.cols()) {}

const float* EmbeddingLayer::vector(WordId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= table_.rows()) {
    throw std::out_of_range("EmbeddingLayer::vector: id out of range");
  }
  return table_.row(static_cast<std::size_t>(id));
}

Matrix EmbeddingLayer::lookup(const TokenSeq& tokens) const {
  Matrix out(tokens.size(), dim());
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const float* row = vector(tokens[i]);
    for (std::size_t d = 0; d < dim(); ++d) out(i, d) = row[d];
  }
  return out;
}

void EmbeddingLayer::accumulate_grad(WordId token, const float* g) {
  if (token < 0 || static_cast<std::size_t>(token) >= grad_.rows()) {
    throw std::out_of_range("EmbeddingLayer::accumulate_grad: id out of range");
  }
  float* row = grad_.row(static_cast<std::size_t>(token));
  for (std::size_t d = 0; d < dim(); ++d) row[d] += g[d];
}

void EmbeddingLayer::zero_grad() { grad_.fill(0.0f); }

Vector bag_of_words(const TokenSeq& tokens, std::size_t vocab_size) {
  Vector counts(vocab_size, 0.0f);
  for (WordId w : tokens) {
    if (w < 0 || static_cast<std::size_t>(w) >= vocab_size) {
      throw std::out_of_range("bag_of_words: id out of range");
    }
    counts[static_cast<std::size_t>(w)] += 1.0f;
  }
  return counts;
}

}  // namespace advtext
