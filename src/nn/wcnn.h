// Word-level convolutional text classifier (Kim 2014), as attacked in the
// paper: embedding -> temporal convolution (kernel 3) -> ReLU ->
// max-over-time pooling -> dropout -> fully connected softmax output.
//
// Implements full manual backprop (for training and for the input-embedding
// gradients the attacks need) and an O(kernel * F * D) incremental
// SwapEvaluator: a single-word swap only touches the `kernel` windows
// covering it, and the pooled layer is re-assembled from cached prefix /
// suffix maxima, which is what makes the greedy attacks of Section 6 fast.
//
// The paper runs the WCNN with 5% dropout *at inference* (§6.4, MC-dropout
// as a Bayesian approximation); `mc_dropout` reproduces that.
#pragma once

#include <cstdint>
#include <memory>

#include "src/nn/embedding.h"
#include "src/nn/text_classifier.h"
#include "src/util/rng.h"

namespace advtext {

struct WCnnConfig {
  std::size_t embed_dim = 16;
  std::size_t num_filters = 64;
  std::size_t kernel = 3;        ///< window size h (paper: 3)
  std::size_t num_classes = 2;
  float train_dropout = 0.05f;   ///< dropout on the pooled layer (training)
  float mc_dropout = 0.0f;       ///< dropout at inference (paper: 0.05)
  std::uint64_t seed = 1;
};

class WCnn final : public TrainableClassifier {
 public:
  /// Builds with a pretrained (frozen by default) embedding table.
  WCnn(const WCnnConfig& config, Matrix pretrained_embeddings,
       bool freeze_embedding = true);

  std::size_t num_classes() const override { return config_.num_classes; }
  std::size_t embedding_dim() const override { return config_.embed_dim; }
  const Matrix& embedding_table() const override {
    return embedding_.table();
  }

  Vector predict_proba(const TokenSeq& tokens) const override;
  Matrix predict_proba_batch(const std::vector<TokenSeq>& docs) const override;
  Matrix input_gradient(const TokenSeq& tokens, std::size_t target,
                        Vector* proba = nullptr) const override;
  std::unique_ptr<SwapEvaluator> make_swap_evaluator(
      const TokenSeq& base) const override;

  float forward_backward(const TokenSeq& tokens, std::size_t label) override;
  std::vector<ParamRef> params() override;
  void zero_grad() override;

  const WCnnConfig& config() const { return config_; }
  const EmbeddingLayer& embedding() const { return embedding_; }

  /// Toggles inference-time MC dropout (ablation bench).
  void set_mc_dropout(float rate) { config_.mc_dropout = rate; }

  // Dropout RNG round-trip for bitwise-identical training resume.
  std::vector<std::uint64_t> stochastic_state() const override {
    const RngState s = rng_.state();
    return {s.begin(), s.end()};
  }
  void set_stochastic_state(const std::vector<std::uint64_t>& words) override {
    RngState s{};
    for (std::size_t i = 0; i < s.size() && i < words.size(); ++i)
      s[i] = words[i];
    rng_.set_state(s);
  }

  // -- Internal forward pieces, exposed for the incremental SwapEvaluator --

  /// Pads a sequence to at least `kernel` tokens with Vocab::kPad.
  TokenSeq padded(const TokenSeq& tokens) const;

  /// Convolution pre-activations: one row per window, one column per filter.
  Matrix conv_preact(const Matrix& embedded) const;

  /// Pre-activation of one window starting at row `win` for all filters.
  void window_preact(const Matrix& embedded, std::size_t win,
                     float* out) const;

  /// pooled[f] = max over windows of relu(preact). argmax optionally kept.
  Vector max_pool(const Matrix& preact,
                  std::vector<std::size_t>* argmax = nullptr) const;

  /// logits from pooled features (after optional dropout mask).
  Vector output_logits(const Vector& pooled) const;

  /// Applies inference MC dropout (inverted scaling) if configured.
  void apply_mc_dropout(Vector& pooled) const;
  void apply_mc_dropout(float* pooled, std::size_t n) const;

  // Batched forward pieces. Each output element is the same dot+bias the
  // scalar helpers compute, so batched == per-candidate bit-for-bit; the
  // batched evaluator stacks every affected window of a whole candidate
  // set into one gemm.

  /// Re-convolves m stacked windows (m x kernel*D) into pre-activations
  /// (m x F); row i equals window_preact on window i.
  void window_preact_batch(const float* windows, std::size_t m,
                           float* out) const;

  /// Batched output head: probabilities for m pooled rows (m x F ->
  /// m x C); row i equals softmax(output_logits(pooled_i)).
  void proba_from_pooled_batch(const float* pooled, std::size_t m,
                               float* proba) const;

 private:
  WCnnConfig config_;
  EmbeddingLayer embedding_;

  Matrix conv_w_;       // F x (kernel * D)
  Matrix conv_w_grad_;
  Vector conv_b_;       // F
  Vector conv_b_grad_;
  Matrix out_w_;        // C x F
  Matrix out_w_grad_;
  Vector out_b_;        // C
  Vector out_b_grad_;

  mutable Rng rng_;     // dropout sampling (training + MC inference)
};

}  // namespace advtext
