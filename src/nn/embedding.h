// Embedding layers: dense word-to-vector lookup and bag-of-words counts.
//
// The paper's Preliminary section defines two embeddings V:
//   * word2vec-style: V(x) ∈ R^{n x D}, one dense row per token (used by
//     both classifiers; we initialize from the task's paragram matrix,
//     standing in for pretrained word2vec), and
//   * bag-of-words: V(x) ∈ R^{|vocab|}, summed one-hot counts (used by the
//     Proposition 2 closed form and its tests).
#pragma once

#include <cstddef>

#include "src/tensor/tensor.h"
#include "src/text/corpus.h"
#include "src/util/rng.h"

namespace advtext {

/// Dense word-embedding table with an optional gradient buffer.
class EmbeddingLayer {
 public:
  EmbeddingLayer() = default;

  /// Random N(0, 1/sqrt(dim)) initialization.
  EmbeddingLayer(std::size_t vocab_size, std::size_t dim, Rng& rng);

  /// Initialization from a pretrained table (e.g. SynthTask::paragram).
  explicit EmbeddingLayer(Matrix pretrained);

  std::size_t vocab_size() const { return table_.rows(); }
  std::size_t dim() const { return table_.cols(); }

  const Matrix& table() const { return table_; }
  Matrix& mutable_table() { return table_; }
  Matrix& grad() { return grad_; }

  /// Row view for one word id (bounds-checked).
  const float* vector(WordId id) const;

  /// Stacks token embeddings into an n x dim matrix.
  Matrix lookup(const TokenSeq& tokens) const;

  /// Accumulates gradient for one token row: grad_[token] += g.
  void accumulate_grad(WordId token, const float* g);

  void zero_grad();

  /// Frozen embeddings are excluded from training (the attack benches use
  /// frozen pretrained embeddings, mirroring the paper's pretrained
  /// word2vec first layer).
  bool frozen() const { return frozen_; }
  void set_frozen(bool frozen) { frozen_ = frozen; }

 private:
  Matrix table_;
  Matrix grad_;
  bool frozen_ = false;
};

/// Bag-of-words embedding: V(x)[w] = count of word w in x.
Vector bag_of_words(const TokenSeq& tokens, std::size_t vocab_size);

}  // namespace advtext
