// One-layer GRU text classifier (Cho et al. 2014).
//
// A second recurrent victim family beyond the paper's LSTM: the attacks
// only touch the TextClassifier interface, so the GRU drops in anywhere
// the benches use the LSTM. Full manual BPTT (training + per-word input
// gradients) and a prefix-cached SwapEvaluator, like the LSTM.
//
// Gate equations (n = h_{t-1}):
//   z = σ(Wz x + Uz n + bz)            update gate
//   r = σ(Wr x + Ur n + br)            reset gate
//   h~ = tanh(Wh x + Uh (r∘n) + bh)    candidate state
//   h = (1-z)∘n + z∘h~
#pragma once

#include <cstdint>
#include <memory>

#include "src/nn/embedding.h"
#include "src/nn/text_classifier.h"
#include "src/util/rng.h"

namespace advtext {

struct GruConfig {
  std::size_t embed_dim = 16;
  std::size_t hidden = 24;
  std::size_t num_classes = 2;
  float train_dropout = 0.05f;
  std::uint64_t seed = 1;
};

class GruClassifier final : public TrainableClassifier {
 public:
  GruClassifier(const GruConfig& config, Matrix pretrained_embeddings,
                bool freeze_embedding = true);

  std::size_t num_classes() const override { return config_.num_classes; }
  std::size_t embedding_dim() const override { return config_.embed_dim; }
  const Matrix& embedding_table() const override {
    return embedding_.table();
  }

  Vector predict_proba(const TokenSeq& tokens) const override;
  Matrix predict_proba_batch(const std::vector<TokenSeq>& docs) const override;
  Matrix input_gradient(const TokenSeq& tokens, std::size_t target,
                        Vector* proba = nullptr) const override;
  std::unique_ptr<SwapEvaluator> make_swap_evaluator(
      const TokenSeq& base) const override;

  float forward_backward(const TokenSeq& tokens, std::size_t label) override;
  std::vector<ParamRef> params() override;
  void zero_grad() override;

  const GruConfig& config() const { return config_; }
  const EmbeddingLayer& embedding() const { return embedding_; }

  /// One GRU step: consumes embedding row x; updates h in place.
  void step(const float* x, Vector& h) const;

  /// Probabilities from a final hidden state.
  Vector proba_from_hidden(const Vector& h) const;

  // Batched recurrence primitives. Each output element is the same
  // ascending-k dot the scalar step computes, so one step decomposes as
  //   gate_preact_x + gate_preact_zr + step_gates
  //   + gate_preact_cand + step_combine
  // bit-for-bit per row; the batched evaluator runs each piece as one
  // gemm per timestep across the whole candidate set.

  /// zx = X * Wx^T for m stacked embedding rows (m x D -> m x 3H).
  void gate_preact_x(const float* x, std::size_t m, float* zx) const;

  /// Recurrent term of the z/r gates: H * U[z;r]^T (m x H -> m x 2H).
  void gate_preact_zr(const float* h, std::size_t m, float* azr) const;

  /// Recurrent term of the candidate gate: RN * Uh^T (m x H -> m x H),
  /// where RN rows are r ∘ h_{t-1} as produced by step_gates.
  void gate_preact_cand(const float* rn, std::size_t m, float* acand) const;

  /// One-time pack of the gate weights for the packed overloads below.
  /// The caller owns the buffers and must repack after any weight update;
  /// the batched evaluator packs at rebase time, when weights are frozen.
  void pack_gate_weights(PackedB* wx, PackedB* uh_zr, PackedB* uh_cand) const;

  /// Bit-identical to the unpacked overloads, minus the per-call repack
  /// of the weight tile.
  void gate_preact_x(const PackedB& wx, const float* x, std::size_t m,
                     float* zx) const;
  void gate_preact_zr(const PackedB& uh_zr, const float* h, std::size_t m,
                      float* azr) const;
  void gate_preact_cand(const PackedB& uh_cand, const float* rn,
                        std::size_t m, float* acand) const;

  /// First half of one step for one row: writes the update gate into z
  /// (length hidden) and the reset-gated state r ∘ h into rn.
  void step_gates(const float* zx, const float* azr, const float* h,
                  float* z, float* rn) const;

  /// Second half: folds the candidate state into h in place.
  void step_combine(const float* zx, const float* acand, const float* z,
                    float* h) const;

  /// Batched output head: probabilities for m stacked hidden rows.
  void proba_from_hidden_batch(const float* h, std::size_t m,
                               float* proba) const;

  // Dropout RNG round-trip for bitwise-identical training resume.
  std::vector<std::uint64_t> stochastic_state() const override {
    const RngState s = rng_.state();
    return {s.begin(), s.end()};
  }
  void set_stochastic_state(const std::vector<std::uint64_t>& words) override {
    RngState s{};
    for (std::size_t i = 0; i < s.size() && i < words.size(); ++i)
      s[i] = words[i];
    rng_.set_state(s);
  }

 private:
  struct StepTrace {
    Vector z, r, htilde, h;
  };

  Vector forward_traced(const TokenSeq& tokens, std::vector<StepTrace>* traces,
                        Matrix* embedded) const;

  /// Backward pass from dh at the final step. `on_grads` receives, per
  /// step t, the gate pre-activation gradients (daz, dar, dah) and n =
  /// h_{t-1}; input gradients go to input_grad when non-null.
  template <typename OnGrads>
  void bptt(const Matrix& embedded, const std::vector<StepTrace>& traces,
            Vector dh_final, OnGrads&& on_grads, Matrix* input_grad) const;

  GruConfig config_;
  EmbeddingLayer embedding_;

  // Gate weight rows are stacked: [z; r; h~], each hidden x {D or H}.
  Matrix wx_;        // 3H x D
  Matrix wx_grad_;
  Matrix uh_;        // 3H x H
  Matrix uh_grad_;
  Vector b_;         // 3H
  Vector b_grad_;
  Matrix out_w_;     // C x H
  Matrix out_w_grad_;
  Vector out_b_;     // C
  Vector out_b_grad_;

  mutable Rng rng_;
};

}  // namespace advtext
