// Bag-of-words logistic classifier.
//
// The simplest victim model in the paper's framework: V(x) is the
// bag-of-words embedding (Preliminary section) and C is a linear softmax
// on the counts. Two reasons it exists here:
//   * Proposition 2 is *exact* for it — the classifier is linear in V, so
//    the gradient attack's modular relaxation solves Problem 1's inner
//    objective without error (tested in attack_ext_test).
//   * It is the classic spam-filter baseline the adversarial-ML literature
//    started from (Dalvi et al. 2004), giving the benches a third victim
//    family.
//
// For the TextClassifier interface, input_gradient is reported in the
// dense word-embedding space: ∇_i = W[:, token_i] mapped through the
// paragram table is not meaningful for a count model, so instead each
// position's gradient row is the logit-gradient of its own vocabulary
// coordinate replicated via the identity "embedding" — see
// input_gradient() for the exact convention.
#pragma once

#include <cstdint>
#include <memory>

#include "src/nn/embedding.h"
#include "src/nn/text_classifier.h"
#include "src/util/rng.h"

namespace advtext {

struct BowClassifierConfig {
  std::size_t vocab_size = 0;
  std::size_t num_classes = 2;
  std::uint64_t seed = 1;
};

class BowClassifier final : public TrainableClassifier {
 public:
  explicit BowClassifier(const BowClassifierConfig& config);

  std::size_t num_classes() const override { return config_.num_classes; }

  /// The "embedding dimension" of a count model is the vocab size: each
  /// word's one-hot is its embedding. embedding_table() is the identity,
  /// materialized lazily (vocab x vocab) only if an attack asks for it —
  /// the gradient attack instead special-cases linear models via
  /// word_gain() below.
  std::size_t embedding_dim() const override { return config_.vocab_size; }
  const Matrix& embedding_table() const override;

  Vector predict_proba(const TokenSeq& tokens) const override;
  Matrix input_gradient(const TokenSeq& tokens, std::size_t target,
                        Vector* proba = nullptr) const override;
  std::unique_ptr<SwapEvaluator> make_swap_evaluator(
      const TokenSeq& base) const override;

  float forward_backward(const TokenSeq& tokens, std::size_t label) override;
  std::vector<ParamRef> params() override;
  void zero_grad() override;

  /// Exact marginal effect of swapping one occurrence of `from` for `to`
  /// on the target-class logit: w[target][to] - w[target][from]. Linear
  /// models make Problem 2 exact; the extension tests verify the gradient
  /// attack recovers the brute-force optimum through this.
  double swap_logit_delta(std::size_t target, WordId from, WordId to) const;

 private:
  BowClassifierConfig config_;
  Matrix weights_;       // C x V
  Matrix weights_grad_;
  Vector bias_;          // C
  Vector bias_grad_;
  mutable std::unique_ptr<Matrix> identity_;  // lazily built vocab x vocab
};

}  // namespace advtext
