#include "src/nn/scalar_rnn.h"

#include "src/util/check.h"
#include "src/util/det_accum.h"

namespace advtext {

ScalarRnn::ScalarRnn(const ScalarRnnConfig& config)
    : config_(config),
      w_(config.recurrent_weight),
      y_(config.output_weight),
      b_(config.bias),
      m_(config.embed_dim, 0.0f) {
  Rng rng(config.seed);
  for (float& v : m_) v = static_cast<float>(rng.normal(0.0, 0.8));
}

double ScalarRnn::input_drive(const Vector& v) const {
  ADVTEXT_CHECK_SHAPE(v.size() == config_.embed_dim) << "ScalarRnn::input_drive: dim mismatch";
  return det_dot(m_.data(), v.data(), v.size(), b_);
}

double ScalarRnn::final_hidden(const Matrix& embedded) const {
  ADVTEXT_CHECK_SHAPE(embedded.cols() == config_.embed_dim) << "ScalarRnn: dim mismatch";
  double h = config_.h_init;
  for (std::size_t t = 0; t < embedded.rows(); ++t) {
    const float* row = embedded.row(t);
    const double drive =
        det_dot(m_.data(), row, config_.embed_dim, b_ + w_ * h);
    h = activate(config_.activation, static_cast<float>(drive));
  }
  return h;
}

double ScalarRnn::score(const Matrix& embedded) const {
  return y_ * final_hidden(embedded);
}

}  // namespace advtext
