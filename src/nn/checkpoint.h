// Model checkpointing on top of util/serialize: saves / restores every
// trainable tensor a classifier exposes through params(). Frozen tensors
// (e.g. pretrained embeddings) are not stored — reconstruct the model from
// the same task/embedding table before loading.
#pragma once

#include <string>

#include "src/nn/text_classifier.h"
#include "src/util/serialize.h"

namespace advtext {

/// Writes all trainable parameter tensors of `model` to `path`.
inline void save_model(TrainableClassifier& model, const std::string& path) {
  std::vector<std::pair<const float*, std::size_t>> tensors;
  for (const ParamRef& ref : model.params()) {
    tensors.emplace_back(ref.value, ref.size);
  }
  io::save_parameters(tensors, path);
}

/// Restores parameters saved by save_model into an identically-shaped
/// model. Throws on any shape mismatch.
inline void load_model(TrainableClassifier& model, const std::string& path) {
  std::vector<std::pair<float*, std::size_t>> tensors;
  for (const ParamRef& ref : model.params()) {
    tensors.emplace_back(ref.value, ref.size);
  }
  io::load_parameters(tensors, path);
}

}  // namespace advtext
