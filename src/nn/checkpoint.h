// Model checkpointing on top of util/serialize: saves / restores every
// trainable tensor a classifier exposes through params(). Frozen tensors
// (e.g. pretrained embeddings) are not stored — reconstruct the model from
// the same task/embedding table before loading.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "src/nn/text_classifier.h"
#include "src/util/check.h"
#include "src/util/serialize.h"

namespace advtext {

/// Writes all trainable parameter tensors of `model` to `path`.
inline void save_model(TrainableClassifier& model, const std::string& path) {
  std::vector<std::pair<const float*, std::size_t>> tensors;
  for (const ParamRef& ref : model.params()) {
    tensors.emplace_back(ref.value, ref.size);
  }
  io::save_parameters(tensors, path);
}

/// Restores parameters saved by save_model into an identically-shaped
/// model. Throws on any shape mismatch.
inline void load_model(TrainableClassifier& model, const std::string& path) {
  std::vector<std::pair<float*, std::size_t>> tensors;
  for (const ParamRef& ref : model.params()) {
    tensors.emplace_back(ref.value, ref.size);
  }
  io::load_parameters(tensors, path);
}

/// Bitwise-copies every trainable tensor from `src` into the
/// identically-shaped `dst` (in-memory save_model/load_model). This is the
/// replica-hydration step shared by sharded training and the parallel
/// attack sweep: build a fresh model from the same task/embeddings, then
/// copy the trained weights over. ADVTEXT_CHECKs tensor count and sizes.
inline void copy_model_params(TrainableClassifier& src,
                              TrainableClassifier& dst) {
  const std::vector<ParamRef> from = src.params();
  const std::vector<ParamRef> to = dst.params();
  ADVTEXT_CHECK(from.size() == to.size())
      << "copy_model_params: tensor count mismatch (" << from.size()
      << " vs " << to.size() << ")";
  for (std::size_t i = 0; i < from.size(); ++i) {
    ADVTEXT_CHECK(from[i].size == to[i].size)
        << "copy_model_params: tensor " << i << " size mismatch ("
        << from[i].size << " vs " << to[i].size << ")";
    std::copy(from[i].value, from[i].value + from[i].size, to[i].value);
  }
}

}  // namespace advtext
