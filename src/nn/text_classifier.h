// Abstract classifier interface consumed by the attack algorithms.
//
// Every attack in the paper needs exactly two oracles from the victim model:
//   * Cy(V(x))           — predicted probability of the target class, and
//   * ∇Cy w.r.t. V(x)    — the gradient of that probability with respect to
//                          each input word's embedding vector (used by the
//                          gradient baseline [18] and the Gauss–Southwell
//                          word selection of Alg. 3).
//
// The SwapEvaluator extension exposes the structure greedy attacks exploit:
// consecutive candidate evaluations differ from a base document in a single
// position, so models can cache per-document state (conv feature maps for
// the WCNN, hidden-state prefixes for the LSTM) instead of running a full
// forward per candidate.
//
// SwapEvaluator is a non-virtual shell over protected do_* hooks. The shell
// owns everything the attacks must agree on regardless of model family:
//   * query counting (queries() stays the logical hit+miss count, so
//     reported query metrics, checkpoints and resume replay are identical
//     whether or not a cache is attached);
//   * the memoizing QueryCache (keyed by an FNV-1a hash of the full
//     resulting token sequence, so eval_swap and eval_tokens call sites
//     unify) — misses are computed, hits are served from memory;
//   * the single QueryBudget charge point: a batch of N candidates charges
//     N on miss, hits are free, and nothing else in the attack loop touches
//     the budget for evaluator queries;
//   * deadline/budget truncation for batched sweeps, replicating the
//     seed per-candidate loop semantics (deadline checked before every
//     row, budget before every miss; a truncated batch returns the number
//     of rows actually evaluated).
//
// Models implement do_eval_swap / do_eval_tokens (per-candidate) and may
// override the do_*_batch hooks with stacked-gemm versions; the default
// batch hooks loop the per-candidate path, so batched and sequential
// scoring are bit-identical by construction for every model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/tensor/tensor.h"
#include "src/text/corpus.h"
#include "src/util/query_cache.h"
#include "src/util/robust.h"

namespace advtext {

/// One single-position swap against the evaluator's base document.
struct SwapCandidate {
  std::size_t pos = 0;
  WordId word = 0;
};

/// Outcome of a batched evaluation sweep. `evaluated` rows (a prefix of the
/// request) were filled; at most one truncation flag is set, recording which
/// limit fired at the first unevaluated row — the same deadline-first
/// classification the per-candidate loops make, so attacks report identical
/// termination reasons on the batched path.
struct BatchStatus {
  std::size_t evaluated = 0;
  bool out_of_time = false;
  bool out_of_budget = false;

  bool truncated() const { return out_of_time || out_of_budget; }
};

/// Incremental evaluator for single-position word swaps against a cached
/// base document. Obtain via TextClassifier::make_swap_evaluator.
class SwapEvaluator {
 public:
  virtual ~SwapEvaluator() = default;

  /// Re-caches state for a new base document (call after committing a swap).
  void rebase(const TokenSeq& tokens);

  /// Class-probability vector for the base document with position `pos`
  /// replaced by word `candidate`. Does not modify the base.
  Vector eval_swap(std::size_t pos, WordId candidate);

  /// Class-probability vector for an arbitrary token sequence (used for
  /// multi-position candidates in Alg. 3).
  Vector eval_tokens(const TokenSeq& tokens);

  /// Scores candidates[0..count) in order, one `out` row per candidate.
  /// Honors the bound AttackControl exactly like the per-candidate loops:
  /// the deadline is polled before every row and the budget checked before
  /// every miss; on a limit hit the sweep truncates and the status reports
  /// how many rows were actually evaluated (rows past it are untouched)
  /// and which limit fired. Cache hits — including duplicates within the
  /// batch — are served without a charge.
  BatchStatus eval_swap_batch(const SwapCandidate* candidates,
                              std::size_t count, Matrix& out);
  BatchStatus eval_swap_batch(const std::vector<SwapCandidate>& candidates,
                              Matrix& out);

  /// Batched eval_tokens with the same truncation/caching contract.
  BatchStatus eval_tokens_batch(const TokenSeq* docs, std::size_t count,
                                Matrix& out);
  BatchStatus eval_tokens_batch(const std::vector<TokenSeq>& docs,
                                Matrix& out);

  /// Binds the shared attack controls (deadline + query budget + optional
  /// cache). Attacks bind once right after creating the evaluator; the
  /// control must outlive the evaluator's use. Unbound evaluators run
  /// unlimited and uncached (the analyzer's uncharged-forward rule pins
  /// that every attack entry point either binds or charges explicitly).
  void bind_control(const AttackControl* control);

  /// Number of candidate evaluations performed (query-count metric).
  /// Counts hits + misses: attaching a cache never changes the reported
  /// query counts, only the work and the budget charges.
  std::size_t queries() const { return queries_; }

  /// Evaluations served from the bound QueryCache.
  std::size_t cache_hits() const { return hits_; }

  /// Evaluations actually computed (the only ones charged to the budget).
  std::size_t cache_misses() const { return misses_; }

  /// Total queries charged to the bound QueryBudget (== misses made while
  /// a budget was bound). The attacks DCHECK this against the budget's
  /// used() tally at sweep end to pin the single-charge-point invariant.
  std::size_t budget_charged() const { return charged_; }

 protected:
  virtual std::size_t do_num_classes() const = 0;
  virtual void do_rebase(const TokenSeq& tokens) = 0;
  virtual Vector do_eval_swap(std::size_t pos, WordId candidate) = 0;
  virtual Vector do_eval_tokens(const TokenSeq& tokens) = 0;

  /// Batched hooks: compute candidates[m] into out.row(rows[m]) for
  /// m in [0, count). Defaults loop the per-candidate hooks; models
  /// override with stacked-gemm implementations. Implementations must be
  /// bit-identical to the per-candidate path and must consume any
  /// stochastic state (MC-dropout RNG) in row order.
  virtual void do_eval_swap_batch(const SwapCandidate* candidates,
                                  const std::size_t* rows, std::size_t count,
                                  Matrix& out);
  virtual void do_eval_tokens_batch(const TokenSeq* const* docs,
                                    const std::size_t* rows,
                                    std::size_t count, Matrix& out);

  /// Impls whose forward is stochastic (MC dropout) clear this so the
  /// cache is bypassed — memoizing a random draw would change results.
  bool cacheable_ = true;

  /// Current base document, kept by the shell for cache keying. Valid
  /// inside do_* hooks (set before do_rebase runs).
  TokenSeq base_tokens_;

 private:
  QueryCache* active_cache() const;
  std::uint64_t swap_key(std::size_t pos, WordId candidate) const;
  void charge_one();

  const AttackControl* control_ = nullptr;
  std::size_t queries_ = 0;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t charged_ = 0;

  // Reused batch scratch (hot path: one batch per greedy round).
  std::vector<SwapCandidate> miss_cands_;
  std::vector<const TokenSeq*> miss_docs_;
  std::vector<std::size_t> miss_rows_;
  std::vector<std::uint64_t> miss_keys_;
  std::vector<std::pair<std::size_t, std::size_t>> alias_rows_;
  std::unordered_map<std::uint64_t, std::size_t> pending_;
  std::vector<float> row_scratch_;
};

/// Benchmark/CI hook: when true, the batch entry points score their misses
/// through the per-candidate do_eval_* path instead of the stacked-gemm
/// overrides. Results are bit-identical either way (that is the batched
/// contract); the switch exists so the bench-attack-sweep job can emit
/// seed-path timing rows from the same binary. Not thread-safe: set it
/// before spawning attack workers.
void set_sequential_scoring(bool sequential);
bool sequential_scoring();

/// Text classifier over token-id sequences.
class TextClassifier {
 public:
  virtual ~TextClassifier() = default;

  virtual std::size_t num_classes() const = 0;
  virtual std::size_t embedding_dim() const = 0;

  /// The word-embedding table (vocab x embedding_dim). The gradient attack
  /// needs it to score candidate replacements against ∇C_y.
  virtual const Matrix& embedding_table() const = 0;

  /// Class-probability vector. Non-const models (MC dropout) use an
  /// internal mutable RNG, so repeated calls may differ when enabled.
  virtual Vector predict_proba(const TokenSeq& tokens) const = 0;

  /// Batched predict_proba: one row per document, bit-identical to calling
  /// predict_proba per document (stochastic models consume RNG draws in
  /// row order). Default loops; models override with stacked gemms.
  virtual Matrix predict_proba_batch(const std::vector<TokenSeq>& docs) const;

  /// Probability of a single class.
  double class_probability(const TokenSeq& tokens, std::size_t label) const {
    return predict_proba(tokens)[label];
  }

  /// argmax class.
  std::size_t predict(const TokenSeq& tokens) const;

  /// Gradient of the target-class probability with respect to each word's
  /// embedding: an n x embedding_dim matrix (row i = ∇_i Cy). If `proba`
  /// is non-null it receives the forward probabilities.
  virtual Matrix input_gradient(const TokenSeq& tokens, std::size_t target,
                                Vector* proba = nullptr) const = 0;

  /// Creates a swap evaluator seeded with the given base document. The
  /// default implementation performs a full forward per evaluation;
  /// concrete models override with cached incremental versions.
  virtual std::unique_ptr<SwapEvaluator> make_swap_evaluator(
      const TokenSeq& base) const;
};

/// Raw parameter view used by the optimizer: a contiguous value buffer and
/// its gradient accumulator of equal length.
struct ParamRef {
  float* value = nullptr;
  float* grad = nullptr;
  std::size_t size = 0;
};

/// Classifier that supports gradient training via backprop.
class TrainableClassifier : public TextClassifier {
 public:
  /// Runs forward + backward for one example, accumulating parameter
  /// gradients; returns the cross-entropy loss.
  virtual float forward_backward(const TokenSeq& tokens,
                                 std::size_t label) = 0;

  /// All trainable parameters (frozen tensors are excluded).
  virtual std::vector<ParamRef> params() = 0;

  /// Clears accumulated gradients.
  virtual void zero_grad() = 0;

  /// Internal stochastic state (train-time dropout RNG streams) as raw
  /// 64-bit words. Training snapshots round-trip it so a resumed run draws
  /// the same dropout masks and replays bitwise. Default: stateless.
  virtual std::vector<std::uint64_t> stochastic_state() const { return {}; }
  virtual void set_stochastic_state(
      const std::vector<std::uint64_t>& /*words*/) {}
};

}  // namespace advtext
