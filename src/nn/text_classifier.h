// Abstract classifier interface consumed by the attack algorithms.
//
// Every attack in the paper needs exactly two oracles from the victim model:
//   * Cy(V(x))           — predicted probability of the target class, and
//   * ∇Cy w.r.t. V(x)    — the gradient of that probability with respect to
//                          each input word's embedding vector (used by the
//                          gradient baseline [18] and the Gauss–Southwell
//                          word selection of Alg. 3).
//
// The SwapEvaluator extension exposes the structure greedy attacks exploit:
// consecutive candidate evaluations differ from a base document in a single
// position, so models can cache per-document state (conv feature maps for
// the WCNN, hidden-state prefixes for the LSTM) instead of running a full
// forward per candidate. A default (no caching) implementation is provided.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/tensor/tensor.h"
#include "src/text/corpus.h"

namespace advtext {

/// Incremental evaluator for single-position word swaps against a cached
/// base document. Obtain via TextClassifier::make_swap_evaluator.
class SwapEvaluator {
 public:
  virtual ~SwapEvaluator() = default;

  /// Re-caches state for a new base document (call after committing a swap).
  virtual void rebase(const TokenSeq& tokens) = 0;

  /// Class-probability vector for the base document with position `pos`
  /// replaced by word `candidate`. Does not modify the base.
  virtual Vector eval_swap(std::size_t pos, WordId candidate) = 0;

  /// Class-probability vector for an arbitrary token sequence (used for
  /// multi-position candidates in Alg. 3). Default: full forward.
  virtual Vector eval_tokens(const TokenSeq& tokens) = 0;

  /// Number of candidate evaluations performed (query-count metric).
  std::size_t queries() const { return queries_; }

 protected:
  std::size_t queries_ = 0;
};

/// Text classifier over token-id sequences.
class TextClassifier {
 public:
  virtual ~TextClassifier() = default;

  virtual std::size_t num_classes() const = 0;
  virtual std::size_t embedding_dim() const = 0;

  /// The word-embedding table (vocab x embedding_dim). The gradient attack
  /// needs it to score candidate replacements against ∇C_y.
  virtual const Matrix& embedding_table() const = 0;

  /// Class-probability vector. Non-const models (MC dropout) use an
  /// internal mutable RNG, so repeated calls may differ when enabled.
  virtual Vector predict_proba(const TokenSeq& tokens) const = 0;

  /// Probability of a single class.
  double class_probability(const TokenSeq& tokens, std::size_t label) const {
    return predict_proba(tokens)[label];
  }

  /// argmax class.
  std::size_t predict(const TokenSeq& tokens) const;

  /// Gradient of the target-class probability with respect to each word's
  /// embedding: an n x embedding_dim matrix (row i = ∇_i Cy). If `proba`
  /// is non-null it receives the forward probabilities.
  virtual Matrix input_gradient(const TokenSeq& tokens, std::size_t target,
                                Vector* proba = nullptr) const = 0;

  /// Creates a swap evaluator seeded with the given base document. The
  /// default implementation performs a full forward per evaluation;
  /// concrete models override with cached incremental versions.
  virtual std::unique_ptr<SwapEvaluator> make_swap_evaluator(
      const TokenSeq& base) const;
};

/// Raw parameter view used by the optimizer: a contiguous value buffer and
/// its gradient accumulator of equal length.
struct ParamRef {
  float* value = nullptr;
  float* grad = nullptr;
  std::size_t size = 0;
};

/// Classifier that supports gradient training via backprop.
class TrainableClassifier : public TextClassifier {
 public:
  /// Runs forward + backward for one example, accumulating parameter
  /// gradients; returns the cross-entropy loss.
  virtual float forward_backward(const TokenSeq& tokens,
                                 std::size_t label) = 0;

  /// All trainable parameters (frozen tensors are excluded).
  virtual std::vector<ParamRef> params() = 0;

  /// Clears accumulated gradients.
  virtual void zero_grad() = 0;

  /// Internal stochastic state (train-time dropout RNG streams) as raw
  /// 64-bit words. Training snapshots round-trip it so a resumed run draws
  /// the same dropout masks and replays bitwise. Default: stateless.
  virtual std::vector<std::uint64_t> stochastic_state() const { return {}; }
  virtual void set_stochastic_state(
      const std::vector<std::uint64_t>& /*words*/) {}
};

}  // namespace advtext
