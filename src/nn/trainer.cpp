#include "src/nn/trainer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "src/nn/sharded_supervisor.h"
#include "src/util/check.h"
#include "src/util/rng.h"
#include "src/util/robust.h"
#include "src/util/serialize.h"
#include "src/util/stop_token.h"
#include "src/util/sync.h"

namespace advtext {

void Adam::step(const std::vector<ParamRef>& params, double batch_scale) {
  // A single NaN gradient silently poisons every later step through the
  // Adam moments; reject it *before* the update while the moments and
  // parameters are still clean (a supervisor rollback can then recover by
  // restoring the loop state alone).
  for (std::size_t p = 0; p < params.size(); ++p) {
    ADVTEXT_DCHECK(all_finite(params[p].grad, params[p].size))
        << "Adam::step: gradient tensor " << p << " non-finite before update";
  }
  // Global-norm gradient clipping (on the batch-averaged gradients).
  if (config_.clip_norm > 0.0) {
    double norm_sq = 0.0;
    for (const ParamRef& ref : params) {
      for (std::size_t i = 0; i < ref.size; ++i) {
        const double g = ref.grad[i] * batch_scale;
        // ADVTEXT_ALLOW(float-accum): one running norm across all tensors in params() order; splitting would change the bits
        norm_sq += g * g;
      }
    }
    const double norm = std::sqrt(norm_sq);
    if (norm > config_.clip_norm) {
      batch_scale *= config_.clip_norm / norm;
      ++clipped_steps_;
    }
  }
  if (m_.empty()) {
    m_.resize(params.size());
    v_.resize(params.size());
    for (std::size_t p = 0; p < params.size(); ++p) {
      m_[p].assign(params[p].size, 0.0f);
      v_[p].assign(params[p].size, 0.0f);
    }
  }
  ++t_;
  const double b1 = config_.beta1;
  const double b2 = config_.beta2;
  const double correction1 = 1.0 - std::pow(b1, static_cast<double>(t_));
  const double correction2 = 1.0 - std::pow(b2, static_cast<double>(t_));
  const double lr = lr_;
  for (std::size_t p = 0; p < params.size(); ++p) {
    const ParamRef& ref = params[p];
    for (std::size_t i = 0; i < ref.size; ++i) {
      const double g = static_cast<double>(ref.grad[i]) * batch_scale +
                       config_.weight_decay * ref.value[i];
      m_[p][i] = static_cast<float>(b1 * m_[p][i] + (1.0 - b1) * g);
      v_[p][i] = static_cast<float>(b2 * v_[p][i] + (1.0 - b2) * g * g);
      const double mhat = m_[p][i] / correction1;
      const double vhat = v_[p][i] / correction2;
      ref.value[i] -=
          static_cast<float>(lr * mhat / (std::sqrt(vhat) + config_.epsilon));
    }
  }
  for (std::size_t p = 0; p < params.size(); ++p) {
    ADVTEXT_DCHECK(all_finite(params[p].value, params[p].size))
        << "Adam::step: parameter tensor " << p << " non-finite after update";
  }
}

void Adam::save_state(std::ostream& out) const {
  io::write_u64(out, t_);
  io::write_double(out, lr_);
  io::write_u64(out, clipped_steps_);
  io::write_u64(out, m_.size());
  for (std::size_t p = 0; p < m_.size(); ++p) {
    io::write_u64(out, m_[p].size());
    io::write_floats(out, m_[p].data(), m_[p].size());
    io::write_floats(out, v_[p].data(), v_[p].size());
  }
}

void Adam::load_state(std::istream& in) {
  t_ = io::read_u64(in);
  lr_ = io::read_double(in);
  clipped_steps_ = io::read_u64(in);
  const std::size_t tensors = io::read_u64(in);
  m_.assign(tensors, {});
  v_.assign(tensors, {});
  for (std::size_t p = 0; p < tensors; ++p) {
    const std::size_t size = io::read_u64(in);
    m_[p].resize(size);
    v_[p].resize(size);
    io::read_floats(in, m_[p].data(), size);
    io::read_floats(in, v_[p].data(), size);
  }
}

namespace {

double dataset_accuracy(const TextClassifier& model,
                        const std::vector<const Document*>& docs) {
  if (docs.empty()) return 0.0;
  std::size_t correct = 0;
  for (const Document* doc : docs) {
    // Epoch-boundary accuracy runs on a watchdog-monitored worker; beat
    // per document so a large validation set is not reported as a stall.
    if (Heartbeat* heart = ThreadPool::current()) heart->beat();
    const TokenSeq tokens = doc->flatten();
    if (tokens.empty()) continue;
    // ADVTEXT_ALLOW(uncharged-forward): epoch-boundary accuracy probe on the daemon's own model during training — a training metric, not an adversarial query, so no QueryBudget exists here
    if (model.predict(tokens) == static_cast<std::size_t>(doc->label)) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(docs.size());
}

/// The classifier training loop as a ResumableTraining: one step() is one
/// mini-batch. Constructed fresh it replays the exact pre-supervisor
/// trainer: Rng(seed) -> validation split -> per-epoch shuffles -> batched
/// forward/backward -> Adam. load_state() overwrites the replayable state
/// (cursor, permutation, RNG streams, model params, Adam moments) so the
/// remaining steps are bitwise identical to an uninterrupted run.
class ClassifierTrainLoop final : public ResumableTraining {
 public:
  /// `loss_site` is the fault-injection point armed around the batch loss;
  /// sharded training passes "train.loss@shard<k>" so a fault can target
  /// one shard.
  ClassifierTrainLoop(TrainableClassifier& model, const Dataset& data,
                      const TrainConfig& config,
                      const ResilienceConfig& resilience,
                      std::string loss_site = "train.loss")
      : model_(model), config_(config), resilience_(resilience),
        loss_site_(std::move(loss_site)), rng_(config.seed),
        optimizer_(config) {
    // Validation split (deterministic tail slice of a fixed permutation).
    // Document pointers cannot be serialized, so resume re-derives the
    // split from the seed and then restores the RNG stream from the
    // snapshot — identical result, by construction.
    const auto order = rng_.permutation(data.docs.size());
    const std::size_t num_val = static_cast<std::size_t>(
        config.validation_fraction * static_cast<double>(data.docs.size()));
    for (std::size_t i = 0; i < order.size(); ++i) {
      const Document& doc = data.docs[order[i]];
      if (doc.num_words() == 0) continue;
      if (i < num_val) {
        val_docs_.push_back(&doc);
      } else {
        train_docs_.push_back(&doc);
      }
    }
  }

  bool done() const override {
    return finished_ || epoch_ >= config_.epochs;
  }

  double step() override {
    if (!perm_drawn_) {
      perm_ = rng_.permutation(train_docs_.size());
      cursor_ = 0;
      epoch_loss_ = 0.0;
      processed_ = 0;
      perm_drawn_ = true;
    }
    boundary_ = false;
    const std::size_t end =
        std::min(cursor_ + config_.batch_size, perm_.size());
    model_.zero_grad();
    double batch_loss = 0.0;
    for (std::size_t i = cursor_; i < end; ++i) {
      const Document* doc = train_docs_[perm_[i]];
      // ADVTEXT_ALLOW(float-accum): terms are side-effecting forward_backward calls in (seeded) permutation order
      batch_loss += model_.forward_backward(
          doc->flatten(), static_cast<std::size_t>(doc->label));
    }
    const std::size_t batch = std::max<std::size_t>(1, end - cursor_);
    batch_loss =
        FaultInjector::instance().poison(loss_site_.c_str(), batch_loss);
    if (!std::isfinite(batch_loss)) {
      // Divergence: report it *without* stepping the optimizer, so the
      // Adam moments and parameters stay clean for the rollback.
      return batch_loss;
    }
    if (end > cursor_) {
      optimizer_.step(model_.params(),
                      1.0 / static_cast<double>(end - cursor_));
    }
    epoch_loss_ += batch_loss;
    processed_ += end - cursor_;
    cursor_ = end;
    if (cursor_ >= perm_.size()) finish_epoch();
    return batch_loss / static_cast<double>(batch);
  }

  bool at_boundary() const override { return boundary_; }

  void save_state(std::ostream& out) const override {
    io::write_magic(out);
    io::write_u64(out, epoch_);
    io::write_u64(out, cursor_);
    io::write_u64(out, processed_);
    io::write_u64(out, perm_drawn_ ? 1 : 0);
    io::write_u64(out, finished_ ? 1 : 0);
    io::write_double(out, epoch_loss_);
    io::write_double(out, best_val_);
    io::write_doubles(out, epoch_losses_);
    io::write_u64(out, perm_.size());
    for (const std::size_t index : perm_) io::write_u64(out, index);
    const RngState rng_state = rng_.state();
    for (const std::uint64_t word : rng_state) io::write_u64(out, word);
    const std::vector<std::uint64_t> stochastic = model_.stochastic_state();
    io::write_u64(out, stochastic.size());
    for (const std::uint64_t word : stochastic) io::write_u64(out, word);
    const std::vector<ParamRef> params = model_.params();
    io::write_u64(out, params.size());
    for (const ParamRef& ref : params) {
      io::write_u64(out, ref.size);
      io::write_floats(out, ref.value, ref.size);
    }
    optimizer_.save_state(out);
  }

  void load_state(std::istream& in) override {
    io::read_magic(in);
    epoch_ = io::read_u64(in);
    cursor_ = io::read_u64(in);
    processed_ = io::read_u64(in);
    perm_drawn_ = io::read_u64(in) != 0;
    finished_ = io::read_u64(in) != 0;
    epoch_loss_ = io::read_double(in);
    best_val_ = io::read_double(in);
    epoch_losses_ = io::read_doubles(in);
    perm_.resize(io::read_u64(in));
    for (std::size_t& index : perm_) index = io::read_u64(in);
    RngState rng_state{};
    for (std::uint64_t& word : rng_state) word = io::read_u64(in);
    rng_.set_state(rng_state);
    std::vector<std::uint64_t> stochastic(io::read_u64(in));
    for (std::uint64_t& word : stochastic) word = io::read_u64(in);
    model_.set_stochastic_state(stochastic);
    const std::vector<ParamRef> params = model_.params();
    const std::size_t tensors = io::read_u64(in);
    if (tensors != params.size()) {
      throw std::runtime_error(
          "training snapshot parameter count mismatch: snapshot has " +
          std::to_string(tensors) + ", model has " +
          std::to_string(params.size()));
    }
    for (const ParamRef& ref : params) {
      const std::size_t size = io::read_u64(in);
      if (size != ref.size) {
        throw std::runtime_error(
            "training snapshot tensor size mismatch (architecture changed "
            "between save and resume?)");
      }
      io::read_floats(in, ref.value, ref.size);
    }
    optimizer_.load_state(in);
    boundary_ = false;
  }

  void on_rollback(std::size_t attempt) override {
    optimizer_.set_learning_rate(
        config_.learning_rate *
        std::pow(resilience_.lr_backoff, static_cast<double>(attempt)));
    if (config_.verbose) {
      std::printf("rollback %zu: lr -> %.6f\n", attempt,
                  optimizer_.learning_rate());
    }
  }

  void on_recover() override {
    // The backed-off retry made it through: restore the configured rate so
    // a transient fault does not depress learning for the rest of the run.
    optimizer_.set_learning_rate(config_.learning_rate);
  }

  /// Report of everything the loop itself tracked (the supervisor fields
  /// are merged by train_classifier).
  TrainReport report() const {
    TrainReport report;
    report.epochs_run = epoch_losses_.size();
    report.epoch_losses = epoch_losses_;
    report.final_train_loss =
        epoch_losses_.empty() ? 0.0 : epoch_losses_.back();
    report.best_validation_accuracy = best_val_;
    report.clipped_steps = optimizer_.clipped_steps();
    return report;
  }

 private:
  void finish_epoch() {
    epoch_loss_ /=
        static_cast<double>(std::max<std::size_t>(1, processed_));
    epoch_losses_.push_back(epoch_loss_);
    if (!val_docs_.empty()) {
      const double val_acc = dataset_accuracy(model_, val_docs_);
      best_val_ = std::max(best_val_, val_acc);
      if (config_.verbose) {
        std::printf("epoch %zu: loss=%.4f val_acc=%.3f\n", epoch_ + 1,
                    epoch_loss_, val_acc);
      }
      // Early stop once validation is saturated and loss is small.
      if (val_acc >= 0.999 && epoch_loss_ < 0.05) finished_ = true;
    } else if (config_.verbose) {
      std::printf("epoch %zu: loss=%.4f\n", epoch_ + 1, epoch_loss_);
    }
    ++epoch_;
    perm_drawn_ = false;
    boundary_ = true;
  }

  TrainableClassifier& model_;
  TrainConfig config_;
  ResilienceConfig resilience_;
  std::string loss_site_;
  Rng rng_;
  Adam optimizer_;
  std::vector<const Document*> train_docs_;
  std::vector<const Document*> val_docs_;

  // Replayable cursor state (serialized).
  std::size_t epoch_ = 0;
  std::size_t cursor_ = 0;
  std::size_t processed_ = 0;
  bool perm_drawn_ = false;
  bool finished_ = false;
  bool boundary_ = false;
  double epoch_loss_ = 0.0;
  double best_val_ = 0.0;
  std::vector<double> epoch_losses_;
  std::vector<std::size_t> perm_;
};

}  // namespace

TrainReport train_classifier(TrainableClassifier& model, const Dataset& data,
                             const TrainConfig& config,
                             const ResilienceConfig& resilience) {
  ClassifierTrainLoop loop(model, data, config, resilience);
  TrainSupervisor supervisor(resilience);
  const SupervisorReport outcome = supervisor.run(loop);
  TrainReport report = loop.report();
  report.termination = outcome.termination;
  report.rollbacks = outcome.rollbacks;
  // Every rollback backs the learning rate off (on_rollback), so the
  // supervisor's rollback count is also the backoff count.
  report.lr_backoffs = outcome.rollbacks;
  report.snapshots_written = outcome.snapshots_written;
  report.snapshot_write_failures = outcome.snapshot_write_failures;
  report.snapshot_write_retries = outcome.snapshot_write_retries;
  report.resumed = outcome.resumed;
  report.warnings = outcome.warnings;
  return report;
}

TrainReport train_classifier(TrainableClassifier& model, const Dataset& data,
                             const TrainConfig& config) {
  return train_classifier(model, data, config, ResilienceConfig{});
}

ShardedTrainReport train_classifier_sharded(
    TrainableClassifier& model,
    const std::function<std::unique_ptr<TrainableClassifier>()>& make_replica,
    const Dataset& data, const TrainConfig& config,
    const ResilienceConfig& resilience, const ShardConfig& shard_config) {
  const std::size_t shards = std::max<std::size_t>(1, shard_config.shards);
  ADVTEXT_CHECK(shards == 1 || make_replica != nullptr)
      << "train_classifier_sharded: shards > 1 needs a replica factory";

  // Deal documents round-robin so every shard sees the same label mix; with
  // one shard this reproduces the full dataset in order.
  std::vector<Dataset> shard_data(shards);
  for (Dataset& shard : shard_data) shard.num_classes = data.num_classes;
  for (std::size_t i = 0; i < data.docs.size(); ++i) {
    shard_data[i % shards].docs.push_back(data.docs[i]);
  }

  // Shard 0 trains the primary model in place; the others train replicas
  // whose parameters start as a bitwise copy of the primary's.
  std::vector<std::unique_ptr<TrainableClassifier>> replicas;
  std::vector<TrainableClassifier*> shard_models(shards, &model);
  for (std::size_t k = 1; k < shards; ++k) {
    replicas.push_back(make_replica());
    ADVTEXT_CHECK(replicas.back() != nullptr)
        << "replica factory returned null";
    const std::vector<ParamRef> src = model.params();
    const std::vector<ParamRef> dst = replicas.back()->params();
    ADVTEXT_CHECK(src.size() == dst.size())
        << "replica architecture differs from the primary model";
    for (std::size_t t = 0; t < src.size(); ++t) {
      ADVTEXT_CHECK(src[t].size == dst[t].size)
          << "replica tensor " << t << " size differs from the primary model";
      std::copy(src[t].value, src[t].value + src[t].size, dst[t].value);
    }
    shard_models[k] = replicas.back().get();
  }

  // Signal handling is installed once, from this thread; the per-shard
  // sessions only poll the token.
  if (resilience.install_stop_token) StopToken::instance().install();

  std::vector<std::unique_ptr<ClassifierTrainLoop>> loops;
  std::vector<ShardSpec> specs;
  loops.reserve(shards);
  specs.reserve(shards);
  for (std::size_t k = 0; k < shards; ++k) {
    TrainConfig shard_train = config;
    shard_train.seed = config.seed + static_cast<std::uint64_t>(k);
    ResilienceConfig shard_resilience = resilience;
    shard_resilience.install_stop_token = false;
    if (shards > 1 && !resilience.snapshot_path.empty()) {
      shard_resilience.snapshot_path =
          resilience.snapshot_path + ".shard" + std::to_string(k);
    }
    const std::string loss_site =
        shards == 1 ? std::string("train.loss")
                    : "train.loss@shard" + std::to_string(k);
    loops.push_back(std::make_unique<ClassifierTrainLoop>(
        *shard_models[k], shard_data[k], shard_train, shard_resilience,
        loss_site));
    ShardSpec spec;
    spec.loop = loops.back().get();
    spec.params = shard_models[k]->params();
    spec.resilience = shard_resilience;
    specs.push_back(std::move(spec));
  }

  ShardedTrainSupervisor supervisor(std::move(specs));
  ShardedReport outcome = supervisor.run();

  ShardedTrainReport report;
  report.shards = shards;
  report.result_shard = outcome.result_shard;
  report.dead_shards = std::move(outcome.dead_shards);
  report.averaging_rounds = outcome.averaging_rounds;

  // The result shard's parameters become the primary model's (a bitwise
  // copy; after a clean run every survivor already holds the averaged
  // values, so this only matters under degradation or stop).
  if (report.result_shard != 0) {
    const std::vector<ParamRef> src =
        shard_models[report.result_shard]->params();
    const std::vector<ParamRef> dst = model.params();
    for (std::size_t t = 0; t < src.size(); ++t) {
      std::copy(src[t].value, src[t].value + src[t].size, dst[t].value);
    }
  }

  report.train = loops[report.result_shard]->report();
  report.train.termination = outcome.termination;
  report.train.warnings = std::move(outcome.warnings);
  report.train.rollbacks = 0;
  report.train.snapshots_written = 0;
  report.train.snapshot_write_failures = 0;
  report.train.snapshot_write_retries = 0;
  report.train.resumed = false;
  for (const SupervisorReport& shard : outcome.shards) {
    report.train.rollbacks += shard.rollbacks;
    report.train.snapshots_written += shard.snapshots_written;
    report.train.snapshot_write_failures += shard.snapshot_write_failures;
    report.train.snapshot_write_retries += shard.snapshot_write_retries;
    report.train.resumed = report.train.resumed || shard.resumed;
  }
  report.train.lr_backoffs = report.train.rollbacks;
  report.shard_reports = std::move(outcome.shards);
  return report;
}

}  // namespace advtext
