#include "src/nn/trainer.h"

#include <cmath>
#include <cstdio>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace advtext {

void Adam::step(const std::vector<ParamRef>& params, double batch_scale) {
  // Global-norm gradient clipping (on the batch-averaged gradients).
  if (config_.clip_norm > 0.0) {
    double norm_sq = 0.0;
    for (const ParamRef& ref : params) {
      for (std::size_t i = 0; i < ref.size; ++i) {
        const double g = ref.grad[i] * batch_scale;
        norm_sq += g * g;
      }
    }
    const double norm = std::sqrt(norm_sq);
    if (norm > config_.clip_norm) {
      batch_scale *= config_.clip_norm / norm;
    }
  }
  if (m_.empty()) {
    m_.resize(params.size());
    v_.resize(params.size());
    for (std::size_t p = 0; p < params.size(); ++p) {
      m_[p].assign(params[p].size, 0.0f);
      v_[p].assign(params[p].size, 0.0f);
    }
  }
  ++t_;
  const double b1 = config_.beta1;
  const double b2 = config_.beta2;
  const double correction1 = 1.0 - std::pow(b1, static_cast<double>(t_));
  const double correction2 = 1.0 - std::pow(b2, static_cast<double>(t_));
  const double lr = config_.learning_rate;
  for (std::size_t p = 0; p < params.size(); ++p) {
    const ParamRef& ref = params[p];
    for (std::size_t i = 0; i < ref.size; ++i) {
      const double g = static_cast<double>(ref.grad[i]) * batch_scale +
                       config_.weight_decay * ref.value[i];
      m_[p][i] = static_cast<float>(b1 * m_[p][i] + (1.0 - b1) * g);
      v_[p][i] = static_cast<float>(b2 * v_[p][i] + (1.0 - b2) * g * g);
      const double mhat = m_[p][i] / correction1;
      const double vhat = v_[p][i] / correction2;
      ref.value[i] -=
          static_cast<float>(lr * mhat / (std::sqrt(vhat) + config_.epsilon));
    }
  }
  // A single NaN gradient silently poisons every later step through the
  // Adam moments; catch it at the step boundary where the culprit tensor
  // is still identifiable.
  for (std::size_t p = 0; p < params.size(); ++p) {
    ADVTEXT_DCHECK(all_finite(params[p].grad, params[p].size))
        << "Adam::step: gradient tensor " << p << " non-finite";
    ADVTEXT_DCHECK(all_finite(params[p].value, params[p].size))
        << "Adam::step: parameter tensor " << p << " non-finite after update";
  }
}

namespace {

double dataset_accuracy(const TextClassifier& model,
                        const std::vector<const Document*>& docs) {
  if (docs.empty()) return 0.0;
  std::size_t correct = 0;
  for (const Document* doc : docs) {
    const TokenSeq tokens = doc->flatten();
    if (tokens.empty()) continue;
    if (model.predict(tokens) == static_cast<std::size_t>(doc->label)) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(docs.size());
}

}  // namespace

TrainReport train_classifier(TrainableClassifier& model, const Dataset& data,
                             const TrainConfig& config) {
  TrainReport report;
  Rng rng(config.seed);
  Adam optimizer(config);

  // Validation split (deterministic tail slice of a fixed permutation).
  std::vector<const Document*> train_docs;
  std::vector<const Document*> val_docs;
  const auto order = rng.permutation(data.docs.size());
  const std::size_t num_val = static_cast<std::size_t>(
      config.validation_fraction * static_cast<double>(data.docs.size()));
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Document& doc = data.docs[order[i]];
    if (doc.num_words() == 0) continue;
    if (i < num_val) {
      val_docs.push_back(&doc);
    } else {
      train_docs.push_back(&doc);
    }
  }

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    const auto perm = rng.permutation(train_docs.size());
    double epoch_loss = 0.0;
    std::size_t processed = 0;
    for (std::size_t start = 0; start < perm.size();
         start += config.batch_size) {
      const std::size_t end =
          std::min(start + config.batch_size, perm.size());
      model.zero_grad();
      double batch_loss = 0.0;
      for (std::size_t i = start; i < end; ++i) {
        const Document* doc = train_docs[perm[i]];
        batch_loss += model.forward_backward(
            doc->flatten(), static_cast<std::size_t>(doc->label));
      }
      const std::size_t batch = end - start;
      ADVTEXT_DCHECK(std::isfinite(batch_loss))
          << "train_classifier: non-finite batch loss at epoch " << epoch
          << ", batch starting at " << start;
      optimizer.step(model.params(), 1.0 / static_cast<double>(batch));
      epoch_loss += batch_loss;
      processed += batch;
    }
    epoch_loss /= static_cast<double>(std::max<std::size_t>(1, processed));
    report.epoch_losses.push_back(epoch_loss);
    report.final_train_loss = epoch_loss;
    ++report.epochs_run;
    if (!val_docs.empty()) {
      const double val_acc = dataset_accuracy(model, val_docs);
      report.best_validation_accuracy =
          std::max(report.best_validation_accuracy, val_acc);
      if (config.verbose) {
        std::printf("epoch %zu: loss=%.4f val_acc=%.3f\n", epoch + 1,
                    epoch_loss, val_acc);
      }
      // Early stop once validation is saturated and loss is small.
      if (val_acc >= 0.999 && epoch_loss < 0.05) break;
    } else if (config.verbose) {
      std::printf("epoch %zu: loss=%.4f\n", epoch + 1, epoch_loss);
    }
  }
  return report;
}

}  // namespace advtext
