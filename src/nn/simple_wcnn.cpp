#include "src/nn/simple_wcnn.h"

#include "src/util/check.h"
#include "src/util/det_accum.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace advtext {

SimpleWCnn::SimpleWCnn(const SimpleWCnnConfig& config)
    : config_(config),
      filters_(config.num_filters, config.window * config.embed_dim),
      filter_bias_(config.num_filters, 0.0f),
      out_w_(config.num_filters, 0.0f) {
  if (config.stride < config.window) {
    throw std::invalid_argument(
        "SimpleWCnn: Theorem 1 requires stride >= window (no overlap)");
  }
  Rng rng(config.seed);
  filters_.fill_normal(rng, 0.7f);
  for (float& b : filter_bias_) b = static_cast<float>(rng.normal(0.0, 0.3));
  for (float& w : out_w_) {
    const double raw = rng.normal(0.5, 0.4);
    w = static_cast<float>(config.nonnegative_output_weights ? std::abs(raw)
                                                             : raw);
  }
  out_b_ = rng.normal(0.0, 0.2);
}

std::size_t SimpleWCnn::num_windows(std::size_t num_words) const {
  if (num_words < config_.window) return 0;
  return (num_words - config_.window) / config_.stride + 1;
}

double SimpleWCnn::filter_preact(const Matrix& embedded, std::size_t f,
                                 std::size_t start) const {
  const std::size_t span = config_.window * config_.embed_dim;
  // Rows are contiguous, so the window is one flat segment.
  return dot(filters_.row(f), embedded.row(start), span) + filter_bias_[f];
}

double SimpleWCnn::score(const Matrix& embedded) const {
  const std::size_t windows = num_windows(embedded.rows());
  if (windows == 0) return out_b_;
  return det_index_sum(
      config_.num_filters,
      [&](std::size_t f) {
        double best = -std::numeric_limits<double>::infinity();
        for (std::size_t w = 0; w < windows; ++w) {
          best = std::max(
              best, static_cast<double>(activate(
                        config_.activation,
                        static_cast<float>(
                            filter_preact(embedded, f, w * config_.stride)))));
        }
        return out_w_[f] * best;
      },
      out_b_);
}

bool SimpleWCnn::replacement_increases_filters(std::size_t offset_in_window,
                                               const Vector& original,
                                               const Vector& candidate) const {
  ADVTEXT_CHECK_SHAPE(offset_in_window < config_.window) << "replacement_increases_filters: offset out of range";
  ADVTEXT_CHECK_SHAPE(original.size() == config_.embed_dim && candidate.size() == config_.embed_dim) << "replacement_increases_filters: dim mismatch";
  for (std::size_t f = 0; f < config_.num_filters; ++f) {
    const float* segment =
        filters_.row(f) + offset_in_window * config_.embed_dim;
    const double delta = det_diff_dot(candidate.data(), original.data(),
                                      segment, config_.embed_dim);
    if (delta < 0.0) return false;
  }
  return true;
}

}  // namespace advtext
