// Parallel data-shard training on top of the supervisor machinery.
//
// Liu et al. (2021) note that word-level attack workloads are
// embarrassingly parallel across documents; the training side is the same
// shape: split the dataset into K shards, run one supervised training loop
// per shard on its own worker thread, and periodically average parameters.
// This file is the ROADMAP's "parallel data-shard training" item and the
// first consumer of src/util/sync.h verified end-to-end by the Clang
// thread-safety analysis (all cross-shard state is ADVTEXT_GUARDED_BY the
// coordinator's mutex) and by the TSan CI leg.
//
// Execution model (all invariants tested in
// tests/sharded_supervisor_test.cpp):
//
//   * Each shard is a ResumableTraining driven by its own
//     SupervisorSession — full snapshot / divergence-rollback / resume
//     machinery per shard, with per-shard snapshot paths.
//   * At every epoch boundary all live shards meet at an averaging barrier:
//     the last arriver (or a departing shard that completes the group)
//     averages parameters element-wise over the arrived shards in ascending
//     shard order — a fixed reduction order, so results are bitwise
//     reproducible regardless of thread scheduling.
//   * shards=1 degenerates to the serial TrainSupervisor run bitwise: same
//     loop, same seed, same step sequence, averaging over one shard is
//     skipped.
//   * A shard whose session reports kError (rollbacks exhausted) departs;
//     the survivors keep training and averaging among themselves — the run
//     degrades instead of aborting. Only all shards dying kills the run.
//   * Any stop (StopToken signal or a shard's max_steps budget) *drains*
//     the whole group: no further averaging is released, every shard
//     flushes its own snapshot at its current position — mid-epoch, or
//     "arrived at the barrier, averaging pending" (the pending flag rides
//     in the shard snapshot). Resume replays every shard to the same
//     barrier and the run continues bitwise-identically; see DESIGN.md §8
//     for why stops are barrier-consistent (hard kills are not).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/nn/supervisor.h"
#include "src/nn/text_classifier.h"

namespace advtext {

/// One shard handed to ShardedTrainSupervisor. The loop and the parameter
/// views are borrowed; the params must stay valid for the whole run and
/// have the same tensor layout across shards (same architecture).
struct ShardSpec {
  ResumableTraining* loop = nullptr;
  /// Parameter views averaged at epoch boundaries (typically
  /// TrainableClassifier::params() of the shard's model replica).
  std::vector<ParamRef> params;
  /// Per-shard resilience; give each shard its own snapshot_path (the
  /// trainer uses "<base>.shard<k>"). install_stop_token is ignored here —
  /// the caller installs once, before spawning workers.
  ResilienceConfig resilience;
};

/// Outcome of a sharded run. Per-shard SupervisorReports are indexed by
/// shard; `warnings` aggregates them with "shard k:" tags plus run-level
/// degradation notes.
struct ShardedReport {
  /// kStopped if any shard stopped (run resumable), kError if every shard
  /// died, kSucceeded otherwise — dead shards degrade, they don't abort.
  TerminationReason termination = TerminationReason::kSucceeded;
  std::vector<SupervisorReport> shards;
  /// Shards that exhausted their rollback budget and were dropped.
  std::vector<std::size_t> dead_shards;
  /// Averaging barriers completed per shard (aligned epochs).
  std::vector<std::size_t> shard_barriers;
  /// Shard whose parameters are the run's result: the successful shard
  /// with the most completed barriers (ties: lowest index). After a full
  /// run all shards in the final averaging cohort hold identical params.
  std::size_t result_shard = 0;
  /// Total averaging rounds released.
  std::size_t averaging_rounds = 0;
  std::vector<std::string> warnings;
};

/// Drives K shard loops to completion with epoch-boundary parameter
/// averaging, degradation past dead shards, and drain-on-stop. Spawns its
/// own ThreadPool of K workers; the StopToken is polled by every shard.
class ShardedTrainSupervisor {
 public:
  explicit ShardedTrainSupervisor(std::vector<ShardSpec> shards);

  ShardedReport run();

 private:
  std::vector<ShardSpec> shards_;
};

}  // namespace advtext
