#include "src/nn/lstm.h"

#include "src/util/check.h"

#include <algorithm>
#include <cmath>

#include "src/tensor/ops.h"

namespace advtext {

LstmClassifier::LstmClassifier(const LstmConfig& config,
                               Matrix pretrained_embeddings,
                               bool freeze_embedding)
    : config_(config),
      embedding_(std::move(pretrained_embeddings)),
      wx_(4 * config.hidden, config.embed_dim),
      wx_grad_(4 * config.hidden, config.embed_dim),
      wh_(4 * config.hidden, config.hidden),
      wh_grad_(4 * config.hidden, config.hidden),
      b_(4 * config.hidden, 0.0f),
      b_grad_(4 * config.hidden, 0.0f),
      out_w_(config.num_classes, config.hidden),
      out_w_grad_(config.num_classes, config.hidden),
      out_b_(config.num_classes, 0.0f),
      out_b_grad_(config.num_classes, 0.0f),
      rng_(config.seed) {
  ADVTEXT_CHECK_SHAPE(embedding_.dim() == config_.embed_dim) << "LstmClassifier: embedding dim mismatch";
  embedding_.set_frozen(freeze_embedding);
  const float bx = static_cast<float>(
      std::sqrt(6.0 / static_cast<double>(config.embed_dim + config.hidden)));
  wx_.fill_uniform(rng_, bx);
  const float bh = static_cast<float>(
      std::sqrt(3.0 / static_cast<double>(config.hidden)));
  wh_.fill_uniform(rng_, bh);
  // Standard trick: forget-gate bias starts at 1 so gradients flow early.
  for (std::size_t j = 0; j < config.hidden; ++j) {
    b_[config.hidden + j] = 1.0f;
  }
  const float bo = static_cast<float>(
      std::sqrt(6.0 / static_cast<double>(config.hidden +
                                          config.num_classes)));
  out_w_.fill_uniform(rng_, bo);
}

void LstmClassifier::step(const float* x, Vector& h, Vector& c) const {
  const std::size_t hidden = config_.hidden;
  Vector z(4 * hidden);
  for (std::size_t r = 0; r < 4 * hidden; ++r) {
    z[r] = dot(wx_.row(r), x, config_.embed_dim) +
           dot(wh_.row(r), h.data(), hidden) + b_[r];
  }
  for (std::size_t j = 0; j < hidden; ++j) {
    const float ig = sigmoid(z[j]);
    const float fg = sigmoid(z[hidden + j]);
    const float gg = std::tanh(z[2 * hidden + j]);
    const float og = sigmoid(z[3 * hidden + j]);
    c[j] = fg * c[j] + ig * gg;
    h[j] = og * std::tanh(c[j]);
  }
}

Vector LstmClassifier::proba_from_hidden(const Vector& h) const {
  Vector logits = matvec(out_w_, h);
  for (std::size_t cls = 0; cls < logits.size(); ++cls) {
    logits[cls] += out_b_[cls];
  }
  return softmax(logits);
}

Vector LstmClassifier::forward_traced(const TokenSeq& tokens,
                                      std::vector<StepTrace>* traces,
                                      Matrix* embedded) const {
  ADVTEXT_CHECK_SHAPE(!tokens.empty()) << "LstmClassifier: empty input";
  const std::size_t hidden = config_.hidden;
  Matrix emb = embedding_.lookup(tokens);
  Vector h(hidden, 0.0f);
  Vector c(hidden, 0.0f);
  if (traces != nullptr) traces->resize(tokens.size());
  for (std::size_t t = 0; t < tokens.size(); ++t) {
    const float* x = emb.row(t);
    Vector z(4 * hidden);
    for (std::size_t r = 0; r < 4 * hidden; ++r) {
      z[r] = dot(wx_.row(r), x, config_.embed_dim) +
             dot(wh_.row(r), h.data(), hidden) + b_[r];
    }
    StepTrace trace;
    trace.i.resize(hidden);
    trace.f.resize(hidden);
    trace.g.resize(hidden);
    trace.o.resize(hidden);
    trace.c.resize(hidden);
    trace.tanh_c.resize(hidden);
    trace.h.resize(hidden);
    for (std::size_t j = 0; j < hidden; ++j) {
      trace.i[j] = sigmoid(z[j]);
      trace.f[j] = sigmoid(z[hidden + j]);
      trace.g[j] = std::tanh(z[2 * hidden + j]);
      trace.o[j] = sigmoid(z[3 * hidden + j]);
      trace.c[j] = trace.f[j] * c[j] + trace.i[j] * trace.g[j];
      trace.tanh_c[j] = std::tanh(trace.c[j]);
      trace.h[j] = trace.o[j] * trace.tanh_c[j];
    }
    h = trace.h;
    c = trace.c;
    if (traces != nullptr) (*traces)[t] = std::move(trace);
  }
  if (embedded != nullptr) *embedded = std::move(emb);
  return proba_from_hidden(h);
}

Vector LstmClassifier::predict_proba(const TokenSeq& tokens) const {
  ADVTEXT_CHECK_SHAPE(!tokens.empty()) << "LstmClassifier: empty input";
  const Matrix emb = embedding_.lookup(tokens);
  Vector h(config_.hidden, 0.0f);
  Vector c(config_.hidden, 0.0f);
  for (std::size_t t = 0; t < tokens.size(); ++t) step(emb.row(t), h, c);
  return proba_from_hidden(h);
}

template <typename OnStep>
void LstmClassifier::bptt(const Matrix& embedded,
                          const std::vector<StepTrace>& traces,
                          Vector dh_final, OnStep&& on_step,
                          Matrix* input_grad) const {
  const std::size_t hidden = config_.hidden;
  const std::size_t steps = traces.size();
  Vector dh = std::move(dh_final);
  Vector dc(hidden, 0.0f);
  Vector dz(4 * hidden);
  for (std::size_t t = steps; t-- > 0;) {
    const StepTrace& tr = traces[t];
    const Vector* c_prev = t > 0 ? &traces[t - 1].c : nullptr;
    const Vector* h_prev = t > 0 ? &traces[t - 1].h : nullptr;
    for (std::size_t j = 0; j < hidden; ++j) {
      const float do_ = dh[j] * tr.tanh_c[j];
      const float dct = dc[j] + dh[j] * tr.o[j] * (1.0f - tr.tanh_c[j] *
                                                              tr.tanh_c[j]);
      const float di = dct * tr.g[j];
      const float dg = dct * tr.i[j];
      const float cp = c_prev != nullptr ? (*c_prev)[j] : 0.0f;
      const float df = dct * cp;
      dc[j] = dct * tr.f[j];
      dz[j] = di * tr.i[j] * (1.0f - tr.i[j]);
      dz[hidden + j] = df * tr.f[j] * (1.0f - tr.f[j]);
      dz[2 * hidden + j] = dg * (1.0f - tr.g[j] * tr.g[j]);
      dz[3 * hidden + j] = do_ * tr.o[j] * (1.0f - tr.o[j]);
    }
    on_step(t, dz, h_prev);
    // dh_prev = Wh^T dz; dx_t = Wx^T dz.
    Vector dh_prev(hidden, 0.0f);
    for (std::size_t r = 0; r < 4 * hidden; ++r) {
      const float dzr = dz[r];
      if (dzr == 0.0f) continue;
      const float* whr = wh_.row(r);
      for (std::size_t j = 0; j < hidden; ++j) dh_prev[j] += dzr * whr[j];
    }
    if (input_grad != nullptr) {
      float* gx = input_grad->row(t);
      for (std::size_t r = 0; r < 4 * hidden; ++r) {
        const float dzr = dz[r];
        if (dzr == 0.0f) continue;
        const float* wxr = wx_.row(r);
        for (std::size_t d = 0; d < config_.embed_dim; ++d) {
          gx[d] += dzr * wxr[d];
        }
      }
    }
    dh = std::move(dh_prev);
  }
  (void)embedded;
}

Matrix LstmClassifier::input_gradient(const TokenSeq& tokens,
                                      std::size_t target,
                                      Vector* proba) const {
  ADVTEXT_CHECK_SHAPE(target < config_.num_classes) << "LstmClassifier::input_gradient: target out of range";
  std::vector<StepTrace> traces;
  Matrix embedded;
  const Vector p = forward_traced(tokens, &traces, &embedded);
  if (proba != nullptr) *proba = p;

  Vector dlogits(p.size());
  for (std::size_t cls = 0; cls < p.size(); ++cls) {
    dlogits[cls] = p[target] * ((cls == target ? 1.0f : 0.0f) - p[cls]);
  }
  Vector dh = matvec_transposed(out_w_, dlogits);

  Matrix grad(tokens.size(), config_.embed_dim);
  bptt(embedded, traces, std::move(dh),
       [](std::size_t, const Vector&, const Vector*) {}, &grad);
  return grad;
}

float LstmClassifier::forward_backward(const TokenSeq& tokens,
                                       std::size_t label) {
  ADVTEXT_CHECK_SHAPE(label < config_.num_classes) << "LstmClassifier::forward_backward: label out of range";
  std::vector<StepTrace> traces;
  Matrix embedded;
  forward_traced(tokens, &traces, &embedded);

  Vector h_final = traces.back().h;
  std::vector<float> mask(config_.hidden, 1.0f);
  const float p = config_.train_dropout;
  if (p > 0.0f) {
    const float scale = 1.0f / (1.0f - p);
    for (std::size_t j = 0; j < config_.hidden; ++j) {
      mask[j] = rng_.bernoulli(p) ? 0.0f : scale;
      h_final[j] *= mask[j];
    }
  }
  Vector logits = matvec(out_w_, h_final);
  for (std::size_t cls = 0; cls < logits.size(); ++cls) {
    logits[cls] += out_b_[cls];
  }
  const float loss = cross_entropy(logits, label);
  const Vector dlogits = cross_entropy_grad(logits, label);

  add_outer(out_w_grad_, 1.0f, dlogits, h_final);
  for (std::size_t cls = 0; cls < dlogits.size(); ++cls) {
    out_b_grad_[cls] += dlogits[cls];
  }
  Vector dh = matvec_transposed(out_w_, dlogits);
  for (std::size_t j = 0; j < config_.hidden; ++j) dh[j] *= mask[j];

  const bool train_embedding = !embedding_.frozen();
  Matrix input_grad(tokens.size(), config_.embed_dim);
  bptt(
      embedded, traces, std::move(dh),
      [&](std::size_t t, const Vector& dz, const Vector* h_prev) {
        const float* x = embedded.row(t);
        for (std::size_t r = 0; r < 4 * config_.hidden; ++r) {
          const float dzr = dz[r];
          if (dzr == 0.0f) continue;
          float* wxg = wx_grad_.row(r);
          for (std::size_t d = 0; d < config_.embed_dim; ++d) {
            wxg[d] += dzr * x[d];
          }
          if (h_prev != nullptr) {
            float* whg = wh_grad_.row(r);
            for (std::size_t j = 0; j < config_.hidden; ++j) {
              whg[j] += dzr * (*h_prev)[j];
            }
          }
          b_grad_[r] += dzr;
        }
      },
      train_embedding ? &input_grad : nullptr);
  if (train_embedding) {
    for (std::size_t t = 0; t < tokens.size(); ++t) {
      embedding_.accumulate_grad(tokens[t], input_grad.row(t));
    }
  }
  return loss;
}

std::vector<ParamRef> LstmClassifier::params() {
  std::vector<ParamRef> refs = {
      {wx_.data(), wx_grad_.data(), wx_.size()},
      {wh_.data(), wh_grad_.data(), wh_.size()},
      {b_.data(), b_grad_.data(), b_.size()},
      {out_w_.data(), out_w_grad_.data(), out_w_.size()},
      {out_b_.data(), out_b_grad_.data(), out_b_.size()},
  };
  if (!embedding_.frozen()) {
    refs.push_back({embedding_.mutable_table().data(),
                    embedding_.grad().data(),
                    embedding_.mutable_table().size()});
  }
  return refs;
}

void LstmClassifier::zero_grad() {
  wx_grad_.fill(0.0f);
  wh_grad_.fill(0.0f);
  std::fill(b_grad_.begin(), b_grad_.end(), 0.0f);
  out_w_grad_.fill(0.0f);
  std::fill(out_b_grad_.begin(), out_b_grad_.end(), 0.0f);
  embedding_.zero_grad();
}

// ---- Prefix-cached swap evaluator ------------------------------------------

namespace {

class LstmSwapEvaluatorImpl : public SwapEvaluator {
 public:
  LstmSwapEvaluatorImpl(const LstmClassifier& model, const TokenSeq& base)
      : model_(model) {
    rebase(base);
  }

  void rebase(const TokenSeq& tokens) override {
    ADVTEXT_CHECK_SHAPE(!tokens.empty()) << "LstmSwapEvaluator: empty base";
    base_ = tokens;
    const std::size_t hidden = model_.config().hidden;
    // states_[t] = (h, c) after consuming tokens[0..t-1].
    h_states_.assign(tokens.size() + 1, Vector(hidden, 0.0f));
    c_states_.assign(tokens.size() + 1, Vector(hidden, 0.0f));
    const Matrix emb = model_.embedding().lookup(tokens);
    Vector h(hidden, 0.0f);
    Vector c(hidden, 0.0f);
    for (std::size_t t = 0; t < tokens.size(); ++t) {
      model_.step(emb.row(t), h, c);
      h_states_[t + 1] = h;
      c_states_[t + 1] = c;
    }
  }

  Vector eval_swap(std::size_t pos, WordId candidate) override {
    ++queries_;
    ADVTEXT_CHECK_SHAPE(pos < base_.size()) << "eval_swap: position out of range";
    Vector h = h_states_[pos];
    Vector c = c_states_[pos];
    model_.step(model_.embedding().vector(candidate), h, c);
    for (std::size_t t = pos + 1; t < base_.size(); ++t) {
      model_.step(model_.embedding().vector(base_[t]), h, c);
    }
    return model_.proba_from_hidden(h);
  }

  Vector eval_tokens(const TokenSeq& tokens) override {
    ++queries_;
    if (tokens.size() != base_.size()) {
      return model_.predict_proba(tokens);
    }
    std::size_t first = 0;
    while (first < tokens.size() && tokens[first] == base_[first]) ++first;
    if (first == tokens.size()) {
      return model_.proba_from_hidden(h_states_.back());
    }
    Vector h = h_states_[first];
    Vector c = c_states_[first];
    for (std::size_t t = first; t < tokens.size(); ++t) {
      model_.step(model_.embedding().vector(tokens[t]), h, c);
    }
    return model_.proba_from_hidden(h);
  }

 private:
  const LstmClassifier& model_;
  TokenSeq base_;
  std::vector<Vector> h_states_;
  std::vector<Vector> c_states_;
};

}  // namespace

std::unique_ptr<SwapEvaluator> LstmClassifier::make_swap_evaluator(
    const TokenSeq& base) const {
  return std::make_unique<LstmSwapEvaluatorImpl>(*this, base);
}

}  // namespace advtext
