#include "src/nn/lstm.h"

#include "src/util/check.h"

#include <algorithm>
#include <cmath>

#include "src/tensor/ops.h"

namespace advtext {

LstmClassifier::LstmClassifier(const LstmConfig& config,
                               Matrix pretrained_embeddings,
                               bool freeze_embedding)
    : config_(config),
      embedding_(std::move(pretrained_embeddings)),
      wx_(4 * config.hidden, config.embed_dim),
      wx_grad_(4 * config.hidden, config.embed_dim),
      wh_(4 * config.hidden, config.hidden),
      wh_grad_(4 * config.hidden, config.hidden),
      b_(4 * config.hidden, 0.0f),
      b_grad_(4 * config.hidden, 0.0f),
      out_w_(config.num_classes, config.hidden),
      out_w_grad_(config.num_classes, config.hidden),
      out_b_(config.num_classes, 0.0f),
      out_b_grad_(config.num_classes, 0.0f),
      rng_(config.seed) {
  ADVTEXT_CHECK_SHAPE(embedding_.dim() == config_.embed_dim) << "LstmClassifier: embedding dim mismatch";
  embedding_.set_frozen(freeze_embedding);
  const float bx = static_cast<float>(
      std::sqrt(6.0 / static_cast<double>(config.embed_dim + config.hidden)));
  wx_.fill_uniform(rng_, bx);
  const float bh = static_cast<float>(
      std::sqrt(3.0 / static_cast<double>(config.hidden)));
  wh_.fill_uniform(rng_, bh);
  // Standard trick: forget-gate bias starts at 1 so gradients flow early.
  for (std::size_t j = 0; j < config.hidden; ++j) {
    b_[config.hidden + j] = 1.0f;
  }
  const float bo = static_cast<float>(
      std::sqrt(6.0 / static_cast<double>(config.hidden +
                                          config.num_classes)));
  out_w_.fill_uniform(rng_, bo);
}

void LstmClassifier::step(const float* x, Vector& h, Vector& c) const {
  const std::size_t hidden = config_.hidden;
  Vector z(4 * hidden);
  for (std::size_t r = 0; r < 4 * hidden; ++r) {
    z[r] = dot(wx_.row(r), x, config_.embed_dim) +
           dot(wh_.row(r), h.data(), hidden) + b_[r];
  }
  for (std::size_t j = 0; j < hidden; ++j) {
    const float ig = sigmoid(z[j]);
    const float fg = sigmoid(z[hidden + j]);
    const float gg = tanh_act(z[2 * hidden + j]);
    const float og = sigmoid(z[3 * hidden + j]);
    c[j] = fg * c[j] + ig * gg;
    h[j] = og * tanh_act(c[j]);
  }
}

Vector LstmClassifier::proba_from_hidden(const Vector& h) const {
  Vector logits = matvec(out_w_, h);
  for (std::size_t cls = 0; cls < logits.size(); ++cls) {
    logits[cls] += out_b_[cls];
  }
  return softmax(logits);
}

void LstmClassifier::gate_preact_x(const float* x, std::size_t m,
                                   float* zx) const {
  gemm_nt(x, m, wx_.data(), 4 * config_.hidden, config_.embed_dim, zx);
}

void LstmClassifier::gate_preact_h(const float* h, std::size_t m,
                                   float* zh) const {
  gemm_nt(h, m, wh_.data(), 4 * config_.hidden, config_.hidden, zh);
}

void LstmClassifier::pack_gate_weights(PackedB* wx, PackedB* wh) const {
  gemm_pack_b(wx_.data(), 4 * config_.hidden, config_.embed_dim, *wx);
  gemm_pack_b(wh_.data(), 4 * config_.hidden, config_.hidden, *wh);
}

void LstmClassifier::gate_preact_x(const PackedB& wx, const float* x,
                                   std::size_t m, float* zx) const {
  gemm_nt_packed(x, m, wx, zx);
}

void LstmClassifier::gate_preact_h(const PackedB& wh, const float* h,
                                   std::size_t m, float* zh) const {
  gemm_nt_packed(h, m, wh, zh);
}

void LstmClassifier::step_from_preact(const float* zx, const float* zh,
                                      float* h, float* c) const {
  // Split into contiguous elementwise passes so the gate nonlinearities
  // vectorize: one fused pre-activation pass, one sigmoid/tanh pass per
  // gate block, then the state update. Expression order per element is
  // unchanged — (zx + zh) + b, then the activation — so this is
  // bit-identical to the fused per-unit loop it replaces.
  const std::size_t hidden = config_.hidden;
  constexpr std::size_t kMaxHidden = 256;
  ADVTEXT_CHECK_SHAPE(hidden <= kMaxHidden)
      << "step_from_preact: hidden exceeds scratch bound";
  float z[4 * kMaxHidden];
  float tc[kMaxHidden];
  for (std::size_t r = 0; r < 4 * hidden; ++r) {
    z[r] = zx[r] + zh[r] + b_[r];
  }
  // Gate blocks: [i | f | g | o] — sigmoid on i/f, tanh on g, sigmoid on o.
  for (std::size_t r = 0; r < 2 * hidden; ++r) z[r] = sigmoid(z[r]);
  for (std::size_t r = 2 * hidden; r < 3 * hidden; ++r) z[r] = tanh_act(z[r]);
  for (std::size_t r = 3 * hidden; r < 4 * hidden; ++r) z[r] = sigmoid(z[r]);
  for (std::size_t j = 0; j < hidden; ++j) {
    c[j] = z[hidden + j] * c[j] + z[j] * z[2 * hidden + j];
  }
  for (std::size_t j = 0; j < hidden; ++j) tc[j] = tanh_act(c[j]);
  for (std::size_t j = 0; j < hidden; ++j) h[j] = z[3 * hidden + j] * tc[j];
}

void LstmClassifier::proba_from_hidden_batch(const float* h, std::size_t m,
                                             float* proba) const {
  const std::size_t classes = config_.num_classes;
  gemm_nt(h, m, out_w_.data(), classes, config_.hidden, proba);
  for (std::size_t i = 0; i < m; ++i) {
    float* row = proba + i * classes;
    for (std::size_t cls = 0; cls < classes; ++cls) row[cls] += out_b_[cls];
    softmax_inplace(row, classes);
  }
}

Vector LstmClassifier::forward_traced(const TokenSeq& tokens,
                                      std::vector<StepTrace>* traces,
                                      Matrix* embedded) const {
  ADVTEXT_CHECK_SHAPE(!tokens.empty()) << "LstmClassifier: empty input";
  const std::size_t hidden = config_.hidden;
  Matrix emb = embedding_.lookup(tokens);
  Vector h(hidden, 0.0f);
  Vector c(hidden, 0.0f);
  if (traces != nullptr) traces->resize(tokens.size());
  for (std::size_t t = 0; t < tokens.size(); ++t) {
    const float* x = emb.row(t);
    Vector z(4 * hidden);
    for (std::size_t r = 0; r < 4 * hidden; ++r) {
      z[r] = dot(wx_.row(r), x, config_.embed_dim) +
             dot(wh_.row(r), h.data(), hidden) + b_[r];
    }
    StepTrace trace;
    trace.i.resize(hidden);
    trace.f.resize(hidden);
    trace.g.resize(hidden);
    trace.o.resize(hidden);
    trace.c.resize(hidden);
    trace.tanh_c.resize(hidden);
    trace.h.resize(hidden);
    for (std::size_t j = 0; j < hidden; ++j) {
      trace.i[j] = sigmoid(z[j]);
      trace.f[j] = sigmoid(z[hidden + j]);
      trace.g[j] = tanh_act(z[2 * hidden + j]);
      trace.o[j] = sigmoid(z[3 * hidden + j]);
      trace.c[j] = trace.f[j] * c[j] + trace.i[j] * trace.g[j];
      trace.tanh_c[j] = tanh_act(trace.c[j]);
      trace.h[j] = trace.o[j] * trace.tanh_c[j];
    }
    h = trace.h;
    c = trace.c;
    if (traces != nullptr) (*traces)[t] = std::move(trace);
  }
  if (embedded != nullptr) *embedded = std::move(emb);
  return proba_from_hidden(h);
}

Vector LstmClassifier::predict_proba(const TokenSeq& tokens) const {
  ADVTEXT_CHECK_SHAPE(!tokens.empty()) << "LstmClassifier: empty input";
  const Matrix emb = embedding_.lookup(tokens);
  Vector h(config_.hidden, 0.0f);
  Vector c(config_.hidden, 0.0f);
  for (std::size_t t = 0; t < tokens.size(); ++t) step(emb.row(t), h, c);
  return proba_from_hidden(h);
}

Matrix LstmClassifier::predict_proba_batch(
    const std::vector<TokenSeq>& docs) const {
  const std::size_t count = docs.size();
  Matrix out(count, config_.num_classes);
  if (count == 0) return out;
  for (const TokenSeq& doc : docs) {
    ADVTEXT_CHECK_SHAPE(!doc.empty()) << "LstmClassifier: empty input";
  }
  const std::size_t hidden = config_.hidden;
  const std::size_t dim = config_.embed_dim;
  // Longest documents first: the active set is then always a prefix of the
  // sort order and shrinks as shorter documents finish.
  std::vector<std::size_t> order(count);
  for (std::size_t i = 0; i < count; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return docs[a].size() > docs[b].size();
                   });
  Matrix h(count, hidden);  // zero-initialized == the scalar initial state
  Matrix c(count, hidden);
  Matrix x(count, dim);
  Matrix zx(count, 4 * hidden);
  Matrix zh(count, 4 * hidden);
  PackedB wx_packed, wh_packed;
  pack_gate_weights(&wx_packed, &wh_packed);
  const std::size_t maxlen = docs[order[0]].size();
  std::size_t active = count;
  for (std::size_t t = 0; t < maxlen; ++t) {
    while (active > 0 && docs[order[active - 1]].size() <= t) --active;
    for (std::size_t j = 0; j < active; ++j) {
      const float* xt = embedding_.vector(docs[order[j]][t]);
      std::copy(xt, xt + dim, x.row(j));
    }
    gate_preact_h(wh_packed, h.data(), active, zh.data());
    gate_preact_x(wx_packed, x.data(), active, zx.data());
    for (std::size_t j = 0; j < active; ++j) {
      step_from_preact(zx.row(j), zh.row(j), h.row(j), c.row(j));
    }
  }
  Matrix proba(count, config_.num_classes);
  proba_from_hidden_batch(h.data(), count, proba.data());
  for (std::size_t j = 0; j < count; ++j) {
    std::copy(proba.row(j), proba.row(j) + config_.num_classes,
              out.row(order[j]));
  }
  return out;
}

template <typename OnStep>
void LstmClassifier::bptt(const Matrix& embedded,
                          const std::vector<StepTrace>& traces,
                          Vector dh_final, OnStep&& on_step,
                          Matrix* input_grad) const {
  const std::size_t hidden = config_.hidden;
  const std::size_t steps = traces.size();
  Vector dh = std::move(dh_final);
  Vector dc(hidden, 0.0f);
  Vector dz(4 * hidden);
  for (std::size_t t = steps; t-- > 0;) {
    const StepTrace& tr = traces[t];
    const Vector* c_prev = t > 0 ? &traces[t - 1].c : nullptr;
    const Vector* h_prev = t > 0 ? &traces[t - 1].h : nullptr;
    for (std::size_t j = 0; j < hidden; ++j) {
      const float do_ = dh[j] * tr.tanh_c[j];
      const float dct = dc[j] + dh[j] * tr.o[j] * (1.0f - tr.tanh_c[j] *
                                                              tr.tanh_c[j]);
      const float di = dct * tr.g[j];
      const float dg = dct * tr.i[j];
      const float cp = c_prev != nullptr ? (*c_prev)[j] : 0.0f;
      const float df = dct * cp;
      dc[j] = dct * tr.f[j];
      dz[j] = di * tr.i[j] * (1.0f - tr.i[j]);
      dz[hidden + j] = df * tr.f[j] * (1.0f - tr.f[j]);
      dz[2 * hidden + j] = dg * (1.0f - tr.g[j] * tr.g[j]);
      dz[3 * hidden + j] = do_ * tr.o[j] * (1.0f - tr.o[j]);
    }
    on_step(t, dz, h_prev);
    // dh_prev = Wh^T dz; dx_t = Wx^T dz.
    Vector dh_prev(hidden, 0.0f);
    for (std::size_t r = 0; r < 4 * hidden; ++r) {
      const float dzr = dz[r];
      if (dzr == 0.0f) continue;
      const float* whr = wh_.row(r);
      for (std::size_t j = 0; j < hidden; ++j) dh_prev[j] += dzr * whr[j];
    }
    if (input_grad != nullptr) {
      float* gx = input_grad->row(t);
      for (std::size_t r = 0; r < 4 * hidden; ++r) {
        const float dzr = dz[r];
        if (dzr == 0.0f) continue;
        const float* wxr = wx_.row(r);
        for (std::size_t d = 0; d < config_.embed_dim; ++d) {
          gx[d] += dzr * wxr[d];
        }
      }
    }
    dh = std::move(dh_prev);
  }
  (void)embedded;
}

Matrix LstmClassifier::input_gradient(const TokenSeq& tokens,
                                      std::size_t target,
                                      Vector* proba) const {
  ADVTEXT_CHECK_SHAPE(target < config_.num_classes) << "LstmClassifier::input_gradient: target out of range";
  std::vector<StepTrace> traces;
  Matrix embedded;
  const Vector p = forward_traced(tokens, &traces, &embedded);
  if (proba != nullptr) *proba = p;

  Vector dlogits(p.size());
  for (std::size_t cls = 0; cls < p.size(); ++cls) {
    dlogits[cls] = p[target] * ((cls == target ? 1.0f : 0.0f) - p[cls]);
  }
  Vector dh = matvec_transposed(out_w_, dlogits);

  Matrix grad(tokens.size(), config_.embed_dim);
  bptt(embedded, traces, std::move(dh),
       [](std::size_t, const Vector&, const Vector*) {}, &grad);
  return grad;
}

float LstmClassifier::forward_backward(const TokenSeq& tokens,
                                       std::size_t label) {
  ADVTEXT_CHECK_SHAPE(label < config_.num_classes) << "LstmClassifier::forward_backward: label out of range";
  std::vector<StepTrace> traces;
  Matrix embedded;
  forward_traced(tokens, &traces, &embedded);

  Vector h_final = traces.back().h;
  std::vector<float> mask(config_.hidden, 1.0f);
  const float p = config_.train_dropout;
  if (p > 0.0f) {
    const float scale = 1.0f / (1.0f - p);
    for (std::size_t j = 0; j < config_.hidden; ++j) {
      mask[j] = rng_.bernoulli(p) ? 0.0f : scale;
      h_final[j] *= mask[j];
    }
  }
  Vector logits = matvec(out_w_, h_final);
  for (std::size_t cls = 0; cls < logits.size(); ++cls) {
    logits[cls] += out_b_[cls];
  }
  const float loss = cross_entropy(logits, label);
  const Vector dlogits = cross_entropy_grad(logits, label);

  add_outer(out_w_grad_, 1.0f, dlogits, h_final);
  for (std::size_t cls = 0; cls < dlogits.size(); ++cls) {
    out_b_grad_[cls] += dlogits[cls];
  }
  Vector dh = matvec_transposed(out_w_, dlogits);
  for (std::size_t j = 0; j < config_.hidden; ++j) dh[j] *= mask[j];

  const bool train_embedding = !embedding_.frozen();
  Matrix input_grad(tokens.size(), config_.embed_dim);
  bptt(
      embedded, traces, std::move(dh),
      [&](std::size_t t, const Vector& dz, const Vector* h_prev) {
        const float* x = embedded.row(t);
        for (std::size_t r = 0; r < 4 * config_.hidden; ++r) {
          const float dzr = dz[r];
          if (dzr == 0.0f) continue;
          float* wxg = wx_grad_.row(r);
          for (std::size_t d = 0; d < config_.embed_dim; ++d) {
            wxg[d] += dzr * x[d];
          }
          if (h_prev != nullptr) {
            float* whg = wh_grad_.row(r);
            for (std::size_t j = 0; j < config_.hidden; ++j) {
              whg[j] += dzr * (*h_prev)[j];
            }
          }
          b_grad_[r] += dzr;
        }
      },
      train_embedding ? &input_grad : nullptr);
  if (train_embedding) {
    for (std::size_t t = 0; t < tokens.size(); ++t) {
      embedding_.accumulate_grad(tokens[t], input_grad.row(t));
    }
  }
  return loss;
}

std::vector<ParamRef> LstmClassifier::params() {
  std::vector<ParamRef> refs = {
      {wx_.data(), wx_grad_.data(), wx_.size()},
      {wh_.data(), wh_grad_.data(), wh_.size()},
      {b_.data(), b_grad_.data(), b_.size()},
      {out_w_.data(), out_w_grad_.data(), out_w_.size()},
      {out_b_.data(), out_b_grad_.data(), out_b_.size()},
  };
  if (!embedding_.frozen()) {
    refs.push_back({embedding_.mutable_table().data(),
                    embedding_.grad().data(),
                    embedding_.mutable_table().size()});
  }
  return refs;
}

void LstmClassifier::zero_grad() {
  wx_grad_.fill(0.0f);
  wh_grad_.fill(0.0f);
  std::fill(b_grad_.begin(), b_grad_.end(), 0.0f);
  out_w_grad_.fill(0.0f);
  std::fill(out_b_grad_.begin(), out_b_grad_.end(), 0.0f);
  embedding_.zero_grad();
}

// ---- Prefix-cached swap evaluator ------------------------------------------

namespace {

class LstmSwapEvaluatorImpl : public SwapEvaluator {
 public:
  LstmSwapEvaluatorImpl(const LstmClassifier& model, const TokenSeq& base)
      : model_(model) {
    rebase(base);
  }

 protected:
  std::size_t do_num_classes() const override { return model_.num_classes(); }

  void do_rebase(const TokenSeq& tokens) override {
    ADVTEXT_CHECK_SHAPE(!tokens.empty()) << "LstmSwapEvaluator: empty base";
    // Weights are frozen for the lifetime of an attack; pack them once so
    // every per-timestep gemm of the batched paths skips the tile repack.
    model_.pack_gate_weights(&wx_packed_, &wh_packed_);
    const std::size_t hidden = model_.config().hidden;
    // states_[t] = (h, c) after consuming tokens[0..t-1].
    h_states_.assign(tokens.size() + 1, Vector(hidden, 0.0f));
    c_states_.assign(tokens.size() + 1, Vector(hidden, 0.0f));
    const Matrix emb = model_.embedding().lookup(tokens);
    Vector h(hidden, 0.0f);
    Vector c(hidden, 0.0f);
    for (std::size_t t = 0; t < tokens.size(); ++t) {
      model_.step(emb.row(t), h, c);
      h_states_[t + 1] = h;
      c_states_[t + 1] = c;
    }
  }

  Vector do_eval_swap(std::size_t pos, WordId candidate) override {
    ADVTEXT_CHECK_SHAPE(pos < base_tokens_.size())
        << "eval_swap: position out of range";
    Vector h = h_states_[pos];
    Vector c = c_states_[pos];
    model_.step(model_.embedding().vector(candidate), h, c);
    for (std::size_t t = pos + 1; t < base_tokens_.size(); ++t) {
      model_.step(model_.embedding().vector(base_tokens_[t]), h, c);
    }
    return model_.proba_from_hidden(h);
  }

  Vector do_eval_tokens(const TokenSeq& tokens) override {
    if (tokens.size() != base_tokens_.size()) {
      return model_.predict_proba(tokens);
    }
    std::size_t first = 0;
    while (first < tokens.size() && tokens[first] == base_tokens_[first]) {
      ++first;
    }
    if (first == tokens.size()) {
      return model_.proba_from_hidden(h_states_.back());
    }
    Vector h = h_states_[first];
    Vector c = c_states_[first];
    for (std::size_t t = first; t < tokens.size(); ++t) {
      model_.step(model_.embedding().vector(tokens[t]), h, c);
    }
    return model_.proba_from_hidden(h);
  }

  // Batched candidate scoring. Rows are sorted by swap position so the
  // active set is a growing prefix: at each timestep one gemm produces
  // every active row's recurrent pre-activation, and rows past their swap
  // all consume the same base token, so its input pre-activation is
  // computed once and shared. This removes the dominant 4H*D-per-row term
  // of the suffix recurrence — the scalar path pays it every step.
  void do_eval_swap_batch(const SwapCandidate* candidates,
                          const std::size_t* rows, std::size_t count,
                          Matrix& out) override {
    const std::size_t hidden = model_.config().hidden;
    const std::size_t dim = model_.config().embed_dim;
    const std::size_t n = base_tokens_.size();
    order_.resize(count);
    for (std::size_t i = 0; i < count; ++i) order_[i] = i;
    std::stable_sort(order_.begin(), order_.end(),
                     [&](std::size_t a, std::size_t b) {
                       return candidates[a].pos < candidates[b].pos;
                     });
    ensure_scratch(count, hidden, dim);
    std::size_t active = 0;
    for (std::size_t t = candidates[order_[0]].pos; t < n; ++t) {
      // Activate rows whose swap is at t from the cached prefix state.
      std::size_t newly = 0;
      while (active + newly < count &&
             candidates[order_[active + newly]].pos == t) {
        const std::size_t slot = active + newly;
        std::copy(h_states_[t].begin(), h_states_[t].end(), h_.row(slot));
        std::copy(c_states_[t].begin(), c_states_[t].end(), c_.row(slot));
        const float* xc =
            model_.embedding().vector(candidates[order_[slot]].word);
        std::copy(xc, xc + dim, x_.row(newly));
        ++newly;
      }
      const std::size_t prev_active = active;
      active += newly;
      model_.gate_preact_h(wh_packed_, h_.data(), active, zh_.data());
      if (newly > 0) {
        model_.gate_preact_x(wx_packed_, x_.data(), newly, zx_.data());
      }
      if (prev_active > 0) {
        model_.gate_preact_x(wx_packed_,
                             model_.embedding().vector(base_tokens_[t]), 1,
                             zx_base_.data());
      }
      for (std::size_t j = 0; j < active; ++j) {
        const float* zx = j < prev_active ? zx_base_.data()
                                          : zx_.row(j - prev_active);
        model_.step_from_preact(zx, zh_.row(j), h_.row(j), c_.row(j));
      }
    }
    finish_rows(rows, count, out);
  }

  void do_eval_tokens_batch(const TokenSeq* const* docs,
                            const std::size_t* rows, std::size_t count,
                            Matrix& out) override {
    const std::size_t hidden = model_.config().hidden;
    const std::size_t dim = model_.config().embed_dim;
    const std::size_t n = base_tokens_.size();
    const std::size_t classes = model_.num_classes();
    // Rows the prefix cache cannot help ride the scalar path unchanged.
    batch_rows_.clear();
    first_diff_.clear();
    for (std::size_t m = 0; m < count; ++m) {
      const TokenSeq& doc = *docs[m];
      if (doc.size() != n) {
        const Vector proba = model_.predict_proba(doc);
        std::copy(proba.begin(), proba.end(), out.row(rows[m]));
        continue;
      }
      std::size_t first = 0;
      while (first < n && doc[first] == base_tokens_[first]) ++first;
      if (first == n) {
        const Vector proba = model_.proba_from_hidden(h_states_.back());
        std::copy(proba.begin(), proba.end(), out.row(rows[m]));
        continue;
      }
      batch_rows_.push_back(m);
      first_diff_.push_back(first);
    }
    const std::size_t bcount = batch_rows_.size();
    if (bcount == 0) return;
    order_.resize(bcount);
    for (std::size_t i = 0; i < bcount; ++i) order_[i] = i;
    std::stable_sort(order_.begin(), order_.end(),
                     [&](std::size_t a, std::size_t b) {
                       return first_diff_[a] < first_diff_[b];
                     });
    ensure_scratch(bcount, hidden, dim);
    zx_slot_.resize(bcount);
    std::size_t active = 0;
    for (std::size_t t = first_diff_[order_[0]]; t < n; ++t) {
      while (active < bcount && first_diff_[order_[active]] == t) {
        std::copy(h_states_[t].begin(), h_states_[t].end(), h_.row(active));
        std::copy(c_states_[t].begin(), c_states_[t].end(), c_.row(active));
        ++active;
      }
      // Each active row consumes its own token; rows matching the base
      // token at t share one input pre-activation.
      std::size_t own = 0;
      bool any_shared = false;
      for (std::size_t j = 0; j < active; ++j) {
        const WordId w = (*docs[batch_rows_[order_[j]]])[t];
        if (w == base_tokens_[t]) {
          zx_slot_[j] = bcount;  // sentinel: shared
          any_shared = true;
        } else {
          const float* xt = model_.embedding().vector(w);
          std::copy(xt, xt + dim, x_.row(own));
          zx_slot_[j] = own++;
        }
      }
      model_.gate_preact_h(wh_packed_, h_.data(), active, zh_.data());
      if (own > 0) model_.gate_preact_x(wx_packed_, x_.data(), own, zx_.data());
      if (any_shared) {
        model_.gate_preact_x(wx_packed_,
                             model_.embedding().vector(base_tokens_[t]), 1,
                             zx_base_.data());
      }
      for (std::size_t j = 0; j < active; ++j) {
        const float* zx = zx_slot_[j] == bcount ? zx_base_.data()
                                                : zx_.row(zx_slot_[j]);
        model_.step_from_preact(zx, zh_.row(j), h_.row(j), c_.row(j));
      }
    }
    proba_.resize(bcount * classes);
    model_.proba_from_hidden_batch(h_.data(), bcount, proba_.data());
    for (std::size_t j = 0; j < bcount; ++j) {
      const float* src = proba_.data() + j * classes;
      std::copy(src, src + classes, out.row(rows[batch_rows_[order_[j]]]));
    }
  }

 private:
  void ensure_scratch(std::size_t count, std::size_t hidden,
                      std::size_t dim) {
    if (h_.rows() < count || h_.cols() != hidden) {
      h_ = Matrix(count, hidden);
      c_ = Matrix(count, hidden);
      x_ = Matrix(count, dim);
      zx_ = Matrix(count, 4 * hidden);
      zh_ = Matrix(count, 4 * hidden);
    }
    zx_base_.resize(4 * hidden);
  }

  void finish_rows(const std::size_t* rows, std::size_t count, Matrix& out) {
    const std::size_t classes = model_.num_classes();
    proba_.resize(count * classes);
    model_.proba_from_hidden_batch(h_.data(), count, proba_.data());
    for (std::size_t j = 0; j < count; ++j) {
      const float* src = proba_.data() + j * classes;
      std::copy(src, src + classes, out.row(rows[order_[j]]));
    }
  }

  const LstmClassifier& model_;
  std::vector<Vector> h_states_;
  std::vector<Vector> c_states_;
  PackedB wx_packed_, wh_packed_;

  // Batch scratch, reused across rounds.
  std::vector<std::size_t> order_;
  std::vector<std::size_t> batch_rows_;
  std::vector<std::size_t> first_diff_;
  std::vector<std::size_t> zx_slot_;
  Matrix h_, c_, x_, zx_, zh_;
  Vector zx_base_;
  Vector proba_;
};

}  // namespace

std::unique_ptr<SwapEvaluator> LstmClassifier::make_swap_evaluator(
    const TokenSeq& base) const {
  return std::make_unique<LstmSwapEvaluatorImpl>(*this, base);
}

}  // namespace advtext
