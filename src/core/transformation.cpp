#include "src/core/transformation.h"

#include <stdexcept>

namespace advtext {

std::vector<std::size_t> WordCandidates::attackable_positions() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < per_position.size(); ++i) {
    if (!per_position[i].empty()) out.push_back(i);
  }
  return out;
}

std::size_t WordCandidates::total_candidates() const {
  std::size_t total = 0;
  for (const auto& list : per_position) total += list.size();
  return total;
}

std::size_t TransformationIndex::support_size() const {
  std::size_t count = 0;
  for (int v : l) {
    if (v != 0) ++count;
  }
  return count;
}

std::vector<std::size_t> TransformationIndex::support() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < l.size(); ++i) {
    if (l[i] != 0) out.push_back(i);
  }
  return out;
}

TokenSeq TransformationIndex::apply(const TokenSeq& original,
                                    const WordCandidates& candidates) const {
  if (l.size() != original.size() ||
      candidates.per_position.size() != original.size()) {
    throw std::invalid_argument("TransformationIndex::apply: size mismatch");
  }
  TokenSeq out = original;
  for (std::size_t i = 0; i < l.size(); ++i) {
    if (l[i] == 0) continue;
    const auto& list = candidates.per_position[i];
    const std::size_t j = static_cast<std::size_t>(l[i]) - 1;
    if (l[i] < 0 || j >= list.size()) {
      throw std::out_of_range("TransformationIndex::apply: bad index");
    }
    out[i] = list[j];
  }
  return out;
}

std::size_t count_changes(const TokenSeq& original, const TokenSeq& modified) {
  if (original.size() != modified.size()) {
    throw std::invalid_argument("count_changes: size mismatch");
  }
  std::size_t count = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    if (original[i] != modified[i]) ++count;
  }
  return count;
}

}  // namespace advtext
