// Shared configuration and result types for the attack algorithms.
#pragma once

#include <cstddef>
#include <vector>

#include "src/text/corpus.h"
#include "src/util/robust.h"

namespace advtext {

/// Rows per eval_swap_batch / eval_tokens_batch call in the attack loops.
/// Bounds how much work happens between deadline polls (the shell checks
/// per row in phase A, but phase B computes a whole chunk), keeping the
/// watchdog and chaos-campaign latency guarantees intact.
inline constexpr std::size_t kScoreChunkRows = 64;

/// Result of a word-level attack on a flat token sequence. Attacks always
/// return the best-so-far perturbation: when a deadline or query budget
/// cuts the search short, `termination` says so and `adv_tokens` holds the
/// last committed (never partially applied) state.
struct WordAttackResult {
  bool success = false;            ///< target probability reached threshold
  TerminationReason termination = TerminationReason::kExhaustedCandidates;
  double final_target_proba = 0.0;
  std::size_t words_changed = 0;   ///< positions differing from original
  std::size_t queries = 0;         ///< classifier forward evaluations
  std::size_t cache_hits = 0;      ///< queries served by the query cache
  std::size_t cache_misses = 0;    ///< queries actually computed
  std::size_t budget_charged = 0;  ///< queries charged to the QueryBudget
  std::size_t gradient_calls = 0;  ///< input-gradient computations
  std::size_t iterations = 0;
  double seconds = 0.0;
  TokenSeq adv_tokens;
};

/// Result of the sentence-level greedy attack (Alg. 2).
struct SentenceAttackResult {
  bool success = false;
  TerminationReason termination = TerminationReason::kExhaustedCandidates;
  double final_target_proba = 0.0;
  std::size_t sentences_changed = 0;
  std::size_t queries = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t budget_charged = 0;
  double seconds = 0.0;
  Document adv_doc;
};

/// Result of the joint attack (Alg. 1). `termination` aggregates both
/// phases by severity (worse_of), so kSucceeded means the whole pipeline
/// ran inside its limits.
struct JointAttackResult {
  bool success = false;
  TerminationReason termination = TerminationReason::kExhaustedCandidates;
  double final_target_proba = 0.0;
  std::size_t sentences_changed = 0;
  std::size_t words_changed = 0;
  std::size_t queries = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t budget_charged = 0;
  double seconds = 0.0;
  Document adv_doc;
};

}  // namespace advtext
