// Transformation indexing for discrete attacks (paper Section 3).
//
// An input x = [x_1 ... x_n] has, per position i, a candidate replacement
// list W_i of at most k-1 alternatives. A transformation T_l is indexed by
// l ∈ {0, 1, ..., k-1}^n where l_i = 0 keeps the original word and l_i = j
// substitutes the j-th candidate. The attack budget constrains the support
// ||l||_0 <= m (Problem 1).
#pragma once

#include <cstddef>
#include <vector>

#include "src/text/corpus.h"

namespace advtext {

/// Per-position replacement candidates. per_position[i] lists the allowed
/// substitutes for position i (original excluded); an empty list means the
/// position cannot be attacked.
struct WordCandidates {
  std::vector<std::vector<WordId>> per_position;

  std::size_t num_positions() const { return per_position.size(); }

  /// Positions with at least one candidate.
  std::vector<std::size_t> attackable_positions() const;

  /// Total candidate count over all positions.
  std::size_t total_candidates() const;
};

/// A transformation index l (paper Figure 2).
struct TransformationIndex {
  /// l[i] = 0 keeps x_i; l[i] = j (1-based) picks per_position[i][j-1].
  std::vector<int> l;

  explicit TransformationIndex(std::size_t n) : l(n, 0) {}

  /// ||l||_0: number of replaced positions.
  std::size_t support_size() const;

  /// Positions with l[i] != 0.
  std::vector<std::size_t> support() const;

  /// Applies T_l to the original sequence. Throws if any index is out of
  /// the candidate range.
  TokenSeq apply(const TokenSeq& original,
                 const WordCandidates& candidates) const;
};

/// Number of positions differing from the original (the budget metric used
/// throughout Section 6: "number of words paraphrased").
std::size_t count_changes(const TokenSeq& original, const TokenSeq& modified);

}  // namespace advtext
