// Gradient baseline attack (paper Problem 2, the method of Gong et al.
// [18]).
//
// Two modes:
//   * kNearestNeighborStep (default, faithful to [18]): take a gradient
//     step in embedding space, v'_i = v_i + η ∇_i/||∇_i||, and replace the
//     word with the candidate whose embedding is *nearest to v' by
//     distance*. Nearest-by-distance is biased toward candidates close to
//     the original word (small, weak moves) — this is precisely why the
//     method is fast but has a poor success rate in the paper's Table 3.
//   * kModularRelaxation: solve Problem 2 exactly. Proposition 2 shows the
//     linearized objective is modular — per-position gains
//     w_i = max_t (V(x_i^{(t)}) - V(x_i)) · ∇_i C_y(v) — so the optimum
//     takes the m largest positive gains. A strictly stronger variant;
//     exact for linear victims (extension tests).
#pragma once

#include "src/core/attack_types.h"
#include "src/core/transformation.h"
#include "src/nn/text_classifier.h"

namespace advtext {

enum class GradientAttackMode {
  kNearestNeighborStep,  ///< [18]: gradient step + nearest-neighbour snap
  kModularRelaxation,    ///< exact Problem 2 solve (Proposition 2)
};

struct GradientAttackConfig {
  double max_replace_fraction = 0.2;  ///< λw: budget m = ceil(λw * n)
  double success_threshold = 0.7;     ///< τ
  GradientAttackMode mode = GradientAttackMode::kNearestNeighborStep;
  /// Step length η for kNearestNeighborStep, in embedding units (synonym
  /// clusters in the synthetic tasks have radius ~0.2-0.6).
  double step_size = 0.5;
  /// Optional refinement rounds: re-linearize at the perturbed point and
  /// solve again ([18] iterates; 1 = single-shot solve).
  std::size_t rounds = 1;
};

WordAttackResult gradient_attack(const TextClassifier& model,
                                 const TokenSeq& tokens,
                                 const WordCandidates& candidates,
                                 std::size_t target,
                                 const GradientAttackConfig& config = {},
                                 const AttackControl& control = {});

}  // namespace advtext
