// The attack set function f(S) of Problem 1:
//
//   f(S) = max_{supp(l) ⊆ S} C_y(V(T_l(x)))
//
// realized as a SetFunction over the attackable positions of a document, so
// the submodular toolkit (greedy/lazy-greedy maximizers and the Definition 1
// property checkers) applies directly. This is the object the paper's
// Theorems 1 and 2 make claims about; the property tests instantiate it on
// SimpleWCnn / ScalarRnn scorers.
//
// The inner maximization over candidate assignments is itself combinatorial;
// two modes are provided:
//   * kExhaustive — exact product enumeration over (|W_i|+1) options per
//     selected position. Used by the theory tests (small k, small |S|).
//   * kCoordinateAscent — rounds of per-position best-response until a fixed
//     point; exact when positions interact monotonically, cheap otherwise.
#pragma once

#include <functional>

#include "src/core/transformation.h"
#include "src/optim/submodular.h"

namespace advtext {

/// Scores a full token sequence; higher = better for the attacker
/// (typically lambda wrapping C_y, or a SimpleWCnn / ScalarRnn score).
using SequenceScorer = std::function<double(const TokenSeq&)>;

class AttackSetFunction : public SetFunction {
 public:
  enum class InnerMax { kExhaustive, kCoordinateAscent };

  /// Ground-set elements are indices into candidates.attackable_positions().
  AttackSetFunction(SequenceScorer scorer, TokenSeq original,
                    WordCandidates candidates,
                    InnerMax mode = InnerMax::kExhaustive,
                    std::size_t exhaustive_limit = 200000);

  std::size_t ground_set_size() const override {
    return attackable_.size();
  }

  /// Maps a ground-set element to its document position.
  std::size_t position_of(std::size_t element) const {
    return attackable_.at(element);
  }

  /// Best transformation found for the given element set (recomputed).
  TokenSeq best_transformation(const std::vector<std::size_t>& set) const;

 protected:
  double value_impl(const std::vector<std::size_t>& set) const override;

 private:
  double exhaustive_max(const std::vector<std::size_t>& positions,
                        TokenSeq* best) const;
  double coordinate_ascent_max(const std::vector<std::size_t>& positions,
                               TokenSeq* best) const;

  SequenceScorer scorer_;
  TokenSeq original_;
  WordCandidates candidates_;
  std::vector<std::size_t> attackable_;
  InnerMax mode_;
  std::size_t exhaustive_limit_;
};

}  // namespace advtext
