// Greedy Sentence Paraphrasing — the paper's Algorithm 2.
//
// Sentence-level attacks use objective values only: sentence paraphrases
// usually change the token count, so a pre-paraphrase gradient would not
// even index the right positions (paper §5.2). Each iteration evaluates
// every (sentence, paraphrase-candidate) whole-document swap from the
// current document and commits the best one, until the target probability
// clears τ or λs · l sentences have been paraphrased.
#pragma once

#include <vector>

#include "src/core/attack_types.h"
#include "src/nn/text_classifier.h"

namespace advtext {

struct SentenceAttackConfig {
  double max_paraphrase_fraction = 0.2;  ///< λs
  double success_threshold = 0.7;        ///< τ
  double min_gain = 1e-6;
};

/// `neighbor_sets[j]` lists the paraphrase candidates for sentence j
/// (Alg. 1 step 3, e.g. from SentenceParaphraser::neighbor_sets).
SentenceAttackResult greedy_sentence_attack(
    const TextClassifier& model, const Document& doc,
    const std::vector<std::vector<Sentence>>& neighbor_sets,
    std::size_t target, const SentenceAttackConfig& config = {},
    const AttackControl& control = {});

}  // namespace advtext
