#include "src/core/sentence_attack.h"

#include <cmath>
#include <stdexcept>

#include "src/util/stopwatch.h"

namespace advtext {

SentenceAttackResult greedy_sentence_attack(
    const TextClassifier& model, const Document& doc,
    const std::vector<std::vector<Sentence>>& neighbor_sets,
    std::size_t target, const SentenceAttackConfig& config,
    const AttackControl& control) {
  if (neighbor_sets.size() != doc.sentences.size()) {
    throw std::invalid_argument(
        "greedy_sentence_attack: neighbor set count mismatch");
  }
  FaultInjector::instance().maybe_fault("attack.sentence");
  Stopwatch watch;
  SentenceAttackResult result;
  result.adv_doc = doc;
  const std::size_t l = doc.sentences.size();
  const std::size_t budget = static_cast<std::size_t>(
      std::ceil(config.max_paraphrase_fraction * static_cast<double>(l)));

  auto evaluator = model.make_swap_evaluator(result.adv_doc.flatten());
  double current = evaluator->eval_tokens(result.adv_doc.flatten())[target];
  std::vector<bool> paraphrased(l, false);

  std::size_t charged = 0;
  const auto sync_budget = [&] {
    control.charge(evaluator->queries() - charged);
    charged = evaluator->queries();
  };
  sync_budget();
  bool out_of_time = false;
  bool out_of_budget = false;

  while (current < config.success_threshold &&
         result.sentences_changed < budget) {
    double best_gain = config.min_gain;
    std::size_t best_sentence = l;
    const Sentence* best_candidate = nullptr;
    for (std::size_t j = 0; j < l && !out_of_time && !out_of_budget; ++j) {
      if (paraphrased[j]) continue;
      for (const Sentence& candidate : neighbor_sets[j]) {
        // Abandon the sweep on a limit hit; the last committed document
        // stands (best-so-far semantics).
        if (control.deadline.expired()) {
          out_of_time = true;
          break;
        }
        if (control.budget_exhausted()) {
          out_of_budget = true;
          break;
        }
        Document trial = result.adv_doc;
        trial.sentences[j] = candidate;
        const double p = evaluator->eval_tokens(trial.flatten())[target];
        sync_budget();
        const double gain = p - current;
        if (gain > best_gain) {
          best_gain = gain;
          best_sentence = j;
          best_candidate = &candidate;
        }
      }
    }
    if (out_of_time || out_of_budget || best_sentence == l) break;
    result.adv_doc.sentences[best_sentence] = *best_candidate;
    paraphrased[best_sentence] = true;
    ++result.sentences_changed;
    evaluator->rebase(result.adv_doc.flatten());
    current = evaluator->eval_tokens(result.adv_doc.flatten())[target];
    sync_budget();
  }

  if (out_of_time) {
    result.termination = TerminationReason::kDeadlineExceeded;
  } else if (out_of_budget) {
    result.termination = TerminationReason::kBudgetExhausted;
  }
  result.queries = evaluator->queries();
  result.final_target_proba = current;
  result.success = current >= config.success_threshold;
  if (result.success) result.termination = TerminationReason::kSucceeded;
  result.seconds = watch.elapsed_seconds();
  return result;
}

}  // namespace advtext
