#include "src/core/sentence_attack.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/util/stopwatch.h"

namespace advtext {

SentenceAttackResult greedy_sentence_attack(
    const TextClassifier& model, const Document& doc,
    const std::vector<std::vector<Sentence>>& neighbor_sets,
    std::size_t target, const SentenceAttackConfig& config,
    const AttackControl& control) {
  if (neighbor_sets.size() != doc.sentences.size()) {
    throw std::invalid_argument(
        "greedy_sentence_attack: neighbor set count mismatch");
  }
  FaultInjector::instance().maybe_fault("attack.sentence");
  Stopwatch watch;
  SentenceAttackResult result;
  result.adv_doc = doc;
  const std::size_t l = doc.sentences.size();
  const std::size_t budget = static_cast<std::size_t>(
      std::ceil(config.max_paraphrase_fraction * static_cast<double>(l)));

  auto evaluator = model.make_swap_evaluator(result.adv_doc.flatten());
  // The evaluator shell owns query accounting from here on: deadline polls
  // per row, budget charged once per cache miss (the anchor eval below
  // included), repeats served from the bound cache.
  evaluator->bind_control(&control);
  double current = evaluator->eval_tokens(result.adv_doc.flatten())[target];
  std::vector<bool> paraphrased(l, false);

  bool out_of_time = false;
  bool out_of_budget = false;
  struct TrialRef {
    std::size_t sentence;
    const Sentence* candidate;
  };
  std::vector<TokenSeq> trials;
  std::vector<TrialRef> refs;
  Matrix scores;

  while (current < config.success_threshold &&
         result.sentences_changed < budget) {
    double best_gain = config.min_gain;
    std::size_t best_sentence = l;
    const Sentence* best_candidate = nullptr;
    // Materialize the round's full trial set (each candidate paraphrase
    // spliced into the current document), then score it through batched
    // evaluator calls in the same sentence/candidate order the
    // per-candidate loop used.
    trials.clear();
    refs.clear();
    for (std::size_t j = 0; j < l; ++j) {
      if (paraphrased[j]) continue;
      for (const Sentence& candidate : neighbor_sets[j]) {
        Document trial = result.adv_doc;
        trial.sentences[j] = candidate;
        trials.push_back(trial.flatten());
        refs.push_back({j, &candidate});
      }
    }
    for (std::size_t off = 0;
         off < trials.size() && !out_of_time && !out_of_budget;
         off += kScoreChunkRows) {
      const std::size_t len = std::min(kScoreChunkRows, trials.size() - off);
      const BatchStatus status =
          evaluator->eval_tokens_batch(trials.data() + off, len, scores);
      for (std::size_t i = 0; i < status.evaluated; ++i) {
        const double p = scores(i, target);
        const double gain = p - current;
        if (gain > best_gain) {
          best_gain = gain;
          best_sentence = refs[off + i].sentence;
          best_candidate = refs[off + i].candidate;
        }
      }
      // Abandon the sweep on a limit hit; the last committed document
      // stands (best-so-far semantics).
      out_of_time = status.out_of_time;
      out_of_budget = status.out_of_budget;
    }
    if (out_of_time || out_of_budget || best_sentence == l) break;
    result.adv_doc.sentences[best_sentence] = *best_candidate;
    paraphrased[best_sentence] = true;
    ++result.sentences_changed;
    evaluator->rebase(result.adv_doc.flatten());
    current = evaluator->eval_tokens(result.adv_doc.flatten())[target];
  }

  if (out_of_time) {
    result.termination = TerminationReason::kDeadlineExceeded;
  } else if (out_of_budget) {
    result.termination = TerminationReason::kBudgetExhausted;
  }
  result.queries = evaluator->queries();
  result.cache_hits = evaluator->cache_hits();
  result.cache_misses = evaluator->cache_misses();
  result.budget_charged = evaluator->budget_charged();
  ADVTEXT_DCHECK(result.queries == result.cache_hits + result.cache_misses)
      << "sentence_attack: query accounting drift (" << result.queries
      << " != " << result.cache_hits << " + " << result.cache_misses << ")";
  result.final_target_proba = current;
  result.success = current >= config.success_threshold;
  if (result.success) result.termination = TerminationReason::kSucceeded;
  result.seconds = watch.elapsed_seconds();
  return result;
}

}  // namespace advtext
