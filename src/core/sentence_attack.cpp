#include "src/core/sentence_attack.h"

#include <cmath>
#include <stdexcept>

#include "src/util/stopwatch.h"

namespace advtext {

SentenceAttackResult greedy_sentence_attack(
    const TextClassifier& model, const Document& doc,
    const std::vector<std::vector<Sentence>>& neighbor_sets,
    std::size_t target, const SentenceAttackConfig& config) {
  if (neighbor_sets.size() != doc.sentences.size()) {
    throw std::invalid_argument(
        "greedy_sentence_attack: neighbor set count mismatch");
  }
  Stopwatch watch;
  SentenceAttackResult result;
  result.adv_doc = doc;
  const std::size_t l = doc.sentences.size();
  const std::size_t budget = static_cast<std::size_t>(
      std::ceil(config.max_paraphrase_fraction * static_cast<double>(l)));

  auto evaluator = model.make_swap_evaluator(result.adv_doc.flatten());
  double current = evaluator->eval_tokens(result.adv_doc.flatten())[target];
  std::vector<bool> paraphrased(l, false);

  while (current < config.success_threshold &&
         result.sentences_changed < budget) {
    double best_gain = config.min_gain;
    std::size_t best_sentence = l;
    const Sentence* best_candidate = nullptr;
    for (std::size_t j = 0; j < l; ++j) {
      if (paraphrased[j]) continue;
      for (const Sentence& candidate : neighbor_sets[j]) {
        Document trial = result.adv_doc;
        trial.sentences[j] = candidate;
        const double p = evaluator->eval_tokens(trial.flatten())[target];
        const double gain = p - current;
        if (gain > best_gain) {
          best_gain = gain;
          best_sentence = j;
          best_candidate = &candidate;
        }
      }
    }
    if (best_sentence == l) break;  // no improving paraphrase
    result.adv_doc.sentences[best_sentence] = *best_candidate;
    paraphrased[best_sentence] = true;
    ++result.sentences_changed;
    evaluator->rebase(result.adv_doc.flatten());
    current = evaluator->eval_tokens(result.adv_doc.flatten())[target];
  }

  result.queries = evaluator->queries();
  result.final_target_proba = current;
  result.success = current >= config.success_threshold;
  result.seconds = watch.elapsed_seconds();
  return result;
}

}  // namespace advtext
