// Character-level transformation candidates (paper Remark 2).
//
// The framework of Problem 1 covers any discrete substitution, not just
// word paraphrasing; the paper cites character flipping (HotFlip, [17]) as
// one instance. This module generates candidates by corrupting the surface
// form of each word — swapping adjacent characters, deleting a character,
// or doubling one — and mapping the corrupted strings back through the
// vocabulary. A corruption that happens to hit a real vocabulary entry
// becomes that word; anything else becomes <unk> (exactly what a
// deployed pipeline does with a typo). The resulting WordCandidates plug
// into every attack in src/core unchanged — that is Remark 2's point.
#pragma once

#include <cstdint>

#include "src/core/transformation.h"
#include "src/text/vocab.h"

namespace advtext {

struct CharFlipConfig {
  /// Maximum distinct corruptions offered per position.
  std::size_t max_candidates_per_word = 4;
  /// Skip words shorter than this (corrupting "a" is not a typo).
  std::size_t min_word_length = 3;
  /// Include the <unk> fallback when corruptions leave the vocabulary.
  bool allow_unk = true;
  std::uint64_t seed = 77;
};

/// All single-edit corruptions of `word` (adjacent swaps, deletions,
/// doublings), deduplicated, excluding the original.
std::vector<std::string> char_corruptions(const std::string& word);

/// Per-position candidate lists for a token sequence under character
/// flips. Deterministic for a given config.
WordCandidates char_flip_candidates(const TokenSeq& tokens,
                                    const Vocab& vocab,
                                    const CharFlipConfig& config = {});

}  // namespace advtext
