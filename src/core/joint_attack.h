// Joint Sentence And Word Paraphrasing — the paper's Algorithm 1.
//
// The full attack pipeline:
//   1. build sentence neighbouring sets S_i (paraphrase engine + WMD δs
//      filter) and run Greedy Sentence Paraphrasing (Alg. 2);
//   2. if the target probability is still below τ, build word neighbouring
//      sets W_i (paragram WMD δw filter + language-model δ filter) and run
//      a word-level attack — by default Gradient Guided Greedy Word
//      Paraphrasing (Alg. 3); the baselines of [18]/[19] are selectable so
//      the comparison benches share one pipeline.
#pragma once

#include "src/core/attack_types.h"
#include "src/core/gradient_attack.h"
#include "src/core/gradient_guided_greedy.h"
#include "src/core/objective_greedy.h"
#include "src/core/sentence_attack.h"
#include "src/nn/text_classifier.h"
#include "src/text/ngram_lm.h"
#include "src/text/paraphrase_index.h"
#include "src/text/sentence_paraphraser.h"
#include "src/text/wmd.h"

namespace advtext {

/// Word-level optimization scheme used in phase 2 (Table 3 compares them).
enum class WordAttackMethod {
  kGradientGuidedGreedy,  ///< Alg. 3 (ours)
  kObjectiveGreedy,       ///< Kuleshov et al. [19]
  kGradient,              ///< Gong et al. [18]
};

struct JointAttackConfig {
  double success_threshold = 0.7;  ///< τ, shared by both phases
  bool enable_sentence = true;     ///< λs = 0 shortcut
  bool enable_word = true;         ///< λw = 0 shortcut
  double sentence_fraction = 0.2;  ///< λs
  double word_fraction = 0.2;      ///< λw
  WordAttackMethod word_method = WordAttackMethod::kGradientGuidedGreedy;
  GradientGuidedGreedyConfig ggg;  ///< N, beam cap for Alg. 3
  /// Use the language model filter when building word candidates (the
  /// paper sets δ = ∞ on Trec07p; encode that via
  /// word_index config lm_delta = inf or use_lm_filter = false here).
  bool use_lm_filter = true;
  /// Wall-clock limit for the whole attack (both phases share it);
  /// 0 disables. On expiry the attack returns best-so-far with
  /// termination = kDeadlineExceeded.
  double deadline_ms = 0.0;
  /// Model-forward-pass limit shared by both phases; 0 disables. On
  /// exhaustion the attack returns best-so-far with kBudgetExhausted.
  std::size_t max_queries = 0;
};

/// Per-task attack resources, built once and shared across all attacked
/// documents. All members but the cache are immutable; the cache is
/// mutated by the evaluator shell and must therefore not be shared across
/// concurrently attacking workers (the pipeline owns one per worker).
struct AttackResources {
  const ParaphraseIndex* word_index = nullptr;       ///< W_i source
  const SentenceParaphraser* paraphraser = nullptr;  ///< S_i source
  const Wmd* wmd = nullptr;                          ///< δs filter
  const NGramLm* lm = nullptr;  ///< syntactic filter; may be null
  /// Optional memoizing query cache shared by both phases (a sentence
  /// paraphrase and a later word swap that produce the same token stream
  /// hit the same entry). May be null (uncached).
  QueryCache* query_cache = nullptr;
};

JointAttackResult joint_attack(const TextClassifier& model,
                               const Document& doc, std::size_t target,
                               const AttackResources& resources,
                               const JointAttackConfig& config = {});

}  // namespace advtext
