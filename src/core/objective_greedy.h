// Objective-guided greedy word attack (the method of Kuleshov et al. [19]).
//
// Classic greedy on Problem 1: every iteration evaluates *all* single-word
// swaps from the current document (n positions x k candidates forward
// passes), commits the one with the largest objective gain, and repeats
// until the target probability clears τ or the replacement budget λw·n is
// exhausted. Under the submodularity of Section 4 this enjoys the (1-1/e)
// guarantee; its cost — one full candidate sweep per single replacement —
// is what Alg. 3 improves on (Table 3).
#pragma once

#include "src/core/attack_types.h"
#include "src/core/transformation.h"
#include "src/nn/text_classifier.h"

namespace advtext {

struct ObjectiveGreedyConfig {
  double max_replace_fraction = 0.5;  ///< λw ([19] allows 50%)
  double success_threshold = 0.7;     ///< τ
  /// Minimum objective improvement to accept a swap; with MC-dropout
  /// enabled, single-word gains can drown in sampling noise (§6.4).
  double min_gain = 1e-6;
};

WordAttackResult objective_greedy_attack(
    const TextClassifier& model, const TokenSeq& tokens,
    const WordCandidates& candidates, std::size_t target,
    const ObjectiveGreedyConfig& config = {},
    const AttackControl& control = {});

}  // namespace advtext
