#include "src/core/gradient_guided_greedy.h"

#include <algorithm>
#include <cmath>

#include "src/util/det_accum.h"
#include "src/util/stopwatch.h"

namespace advtext {

WordAttackResult gradient_guided_greedy_attack(
    const TextClassifier& model, const TokenSeq& tokens,
    const WordCandidates& candidates, std::size_t target,
    const GradientGuidedGreedyConfig& config, const AttackControl& control) {
  FaultInjector::instance().maybe_fault("attack.word");
  Stopwatch watch;
  WordAttackResult result;
  result.adv_tokens = tokens;
  const std::size_t n = tokens.size();
  const std::size_t budget = static_cast<std::size_t>(
      std::ceil(config.max_replace_fraction * static_cast<double>(n)));

  auto evaluator = model.make_swap_evaluator(result.adv_tokens);
  // The shell charges the budget per cache miss and polls the deadline per
  // row; gradient calls still charge their embedded forward explicitly.
  evaluator->bind_control(&control);
  std::vector<bool> replaced(n, false);
  Vector proba;

  bool out_of_time = false;
  bool out_of_budget = false;
  std::vector<TokenSeq> trial;
  Matrix trial_scores;

  while (result.iterations < config.max_iterations) {
    if ((out_of_time = control.deadline.expired())) break;
    if ((out_of_budget = control.budget_exhausted())) break;
    const std::size_t changed = count_changes(tokens, result.adv_tokens);
    if (changed >= budget) break;

    // Step 4: Gauss–Southwell scores from the input gradient.
    const Matrix grad =
        model.input_gradient(result.adv_tokens, target, &proba);
    ++result.gradient_calls;
    control.charge(1);  // a gradient call embeds one forward pass
    if (proba[target] >= config.success_threshold) break;
    ++result.iterations;

    struct Scored {
      double score;
      std::size_t pos;
    };
    const Matrix& table = model.embedding_table();
    const std::size_t dim = model.embedding_dim();
    std::vector<Scored> scores;
    for (std::size_t i = 0; i < n; ++i) {
      if (replaced[i] || candidates.per_position[i].empty()) continue;
      double score = 0.0;
      if (config.rule == GaussSouthwellRule::kGradientNorm) {
        score = norm2(grad.row(i), dim);
      } else {
        // Best first-order gain over this position's candidates.
        const float* g = grad.row(i);
        const float* orig = table.row(
            static_cast<std::size_t>(result.adv_tokens[i]));
        for (WordId cand : candidates.per_position[i]) {
          const float* vec = table.row(static_cast<std::size_t>(cand));
          score = std::max(score, det_diff_dot(vec, orig, g, dim));
        }
      }
      scores.push_back({score, i});
    }
    if (scores.empty()) break;
    const std::size_t take =
        std::min({config.words_per_iteration, scores.size(),
                  budget - changed});
    std::partial_sort(scores.begin(), scores.begin() + take, scores.end(),
                      [](const Scored& a, const Scored& b) {
                        if (a.score != b.score) return a.score > b.score;
                        return a.pos < b.pos;
                      });

    // Steps 6-15: expand the candidate product over the selected positions,
    // keeping the best beam_cap partial combinations.
    struct Candidate {
      TokenSeq tokens;
      double proba;
    };
    std::vector<Candidate> pool;
    pool.push_back({result.adv_tokens, proba[target]});
    for (std::size_t t = 0; t < take && !out_of_time && !out_of_budget;
         ++t) {
      const std::size_t pos = scores[t].pos;
      // Materialize every expansion of the current pool at this position
      // and score them through batched evaluator calls — one gemm per
      // layer per chunk. A limit hit abandons the expansion mid-batch;
      // already-scored pool members (and already-evaluated rows) are
      // still eligible for the commit below (best-so-far semantics).
      trial.clear();
      for (const Candidate& base : pool) {
        for (WordId cand : candidates.per_position[pos]) {
          if (cand == base.tokens[pos]) continue;
          trial.push_back(base.tokens);
          trial.back()[pos] = cand;
        }
      }
      std::vector<Candidate> expanded;
      for (std::size_t off = 0;
           off < trial.size() && !out_of_time && !out_of_budget;
           off += kScoreChunkRows) {
        const std::size_t len = std::min(kScoreChunkRows, trial.size() - off);
        const BatchStatus status =
            evaluator->eval_tokens_batch(trial.data() + off, len,
                                         trial_scores);
        for (std::size_t i = 0; i < status.evaluated; ++i) {
          Candidate next;
          next.tokens = std::move(trial[off + i]);
          next.proba = trial_scores(i, target);
          expanded.push_back(std::move(next));
        }
        out_of_time = status.out_of_time;
        out_of_budget = status.out_of_budget;
      }
      pool.insert(pool.end(), std::make_move_iterator(expanded.begin()),
                  std::make_move_iterator(expanded.end()));
      if (config.beam_cap > 0 && pool.size() > config.beam_cap) {
        std::partial_sort(pool.begin(), pool.begin() + config.beam_cap,
                          pool.end(),
                          [](const Candidate& a, const Candidate& b) {
                            return a.proba > b.proba;
                          });
        pool.resize(config.beam_cap);
      }
    }

    // Step 16: commit the best candidate. Enforce the budget exactly (a
    // combination may touch more positions than the remaining budget).
    const Candidate* best = nullptr;
    for (const Candidate& cand : pool) {
      if (count_changes(tokens, cand.tokens) > budget) continue;
      if (best == nullptr || cand.proba > best->proba) best = &cand;
    }
    if (best == nullptr || best->tokens == result.adv_tokens) break;
    for (std::size_t i = 0; i < n; ++i) {
      if (best->tokens[i] != result.adv_tokens[i]) replaced[i] = true;
    }
    result.adv_tokens = best->tokens;
    evaluator->rebase(result.adv_tokens);
    if (best->proba >= config.success_threshold) break;
    if (out_of_time || out_of_budget) break;
  }

  if (out_of_time) {
    result.termination = TerminationReason::kDeadlineExceeded;
  } else if (out_of_budget) {
    result.termination = TerminationReason::kBudgetExhausted;
  }
  result.queries = evaluator->queries();
  result.cache_hits = evaluator->cache_hits();
  result.cache_misses = evaluator->cache_misses();
  result.budget_charged = evaluator->budget_charged();
  ADVTEXT_DCHECK(result.queries == result.cache_hits + result.cache_misses)
      << "ggg: query accounting drift (" << result.queries
      << " != " << result.cache_hits << " + " << result.cache_misses << ")";
  result.final_target_proba =
      model.class_probability(result.adv_tokens, target);
  control.charge(1);
  // Gradient calls and the final verification forward charge the budget
  // directly (charge() no-ops without one, so mirror that here).
  if (control.budget != nullptr) {
    result.budget_charged += result.gradient_calls + 1;
  }
  result.success = result.final_target_proba >= config.success_threshold;
  if (result.success) result.termination = TerminationReason::kSucceeded;
  result.words_changed = count_changes(tokens, result.adv_tokens);
  result.seconds = watch.elapsed_seconds();
  return result;
}

}  // namespace advtext
