// Lazy objective-guided greedy word attack (Minoux acceleration).
//
// Section 4 justifies greedy through submodularity; submodularity also
// licenses Minoux's lazy evaluation: a (position, candidate) swap's gain
// can only shrink as more positions are committed, so stale gains from
// earlier rounds are valid upper bounds. This variant of the Kuleshov
// greedy keeps all swaps in a max-heap keyed by their last-known gain and
// re-evaluates only the top until a freshly-evaluated entry stays on top.
// Identical output to objective_greedy_attack when f is submodular;
// empirically near-identical otherwise, at a fraction of the queries
// (extension bench bench_ext_query_budget quantifies this).
#pragma once

#include "src/core/attack_types.h"
#include "src/core/transformation.h"
#include "src/nn/text_classifier.h"

namespace advtext {

struct LazyGreedyAttackConfig {
  double max_replace_fraction = 0.5;  ///< λw
  double success_threshold = 0.7;     ///< τ
  double min_gain = 1e-6;
};

WordAttackResult lazy_greedy_attack(const TextClassifier& model,
                                    const TokenSeq& tokens,
                                    const WordCandidates& candidates,
                                    std::size_t target,
                                    const LazyGreedyAttackConfig& config = {});

}  // namespace advtext
