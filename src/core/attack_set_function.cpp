#include "src/core/attack_set_function.h"

#include <stdexcept>

namespace advtext {

AttackSetFunction::AttackSetFunction(SequenceScorer scorer, TokenSeq original,
                                     WordCandidates candidates, InnerMax mode,
                                     std::size_t exhaustive_limit)
    : scorer_(std::move(scorer)),
      original_(std::move(original)),
      candidates_(std::move(candidates)),
      attackable_(candidates_.attackable_positions()),
      mode_(mode),
      exhaustive_limit_(exhaustive_limit) {
  if (candidates_.per_position.size() != original_.size()) {
    throw std::invalid_argument("AttackSetFunction: size mismatch");
  }
}

double AttackSetFunction::exhaustive_max(
    const std::vector<std::size_t>& positions, TokenSeq* best) const {
  // Check the product size before enumerating.
  std::size_t combos = 1;
  for (std::size_t pos : positions) {
    const std::size_t options = candidates_.per_position[pos].size() + 1;
    if (combos > exhaustive_limit_ / options) {
      throw std::runtime_error(
          "AttackSetFunction: exhaustive inner max too large; use "
          "kCoordinateAscent");
    }
    combos *= options;
  }
  TokenSeq current = original_;
  double best_score = scorer_(current);
  TokenSeq best_tokens = current;
  // Odometer enumeration over the selected positions.
  std::vector<std::size_t> counter(positions.size(), 0);
  for (;;) {
    std::size_t d = 0;
    while (d < positions.size()) {
      const auto& options = candidates_.per_position[positions[d]];
      if (++counter[d] <= options.size()) {
        current[positions[d]] = options[counter[d] - 1];
        break;
      }
      counter[d] = 0;
      current[positions[d]] = original_[positions[d]];
      ++d;
    }
    if (d == positions.size()) break;  // odometer wrapped: done
    const double score = scorer_(current);
    if (score > best_score) {
      best_score = score;
      best_tokens = current;
    }
  }
  if (best != nullptr) *best = std::move(best_tokens);
  return best_score;
}

double AttackSetFunction::coordinate_ascent_max(
    const std::vector<std::size_t>& positions, TokenSeq* best) const {
  TokenSeq current = original_;
  double current_score = scorer_(current);
  bool improved = true;
  std::size_t rounds = 0;
  while (improved && rounds < 8) {
    improved = false;
    ++rounds;
    for (std::size_t pos : positions) {
      // Best response over {original} ∪ candidates for this position.
      const WordId incumbent = current[pos];
      WordId best_word = incumbent;
      double best_score = current_score;
      std::vector<WordId> options = candidates_.per_position[pos];
      options.push_back(original_[pos]);
      for (WordId option : options) {
        if (option == incumbent) continue;
        current[pos] = option;
        const double score = scorer_(current);
        if (score > best_score + 1e-15) {
          best_score = score;
          best_word = option;
        }
      }
      current[pos] = best_word;
      if (best_word != incumbent) {
        current_score = best_score;
        improved = true;
      }
    }
  }
  if (best != nullptr) *best = std::move(current);
  return current_score;
}

double AttackSetFunction::value_impl(
    const std::vector<std::size_t>& set) const {
  std::vector<std::size_t> positions;
  positions.reserve(set.size());
  for (std::size_t element : set) {
    positions.push_back(position_of(element));
  }
  return mode_ == InnerMax::kExhaustive
             ? exhaustive_max(positions, nullptr)
             : coordinate_ascent_max(positions, nullptr);
}

TokenSeq AttackSetFunction::best_transformation(
    const std::vector<std::size_t>& set) const {
  std::vector<std::size_t> positions;
  positions.reserve(set.size());
  for (std::size_t element : set) {
    positions.push_back(position_of(element));
  }
  TokenSeq best;
  if (mode_ == InnerMax::kExhaustive) {
    exhaustive_max(positions, &best);
  } else {
    coordinate_ascent_max(positions, &best);
  }
  return best;
}

}  // namespace advtext
