#include "src/core/joint_attack.h"

#include <stdexcept>

#include "src/util/robust.h"
#include "src/util/stopwatch.h"

namespace advtext {

JointAttackResult joint_attack(const TextClassifier& model,
                               const Document& doc, std::size_t target,
                               const AttackResources& resources,
                               const JointAttackConfig& config) {
  Stopwatch watch;
  JointAttackResult result;
  result.adv_doc = doc;

  // Both phases draw on one shared deadline and query budget; the phase
  // terminations are folded together with worse_of below.
  QueryBudget budget(config.max_queries);
  AttackControl control;
  if (config.deadline_ms > 0.0) {
    control.deadline = Deadline::after_ms(config.deadline_ms);
  }
  control.budget = &budget;
  control.cache = resources.query_cache;
  // Every query charge flows through `budget`; the phases report what they
  // charged, so the shared pool must reconcile exactly at every exit.
  const auto reconcile = [&budget](const JointAttackResult& r) {
    ADVTEXT_DCHECK(budget.used() == r.budget_charged)
        << "joint_attack: budget drift (" << budget.used()
        << " used != " << r.budget_charged << " charged)";
  };

  // ---- Phase 1: sentence paraphrasing (Alg. 1 steps 2-5) ----
  if (config.enable_sentence && config.sentence_fraction > 0.0) {
    if (resources.paraphraser == nullptr || resources.wmd == nullptr) {
      throw std::invalid_argument(
          "joint_attack: sentence phase needs paraphraser + wmd");
    }
    const auto neighbor_sets = resources.paraphraser->neighbor_sets(
        result.adv_doc, *resources.wmd, control.deadline);
    SentenceAttackConfig sentence_config;
    sentence_config.max_paraphrase_fraction = config.sentence_fraction;
    sentence_config.success_threshold = config.success_threshold;
    const SentenceAttackResult sentence_result = greedy_sentence_attack(
        model, result.adv_doc, neighbor_sets, target, sentence_config,
        control);
    result.adv_doc = sentence_result.adv_doc;
    result.sentences_changed = sentence_result.sentences_changed;
    result.queries += sentence_result.queries;
    result.cache_hits += sentence_result.cache_hits;
    result.cache_misses += sentence_result.cache_misses;
    result.budget_charged += sentence_result.budget_charged;
    result.final_target_proba = sentence_result.final_target_proba;
    result.termination =
        worse_of(result.termination, sentence_result.termination);
    if (sentence_result.success) {
      result.success = true;
      result.termination = TerminationReason::kSucceeded;
      result.seconds = watch.elapsed_seconds();
      reconcile(result);
      return result;
    }
  }

  // ---- Phase 2: word paraphrasing (Alg. 1 steps 6-9) ----
  const bool limits_hit =
      control.deadline.expired() || control.budget_exhausted();
  if (config.enable_word && config.word_fraction > 0.0 && !limits_hit) {
    if (resources.word_index == nullptr) {
      throw std::invalid_argument(
          "joint_attack: word phase needs a paraphrase index");
    }
    const TokenSeq tokens = result.adv_doc.flatten();
    if (!tokens.empty()) {
      const NGramLm* lm = config.use_lm_filter ? resources.lm : nullptr;
      WordCandidates candidates;
      candidates.per_position =
          resources.word_index->candidates_for(tokens, lm);

      // Resource governance: the candidate sets are the word phase's big
      // allocation. Charge them against the process MemoryBudget; under
      // pressure, halve every per-position list (candidates_for returns
      // them similarity-sorted, so the best candidates survive) until the
      // reservation fits or the floor of one candidate per position is
      // reached — a narrowed attack beats an OOM abort. The reservation is
      // held for the rest of the attack.
      const auto candidate_bytes = [&candidates] {
        std::size_t total = 0;
        for (const auto& list : candidates.per_position) {
          total += list.size() * sizeof(WordId) + sizeof(list);
        }
        return total;
      };
      MemoryReservation candidate_memory =
          MemoryReservation::try_acquire(candidate_bytes());
      while (!candidate_memory.ok()) {
        bool shrunk = false;
        for (auto& list : candidates.per_position) {
          if (list.size() > 1) {
            list.resize((list.size() + 1) / 2);
            shrunk = true;
          }
        }
        if (!shrunk) break;  // at the floor: proceed uncharged
        candidate_memory = MemoryReservation::try_acquire(candidate_bytes());
      }

      WordAttackResult word_result;
      switch (config.word_method) {
        case WordAttackMethod::kGradientGuidedGreedy: {
          GradientGuidedGreedyConfig ggg = config.ggg;
          ggg.max_replace_fraction = config.word_fraction;
          ggg.success_threshold = config.success_threshold;
          word_result = gradient_guided_greedy_attack(
              model, tokens, candidates, target, ggg, control);
          break;
        }
        case WordAttackMethod::kObjectiveGreedy: {
          ObjectiveGreedyConfig og;
          og.max_replace_fraction = config.word_fraction;
          og.success_threshold = config.success_threshold;
          word_result = objective_greedy_attack(model, tokens, candidates,
                                                target, og, control);
          break;
        }
        case WordAttackMethod::kGradient: {
          GradientAttackConfig ga;
          ga.max_replace_fraction = config.word_fraction;
          ga.success_threshold = config.success_threshold;
          word_result =
              gradient_attack(model, tokens, candidates, target, ga, control);
          break;
        }
      }

      // Write the flat adversarial tokens back into the sentence structure.
      std::size_t flat = 0;
      for (Sentence& sentence : result.adv_doc.sentences) {
        for (WordId& word : sentence) word = word_result.adv_tokens[flat++];
      }
      result.words_changed = word_result.words_changed;
      result.queries += word_result.queries;
      result.cache_hits += word_result.cache_hits;
      result.cache_misses += word_result.cache_misses;
      result.budget_charged += word_result.budget_charged;
      result.final_target_proba = word_result.final_target_proba;
      result.success = word_result.success;
      result.termination = word_result.success
                               ? TerminationReason::kSucceeded
                               : worse_of(result.termination,
                                          word_result.termination);
      result.seconds = watch.elapsed_seconds();
      reconcile(result);
      return result;
    }
  }

  if (limits_hit) {
    // The sentence phase (or the deadline itself) consumed the limits
    // before the word phase could start.
    result.termination = worse_of(
        result.termination, control.deadline.expired()
                                ? TerminationReason::kDeadlineExceeded
                                : TerminationReason::kBudgetExhausted);
  }
  if (result.final_target_proba == 0.0) {
    result.final_target_proba =
        model.class_probability(result.adv_doc.flatten(), target);
    ++result.queries;
    control.charge(1);  // the verification eval draws on the shared budget
    ++result.budget_charged;
  }
  result.success = result.final_target_proba >= config.success_threshold;
  if (result.success) result.termination = TerminationReason::kSucceeded;
  result.seconds = watch.elapsed_seconds();
  reconcile(result);
  return result;
}

}  // namespace advtext
