#include "src/core/char_flip.h"

#include <algorithm>
#include <set>

#include "src/util/rng.h"

namespace advtext {

std::vector<std::string> char_corruptions(const std::string& word) {
  std::set<std::string> out;
  // Adjacent transpositions.
  for (std::size_t i = 0; i + 1 < word.size(); ++i) {
    if (word[i] == word[i + 1]) continue;
    std::string cand = word;
    std::swap(cand[i], cand[i + 1]);
    out.insert(std::move(cand));
  }
  // Single deletions.
  if (word.size() > 1) {
    for (std::size_t i = 0; i < word.size(); ++i) {
      std::string cand = word;
      cand.erase(i, 1);
      out.insert(std::move(cand));
    }
  }
  // Single doublings.
  for (std::size_t i = 0; i < word.size(); ++i) {
    std::string cand = word;
    cand.insert(cand.begin() + static_cast<std::ptrdiff_t>(i), word[i]);
    out.insert(std::move(cand));
  }
  out.erase(word);
  return {out.begin(), out.end()};
}

WordCandidates char_flip_candidates(const TokenSeq& tokens,
                                    const Vocab& vocab,
                                    const CharFlipConfig& config) {
  WordCandidates candidates;
  candidates.per_position.resize(tokens.size());
  Rng rng(config.seed);
  for (std::size_t pos = 0; pos < tokens.size(); ++pos) {
    const WordId token = tokens[pos];
    if (token < 2 || token >= vocab.size()) continue;  // specials
    const std::string& surface = vocab.word(token);
    if (surface.size() < config.min_word_length) continue;

    std::set<WordId> ids;
    bool any_unk = false;
    for (const std::string& corruption : char_corruptions(surface)) {
      const WordId id = vocab.id(corruption);
      if (id == Vocab::kUnk) {
        any_unk = true;
      } else if (id != token) {
        ids.insert(id);
      }
    }
    std::vector<WordId> list(ids.begin(), ids.end());
    if (any_unk && config.allow_unk) list.push_back(Vocab::kUnk);
    // Deterministic subsample when over the cap.
    while (list.size() > config.max_candidates_per_word) {
      list.erase(list.begin() +
                 static_cast<std::ptrdiff_t>(rng.uniform_index(list.size())));
    }
    candidates.per_position[pos] = std::move(list);
  }
  return candidates;
}

}  // namespace advtext
