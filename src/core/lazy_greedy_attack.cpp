#include "src/core/lazy_greedy_attack.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "src/util/stopwatch.h"

namespace advtext {

WordAttackResult lazy_greedy_attack(const TextClassifier& model,
                                    const TokenSeq& tokens,
                                    const WordCandidates& candidates,
                                    std::size_t target,
                                    const LazyGreedyAttackConfig& config) {
  Stopwatch watch;
  WordAttackResult result;
  result.adv_tokens = tokens;
  const std::size_t n = tokens.size();
  const std::size_t budget = static_cast<std::size_t>(
      std::ceil(config.max_replace_fraction * static_cast<double>(n)));

  auto evaluator = model.make_swap_evaluator(result.adv_tokens);
  double current = model.class_probability(result.adv_tokens, target);
  std::vector<bool> replaced(n, false);

  struct Entry {
    double gain;        // last-known gain (upper bound under submodularity)
    std::size_t pos;
    WordId word;
    std::size_t round;  // round in which `gain` was computed
    bool operator<(const Entry& other) const { return gain < other.gain; }
  };
  std::priority_queue<Entry> heap;
  // Initial exact gains from the clean document (round 0): the whole
  // candidate set is known up front, so score it through batched evaluator
  // calls (one gemm per layer per chunk) and push in the same (pos, word)
  // order the per-candidate loop used. The lazy per-round refreshes below
  // stay sequential — each pop depends on the previous one's result.
  std::vector<SwapCandidate> initial;
  for (std::size_t pos = 0; pos < n; ++pos) {
    for (WordId cand : candidates.per_position[pos]) {
      if (cand == tokens[pos]) continue;
      initial.push_back({pos, cand});
    }
  }
  Matrix scores;
  for (std::size_t off = 0; off < initial.size(); off += kScoreChunkRows) {
    const std::size_t len = std::min(kScoreChunkRows, initial.size() - off);
    const BatchStatus status =
        evaluator->eval_swap_batch(initial.data() + off, len, scores);
    for (std::size_t i = 0; i < status.evaluated; ++i) {
      const double gain = scores(i, target) - current;
      heap.push({gain, initial[off + i].pos, initial[off + i].word, 0});
    }
  }

  std::size_t round = 0;
  while (current < config.success_threshold &&
         count_changes(tokens, result.adv_tokens) < budget && !heap.empty()) {
    ++round;
    ++result.iterations;
    // Pop until the top is fresh for this round.
    Entry chosen{0.0, n, Vocab::kUnk, 0};
    bool found = false;
    while (!heap.empty()) {
      Entry top = heap.top();
      heap.pop();
      if (replaced[top.pos]) continue;
      if (top.round == round) {
        if (top.gain > config.min_gain) {
          chosen = top;
          found = true;
        }
        break;
      }
      top.gain = evaluator->eval_swap(top.pos, top.word)[target] - current;
      top.round = round;
      if (heap.empty() || top.gain >= heap.top().gain) {
        if (top.gain > config.min_gain) {
          chosen = top;
          found = true;
        }
        break;
      }
      heap.push(top);
    }
    if (!found) break;
    result.adv_tokens[chosen.pos] = chosen.word;
    replaced[chosen.pos] = true;
    evaluator->rebase(result.adv_tokens);
    current = evaluator->eval_tokens(result.adv_tokens)[target];
  }

  result.queries = evaluator->queries();
  result.cache_hits = evaluator->cache_hits();
  result.cache_misses = evaluator->cache_misses();
  result.budget_charged = evaluator->budget_charged();
  result.final_target_proba =
      model.class_probability(result.adv_tokens, target);
  result.success = result.final_target_proba >= config.success_threshold;
  result.words_changed = count_changes(tokens, result.adv_tokens);
  result.seconds = watch.elapsed_seconds();
  return result;
}

}  // namespace advtext
