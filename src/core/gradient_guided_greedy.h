// Gradient-Guided Greedy Word Paraphrasing — the paper's Algorithm 3.
//
// Each iteration:
//   1. computes the gradient of the target probability w.r.t. every word's
//      embedding and scores position i by p_i = ||∇_i C_y||_2 (the
//      Gauss–Southwell rule from coordinate descent);
//   2. selects the N highest-scoring attackable positions I = {i_1..i_N};
//   3. builds a candidate set M over the product W_{i_1} x ... x W_{i_N}
//      exactly as the paper's steps 7–15 (M starts at {x}; each selected
//      position expands every member of M by its candidate list), with an
//      optional beam cap keeping the best partial combinations — the
//      literal product is (1+k)^N, which cannot be evaluated at the paper's
//      reported speeds (DESIGN.md §4); beam_cap = 0 disables the cap;
//   4. commits the best member of M.
//
// Replacing up to N words per iteration captures joint effects and, with
// the cap, costs far fewer evaluations per replaced word than the
// objective-guided greedy of [19] — the Table 3 comparison.
#pragma once

#include "src/core/attack_types.h"
#include "src/core/transformation.h"
#include "src/nn/text_classifier.h"

namespace advtext {

/// How step 4 scores positions from the gradient.
enum class GaussSouthwellRule {
  /// p_i = ||∇_i C_y||_2 — the paper's literal rule. On recurrent models
  /// the gradient norm is recency-biased and can rank low-leverage
  /// positions first.
  kGradientNorm,
  /// p_i = max_t (V(x_i^{(t)}) - V(x_i)) · ∇_i — the Gauss-Southwell-
  /// Lipschitz refinement: the first-order gain of the best candidate
  /// (the same quantity Proposition 2 maximizes). Default; the Alg. 3
  /// ablation bench compares both.
  kDirectionalGain,
};

struct GradientGuidedGreedyConfig {
  double max_replace_fraction = 0.2;  ///< λw
  double success_threshold = 0.7;     ///< τ
  std::size_t words_per_iteration = 5;  ///< N (paper: 5)
  GaussSouthwellRule rule = GaussSouthwellRule::kDirectionalGain;
  /// Beam cap on |M| during the product expansion; 0 = no cap (the literal
  /// Alg. 3, exponential in N).
  std::size_t beam_cap = 16;
  std::size_t max_iterations = 64;    ///< safety guard
};

WordAttackResult gradient_guided_greedy_attack(
    const TextClassifier& model, const TokenSeq& tokens,
    const WordCandidates& candidates, std::size_t target,
    const GradientGuidedGreedyConfig& config = {},
    const AttackControl& control = {});

}  // namespace advtext
