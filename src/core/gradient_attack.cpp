#include "src/core/gradient_attack.h"

#include <algorithm>
#include <cmath>

#include "src/util/det_accum.h"
#include "src/util/stopwatch.h"

namespace advtext {

WordAttackResult gradient_attack(const TextClassifier& model,
                                 const TokenSeq& tokens,
                                 const WordCandidates& candidates,
                                 std::size_t target,
                                 const GradientAttackConfig& config,
                                 const AttackControl& control) {
  FaultInjector::instance().maybe_fault("attack.word");
  Stopwatch watch;
  WordAttackResult result;
  result.adv_tokens = tokens;
  const std::size_t n = tokens.size();
  const std::size_t budget = static_cast<std::size_t>(
      std::ceil(config.max_replace_fraction * static_cast<double>(n)));
  const Matrix& table = model.embedding_table();
  const std::size_t dim = model.embedding_dim();

  bool out_of_time = false;
  bool out_of_budget = false;
  Vector proba;
  for (std::size_t round = 0; round < std::max<std::size_t>(1, config.rounds);
       ++round) {
    // The per-round work is gradient-dominated (no per-candidate forward
    // passes), so round granularity is the natural check point.
    if ((out_of_time = control.deadline.expired())) break;
    if ((out_of_budget = control.budget_exhausted())) break;
    const std::size_t already_changed = count_changes(tokens,
                                                      result.adv_tokens);
    if (already_changed >= budget) break;

    const Matrix grad =
        model.input_gradient(result.adv_tokens, target, &proba);
    ++result.gradient_calls;
    control.charge(1);  // a gradient call embeds one forward pass
    ++result.iterations;
    if (proba[target] >= config.success_threshold) break;

    // Per-position proposals, scored for the budgeted top-m selection.
    struct Gain {
      double value;
      std::size_t pos;
      WordId word;
    };
    std::vector<Gain> gains;
    for (std::size_t i = 0; i < n; ++i) {
      if (candidates.per_position[i].empty()) continue;
      const float* g = grad.row(i);
      const float* orig_vec =
          table.row(static_cast<std::size_t>(result.adv_tokens[i]));
      const double gnorm = norm2(g, dim);
      if (config.mode == GradientAttackMode::kNearestNeighborStep) {
        // [18]: step along the gradient, snap to the nearest candidate
        // embedding by Euclidean distance. Positions ranked by ||∇_i||.
        if (gnorm <= 0.0) continue;
        double best_dist = 0.0;  // distance of keeping the original: η
        WordId best_word = result.adv_tokens[i];
        // Stepping away from v by η leaves the original at distance η.
        best_dist = config.step_size;
        for (WordId cand : candidates.per_position[i]) {
          if (cand == result.adv_tokens[i]) continue;
          const float* cand_vec = table.row(static_cast<std::size_t>(cand));
          const double dist_sq = det_index_sum(dim, [&](std::size_t d) {
            const double target_coord =
                orig_vec[d] + config.step_size * g[d] / gnorm;
            const double diff = cand_vec[d] - target_coord;
            return diff * diff;
          });
          const double dist = std::sqrt(dist_sq);
          if (dist < best_dist) {
            best_dist = dist;
            best_word = cand;
          }
        }
        if (best_word != result.adv_tokens[i]) {
          gains.push_back({gnorm, i, best_word});
        }
        continue;
      }
      // Proposition 2: per-position modular gains under the linearization.
      double best = 0.0;
      WordId best_word = result.adv_tokens[i];
      for (WordId cand : candidates.per_position[i]) {
        if (cand == result.adv_tokens[i]) continue;
        const float* cand_vec = table.row(static_cast<std::size_t>(cand));
        const double delta = det_diff_dot(cand_vec, orig_vec, g, dim);
        if (delta > best) {
          best = delta;
          best_word = cand;
        }
      }
      if (best > 0.0 && best_word != result.adv_tokens[i]) {
        gains.push_back({best, i, best_word});
      }
    }
    std::sort(gains.begin(), gains.end(), [](const Gain& a, const Gain& b) {
      if (a.value != b.value) return a.value > b.value;
      return a.pos < b.pos;
    });

    // Apply the top gains without exceeding the overall budget (a position
    // already changed in a previous round may be re-replaced for free).
    TokenSeq proposal = result.adv_tokens;
    for (const Gain& gain : gains) {
      TokenSeq trial = proposal;
      trial[gain.pos] = gain.word;
      if (count_changes(tokens, trial) > budget) continue;
      proposal = std::move(trial);
    }
    if (proposal == result.adv_tokens) break;  // linearization found nothing
    result.adv_tokens = std::move(proposal);
  }

  if (out_of_time) {
    result.termination = TerminationReason::kDeadlineExceeded;
  } else if (out_of_budget) {
    result.termination = TerminationReason::kBudgetExhausted;
  }
  result.final_target_proba =
      model.class_probability(result.adv_tokens, target);
  ++result.queries;
  control.charge(1);
  // Every charge here is explicit (gradient calls + the verification
  // forward above); record them so callers can reconcile the budget.
  if (control.budget != nullptr) {
    result.budget_charged = result.gradient_calls + 1;
  }
  result.success = result.final_target_proba >= config.success_threshold;
  if (result.success) result.termination = TerminationReason::kSucceeded;
  result.words_changed = count_changes(tokens, result.adv_tokens);
  result.seconds = watch.elapsed_seconds();
  return result;
}

}  // namespace advtext
