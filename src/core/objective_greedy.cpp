#include "src/core/objective_greedy.h"

#include <cmath>

#include "src/util/stopwatch.h"

namespace advtext {

WordAttackResult objective_greedy_attack(const TextClassifier& model,
                                         const TokenSeq& tokens,
                                         const WordCandidates& candidates,
                                         std::size_t target,
                                         const ObjectiveGreedyConfig& config) {
  Stopwatch watch;
  WordAttackResult result;
  result.adv_tokens = tokens;
  const std::size_t n = tokens.size();
  const std::size_t budget = static_cast<std::size_t>(
      std::ceil(config.max_replace_fraction * static_cast<double>(n)));

  auto evaluator = model.make_swap_evaluator(result.adv_tokens);
  double current = model.class_probability(result.adv_tokens, target);
  std::vector<bool> replaced(n, false);

  while (current < config.success_threshold &&
         count_changes(tokens, result.adv_tokens) < budget) {
    ++result.iterations;
    double best_gain = config.min_gain;
    std::size_t best_pos = n;
    WordId best_word = Vocab::kUnk;
    for (std::size_t pos = 0; pos < n; ++pos) {
      if (replaced[pos]) continue;  // one replacement per position
      for (WordId cand : candidates.per_position[pos]) {
        if (cand == result.adv_tokens[pos]) continue;
        const double p = evaluator->eval_swap(pos, cand)[target];
        const double gain = p - current;
        if (gain > best_gain) {
          best_gain = gain;
          best_pos = pos;
          best_word = cand;
        }
      }
    }
    if (best_pos == n) break;  // no improving swap
    result.adv_tokens[best_pos] = best_word;
    replaced[best_pos] = true;
    evaluator->rebase(result.adv_tokens);
    current += best_gain;
    // Re-anchor against drift (and MC-dropout noise) with a fresh forward.
    current = evaluator->eval_tokens(result.adv_tokens)[target];
  }

  result.queries = evaluator->queries();
  result.final_target_proba =
      model.class_probability(result.adv_tokens, target);
  result.success = result.final_target_proba >= config.success_threshold;
  result.words_changed = count_changes(tokens, result.adv_tokens);
  result.seconds = watch.elapsed_seconds();
  return result;
}

}  // namespace advtext
