#include "src/core/objective_greedy.h"

#include <cmath>

#include "src/util/stopwatch.h"

namespace advtext {

WordAttackResult objective_greedy_attack(const TextClassifier& model,
                                         const TokenSeq& tokens,
                                         const WordCandidates& candidates,
                                         std::size_t target,
                                         const ObjectiveGreedyConfig& config,
                                         const AttackControl& control) {
  FaultInjector::instance().maybe_fault("attack.word");
  Stopwatch watch;
  WordAttackResult result;
  result.adv_tokens = tokens;
  const std::size_t n = tokens.size();
  const std::size_t budget = static_cast<std::size_t>(
      std::ceil(config.max_replace_fraction * static_cast<double>(n)));

  auto evaluator = model.make_swap_evaluator(result.adv_tokens);
  double current = model.class_probability(result.adv_tokens, target);
  control.charge(1);
  std::vector<bool> replaced(n, false);

  // Tracks evaluator queries already reported to the shared budget.
  std::size_t charged = 0;
  const auto sync_budget = [&] {
    control.charge(evaluator->queries() - charged);
    charged = evaluator->queries();
  };
  bool out_of_time = false;
  bool out_of_budget = false;

  while (current < config.success_threshold &&
         count_changes(tokens, result.adv_tokens) < budget) {
    ++result.iterations;
    double best_gain = config.min_gain;
    std::size_t best_pos = n;
    WordId best_word = Vocab::kUnk;
    for (std::size_t pos = 0; pos < n && !out_of_time && !out_of_budget;
         ++pos) {
      if (replaced[pos]) continue;  // one replacement per position
      for (WordId cand : candidates.per_position[pos]) {
        if (cand == result.adv_tokens[pos]) continue;
        // A deadline/budget hit abandons the sweep but keeps the last
        // *committed* document — never a half-evaluated swap.
        if (control.deadline.expired()) {
          out_of_time = true;
          break;
        }
        if (control.budget_exhausted()) {
          out_of_budget = true;
          break;
        }
        const double p = evaluator->eval_swap(pos, cand)[target];
        sync_budget();
        const double gain = p - current;
        if (gain > best_gain) {
          best_gain = gain;
          best_pos = pos;
          best_word = cand;
        }
      }
    }
    if (out_of_time || out_of_budget || best_pos == n) break;
    result.adv_tokens[best_pos] = best_word;
    replaced[best_pos] = true;
    evaluator->rebase(result.adv_tokens);
    // ADVTEXT_ALLOW(float-accum): running objective in greedy selection order; re-anchored by a fresh forward on the next line
    current += best_gain;
    // Re-anchor against drift (and MC-dropout noise) with a fresh forward.
    current = evaluator->eval_tokens(result.adv_tokens)[target];
    sync_budget();
  }

  if (out_of_time) {
    result.termination = TerminationReason::kDeadlineExceeded;
  } else if (out_of_budget) {
    result.termination = TerminationReason::kBudgetExhausted;
  }
  result.queries = evaluator->queries();
  result.final_target_proba =
      model.class_probability(result.adv_tokens, target);
  control.charge(1);
  result.success = result.final_target_proba >= config.success_threshold;
  if (result.success) result.termination = TerminationReason::kSucceeded;
  result.words_changed = count_changes(tokens, result.adv_tokens);
  result.seconds = watch.elapsed_seconds();
  return result;
}

}  // namespace advtext
