#include "src/core/objective_greedy.h"

#include <algorithm>
#include <cmath>

#include "src/util/stopwatch.h"

namespace advtext {

WordAttackResult objective_greedy_attack(const TextClassifier& model,
                                         const TokenSeq& tokens,
                                         const WordCandidates& candidates,
                                         std::size_t target,
                                         const ObjectiveGreedyConfig& config,
                                         const AttackControl& control) {
  FaultInjector::instance().maybe_fault("attack.word");
  Stopwatch watch;
  WordAttackResult result;
  result.adv_tokens = tokens;
  const std::size_t n = tokens.size();
  const std::size_t budget = static_cast<std::size_t>(
      std::ceil(config.max_replace_fraction * static_cast<double>(n)));

  auto evaluator = model.make_swap_evaluator(result.adv_tokens);
  // The evaluator shell owns all query accounting from here on: it polls
  // the deadline per candidate, charges the QueryBudget once per cache
  // miss, and serves repeats from the bound cache.
  evaluator->bind_control(&control);
  double current = model.class_probability(result.adv_tokens, target);
  control.charge(1);
  std::vector<bool> replaced(n, false);

  bool out_of_time = false;
  bool out_of_budget = false;
  std::vector<SwapCandidate> round;
  Matrix scores;

  while (current < config.success_threshold &&
         count_changes(tokens, result.adv_tokens) < budget) {
    ++result.iterations;
    double best_gain = config.min_gain;
    std::size_t best_pos = n;
    WordId best_word = Vocab::kUnk;
    // Collect the round's full candidate set, in the same position/word
    // order the per-candidate loop used, then score it through batched
    // evaluator calls — one gemm per network layer per chunk.
    round.clear();
    for (std::size_t pos = 0; pos < n; ++pos) {
      if (replaced[pos]) continue;  // one replacement per position
      for (WordId cand : candidates.per_position[pos]) {
        if (cand == result.adv_tokens[pos]) continue;
        round.push_back({pos, cand});
      }
    }
    for (std::size_t off = 0;
         off < round.size() && !out_of_time && !out_of_budget;
         off += kScoreChunkRows) {
      const std::size_t len = std::min(kScoreChunkRows, round.size() - off);
      const BatchStatus status =
          evaluator->eval_swap_batch(round.data() + off, len, scores);
      for (std::size_t i = 0; i < status.evaluated; ++i) {
        const double p = scores(i, target);
        const double gain = p - current;
        if (gain > best_gain) {
          best_gain = gain;
          best_pos = round[off + i].pos;
          best_word = round[off + i].word;
        }
      }
      // A deadline/budget hit abandons the sweep but keeps the last
      // *committed* document — never a half-evaluated swap.
      out_of_time = status.out_of_time;
      out_of_budget = status.out_of_budget;
    }
    if (out_of_time || out_of_budget || best_pos == n) break;
    result.adv_tokens[best_pos] = best_word;
    replaced[best_pos] = true;
    evaluator->rebase(result.adv_tokens);
    // ADVTEXT_ALLOW(float-accum): running objective in greedy selection order; re-anchored by a fresh forward on the next line
    current += best_gain;
    // Re-anchor against drift (and MC-dropout noise) with a fresh forward.
    current = evaluator->eval_tokens(result.adv_tokens)[target];
  }

  if (out_of_time) {
    result.termination = TerminationReason::kDeadlineExceeded;
  } else if (out_of_budget) {
    result.termination = TerminationReason::kBudgetExhausted;
  }
  result.queries = evaluator->queries();
  result.cache_hits = evaluator->cache_hits();
  result.cache_misses = evaluator->cache_misses();
  result.budget_charged = evaluator->budget_charged();
  ADVTEXT_DCHECK(result.queries == result.cache_hits + result.cache_misses)
      << "objective_greedy: query accounting drift (" << result.queries
      << " != " << result.cache_hits << " + " << result.cache_misses << ")";
  result.final_target_proba =
      model.class_probability(result.adv_tokens, target);
  control.charge(1);
  // The initial anchor and final verification forwards charge the budget
  // directly (charge() no-ops without one, so mirror that here).
  if (control.budget != nullptr) result.budget_charged += 2;
  result.success = result.final_target_proba >= config.success_threshold;
  if (result.success) result.termination = TerminationReason::kSucceeded;
  result.words_changed = count_changes(tokens, result.adv_tokens);
  result.seconds = watch.elapsed_seconds();
  return result;
}

}  // namespace advtext
