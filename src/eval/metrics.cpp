#include "src/eval/metrics.h"

#include <cmath>

#include "src/util/det_accum.h"
#include "src/util/sync.h"

namespace advtext {

namespace {
double accuracy_impl(const TextClassifier& model,
                     const std::vector<Document>& docs) {
  if (docs.empty()) return 0.0;
  std::size_t correct = 0;
  std::size_t counted = 0;
  for (const Document& doc : docs) {
    // Accuracy sweeps over large eval sets run on watchdog-monitored
    // workers; beat per document so a slow model is not reported stalled.
    if (Heartbeat* heart = ThreadPool::current()) heart->beat();
    const TokenSeq tokens = doc.flatten();
    if (tokens.empty()) continue;
    ++counted;
    // ADVTEXT_ALLOW(uncharged-forward): accuracy measurement over the eval set — reported as a metric, outside any attack session, so no QueryBudget applies
    if (model.predict(tokens) == static_cast<std::size_t>(doc.label)) {
      ++correct;
    }
  }
  if (counted == 0) return 0.0;
  return static_cast<double>(correct) / static_cast<double>(counted);
}
}  // namespace

double classification_accuracy(const TextClassifier& model,
                               const Dataset& data) {
  return accuracy_impl(model, data.docs);
}

double classification_accuracy(const TextClassifier& model,
                               const std::vector<Document>& docs) {
  return accuracy_impl(model, docs);
}

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return det_sum(values) / static_cast<double>(values.size());
}

double sample_stddev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  const double acc =
      det_accumulate(values.begin(), values.end(), 0.0,
                     [m](double a, double v) { return a + (v - m) * (v - m); });
  return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

}  // namespace advtext
