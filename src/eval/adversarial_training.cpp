#include "src/eval/adversarial_training.h"

#include "src/eval/metrics.h"
#include "src/util/rng.h"
#include "src/util/stop_token.h"

namespace advtext {

namespace {

/// Per-stage resilience policy: distinct snapshot paths keep the clean and
/// retrained runs from clobbering each other's generations.
ResilienceConfig stage_resilience(const ResilienceConfig& base,
                                  const char* stage) {
  ResilienceConfig staged = base;
  if (!staged.snapshot_path.empty()) staged.snapshot_path += stage;
  return staged;
}

/// One training stage, serial or sharded per config.shards. The sharded
/// path reuses `make_model` as the replica factory, so replicas share the
/// primary's architecture and init by construction.
TrainReport stage_train(
    const std::function<std::unique_ptr<TrainableClassifier>()>& make_model,
    TrainableClassifier& model, const Dataset& data,
    const AdvTrainingConfig& config, const ResilienceConfig& resilience) {
  if (config.shards <= 1) {
    return train_classifier(model, data, config.train, resilience);
  }
  return train_classifier_sharded(model, make_model, data, config.train,
                                  resilience, ShardConfig{config.shards})
      .train;
}

}  // namespace

AdvTrainingReport adversarial_training_experiment(
    const std::function<std::unique_ptr<TrainableClassifier>()>& make_model,
    const SynthTask& task, const TaskAttackContext& context,
    const AdvTrainingConfig& config) {
  AdvTrainingReport report;
  StopToken& stop = StopToken::instance();

  // ---- Before: clean training + attack ----
  auto model = make_model();
  report.train_before =
      stage_train(make_model, *model, task.train, config,
                  stage_resilience(config.resilience, ".pre"));
  report.termination =
      worse_of(report.termination, report.train_before.termination);
  if (report.termination >= TerminationReason::kStopped) return report;
  report.test_before = classification_accuracy(*model, task.test);
  const AttackEvalResult before =
      evaluate_attack(*model, task, context, config.attack);
  report.adv_before = before.adversarial_accuracy;

  // ---- Generate adversarial training examples ----
  Rng rng(config.seed);
  const auto order = rng.permutation(task.train.docs.size());
  const std::size_t num_augment = static_cast<std::size_t>(
      config.augmentation_fraction *
      static_cast<double>(task.train.docs.size()));
  const AttackResources resources = context.resources();

  Dataset augmented = task.train;
  for (std::size_t i = 0; i < num_augment && i < order.size(); ++i) {
    if (stop.stop_requested()) {
      // Partial augmentation is unusable for the before/after comparison;
      // report the stop and let the caller rerun (training resumes from
      // its snapshots, the augmentation sweep is cheap by comparison).
      report.termination =
          worse_of(report.termination, TerminationReason::kStopped);
      return report;
    }
    const Document& doc = task.train.docs[order[i]];
    const TokenSeq tokens = doc.flatten();
    if (tokens.empty()) continue;
    const std::size_t true_label = static_cast<std::size_t>(doc.label);
    // ADVTEXT_ALLOW(uncharged-forward): harness probe skipping already-misclassified docs; the adversarial queries inside joint_attack are charged to its budget — this filter is not attack cost
    if (model->predict(tokens) != true_label) continue;
    const JointAttackResult attack = joint_attack(
        *model, doc, 1 - true_label, resources, config.attack.joint);
    Document adv = attack.adv_doc;
    adv.label = doc.label;  // corrected label (paper §6.6)
    augmented.docs.push_back(std::move(adv));
    ++report.augmented_examples;
  }

  // ---- After: retrain from scratch on the merged set + attack ----
  auto retrained = make_model();
  report.train_after =
      stage_train(make_model, *retrained, augmented, config,
                  stage_resilience(config.resilience, ".post"));
  report.termination =
      worse_of(report.termination, report.train_after.termination);
  if (report.termination >= TerminationReason::kStopped) return report;
  report.test_after = classification_accuracy(*retrained, task.test);
  const AttackEvalResult after =
      evaluate_attack(*retrained, task, context, config.attack);
  report.adv_after = after.adversarial_accuracy;
  return report;
}

}  // namespace advtext
