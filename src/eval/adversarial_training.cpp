#include "src/eval/adversarial_training.h"

#include "src/eval/metrics.h"
#include "src/util/rng.h"

namespace advtext {

AdvTrainingReport adversarial_training_experiment(
    const std::function<std::unique_ptr<TrainableClassifier>()>& make_model,
    const SynthTask& task, const TaskAttackContext& context,
    const AdvTrainingConfig& config) {
  AdvTrainingReport report;

  // ---- Before: clean training + attack ----
  auto model = make_model();
  train_classifier(*model, task.train, config.train);
  report.test_before = classification_accuracy(*model, task.test);
  const AttackEvalResult before =
      evaluate_attack(*model, task, context, config.attack);
  report.adv_before = before.adversarial_accuracy;

  // ---- Generate adversarial training examples ----
  Rng rng(config.seed);
  const auto order = rng.permutation(task.train.docs.size());
  const std::size_t num_augment = static_cast<std::size_t>(
      config.augmentation_fraction *
      static_cast<double>(task.train.docs.size()));
  const AttackResources resources = context.resources();

  Dataset augmented = task.train;
  for (std::size_t i = 0; i < num_augment && i < order.size(); ++i) {
    const Document& doc = task.train.docs[order[i]];
    const TokenSeq tokens = doc.flatten();
    if (tokens.empty()) continue;
    const std::size_t true_label = static_cast<std::size_t>(doc.label);
    if (model->predict(tokens) != true_label) continue;
    const JointAttackResult attack = joint_attack(
        *model, doc, 1 - true_label, resources, config.attack.joint);
    Document adv = attack.adv_doc;
    adv.label = doc.label;  // corrected label (paper §6.6)
    augmented.docs.push_back(std::move(adv));
    ++report.augmented_examples;
  }

  // ---- After: retrain from scratch on the merged set + attack ----
  auto retrained = make_model();
  train_classifier(*retrained, augmented, config.train);
  report.test_after = classification_accuracy(*retrained, task.test);
  const AttackEvalResult after =
      evaluate_attack(*retrained, task, context, config.attack);
  report.adv_after = after.adversarial_accuracy;
  return report;
}

}  // namespace advtext
