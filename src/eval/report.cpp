#include "src/eval/report.h"

#include <cstdio>
#include <stdexcept>

namespace advtext {

TablePrinter::TablePrinter(std::vector<std::string> headers,
                           std::vector<int> widths)
    : headers_(std::move(headers)), widths_(std::move(widths)) {
  if (headers_.size() != widths_.size()) {
    throw std::invalid_argument("TablePrinter: header/width count mismatch");
  }
}

void TablePrinter::print_rule() const {
  for (int width : widths_) {
    std::printf("+");
    for (int i = 0; i < width + 2; ++i) std::printf("-");
  }
  std::printf("+\n");
}

void TablePrinter::print_header() const {
  print_rule();
  print_row(headers_);
  print_rule();
}

void TablePrinter::print_row(const std::vector<std::string>& cells) const {
  for (std::size_t c = 0; c < widths_.size(); ++c) {
    const std::string& cell = c < cells.size() ? cells[c] : std::string();
    std::printf("| %-*s ", widths_[c], cell.c_str());
  }
  std::printf("|\n");
}

void print_banner(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

}  // namespace advtext
