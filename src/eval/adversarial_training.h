// Adversarial training experiment (paper Table 5).
//
// Generates adversarial examples from a random 20% of the training data
// (Alg. 1 against the clean model), merges them — with their *correct*
// labels — into the training set, retrains from scratch, and reports clean
// test accuracy and adversarial accuracy before and after.
//
// This is the repo's longest single code path (two full training runs plus
// an attack sweep), so it runs under the resilience layer: both training
// stages are supervised (snapshots at `<snapshot_path>.pre` / `.post`,
// divergence rollback, resume) and the augmentation loop polls the
// StopToken so SIGINT/SIGTERM exits cleanly with kStopped instead of
// discarding hours of work.
#pragma once

#include <functional>
#include <memory>

#include "src/eval/pipeline.h"
#include "src/nn/trainer.h"

namespace advtext {

struct AdvTrainingConfig {
  /// Fraction of training documents to generate adversarial examples from.
  double augmentation_fraction = 0.2;
  TrainConfig train;
  AttackEvalConfig attack;
  /// Training resilience policy; snapshot_path (when set) is staged per
  /// phase: "<path>.pre" for the clean model, "<path>.post" for the
  /// retrained one.
  ResilienceConfig resilience;
  /// Data shards for both training stages (1 = serial). Shards > 1 train
  /// replicas from `make_model` in parallel with epoch-boundary parameter
  /// averaging (train_classifier_sharded); deterministic for a fixed shard
  /// count, but a different count is a different (valid) training run.
  std::size_t shards = 1;
  std::uint64_t seed = 99;
};

struct AdvTrainingReport {
  double test_before = 0.0;
  double test_after = 0.0;
  double adv_before = 0.0;
  double adv_after = 0.0;
  std::size_t augmented_examples = 0;
  /// Worst termination across both training stages and the augmentation
  /// loop; kStopped / kError mean the later metrics are partial.
  TerminationReason termination = TerminationReason::kSucceeded;
  TrainReport train_before;
  TrainReport train_after;
};

/// `make_model` builds a fresh untrained classifier (called twice: before
/// and after augmentation, so both models start from the same init).
AdvTrainingReport adversarial_training_experiment(
    const std::function<std::unique_ptr<TrainableClassifier>()>& make_model,
    const SynthTask& task, const TaskAttackContext& context,
    const AdvTrainingConfig& config);

}  // namespace advtext
