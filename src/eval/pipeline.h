// End-to-end attack evaluation pipeline: build attack resources for a task,
// attack a trained classifier over its test set, and aggregate the metrics
// the paper's tables report (clean vs adversarial accuracy, success rate,
// per-document time, replacement counts).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/joint_attack.h"
#include "src/data/synthetic.h"
#include "src/nn/text_classifier.h"
#include "src/util/robust.h"

namespace advtext {

/// Owns the per-task attack resources (paraphrase index, sentence
/// paraphraser, WMD, language model). Build once per task; the referenced
/// SynthTask must outlive this object (the WMD holds a view of its
/// paragram embeddings).
class TaskAttackContext {
 public:
  TaskAttackContext(const SynthTask& task,
                    const WordNeighborConfig& word_config = {},
                    const SentenceParaphraserConfig& sentence_config = {});

  AttackResources resources() const;

  const ParaphraseIndex& word_index() const { return *word_index_; }
  const SentenceParaphraser& paraphraser() const { return *paraphraser_; }
  const Wmd& wmd() const { return *wmd_; }
  const NGramLm& lm() const { return *lm_; }

 private:
  std::unique_ptr<ParaphraseIndex> word_index_;
  std::unique_ptr<SentenceParaphraser> paraphraser_;
  std::unique_ptr<Wmd> wmd_;
  std::unique_ptr<NGramLm> lm_;
};

/// One per-document sweep record — the unit shared by the checkpoint
/// stream, resume replay, and the service layer's streamed job results.
/// Everything the aggregation step consumes is stored raw (doubles
/// bit-exact, flags precomputed), so a resumed run replays to
/// bitwise-identical aggregates without re-running the model.
struct DocRecord {
  std::uint64_t doc_index = 0;  ///< into task.test.docs
  /// 0 = misclassified before the attack, 1 = attacked, 2 = attack threw.
  std::uint64_t kind = 0;
  std::uint64_t retried = 0;
  std::uint64_t wmd_to_sinkhorn = 0;
  std::uint64_t wmd_to_lower = 0;
  std::uint64_t flipped = 0;  ///< kind 1: adv doc changed the prediction
  JointAttackResult attack;   ///< kind 1; kind 2 uses only .termination
  std::string error;          ///< kind 2
};

struct AttackEvalConfig {
  JointAttackConfig joint;
  /// Attack at most this many test documents (0 = all). Documents the
  /// clean model already misclassifies are not attacked (they already
  /// count against adversarial accuracy).
  std::size_t max_docs = 0;
  /// Retry a deadline-killed document once with a relaxed configuration
  /// (4x the deadline, sentence phase disabled) before giving up on it.
  bool retry_relaxed = true;
  /// Periodically persist per-document results to this path (tmp file +
  /// atomic rename); empty disables checkpointing.
  std::string checkpoint_path;
  /// Rewrite the checkpoint after every N evaluated documents.
  std::size_t checkpoint_every = 8;
  /// Replay an existing checkpoint_path before attacking: already-recorded
  /// documents are restored (bitwise-identical aggregates), the run
  /// continues from the first unrecorded document.
  bool resume = false;
  /// With resume: an unreadable/corrupt checkpoint (torn write, bit flip,
  /// bad footer) is dropped and the sweep restarts from scratch instead of
  /// throwing — losing progress, never results. The chaos harness runs the
  /// CLI this way so every fault schedule still converges to the clean
  /// sweep's output.
  bool resume_fallback_fresh = false;
  /// Attack worker threads. 1 (the default) runs the original serial loop;
  /// K > 1 attacks up to K documents concurrently on a sync.h ThreadPool
  /// while records are folded, appended, and checkpointed strictly in
  /// ascending doc_index order — for a deterministic model (no MC dropout)
  /// and no per-doc deadline, results and checkpoint files are
  /// bitwise-identical to the serial run (timing fields excepted), and
  /// serial and parallel runs resume each other's checkpoints.
  std::size_t threads = 1;
  /// Required when threads > 1: builds one independent model replica per
  /// extra worker (worker 0 uses `model` itself). Contract: each call
  /// returns a classifier over the same task whose trained weights are a
  /// bitwise copy of `model`'s (see copy_model_params in nn/checkpoint.h)
  /// and which shares no mutable state with `model` or other replicas.
  /// Stochastic inference (MC dropout) breaks the bitwise guarantee; leave
  /// it disabled for parity-sensitive sweeps. Replicas are charged against
  /// the process MemoryBudget: when the budget cannot cover an extra
  /// replica the sweep degrades its worker count toward serial (results
  /// are bitwise-identical at any worker count, so this is always safe).
  std::function<std::unique_ptr<TextClassifier>()> make_model_replica;
  /// Sweep-wide query cap shared by all workers (0 = unlimited), distinct
  /// from the per-document joint.max_queries. Admission control: once the
  /// accounted total reaches the cap no further document is dispatched
  /// (in-flight documents drain), the run ends kBudgetExhausted with a
  /// valid resumable checkpoint. Accounting is clamped (never exceeds the
  /// cap) and derived from each document's record — pre-attack probe +
  /// kept attack queries + flip recheck — so a resumed run replays the
  /// same charges.
  std::size_t sweep_max_queries = 0;
  /// Whole-sweep wall-clock deadline, the job-granular twin of
  /// sweep_max_queries (served attack jobs get one per admission). Once
  /// expired no further document is dispatched; in-flight documents drain
  /// and the run ends kDeadlineExceeded with a valid resumable checkpoint.
  /// Default-constructed: never expires.
  Deadline sweep_deadline;
  /// Byte budget for the per-worker memoizing query cache (0 disables
  /// caching). Each attack worker owns one cache, cleared at every
  /// document boundary so cached warmth never leaks across documents —
  /// results stay independent of document scheduling (serial == parallel
  /// at any thread count) and bitwise-identical to an uncached run
  /// whenever no per-document max_queries cap binds (cache hits are not
  /// charged to the budget, so a capped attack can afford more work).
  /// The capacity is reserved against the process MemoryBudget with a
  /// halving ladder; under pressure the cache shrinks or disables itself.
  std::size_t query_cache_bytes = 32u << 20;
  /// Streaming hook: invoked once per committed record, strictly in
  /// ascending doc_index order, on the committing (caller's) thread —
  /// replayed checkpoint records first when resuming, then fresh records
  /// as they commit. Must not throw. Fresh records carry measured
  /// attack.seconds; replayed ones carry the original run's values.
  std::function<void(const DocRecord&)> on_commit;
};

struct AttackEvalResult {
  double clean_accuracy = 0.0;
  double adversarial_accuracy = 0.0;
  /// Fraction of attacked (originally correct) documents that flipped.
  double success_rate = 0.0;
  double mean_seconds_per_doc = 0.0;
  double mean_words_changed = 0.0;
  double mean_sentences_changed = 0.0;
  double mean_queries = 0.0;
  std::size_t docs_attacked = 0;
  std::size_t docs_evaluated = 0;
  /// Documents whose attack threw (fault isolation): the original text is
  /// kept, the batch continues. Indices into task.test.docs.
  std::size_t docs_failed = 0;
  std::vector<std::size_t> failed_indices;
  /// Documents retried once with a relaxed config after a deadline kill.
  std::size_t docs_retried = 0;
  /// Documents whose final attack ended on a deadline / query budget.
  std::size_t docs_deadline = 0;
  std::size_t docs_budget = 0;
  /// Checkpoint publishes that failed (disk error, injected ckpt.write
  /// fault). The run continues: a lost checkpoint only costs resume
  /// granularity, never results.
  std::size_t checkpoint_write_failures = 0;
  /// WMD solver degradations (exact->Sinkhorn, ->nBOW bound) accumulated
  /// over the run.
  WmdDegradation wmd_degradations;
  /// Adversarial version of every evaluated test document (unattacked or
  /// failed attacks keep the original text). Labels are the true labels.
  std::vector<Document> adv_docs;
  /// Indices (into adv_docs) of documents that were attacked.
  std::vector<std::size_t> attacked_indices;
  /// Per-attacked-document results, aligned with attacked_indices.
  std::vector<JointAttackResult> attacks;
  /// Why the *sweep* ended: kSucceeded (all requested docs evaluated),
  /// kBudgetExhausted (sweep_max_queries admission stop),
  /// kDeadlineExceeded (sweep_deadline expired), or kStopped (StopToken /
  /// SIGTERM drain) — the worst applicable on the severity lattice.
  /// Per-document failures stay isolated in docs_failed and do not
  /// escalate the sweep termination.
  TerminationReason termination = TerminationReason::kSucceeded;
  /// Accounted queries charged against sweep_max_queries (also filled when
  /// the sweep budget is unlimited; then it is the plain accounted total).
  std::size_t sweep_queries_used = 0;
  /// Query-cache totals over the fresh (non-replayed) attacked documents:
  /// hits were served from the memoizing cache, misses ran the model, and
  /// queries_saved (== cache_hits) counts forward passes avoided. Replayed
  /// checkpoint records contribute zeros — the counters are diagnostics,
  /// not part of the bitwise-stable result surface, and are deliberately
  /// not serialized into checkpoints.
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t queries_saved = 0;
};

/// Attacks the model over task.test. For binary tasks the target label is
/// the complement of the true label (untargeted flip as targeted attack).
AttackEvalResult evaluate_attack(const TextClassifier& model,
                                 const SynthTask& task,
                                 const TaskAttackContext& context,
                                 const AttackEvalConfig& config);

}  // namespace advtext
