// Evaluation metrics shared by the benches.
#pragma once

#include <cstddef>
#include <vector>

#include "src/nn/text_classifier.h"
#include "src/text/corpus.h"

namespace advtext {

/// Fraction of documents whose argmax prediction matches the label.
double classification_accuracy(const TextClassifier& model,
                               const Dataset& data);

/// Accuracy over an explicit document list with ground-truth labels taken
/// from each document.
double classification_accuracy(const TextClassifier& model,
                               const std::vector<Document>& docs);

/// Mean of a vector (0 for empty).
double mean(const std::vector<double>& values);

/// Sample standard deviation (0 for fewer than two values).
double sample_stddev(const std::vector<double>& values);

}  // namespace advtext
