// Simulated human-subject evaluation (paper Table 4).
//
// The paper showed five human raters 60 shuffled original/adversarial
// texts and measured (I) label accuracy under majority vote and (II) a 1-5
// "written by a human" score. Raters are unavailable offline, so this
// module implements a documented deterministic proxy (DESIGN.md §1):
//   * Task I — a rater reads *meaning*: the synthetic task's oracle label
//     (concept polarities, which synonym swaps barely move). When the
//     document's meaning margin is small the rater guesses. Majority vote
//     over raters, as in the paper.
//   * Task II — naturalness from language-model log-perplexity, z-scored
//     against the original documents and mapped to the 1-5 scale around
//     the paper's observed operating point (~3.1), plus per-rater noise.
// The reproduction target is the paper's *finding* — original and
// adversarial texts score nearly the same on both tasks — not the absolute
// rater numbers.
#pragma once

#include <cstdint>
#include <vector>

#include "src/data/synthetic.h"
#include "src/text/ngram_lm.h"

namespace advtext {

struct HumanSimConfig {
  std::size_t num_raters = 5;
  /// Meaning margin (per content word) below which a rater guesses.
  /// Calibrated against the synthetic tasks' mildly-opinionated documents
  /// (margins ~0.03/word): raters commit unless the text is truly flat.
  double uncertainty_margin = 0.02;
  /// Rater noise on the naturalness scale.
  double naturalness_noise = 0.35;
  /// Operating point of the 1-5 scale for typical in-corpus text.
  double naturalness_center = 3.1;
  /// Points per log-perplexity z-score. Kept gentle: the paraphrase
  /// filters only admit candidates the LM already considers fluent, and
  /// the paper's raters scored adversarial texts near the originals.
  double naturalness_slope = 0.5;
  std::uint64_t seed = 1234;
};

struct HumanEvalSide {
  double label_accuracy = 0.0;       ///< Task I, majority vote
  double naturalness_mean = 0.0;     ///< Task II mean
  double naturalness_stddev = 0.0;   ///< Task II sample stddev
};

struct HumanEvalResult {
  HumanEvalSide original;
  HumanEvalSide adversarial;
  std::size_t examples = 0;
};

/// Runs the simulated study over paired documents (originals[i] and
/// adversarials[i] share the same true label, taken from originals[i]).
HumanEvalResult simulate_human_eval(const SynthTask& task, const NGramLm& lm,
                                    const std::vector<Document>& originals,
                                    const std::vector<Document>& adversarials,
                                    const HumanSimConfig& config = {});

}  // namespace advtext
