// Fixed-width table printing for the bench binaries. Every bench prints the
// paper's rows next to our measured values so EXPERIMENTS.md can be filled
// by reading the output.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace advtext {

class TablePrinter {
 public:
  /// Column headers and widths; headers are printed with a separator rule.
  TablePrinter(std::vector<std::string> headers, std::vector<int> widths);

  /// Prints the header block to stdout.
  void print_header() const;

  /// Prints one row (cells beyond the column count are ignored, missing
  /// cells print empty).
  void print_row(const std::vector<std::string>& cells) const;

  /// Prints a horizontal rule.
  void print_rule() const;

 private:
  std::vector<std::string> headers_;
  std::vector<int> widths_;
};

/// Prints a section banner ("== Table 2: ... ==").
void print_banner(const std::string& title);

}  // namespace advtext
