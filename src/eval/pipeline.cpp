#include "src/eval/pipeline.h"

#include <cstdint>
#include <cstdio>
#include <exception>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "src/eval/metrics.h"
#include "src/text/serialize.h"
#include "src/util/io_file.h"
#include "src/util/serialize.h"
#include "src/util/query_cache.h"
#include "src/util/stop_token.h"
#include "src/util/sync.h"

namespace advtext {

TaskAttackContext::TaskAttackContext(
    const SynthTask& task, const WordNeighborConfig& word_config,
    const SentenceParaphraserConfig& sentence_config) {
  word_index_ = std::make_unique<ParaphraseIndex>(task.paragram, word_config);

  // Sentence paraphraser shares the word-neighbour lists with the index.
  std::vector<std::vector<WordId>> neighbors(
      static_cast<std::size_t>(task.vocab.size()));
  for (WordId w = 2; w < task.vocab.size(); ++w) {
    neighbors[static_cast<std::size_t>(w)] = word_index_->neighbors(w);
  }
  paraphraser_ = std::make_unique<SentenceParaphraser>(
      std::move(neighbors), task.is_function_word, sentence_config);
  wmd_ = std::make_unique<Wmd>(task.paragram);
  lm_ = std::make_unique<NGramLm>(task.train,
                                  static_cast<std::size_t>(task.vocab.size()));
}

AttackResources TaskAttackContext::resources() const {
  AttackResources resources;
  resources.word_index = word_index_.get();
  resources.paraphraser = paraphraser_.get();
  resources.wmd = wmd_.get();
  resources.lm = lm_.get();
  return resources;
}

namespace {

constexpr const char* kCheckpointTag = "attack-checkpoint";

void write_checkpoint(const std::string& path,
                      const std::vector<DocRecord>& records) {
  // Serialize to memory, then publish through the checksummed artifact
  // envelope (atomic tmp+fsync+rename, CRC32 + version footer) so a crash
  // mid-write leaves the previous checkpoint valid and a bit-flip is
  // detected at resume time.
  std::ostringstream out;
  {
    io::write_magic(out);
    io::write_string(out, kCheckpointTag);
    io::write_u64(out, records.size());
    for (const DocRecord& r : records) {
      io::write_u64(out, r.doc_index);
      io::write_u64(out, r.kind);
      io::write_u64(out, r.retried);
      io::write_u64(out, r.wmd_to_sinkhorn);
      io::write_u64(out, r.wmd_to_lower);
      if (r.kind == 1) {
        io::write_u64(out, r.flipped);
        io::write_u64(out, r.attack.success ? 1 : 0);
        io::write_u64(out, static_cast<std::uint64_t>(r.attack.termination));
        io::write_double(out, r.attack.final_target_proba);
        io::write_u64(out, r.attack.sentences_changed);
        io::write_u64(out, r.attack.words_changed);
        io::write_u64(out, r.attack.queries);
        io::write_double(out, r.attack.seconds);
        io::write_document(out, r.attack.adv_doc);
      } else if (r.kind == 2) {
        io::write_u64(out, static_cast<std::uint64_t>(r.attack.termination));
        io::write_string(out, r.error);
      }
    }
    if (!out) throw std::runtime_error("pipeline: checkpoint write failed");
  }
  io::save_artifact(path, out.str());
}

TerminationReason read_termination(std::istream& in) {
  const std::uint64_t raw = io::read_u64(in);
  if (raw > static_cast<std::uint64_t>(TerminationReason::kError)) {
    throw std::runtime_error("pipeline: checkpoint has an invalid "
                             "termination reason");
  }
  return static_cast<TerminationReason>(raw);
}

std::vector<DocRecord> read_checkpoint(const std::string& path,
                                       std::size_t num_docs) {
  std::istringstream in(io::load_artifact(path));
  io::read_magic(in);
  if (io::read_string(in) != kCheckpointTag) {
    throw std::runtime_error("pipeline: not an attack checkpoint: " + path);
  }
  const std::uint64_t count = io::read_u64(in);
  if (count > num_docs) {
    throw std::runtime_error(
        "pipeline: checkpoint records exceed the task's document count");
  }
  std::vector<DocRecord> records;
  records.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    DocRecord r;
    r.doc_index = io::read_u64(in);
    const bool ordered =
        records.empty() || r.doc_index > records.back().doc_index;
    if (r.doc_index >= num_docs || !ordered) {
      throw std::runtime_error(
          "pipeline: checkpoint document indices are out of range or "
          "unordered");
    }
    r.kind = io::read_u64(in);
    if (r.kind > 2) {
      throw std::runtime_error("pipeline: checkpoint has an unknown record "
                               "kind");
    }
    r.retried = io::read_u64(in);
    r.wmd_to_sinkhorn = io::read_u64(in);
    r.wmd_to_lower = io::read_u64(in);
    if (r.kind == 1) {
      r.flipped = io::read_u64(in);
      r.attack.success = io::read_u64(in) != 0;
      r.attack.termination = read_termination(in);
      r.attack.final_target_proba = io::read_double(in);
      r.attack.sentences_changed =
          static_cast<std::size_t>(io::read_u64(in));
      r.attack.words_changed = static_cast<std::size_t>(io::read_u64(in));
      r.attack.queries = static_cast<std::size_t>(io::read_u64(in));
      r.attack.seconds = io::read_double(in);
      r.attack.adv_doc = io::read_document(in);
    } else if (r.kind == 2) {
      r.attack.termination = read_termination(in);
      r.error = io::read_string(in);
    }
    records.push_back(std::move(r));
  }
  return records;
}

/// Fault-isolation boundary: a document whose attack throws is recorded as
/// failed and the batch continues. Only std::runtime_error is absorbed —
/// logic errors (contract violations) still abort the whole run.
Outcome<JointAttackResult> run_attack_isolated(
    const TextClassifier& model, const Document& doc, std::size_t target,
    const AttackResources& resources, const JointAttackConfig& joint) {
  try {
    FaultInjector::instance().maybe_fault("pipeline.doc");
    return Outcome<JointAttackResult>(
        joint_attack(model, doc, target, resources, joint));
  } catch (const std::runtime_error& e) {
    return Outcome<JointAttackResult>(
        Failure{TerminationReason::kError, e.what()});
  }
}

/// Queries a record accounts for against the sweep budget: the pre-attack
/// correctness probe, plus — for attacked docs — the kept attack's queries
/// and the post-attack flip recheck. Derived from the record (not from live
/// counters) so a resumed run replays exactly the same charges. A discarded
/// deadline-retry's queries are bounded by the per-doc budget and not
/// re-accounted.
std::size_t record_query_cost(const DocRecord& r) {
  return r.kind == 1 ? 2 + static_cast<std::size_t>(r.attack.queries) : 1;
}

/// Shared state of one parallel sweep: a self-dispatch cursor over the
/// eligible-document list and an in-order commit buffer. Workers claim the
/// next undispatched position, attack it on private resources, and park the
/// finished record in done[pos]; the main thread folds/appends/checkpoints
/// records strictly in ascending position order. halt stops further
/// dispatch (stop request, sweep-budget exhaustion, or a fatal error) while
/// in-flight documents drain, so the committed prefix is always
/// contiguous — exactly what a serial run would have produced.
struct SweepState {
  Mutex mu;
  /// Signalled on every record completion, halt, and worker exit.
  CondVar progress;
  std::size_t next ADVTEXT_GUARDED_BY(mu) = 0;  ///< dispatch cursor
  bool halt ADVTEXT_GUARDED_BY(mu) = false;
  bool stopped ADVTEXT_GUARDED_BY(mu) = false;       ///< StopToken drain
  bool budget_stop ADVTEXT_GUARDED_BY(mu) = false;   ///< sweep cap hit
  bool deadline_stop ADVTEXT_GUARDED_BY(mu) = false;  ///< sweep deadline hit
  std::size_t active ADVTEXT_GUARDED_BY(mu) = 0;     ///< workers running
  std::vector<std::unique_ptr<DocRecord>> done ADVTEXT_GUARDED_BY(mu);
  std::exception_ptr fatal ADVTEXT_GUARDED_BY(mu);   ///< non-runtime_error
};

}  // namespace

AttackEvalResult evaluate_attack(const TextClassifier& model,
                                 const SynthTask& task,
                                 const TaskAttackContext& context,
                                 const AttackEvalConfig& config) {
  AttackEvalResult result;
  result.clean_accuracy = classification_accuracy(model, task.test);

  const AttackResources resources = context.resources();
  std::vector<double> seconds;
  std::vector<double> words_changed;
  std::vector<double> sentences_changed;
  std::vector<double> queries;
  std::size_t flipped = 0;
  std::size_t correct_after = 0;
  const std::size_t attack_budget =
      config.max_docs == 0 ? task.test.docs.size() : config.max_docs;
  // Sweep-wide query cap shared by every worker (0 = unlimited; the
  // accounting still runs so sweep_queries_used is always filled).
  QueryBudget sweep_budget(config.sweep_max_queries);
  const bool sweep_limited = config.sweep_max_queries > 0;

  // Folds one record into the aggregates. Fresh and replayed documents go
  // through the same path, so resume reproduces the uninterrupted run.
  const auto apply_record = [&](const DocRecord& r) {
    ++result.docs_evaluated;
    result.wmd_degradations.to_sinkhorn +=
        static_cast<std::size_t>(r.wmd_to_sinkhorn);
    result.wmd_degradations.to_lower_bound +=
        static_cast<std::size_t>(r.wmd_to_lower);
    if (r.retried != 0) ++result.docs_retried;
    switch (r.kind) {
      case 0:
        // Already misclassified: nothing to attack, counts as incorrect.
        result.adv_docs.push_back(task.test.docs[r.doc_index]);
        break;
      case 2:
        // Attack failed; the unmodified document is still classified
        // correctly (it was checked before the attack).
        ++result.docs_failed;
        result.failed_indices.push_back(
            static_cast<std::size_t>(r.doc_index));
        result.adv_docs.push_back(task.test.docs[r.doc_index]);
        ++correct_after;
        break;
      default: {
        ++result.docs_attacked;
        const JointAttackResult& attack = r.attack;
        seconds.push_back(attack.seconds);
        words_changed.push_back(static_cast<double>(attack.words_changed));
        sentences_changed.push_back(
            static_cast<double>(attack.sentences_changed));
        queries.push_back(static_cast<double>(attack.queries));
        if (attack.termination == TerminationReason::kDeadlineExceeded) {
          ++result.docs_deadline;
        } else if (attack.termination ==
                   TerminationReason::kBudgetExhausted) {
          ++result.docs_budget;
        }
        // Cache counters are in-memory diagnostics (zero on replayed
        // records); every counted query is either a hit or a miss or one
        // of the attacks' explicit uncached forwards.
        ADVTEXT_DCHECK(attack.cache_hits + attack.cache_misses <=
                       attack.queries)
            << "pipeline: cache counters exceed the attack's query count";
        result.cache_hits += attack.cache_hits;
        result.cache_misses += attack.cache_misses;
        if (r.flipped != 0) {
          ++flipped;
        } else {
          ++correct_after;
        }
        result.attacked_indices.push_back(result.adv_docs.size());
        result.adv_docs.push_back(attack.adv_doc);
        result.attacks.push_back(attack);
        break;
      }
    }
    // Stream the committed record out (service layer: per-doc results as
    // they land). Runs for replayed and fresh records alike, in order.
    if (config.on_commit) config.on_commit(r);
  };

  std::vector<DocRecord> records;
  std::size_t resume_from = 0;
  if (config.resume && !config.checkpoint_path.empty()) {
    if (config.resume_fallback_fresh) {
      try {
        records =
            read_checkpoint(config.checkpoint_path, task.test.docs.size());
        // ADVTEXT_ALLOW(severity-drop): nothing to fold — the fresh restart reproduces the uninterrupted result bitwise, so the verdict is unchanged; the loss is resume time, not outcome severity
      } catch (const std::runtime_error&) {
        // Unreadable checkpoint under chaos (torn write, bit flip): drop it
        // and restart the sweep from scratch — the fresh run converges to
        // the same records the uninterrupted run would have produced.
        remove_file(config.checkpoint_path);
        records.clear();
      }
    } else {
      records =
          read_checkpoint(config.checkpoint_path, task.test.docs.size());
    }
    for (const DocRecord& r : records) {
      apply_record(r);
      // Replayed docs re-charge the sweep budget so a resumed capped run
      // honours the cap across the whole logical sweep; the grant itself is
      // irrelevant here (the work already happened in the prior run).
      (void)sweep_budget.charge_up_to(record_query_cost(r));
    }
    if (!records.empty()) {
      resume_from = static_cast<std::size_t>(records.back().doc_index) + 1;
    }
  }

  std::size_t docs_since_checkpoint = 0;
  const auto maybe_checkpoint = [&](bool force) {
    if (config.checkpoint_path.empty()) return;
    if (docs_since_checkpoint == 0) return;
    if (!force && docs_since_checkpoint < config.checkpoint_every) return;
    try {
      write_checkpoint(config.checkpoint_path, records);
      // ADVTEXT_ALLOW(severity-drop): a failed checkpoint costs resume granularity, never results; it is counted in checkpoint_write_failures and surfaced in the report
    } catch (const std::runtime_error&) {
      // Degrade: a failed checkpoint costs resume granularity, not results.
      ++result.checkpoint_write_failures;
      return;
    }
    docs_since_checkpoint = 0;
  };

  // Attacks one document and builds its record. Called with the worker's
  // own model / resources / Wmd — in the serial path those are the primary
  // instances, in the parallel path per-worker replicas. FaultScope tags
  // every injection point fired under it with "@doc<i>", so scoped
  // injection rules hit the same document no matter which thread runs it.
  const auto process_doc = [&](std::size_t doc_index,
                               const TextClassifier& worker_model,
                               const AttackResources& worker_resources,
                               const Wmd& worker_wmd,
                               QueryCache* worker_cache) -> DocRecord {
    const Document& doc = task.test.docs[doc_index];
    FaultScope scope("doc" + std::to_string(doc_index));
    // Fresh cache per document: warmth never leaks across documents, so
    // budget-limited results are independent of document scheduling
    // (serial == parallel at any worker count). A relaxed deadline-retry
    // of the *same* document deliberately keeps the warm cache — the
    // retry replays the same sweeps and the entries are bit-identical to
    // recomputation.
    if (worker_cache != nullptr) worker_cache->clear();
    AttackResources doc_resources = worker_resources;
    doc_resources.query_cache =
        worker_cache != nullptr && worker_cache->enabled() ? worker_cache
                                                           : nullptr;
    DocRecord record;
    record.doc_index = doc_index;
    const std::size_t true_label = static_cast<std::size_t>(doc.label);
    const std::size_t predicted = worker_model.predict(doc.flatten());
    if (predicted == true_label) {
      // Targeted attack at the other class (binary tasks).
      const std::size_t target = 1 - true_label;
      const WmdDegradation before = worker_wmd.degradation();
      Outcome<JointAttackResult> outcome = run_attack_isolated(
          worker_model, doc, target, doc_resources, config.joint);
      if (config.retry_relaxed && config.joint.deadline_ms > 0.0 &&
          outcome.ok() &&
          outcome.value().termination ==
              TerminationReason::kDeadlineExceeded) {
        // One retry with a relaxed budget; keep the retry only if it ran.
        JointAttackConfig relaxed = config.joint;
        relaxed.deadline_ms = config.joint.deadline_ms * 4.0;
        relaxed.enable_sentence = false;
        Outcome<JointAttackResult> second = run_attack_isolated(
            worker_model, doc, target, doc_resources, relaxed);
        record.retried = 1;
        if (second.ok()) outcome = std::move(second);
      }
      const WmdDegradation after = worker_wmd.degradation();
      record.wmd_to_sinkhorn = after.to_sinkhorn - before.to_sinkhorn;
      record.wmd_to_lower = after.to_lower_bound - before.to_lower_bound;
      if (outcome.ok()) {
        record.kind = 1;
        record.attack = std::move(outcome.value());
        record.attack.adv_doc.label = doc.label;  // ground truth unchanged
        record.flipped = worker_model.predict(record.attack.adv_doc.flatten()) !=
                         true_label;
      } else {
        record.kind = 2;
        record.attack.termination = outcome.failure().reason;
        record.error = outcome.failure().message;
      }
    }
    return record;
  };

  // Commits one finished record: fold into the aggregates, append to the
  // checkpoint stream, advance the cadence. The single commit path both
  // loops share — records always land in ascending doc_index order.
  const auto commit_record = [&](DocRecord record) {
    apply_record(record);
    records.push_back(std::move(record));
    ++docs_since_checkpoint;
    maybe_checkpoint(/*force=*/false);
  };

  bool stop_drained = false;
  bool sweep_exhausted = false;
  bool deadline_drained = false;

  if (config.threads <= 1) {
    // ---- Serial sweep (the original path) --------------------------------
    // One cache for the single worker; cleared per document inside
    // process_doc. Constructing with 0 yields a disabled cache.
    QueryCache cache(config.query_cache_bytes);
    for (std::size_t doc_index = resume_from;
         doc_index < task.test.docs.size(); ++doc_index) {
      if (result.docs_evaluated >= attack_budget) break;
      const Document& doc = task.test.docs[doc_index];
      if (doc.flatten().empty()) continue;
      // Both polls sit after the empty-doc skip, mirroring the parallel
      // path where only eligible (non-empty) documents reach dispatch.
      if (StopToken::instance().stop_requested()) {
        stop_drained = true;
        break;
      }
      if (sweep_limited && sweep_budget.exhausted()) {
        sweep_exhausted = true;
        break;
      }
      if (config.sweep_deadline.expired()) {
        deadline_drained = true;
        break;
      }
      DocRecord record =
          process_doc(doc_index, model, resources, context.wmd(), &cache);
      // Post-hoc accounting: the doc already ran, so only the clamped total
      // matters, not the grant.
      (void)sweep_budget.charge_up_to(record_query_cost(record));
      commit_record(std::move(record));
    }
  } else {
    // ---- Parallel sweep: K workers, in-order commit ----------------------
    // Eligible docs = exactly the documents the serial loop would evaluate:
    // from resume_from, skipping empty ones, capped by the remaining doc
    // budget. Precomputing the list makes dispatch order — and therefore
    // the committed prefix — independent of scheduling.
    std::vector<std::size_t> eligible;
    const std::size_t remaining_docs =
        result.docs_evaluated >= attack_budget
            ? 0
            : attack_budget - result.docs_evaluated;
    for (std::size_t doc_index = resume_from;
         doc_index < task.test.docs.size() && eligible.size() < remaining_docs;
         ++doc_index) {
      if (!task.test.docs[doc_index].flatten().empty()) {
        eligible.push_back(doc_index);
      }
    }

    if (!eligible.empty()) {
      std::size_t workers =
          config.threads < eligible.size() ? config.threads : eligible.size();
      ADVTEXT_CHECK(config.make_model_replica != nullptr)
          << "evaluate_attack: threads > 1 requires make_model_replica "
             "(every extra worker needs its own classifier; see "
             "AttackEvalConfig::make_model_replica)";
      // Resource governance: each extra worker costs a model replica.
      // Estimate its footprint from the dominant tensor (the embedding
      // table) and reserve against the process MemoryBudget; a denial
      // degrades the worker count toward serial instead of allocating past
      // the budget — safe, because results are bitwise-identical at any
      // worker count.
      const std::size_t replica_bytes =
          model.embedding_table().size() * sizeof(float) +
          (std::size_t{1} << 16);
      std::vector<MemoryReservation> replica_memory;
      replica_memory.reserve(workers - 1);
      for (std::size_t w = 1; w < workers; ++w) {
        MemoryReservation reserved =
            MemoryReservation::try_acquire(replica_bytes);
        if (!reserved.ok()) break;
        replica_memory.push_back(std::move(reserved));
      }
      workers = 1 + replica_memory.size();
      // Worker 0 attacks with the primary model; workers 1..K-1 get
      // replicas. Each worker also gets its own Wmd copy (fresh tally) so
      // per-doc degradation deltas never mix across threads.
      std::vector<std::unique_ptr<TextClassifier>> replicas;
      replicas.reserve(workers - 1);
      for (std::size_t w = 1; w < workers; ++w) {
        replicas.push_back(config.make_model_replica());
        ADVTEXT_CHECK(replicas.back() != nullptr)
            << "evaluate_attack: make_model_replica returned null";
      }
      std::vector<Wmd> worker_wmds;
      worker_wmds.reserve(workers);
      for (std::size_t w = 0; w < workers; ++w) {
        worker_wmds.emplace_back(context.wmd());
      }
      // One private query cache per worker (QueryCache is not thread-safe
      // by design); each is cleared at every document boundary, so results
      // are identical at any worker count.
      std::vector<std::unique_ptr<QueryCache>> worker_caches;
      worker_caches.reserve(workers);
      for (std::size_t w = 0; w < workers; ++w) {
        worker_caches.push_back(
            std::make_unique<QueryCache>(config.query_cache_bytes));
      }

      SweepState st;
      st.done.resize(eligible.size());
      {
        MutexLock lock(st.mu);
        st.active = workers;
      }

      const auto worker_loop = [&](std::size_t worker_id) {
        const TextClassifier& worker_model =
            worker_id == 0 ? model : *replicas[worker_id - 1];
        AttackResources worker_resources = resources;
        worker_resources.wmd = &worker_wmds[worker_id];
        Heartbeat* const heart = ThreadPool::current();
        while (true) {
          // Each dispatch round is observable progress for any watchdog
          // over this pool (per-doc granularity).
          if (heart != nullptr) heart->beat();
          std::size_t pos = 0;
          {
            MutexLock lock(st.mu);
            if (st.halt || st.next >= eligible.size()) break;
            if (StopToken::instance().stop_requested()) {
              st.halt = true;
              st.stopped = true;
              st.progress.notify_all();
              break;
            }
            if (sweep_limited && sweep_budget.exhausted()) {
              st.halt = true;
              st.budget_stop = true;
              st.progress.notify_all();
              break;
            }
            if (config.sweep_deadline.expired()) {
              st.halt = true;
              st.deadline_stop = true;
              st.progress.notify_all();
              break;
            }
            pos = st.next++;
          }
          try {
            DocRecord record =
                process_doc(eligible[pos], worker_model, worker_resources,
                            worker_wmds[worker_id],
                            worker_caches[worker_id].get());
            // Post-hoc accounting, as in the serial sweep: grant unused.
            (void)sweep_budget.charge_up_to(record_query_cost(record));
            MutexLock lock(st.mu);
            st.done[pos] = std::make_unique<DocRecord>(std::move(record));
            st.progress.notify_all();
          } catch (...) {
            // Anything escaping process_doc is a contract violation
            // (runtime errors were absorbed per-doc): stop dispatch, stash
            // for the main thread, let the sweep drain.
            MutexLock lock(st.mu);
            if (!st.fatal) st.fatal = std::current_exception();
            st.halt = true;
            st.progress.notify_all();
            break;
          }
        }
        MutexLock lock(st.mu);
        --st.active;
        st.progress.notify_all();
      };

      std::exception_ptr fatal;
      {
        ThreadPool pool(workers);
        for (std::size_t w = 0; w < workers; ++w) {
          // A fresh pool never rejects; the return only matters at shutdown.
          (void)pool.submit([&worker_loop, w] { worker_loop(w); });
        }
        // In-order commit: block on the next position until its record (or
        // the news that it will never come) arrives. Folding and
        // checkpointing happen only here, on this thread, in doc order.
        for (std::size_t commit = 0; commit < eligible.size(); ++commit) {
          std::unique_ptr<DocRecord> record;
          {
            MutexLock lock(st.mu);
            while (st.done[commit] == nullptr && st.active > 0) {
              st.progress.wait(st.mu);
            }
            if (st.done[commit] == nullptr) break;  // halted before this doc
            record = std::move(st.done[commit]);
          }
          commit_record(std::move(*record));
        }
        pool.wait_idle();
        MutexLock lock(st.mu);
        stop_drained = st.stopped;
        sweep_exhausted = st.budget_stop;
        deadline_drained = st.deadline_stop;
        fatal = st.fatal;
      }
      // Propagate contract violations exactly like the serial loop would
      // have (periodic checkpoints already persisted the committed prefix).
      if (fatal) std::rethrow_exception(fatal);
    }
  }
  maybe_checkpoint(/*force=*/true);

  // Fold every applicable stop cause through the severity lattice: a sweep
  // that hit its budget, blew its deadline, *and* was signalled reports the
  // worst of the three (kStopped), matching the service layer's job-outcome
  // mapping.
  result.termination = TerminationReason::kSucceeded;
  if (sweep_exhausted) {
    result.termination =
        worse_of(result.termination, TerminationReason::kBudgetExhausted);
  }
  if (deadline_drained) {
    result.termination =
        worse_of(result.termination, TerminationReason::kDeadlineExceeded);
  }
  if (stop_drained) {
    result.termination =
        worse_of(result.termination, TerminationReason::kStopped);
  }
  result.sweep_queries_used = sweep_budget.used();
  // Every cache hit is one forward pass the sweep did not run.
  result.queries_saved = result.cache_hits;

  result.adversarial_accuracy =
      result.docs_evaluated == 0
          ? 0.0
          : static_cast<double>(correct_after) /
                static_cast<double>(result.docs_evaluated);
  result.success_rate =
      result.docs_attacked == 0
          ? 0.0
          : static_cast<double>(flipped) /
                static_cast<double>(result.docs_attacked);
  result.mean_seconds_per_doc = mean(seconds);
  result.mean_words_changed = mean(words_changed);
  result.mean_sentences_changed = mean(sentences_changed);
  result.mean_queries = mean(queries);
  return result;
}

}  // namespace advtext
