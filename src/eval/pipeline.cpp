#include "src/eval/pipeline.h"

#include "src/eval/metrics.h"

namespace advtext {

TaskAttackContext::TaskAttackContext(
    const SynthTask& task, const WordNeighborConfig& word_config,
    const SentenceParaphraserConfig& sentence_config) {
  word_index_ = std::make_unique<ParaphraseIndex>(task.paragram, word_config);

  // Sentence paraphraser shares the word-neighbour lists with the index.
  std::vector<std::vector<WordId>> neighbors(
      static_cast<std::size_t>(task.vocab.size()));
  for (WordId w = 2; w < task.vocab.size(); ++w) {
    neighbors[static_cast<std::size_t>(w)] = word_index_->neighbors(w);
  }
  paraphraser_ = std::make_unique<SentenceParaphraser>(
      std::move(neighbors), task.is_function_word, sentence_config);
  wmd_ = std::make_unique<Wmd>(task.paragram);
  lm_ = std::make_unique<NGramLm>(task.train,
                                  static_cast<std::size_t>(task.vocab.size()));
}

AttackResources TaskAttackContext::resources() const {
  AttackResources resources;
  resources.word_index = word_index_.get();
  resources.paraphraser = paraphraser_.get();
  resources.wmd = wmd_.get();
  resources.lm = lm_.get();
  return resources;
}

AttackEvalResult evaluate_attack(const TextClassifier& model,
                                 const SynthTask& task,
                                 const TaskAttackContext& context,
                                 const AttackEvalConfig& config) {
  AttackEvalResult result;
  result.clean_accuracy = classification_accuracy(model, task.test);

  const AttackResources resources = context.resources();
  std::vector<double> seconds;
  std::vector<double> words_changed;
  std::vector<double> sentences_changed;
  std::vector<double> queries;
  std::size_t flipped = 0;
  std::size_t correct_after = 0;
  std::size_t attack_budget =
      config.max_docs == 0 ? task.test.docs.size() : config.max_docs;

  for (const Document& doc : task.test.docs) {
    if (result.docs_evaluated >= attack_budget) break;
    const TokenSeq tokens = doc.flatten();
    if (tokens.empty()) continue;
    ++result.docs_evaluated;

    const std::size_t true_label = static_cast<std::size_t>(doc.label);
    const std::size_t predicted = model.predict(tokens);
    if (predicted != true_label) {
      // Already misclassified: nothing to attack, counts as incorrect.
      result.adv_docs.push_back(doc);
      continue;
    }
    // Targeted attack at the other class (binary tasks).
    const std::size_t target = 1 - true_label;
    const JointAttackResult attack =
        joint_attack(model, doc, target, resources, config.joint);
    ++result.docs_attacked;
    seconds.push_back(attack.seconds);
    words_changed.push_back(static_cast<double>(attack.words_changed));
    sentences_changed.push_back(
        static_cast<double>(attack.sentences_changed));
    queries.push_back(static_cast<double>(attack.queries));

    Document adv = attack.adv_doc;
    adv.label = doc.label;  // ground truth is unchanged by the attack
    const bool still_correct =
        model.predict(adv.flatten()) == true_label;
    if (!still_correct) {
      ++flipped;
    } else {
      ++correct_after;
    }
    result.attacked_indices.push_back(result.adv_docs.size());
    result.adv_docs.push_back(std::move(adv));
    result.attacks.push_back(attack);
  }

  result.adversarial_accuracy =
      result.docs_evaluated == 0
          ? 0.0
          : static_cast<double>(correct_after) /
                static_cast<double>(result.docs_evaluated);
  result.success_rate =
      result.docs_attacked == 0
          ? 0.0
          : static_cast<double>(flipped) /
                static_cast<double>(result.docs_attacked);
  result.mean_seconds_per_doc = mean(seconds);
  result.mean_words_changed = mean(words_changed);
  result.mean_sentences_changed = mean(sentences_changed);
  result.mean_queries = mean(queries);
  return result;
}

}  // namespace advtext
