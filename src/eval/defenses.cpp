#include "src/eval/defenses.h"

#include <stdexcept>

namespace advtext {

SynonymSmoothing::SynonymSmoothing(
    const TextClassifier& base, std::vector<std::vector<WordId>> neighbors,
    const SynonymSmoothingConfig& config)
    : base_(base),
      neighbors_(std::move(neighbors)),
      config_(config),
      rng_(config.seed) {
  if (config_.samples == 0) {
    throw std::invalid_argument("SynonymSmoothing: samples must be >= 1");
  }
}

TokenSeq SynonymSmoothing::randomize(const TokenSeq& tokens) const {
  TokenSeq out = tokens;
  for (WordId& w : out) {
    if (w < 0 || static_cast<std::size_t>(w) >= neighbors_.size()) continue;
    const auto& options = neighbors_[static_cast<std::size_t>(w)];
    if (options.empty() || !rng_.bernoulli(config_.substitution_rate)) {
      continue;
    }
    w = options[rng_.uniform_index(options.size())];
  }
  return out;
}

Vector SynonymSmoothing::predict_proba(const TokenSeq& tokens) const {
  Vector mean(num_classes(), 0.0f);
  for (std::size_t s = 0; s < config_.samples; ++s) {
    const Vector p = base_.predict_proba(randomize(tokens));
    for (std::size_t c = 0; c < mean.size(); ++c) mean[c] += p[c];
  }
  for (float& v : mean) v /= static_cast<float>(config_.samples);
  return mean;
}

Matrix SynonymSmoothing::input_gradient(const TokenSeq& tokens,
                                        std::size_t target,
                                        Vector* proba) const {
  Matrix mean_grad(tokens.size(), embedding_dim());
  Vector mean_proba(num_classes(), 0.0f);
  for (std::size_t s = 0; s < config_.samples; ++s) {
    Vector p;
    const Matrix g =
        base_.input_gradient(randomize(tokens), target, &p);
    for (std::size_t i = 0; i < mean_grad.size(); ++i) {
      mean_grad.data()[i] += g.data()[i];
    }
    for (std::size_t c = 0; c < p.size(); ++c) mean_proba[c] += p[c];
  }
  const float scale = 1.0f / static_cast<float>(config_.samples);
  for (std::size_t i = 0; i < mean_grad.size(); ++i) {
    mean_grad.data()[i] *= scale;
  }
  for (float& v : mean_proba) v *= scale;
  if (proba != nullptr) *proba = mean_proba;
  return mean_grad;
}

EnsembleClassifier::EnsembleClassifier(
    std::vector<const TextClassifier*> members)
    : members_(std::move(members)) {
  if (members_.empty()) {
    throw std::invalid_argument("EnsembleClassifier: no members");
  }
  for (const TextClassifier* member : members_) {
    if (member->num_classes() != members_.front()->num_classes()) {
      throw std::invalid_argument(
          "EnsembleClassifier: num_classes mismatch");
    }
  }
}

Vector EnsembleClassifier::predict_proba(const TokenSeq& tokens) const {
  Vector mean(num_classes(), 0.0f);
  for (const TextClassifier* member : members_) {
    const Vector p = member->predict_proba(tokens);
    for (std::size_t c = 0; c < mean.size(); ++c) mean[c] += p[c];
  }
  for (float& v : mean) v /= static_cast<float>(members_.size());
  return mean;
}

Matrix EnsembleClassifier::input_gradient(const TokenSeq& tokens,
                                          std::size_t target,
                                          Vector* proba) const {
  // Members may differ in embedding dimension only if they share the same
  // table; in practice the ensemble is built over one task's paragram.
  Matrix mean_grad(tokens.size(), embedding_dim());
  Vector mean_proba(num_classes(), 0.0f);
  for (const TextClassifier* member : members_) {
    Vector p;
    const Matrix g = member->input_gradient(tokens, target, &p);
    if (g.cols() == mean_grad.cols()) {
      for (std::size_t i = 0; i < mean_grad.size(); ++i) {
        mean_grad.data()[i] += g.data()[i];
      }
    }
    for (std::size_t c = 0; c < p.size(); ++c) mean_proba[c] += p[c];
  }
  const float scale = 1.0f / static_cast<float>(members_.size());
  for (std::size_t i = 0; i < mean_grad.size(); ++i) {
    mean_grad.data()[i] *= scale;
  }
  for (float& v : mean_proba) v *= scale;
  if (proba != nullptr) *proba = mean_proba;
  return mean_grad;
}

}  // namespace advtext
