#include "src/eval/human_sim.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/eval/metrics.h"
#include "src/util/rng.h"

namespace advtext {

namespace {

double clamp_scale(double v) { return std::clamp(v, 1.0, 5.0); }

}  // namespace

HumanEvalResult simulate_human_eval(const SynthTask& task, const NGramLm& lm,
                                    const std::vector<Document>& originals,
                                    const std::vector<Document>& adversarials,
                                    const HumanSimConfig& config) {
  if (originals.size() != adversarials.size()) {
    throw std::invalid_argument("simulate_human_eval: size mismatch");
  }
  HumanEvalResult result;
  result.examples = originals.size();
  if (originals.empty()) return result;
  Rng rng(config.seed);

  // Calibrate the naturalness scale on the original documents.
  std::vector<double> log_ppls;
  for (const Document& doc : originals) {
    log_ppls.push_back(std::log(std::max(lm.perplexity(doc), 1.0)));
  }
  const double center = mean(log_ppls);
  const double spread = std::max(sample_stddev(log_ppls), 1e-3);

  auto evaluate_side = [&](const std::vector<Document>& docs,
                           const std::vector<int>& true_labels) {
    HumanEvalSide side;
    std::size_t correct = 0;
    std::vector<double> scores;
    for (std::size_t i = 0; i < docs.size(); ++i) {
      const Document& doc = docs[i];
      // Task I: majority vote over raters.
      std::size_t votes_for_one = 0;
      const int oracle = task.oracle_label(doc);
      const double margin = task.oracle_margin(doc);
      for (std::size_t r = 0; r < config.num_raters; ++r) {
        int vote = oracle;
        if (margin < config.uncertainty_margin) {
          vote = rng.bernoulli(0.5) ? 1 : 0;
        }
        votes_for_one += static_cast<std::size_t>(vote);
      }
      const int majority =
          votes_for_one * 2 >= config.num_raters ? 1 : 0;
      if (majority == true_labels[i]) ++correct;

      // Task II: average naturalness over raters.
      const double z =
          (std::log(std::max(lm.perplexity(doc), 1.0)) - center) / spread;
      double total = 0.0;
      for (std::size_t r = 0; r < config.num_raters; ++r) {
        // ADVTEXT_ALLOW(float-accum): each term draws from the rng, so the order is pinned to the rater sampling order
        total += clamp_scale(config.naturalness_center -
                             config.naturalness_slope * z +
                             rng.normal(0.0, config.naturalness_noise));
      }
      scores.push_back(total / static_cast<double>(config.num_raters));
    }
    side.label_accuracy =
        static_cast<double>(correct) / static_cast<double>(docs.size());
    side.naturalness_mean = mean(scores);
    side.naturalness_stddev = sample_stddev(scores);
    return side;
  };

  std::vector<int> labels;
  labels.reserve(originals.size());
  for (const Document& doc : originals) labels.push_back(doc.label);
  result.original = evaluate_side(originals, labels);
  result.adversarial = evaluate_side(adversarials, labels);
  return result;
}

}  // namespace advtext
