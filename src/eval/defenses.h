// Inference-time defenses (extensions beyond the paper's §6.6).
//
// The paper evaluates one defense: adversarial training. Two standard
// inference-time defenses from the later literature complete the picture
// and exercise the attack framework's black-box path (both wrap any
// TextClassifier, and both are attackable through the same interface):
//
//   * SynonymSmoothing — randomized smoothing for discrete text: each
//     forward pass averages the base model over `samples` randomized
//     copies of the input in which every word is re-substituted by a
//     random in-vocabulary synonym with probability `substitution_rate`.
//     Word-substitution attacks must now move the *expected* prediction
//     over the synonym neighbourhood, which blunts single-word leverage.
//   * EnsembleClassifier — soft-voting over independently trained models;
//     transfers of a single-model attack only partially fool the others.
#pragma once

#include <memory>
#include <vector>

#include "src/nn/text_classifier.h"
#include "src/util/rng.h"

namespace advtext {

struct SynonymSmoothingConfig {
  std::size_t samples = 8;          ///< randomized copies per forward
  double substitution_rate = 0.25;  ///< P(word is re-substituted)
  std::uint64_t seed = 31337;
};

/// Randomized-smoothing wrapper. `neighbors[w]` lists the words that may
/// replace w (e.g. from ParaphraseIndex); empty list = w never changes.
class SynonymSmoothing final : public TextClassifier {
 public:
  SynonymSmoothing(const TextClassifier& base,
                   std::vector<std::vector<WordId>> neighbors,
                   const SynonymSmoothingConfig& config = {});

  std::size_t num_classes() const override { return base_.num_classes(); }
  std::size_t embedding_dim() const override {
    return base_.embedding_dim();
  }
  const Matrix& embedding_table() const override {
    return base_.embedding_table();
  }

  /// Mean probability over randomized copies (stochastic).
  Vector predict_proba(const TokenSeq& tokens) const override;

  /// Gradient of the smoothed objective, estimated by averaging the base
  /// model's gradient over randomized copies (gradients live at the
  /// *original* positions; substituted positions contribute their copy's
  /// gradient row, a standard straight-through estimate).
  Matrix input_gradient(const TokenSeq& tokens, std::size_t target,
                        Vector* proba = nullptr) const override;

 private:
  TokenSeq randomize(const TokenSeq& tokens) const;

  const TextClassifier& base_;
  std::vector<std::vector<WordId>> neighbors_;
  SynonymSmoothingConfig config_;
  mutable Rng rng_;
};

/// Soft-voting ensemble over base classifiers (all must agree on
/// num_classes / embedding table).
class EnsembleClassifier final : public TextClassifier {
 public:
  explicit EnsembleClassifier(std::vector<const TextClassifier*> members);

  std::size_t num_classes() const override {
    return members_.front()->num_classes();
  }
  std::size_t embedding_dim() const override {
    return members_.front()->embedding_dim();
  }
  const Matrix& embedding_table() const override {
    return members_.front()->embedding_table();
  }

  Vector predict_proba(const TokenSeq& tokens) const override;
  Matrix input_gradient(const TokenSeq& tokens, std::size_t target,
                        Vector* proba = nullptr) const override;

 private:
  std::vector<const TextClassifier*> members_;
};

}  // namespace advtext
