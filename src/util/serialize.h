// Binary serialization primitives for experiment artifacts.
//
// A reproduction repo lives and dies by reproducibility: the io:: layer
// persists matrices, vocabularies, synthetic tasks and trained model
// parameters to a simple tagged little-endian binary format so that a
// trained classifier (or a generated task) can be saved once and attacked
// many times — the workflow the CLI tool (examples/advtext_cli) exposes.
//
// This header is the *bottom* of that layer: the envelope (magic, CRC
// footer), untyped primitives (u64/double/string/float buffers) and raw
// parameter checkpoints. Serializers for typed composites live next to the
// types they serialize — src/tensor/serialize.h (Matrix/Vector),
// src/text/serialize.h (Vocab/Document/Dataset) and src/data/serialize.h
// (SynthTask) — so src/util/ never includes upward in the layering DAG.
//
// Format: every file starts with a 8-byte magic ("ADVTEXT1"), then a
// sequence of tagged fields written by the functions below. No attempt is
// made at cross-endian portability (the experiments are single-machine).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace advtext {

namespace io {

/// File-level magic / version tag.
inline constexpr char kMagic[8] = {'A', 'D', 'V', 'T', 'E', 'X', 'T', '1'};

// ---- Corruption-safe artifact envelope -------------------------------------
//
// Durable artifacts (tasks, trained parameters, eval checkpoints, training
// snapshots) are wrapped in an integrity footer appended after the payload:
//
//   [payload bytes][u32 crc32(payload)][u32 format version][8-byte footer magic]
//
// The footer lives at the *end* so a truncated file loses it and is rejected
// outright, and a bit-flip anywhere in the payload fails the checksum. Files
// written before the footer existed (seed-era artifacts) are still accepted
// — the loader falls back to treating the whole file as payload and warns
// once per process.

/// Trailing marker identifying a checksummed artifact.
inline constexpr char kFooterMagic[8] = {'A', 'D', 'V', 'T', 'F', 'T', 'R',
                                         '1'};

/// Current artifact format version ('1' = seed-era, footer-less files).
inline constexpr std::uint32_t kArtifactVersion = 2;

/// CRC-32 (IEEE 802.3, reflected) over a byte range.
std::uint32_t crc32(const void* data, std::size_t size);

/// What the loader found at the end of the file.
struct ArtifactInfo {
  bool checksummed = false;       ///< false = accepted legacy artifact
  std::uint32_t version = 1;      ///< footer version (1 for legacy files)
};

/// Publishes `payload` + integrity footer atomically (AtomicFileWriter).
/// Fault-injection site: "ckpt.write".
void save_artifact(const std::string& path, const std::string& payload);

/// Reads `path` and returns the payload bytes. A present footer is verified
/// (CRC mismatch, truncated footer, or unknown future version throw
/// std::runtime_error naming the file); an absent footer is accepted as a
/// seed-era artifact with a once-per-process warning. Fault-injection site:
/// "ckpt.read".
[[nodiscard]] std::string load_artifact(const std::string& path,
                                        ArtifactInfo* info = nullptr);

/// Number of footer-less (seed-era) artifacts accepted so far; lets tests
/// assert the backward-compatible path actually ran.
std::size_t legacy_artifact_loads();

// ---- Allocation guards for length-prefixed reads ---------------------------
//
// A single flipped byte in a u64 length field would otherwise drive a
// multi-GB resize (or a signed overflow) before the stream even reports
// truncation; every size read off disk goes through read_size with a
// per-field cap and the field name in the error. The caps are shared by the
// composite serializers in tensor/, text/ and data/.

inline constexpr std::uint64_t kMaxStringBytes = 1ULL << 26;  // 64 MiB
inline constexpr std::uint64_t kMaxElements = 1ULL << 28;     // 256M scalars
inline constexpr std::uint64_t kMaxMatrixSide = 1ULL << 24;   // 16M rows/cols
inline constexpr std::uint64_t kMaxSequences = 1ULL << 24;    // docs/sentences

/// Reads a u64 length field and throws std::runtime_error (naming `field`)
/// if it exceeds `limit` — corrupt files must fail before they allocate.
std::uint64_t read_size(std::istream& in, const char* field,
                        std::uint64_t limit);

// ---- Primitive writers/readers (throw std::runtime_error on failure) ----

void write_magic(std::ostream& out);
void read_magic(std::istream& in);

void write_u64(std::ostream& out, std::uint64_t value);
std::uint64_t read_u64(std::istream& in);

void write_double(std::ostream& out, double value);
double read_double(std::istream& in);

void write_string(std::ostream& out, const std::string& value);
std::string read_string(std::istream& in);

void write_floats(std::ostream& out, const float* data, std::size_t count);
void read_floats(std::istream& in, float* data, std::size_t count);

// ---- Untyped buffer writers/readers ----------------------------------------

void write_doubles(std::ostream& out, const std::vector<double>& values);
std::vector<double> read_doubles(std::istream& in);

void write_ints(std::ostream& out, const std::vector<int>& values);
std::vector<int> read_ints(std::istream& in);

void write_bools(std::ostream& out, const std::vector<bool>& values);
std::vector<bool> read_bools(std::istream& in);

// ---- Parameter checkpoints -------------------------------------------------

/// Saves / loads raw parameter buffers (any TrainableClassifier exposes
/// them through params()). The caller is responsible for constructing the
/// model with matching architecture before loading.
void save_parameters(const std::vector<std::pair<const float*, std::size_t>>&
                         tensors,
                     const std::string& path);
void load_parameters(
    const std::vector<std::pair<float*, std::size_t>>& tensors,
    const std::string& path);

}  // namespace io
}  // namespace advtext
