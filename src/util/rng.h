// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every stochastic component in advtext (data synthesis, weight init,
// dropout, negative sampling, stochastic greedy) takes an explicit Rng so
// that a single seed reproduces an entire experiment end to end. The
// generator is xoshiro256**, seeded through splitmix64, matching the
// reference implementations by Blackman & Vigna.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace advtext {

/// Serializable generator state: the four xoshiro words plus the Box-Muller
/// cache (bit-cast to u64) and its valid flag. Opaque to callers; produced
/// by Rng::state() and consumed by Rng::set_state() so training snapshots
/// can resume a random stream mid-sequence bitwise-identically.
using RngState = std::array<std::uint64_t, 6>;

/// Counter-based seeding helper: expands one 64-bit seed into a stream of
/// well-mixed 64-bit values. Used to seed Rng and to derive child seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next 64-bit value in the stream.
  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator so it can be
/// used with <random> distributions, though advtext mostly uses the typed
/// helpers below for speed and cross-platform determinism.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds via splitmix64 so that nearby seeds yield uncorrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next_u64(); }

  /// Raw 64 bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling so
  /// the distribution is exactly uniform.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box-Muller (cached second value).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Samples an index proportionally to the given non-negative weights.
  /// Requires at least one strictly positive weight.
  std::size_t categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of [first, last) index order; returns a permuted
  /// index vector of size n.
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derives an independent child generator; child streams do not overlap
  /// with the parent for practical experiment sizes.
  Rng fork();

  /// Captures the complete generator state for snapshots.
  RngState state() const;

  /// Restores a state captured by state(); the stream continues exactly
  /// where the captured generator left off.
  void set_state(const RngState& state);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace advtext
