// Robustness layer: deadlines, query budgets, typed failure outcomes and a
// deterministic fault-injection harness.
//
// The paper's headline claim is wall-clock efficiency (Tables 2/4 report
// per-document attack time and query counts), so every long-running path in
// advtext must be *bounded* and *interruptible*: a single slow or throwing
// document must never kill a table run. This header provides the shared
// vocabulary:
//
//   * Deadline      — absolute monotonic wall-clock limit, checked at every
//                     greedy step (the production "deadline propagation"
//                     pattern: one Deadline is created per document and
//                     passed down through both attack phases and the WMD
//                     transport solves).
//   * QueryBudget   — bound on classifier forward evaluations, the
//                     budgeted-greedy framing of Mirzasoleiman et al.;
//                     shared across the sentence and word phases of Alg. 1.
//   * TerminationReason / Failure / Outcome<T>
//                   — why a bounded computation stopped, and a typed
//                     value-or-failure result for isolation boundaries.
//   * FaultInjector — singleton with named injection points that can
//                     probabilistically throw, delay, or NaN-poison,
//                     seeded through advtext::rng so failure schedules are
//                     reproducible. Drives tests/robustness_test.cpp and
//                     the CI fault-injection leg (ADVTEXT_INJECT=all:0.05).
//
// Timing policy (enforced by tools/lint.py rule `raw-clock`): no src/ file
// outside util/ reads std::chrono clocks directly; all timing flows through
// Stopwatch and Deadline so fault injection and determinism stay possible.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <variant>
#include <vector>

#include "src/util/check.h"
#include "src/util/rng.h"
#include "src/util/sync.h"

namespace advtext {

/// Why a bounded computation returned. Ordered by severity: larger values
/// are worse, so callers can aggregate with worse_of() and assert
/// "kDeadlineExceeded or better".
enum class TerminationReason : int {
  kSucceeded = 0,           ///< reached its goal (e.g. τ crossed)
  kExhaustedCandidates = 1, ///< natural stop: no improving move left
  kBudgetExhausted = 2,     ///< query budget hit; best-so-far returned
  kDeadlineExceeded = 3,    ///< wall-clock deadline hit; best-so-far returned
  kStopped = 4,             ///< cooperative shutdown (StopToken / step cap);
                            ///< state flushed, work resumable
  kError = 5,               ///< exception / injected fault; work isolated
};

/// Severity-max aggregation over phases.
inline TerminationReason worse_of(TerminationReason a, TerminationReason b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

/// Stable short name ("succeeded", "deadline_exceeded", ...).
const char* to_string(TerminationReason reason);

/// Absolute wall-clock limit on the monotonic clock. Value type: copy it
/// freely down a call chain ("deadline propagation"); every copy refers to
/// the same absolute instant. A default-constructed Deadline never expires.
class Deadline {
 public:
  /// Unlimited (never expires).
  Deadline() : unlimited_(true), when_() {}

  /// Expires `ms` milliseconds from now. Non-positive values are already
  /// expired (useful in tests).
  static Deadline after_ms(double ms);

  /// Never expires.
  static Deadline unlimited() { return Deadline(); }

  bool is_unlimited() const { return unlimited_; }

  /// True once the monotonic clock passes the limit. O(1); cheap enough to
  /// call once per candidate evaluation (a clock read against a model
  /// forward pass).
  bool expired() const {
    return !unlimited_ && std::chrono::steady_clock::now() >= when_;
  }

  /// Milliseconds until expiry (+inf when unlimited, <= 0 when expired).
  double remaining_ms() const;

 private:
  bool unlimited_;
  std::chrono::steady_clock::time_point when_;
};

/// Bound on model forward evaluations (the query-count metric the paper
/// reports). Shared across attack phases: joint_attack owns one and both
/// phases charge it. A limit of 0 means unlimited.
///
/// Thread-safe by construction: the usage counter is a per-instance atomic,
/// so one budget may be shared as a cap across parallel attack workers
/// (evaluate_attack's sweep budget). Plain charge() is a relaxed add — the
/// accounted total can briefly overshoot the limit by in-flight work;
/// charge_up_to() is the clamped variant whose accounted total can never
/// exceed the limit. Not copyable (atomics pin the identity: a copy would
/// silently fork the pool).
class QueryBudget {
 public:
  explicit QueryBudget(std::size_t limit = 0) : limit_(limit) {}

  QueryBudget(const QueryBudget&) = delete;
  QueryBudget& operator=(const QueryBudget&) = delete;

  void charge(std::size_t n = 1) {
    used_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Atomically charges min(n, remaining()) and returns the amount actually
  /// charged, so concurrent chargers can never push the accounted total past
  /// the limit. Unlimited budgets charge and return n. [[nodiscard]]: a
  /// caller that ignores the grant cannot know how much work it is allowed
  /// to account — use charge() for fire-and-forget accounting.
  [[nodiscard]] std::size_t charge_up_to(std::size_t n) {
    if (limit_ == 0) {
      used_.fetch_add(n, std::memory_order_relaxed);
      return n;
    }
    std::size_t current = used_.load(std::memory_order_relaxed);
    while (true) {
      if (current >= limit_) return 0;
      const std::size_t room = limit_ - current;
      const std::size_t grant = n < room ? n : room;
      if (used_.compare_exchange_weak(current, current + grant,
                                      std::memory_order_relaxed)) {
        return grant;
      }
    }
  }

  bool exhausted() const {
    return limit_ != 0 && used_.load(std::memory_order_relaxed) >= limit_;
  }

  std::size_t used() const { return used_.load(std::memory_order_relaxed); }
  std::size_t limit() const { return limit_; }

  /// Queries left before exhaustion (max size_t when unlimited).
  std::size_t remaining() const {
    if (limit_ == 0) return std::numeric_limits<std::size_t>::max();
    const std::size_t u = used_.load(std::memory_order_relaxed);
    return u >= limit_ ? 0 : limit_ - u;
  }

 private:
  std::size_t limit_;
  std::atomic<std::size_t> used_{0};
};

class QueryCache;  // util/query_cache.h

/// Shared run controls threaded through the attack algorithms. The deadline
/// is copied (absolute instant); the budget is borrowed and mutated so all
/// phases of one document draw from the same pool. Both default to
/// unconstrained, keeping existing call sites valid.
struct AttackControl {
  Deadline deadline;
  QueryBudget* budget = nullptr;  ///< may be null (unlimited)
  /// Optional memoizing query cache. Owned by the caller (one per attack
  /// worker, reset per document); the SwapEvaluator shell consults it and
  /// charges `budget` on cache misses only, which is the single charge
  /// point for evaluator queries.
  QueryCache* cache = nullptr;

  bool budget_exhausted() const {
    return budget != nullptr && budget->exhausted();
  }
  /// const: the control block is shared read-only; the mutation happens in
  /// the borrowed QueryBudget, which is non-const by construction.
  void charge(std::size_t n) const {
    if (budget != nullptr) budget->charge(n);
  }
};

/// Typed failure at an isolation boundary.
struct Failure {
  TerminationReason reason = TerminationReason::kError;
  std::string message;
};

/// Value-or-failure result for fault-isolation boundaries (per-document
/// attack isolation in evaluate_attack). Deliberately minimal: holds either
/// a T or a Failure, never neither. [[nodiscard]]: dropping an Outcome
/// drops the failure with it, which is exactly the silent-swallow the type
/// exists to prevent.
template <typename T>
class [[nodiscard]] Outcome {
 public:
  Outcome(T value) : state_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Outcome(Failure failure) : state_(std::move(failure)) {}  // NOLINT(google-explicit-constructor)

  static Outcome error(TerminationReason reason, std::string message) {
    return Outcome(Failure{reason, std::move(message)});
  }

  bool ok() const { return std::holds_alternative<T>(state_); }

  const T& value() const {
    ADVTEXT_CHECK(ok()) << "Outcome::value on a failed outcome: "
                        << std::get<Failure>(state_).message;
    return std::get<T>(state_);
  }
  T& value() {
    ADVTEXT_CHECK(ok()) << "Outcome::value on a failed outcome: "
                        << std::get<Failure>(state_).message;
    return std::get<T>(state_);
  }

  const Failure& failure() const {
    ADVTEXT_CHECK(!ok()) << "Outcome::failure on a successful outcome";
    return std::get<Failure>(state_);
  }

 private:
  std::variant<T, Failure> state_;
};

/// Thrown by FaultInjector at a firing injection point (and by nothing
/// else), so tests and isolation code can tell injected faults from real
/// ones.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& what)
      : std::runtime_error(what) {}
};

/// Bounded retry with capped exponential backoff and deterministic seeded
/// jitter, for *transient* I/O failure sites: checkpoint / snapshot
/// publishes and the service layer's socket frame writes. The jitter for a
/// given (seed, attempt) pair is a pure function — no shared RNG state — so
/// a policy value can be shared across threads and a fixed seed reproduces
/// the exact backoff schedule (the same determinism contract as
/// FaultInjector). Backoffs default to single-digit milliseconds: retries
/// exist to absorb sporadic faults (injected ckpt.write throws, EINTR-class
/// socket hiccups), not to wait out a dead disk.
class RetryPolicy {
 public:
  struct Config {
    /// Total tries including the first (>= 1). 1 disables retrying.
    std::size_t max_attempts = 3;
    /// Sleep after the first failed attempt.
    double initial_backoff_ms = 1.0;
    /// Growth factor per further failed attempt.
    double multiplier = 2.0;
    /// Cap on the un-jittered backoff.
    double max_backoff_ms = 8.0;
    /// Uniform extra fraction in [0, jitter) added on top of the base
    /// backoff, decorrelating retry storms across concurrent callers.
    double jitter = 0.5;
  };

  // Defaults in a separate delegating constructor: `const Config& = {}`
  // would need Config's NSDMIs inside the enclosing class definition, which
  // is not a complete-class context for them.
  RetryPolicy() : RetryPolicy(Config()) {}
  explicit RetryPolicy(const Config& config, std::uint64_t seed = 0x5eed);

  /// Backoff slept after failed attempt `attempt` (1-based), jitter
  /// included. Deterministic in (seed, attempt).
  double backoff_ms(std::size_t attempt) const;

  /// Runs `fn` up to max_attempts times, absorbing std::runtime_error (and
  /// subclasses, including InjectedFault) per attempt and sleeping
  /// backoff_ms between attempts. Returns the 1-based attempt number that
  /// succeeded, or a kError Failure naming `what` and the last error once
  /// every attempt failed. Non-runtime_error exceptions (contract
  /// violations) propagate immediately — a bug is not transient.
  Outcome<std::size_t> run(const char* what,
                           const std::function<void()>& fn) const;

  const Config& config() const { return config_; }

 private:
  Config config_;
  std::uint64_t seed_;
};

/// RAII thread-local instance tag for fault sites. While a scope named
/// "doc12" is active on a thread, an injection point "wmd.distance" on that
/// thread matches rules as if it were written "wmd.distance@doc12"
/// (exact scoped rule → bare base rule → "all" wildcard, the normal
/// FaultInjector fallback chain). Sites that already carry an explicit
/// "@instance" are left untouched. evaluate_attack wraps each document's
/// attack in FaultScope("doc<i>") so a spec like "attack.word@doc3:1.0"
/// kills the same document no matter which worker thread picks it up or in
/// what order — the scheduling-independent determinism the parallel sweep
/// tests rely on. Scopes nest (the previous tag is restored on
/// destruction) and are strictly per-thread.
class FaultScope {
 public:
  explicit FaultScope(std::string instance);
  ~FaultScope();

  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

  /// The calling thread's innermost active scope ("" when none).
  static const std::string& current();

 private:
  std::string previous_;
};

/// Deterministic fault-injection harness. Library code marks *named
/// injection points*; a configuration string arms a subset of them with a
/// probability and a fault mode. Disabled (the default) every point is a
/// single predicted branch.
///
/// Point naming convention: "<module>.<operation>", e.g. "wmd.distance",
/// "transport.exact", "attack.word", "pipeline.doc". An optional
/// "@<instance>" suffix scopes a point to one instance of a replicated
/// component — sharded training arms "train.loss@shard1" to kill exactly
/// one shard. Matching order: exact "site@instance", then the bare "site"
/// (a rule without a suffix hits every instance), then the wildcard "all".
///
/// Spec grammar (comma- or semicolon-separated):  site[:mode]:probability
///   modes: throw (default) | delay | nan
///          | torn | enospc | short-read | eintr | corrupt   (IO modes)
///   examples: "all:0.05"
///             "wmd.distance:0.2,transport.exact:delay:0.5"
///             "train.loss:nan:0.02;ckpt.write:throw:0.05"
///             "train.loss@shard1:nan:1.0"
///             "io.write:torn:0.1;io.read:short-read:0.1"
///
/// The IO modes are executed by util/io_file (see io_fault()); at a plain
/// maybe_fault() site they degrade to throw, so an IO-mode rule armed on a
/// non-IO site still produces a fault rather than silently matching
/// nothing.
///
/// Faults are drawn from one advtext::Rng stream *per effective site*
/// (seeded seed ^ hash(site)), so a fixed (spec, seed) pair reproduces the
/// exact failure schedule at every site independently of thread
/// interleaving — the Nth draw at "io.write@w3" is the same fire/no-fire
/// decision no matter what other sites drew in between. Checkpoint /
/// resume, isolation tests, and the chaos harness's parallel run-twice
/// oracle rely on this. Thread-safe: the disabled fast path is one atomic
/// load, and armed draws serialize on an internal mutex. Do not call
/// configure() while other threads are inside injection points.
class FaultInjector {
 public:
  enum class Mode {
    kThrow,
    kDelay,
    kNan,
    // Storage fault modes, executed by util/io_file at the "io.*" sites.
    kTorn,       ///< a strict prefix lands under the final path, then throw
    kEnospc,     ///< write fails mid-stream; the final path stays untouched
    kShortRead,  ///< a read returns a strict prefix of the file
    kEintr,      ///< transient failure; io_file retries it away (bounded)
    kCorrupt,    ///< one deterministically chosen bit flips
  };

  /// What an armed IO mode should do, handed to util/io_file for execution.
  /// `fraction` is a deterministic draw in [0, 1) from the site's own
  /// seeded RNG stream: the prefix fraction for torn/enospc/short-read,
  /// the bit position fraction for corrupt (unused for eintr).
  struct IoFaultPlan {
    Mode mode = Mode::kThrow;
    double fraction = 0.0;
  };

  /// Process-wide instance. On first use it arms itself from the
  /// ADVTEXT_INJECT environment variable (empty/absent = disabled), which
  /// is how the CI fault-injection leg reaches release binaries.
  static FaultInjector& instance();

  /// Replaces the active configuration (empty spec disables), resets the
  /// fire counters, and reseeds the RNG. Throws std::invalid_argument on a
  /// malformed spec.
  void configure(const std::string& spec, std::uint64_t seed = 0x5eed);

  /// configure() from ADVTEXT_INJECT (absent = disabled).
  void configure_from_env();

  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  /// Marks an injection point. No-op when disabled or the draw does not
  /// fire. Fires as: kThrow — throws InjectedFault naming the site;
  /// kDelay — sleeps ~1ms (deadline-pressure fault); kNan — records the
  /// fire so a following poison() call returns NaN.
  void maybe_fault(const char* site) {
    if (!enabled()) return;
    fault_slow(site);
  }

  /// Value-poisoning injection point: returns NaN if a kNan rule fires for
  /// `site`, otherwise `value` unchanged.
  double poison(const char* site, double value) {
    if (!enabled()) return value;
    return poison_slow(site, value);
  }

  /// IO-aware injection point for util/io_file. Behaves like maybe_fault()
  /// for throw/delay rules (throws / sleeps here); for the IO modes it
  /// returns the plan the IO layer executes (nullopt = proceed normally;
  /// kNan rules never fire at IO sites).
  std::optional<IoFaultPlan> io_fault(const char* site) {
    if (!enabled()) return std::nullopt;
    return io_fault_slow(site);
  }

  /// Total faults fired since the last configure().
  std::size_t fires() const ADVTEXT_EXCLUDES(mu_);

 private:
  struct Rule {
    Mode mode = Mode::kThrow;
    double probability = 0.0;
  };

  FaultInjector() { configure_from_env(); }

  void fault_slow(const char* site) ADVTEXT_EXCLUDES(mu_);
  double poison_slow(const char* site, double value) ADVTEXT_EXCLUDES(mu_);
  std::optional<IoFaultPlan> io_fault_slow(const char* site)
      ADVTEXT_EXCLUDES(mu_);
  const Rule* match(const char* site) const ADVTEXT_REQUIRES(mu_);
  // The thread's FaultScope composed into an unsuffixed site:
  // "ckpt.write" inside FaultScope("w3") becomes "ckpt.write@w3".
  static std::string effective_site(const char* site);
  // Lazily-created independent RNG stream for one effective site.
  Rng& stream(const std::string& site) ADVTEXT_REQUIRES(mu_);

  // Guards the armed state; enabled_ doubles as the lock-free fast path
  // (released by configure(), acquired by every injection point).
  mutable Mutex mu_;
  // Site-specific rules win over the "all" wildcard.
  std::vector<std::pair<std::string, Rule>> rules_ ADVTEXT_GUARDED_BY(mu_);
  bool has_all_ ADVTEXT_GUARDED_BY(mu_) = false;
  Rule all_ ADVTEXT_GUARDED_BY(mu_);
  std::atomic<bool> enabled_{false};
  // One independent RNG stream per effective (scope-composed) site, lazily
  // created and seeded seed ^ fnv1a(site). With a single shared stream the
  // fire schedule at one site depended on how many draws *other* threads'
  // sites had interleaved before it; per-site streams make every site's
  // schedule a pure function of (spec, seed, site, draw index), so
  // multi-threaded runs fire identically regardless of interleaving.
  std::uint64_t seed_ ADVTEXT_GUARDED_BY(mu_) = 0x5eed;
  std::unordered_map<std::string, Rng> streams_ ADVTEXT_GUARDED_BY(mu_);
  std::size_t fires_ ADVTEXT_GUARDED_BY(mu_) = 0;
};

/// Process-wide soft memory budget for the big allocation sites (candidate
/// sets, model replicas, service frames). A reservation that would push
/// accounted usage past the limit is *denied* — the caller degrades (shrink
/// the candidate neighbourhood, drop to fewer replicas, shed the job with a
/// typed `resource` rejection) instead of letting the allocator OOM-abort
/// the process. Accounting is cooperative and approximate: only the named
/// big sites charge it, so the limit bounds the dominant allocations, not
/// every byte of the process.
///
/// Thread-safe; unlimited (limit 0) by default, so existing call sites are
/// unaffected until a limit is armed (`--mem-budget-mb`). Degradation is
/// deterministic in the configuration: whether a reservation is denied
/// depends only on the limit and the accounted usage at that point, both of
/// which are reproducible for a fixed config on a serial path (parallel
/// paths must degrade per-worker, not per-race, to keep bitwise contracts).
class MemoryBudget {
 public:
  /// Process-wide instance (the daemon and CLI arm it from flags).
  static MemoryBudget& instance();

  /// Sets the budget in bytes (0 = unlimited). Does not evict existing
  /// reservations; an over-limit state simply denies new ones.
  void set_limit_bytes(std::size_t limit) {
    limit_.store(limit, std::memory_order_relaxed);
  }
  std::size_t limit_bytes() const {
    return limit_.load(std::memory_order_relaxed);
  }

  /// Reserves `bytes` if the limit allows; false (and a counted denial)
  /// otherwise. [[nodiscard]]: ignoring a denial is exactly the OOM path
  /// this class exists to close.
  [[nodiscard]] bool try_reserve(std::size_t bytes) {
    const std::size_t limit = limit_.load(std::memory_order_relaxed);
    if (limit == 0) {
      used_.fetch_add(bytes, std::memory_order_relaxed);
      return true;
    }
    std::size_t current = used_.load(std::memory_order_relaxed);
    while (true) {
      if (bytes > limit || current > limit - bytes) {
        denials_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      if (used_.compare_exchange_weak(current, current + bytes,
                                      std::memory_order_relaxed)) {
        return true;
      }
    }
  }

  void release(std::size_t bytes) {
    ADVTEXT_CHECK(used_.load(std::memory_order_relaxed) >= bytes)
        << "MemoryBudget::release of more than is reserved";
    used_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  std::size_t used_bytes() const {
    return used_.load(std::memory_order_relaxed);
  }
  std::size_t denials() const {
    return denials_.load(std::memory_order_relaxed);
  }

  /// Test hook: back to unlimited with zeroed accounting.
  void reset() {
    limit_.store(0, std::memory_order_relaxed);
    used_.store(0, std::memory_order_relaxed);
    denials_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::size_t> limit_{0};
  std::atomic<std::size_t> used_{0};
  std::atomic<std::size_t> denials_{0};
};

/// RAII handle on a MemoryBudget reservation: releases on destruction.
/// A default-constructed (or denied) reservation holds nothing; ok() says
/// whether the reserve succeeded. Move-only — copying would double-release.
class MemoryReservation {
 public:
  MemoryReservation() = default;

  /// Tries to reserve `bytes` from the process budget; check ok().
  static MemoryReservation try_acquire(std::size_t bytes) {
    MemoryReservation r;
    if (MemoryBudget::instance().try_reserve(bytes)) {
      r.bytes_ = bytes;
      r.held_ = true;
    }
    return r;
  }

  ~MemoryReservation() { release(); }

  MemoryReservation(MemoryReservation&& other) noexcept
      : bytes_(other.bytes_), held_(other.held_) {
    other.held_ = false;
    other.bytes_ = 0;
  }
  MemoryReservation& operator=(MemoryReservation&& other) noexcept {
    if (this != &other) {
      release();
      bytes_ = other.bytes_;
      held_ = other.held_;
      other.held_ = false;
      other.bytes_ = 0;
    }
    return *this;
  }
  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;

  bool ok() const { return held_; }
  std::size_t bytes() const { return bytes_; }

  /// Returns the bytes to the budget early (idempotent).
  void release() {
    if (held_) {
      MemoryBudget::instance().release(bytes_);
      held_ = false;
      bytes_ = 0;
    }
  }

 private:
  std::size_t bytes_ = 0;
  bool held_ = false;
};

}  // namespace advtext
