#include "src/util/stopwatch.h"

namespace advtext {

Stopwatch::Stopwatch() : start_(std::chrono::steady_clock::now()) {}

void Stopwatch::reset() { start_ = std::chrono::steady_clock::now(); }

double Stopwatch::elapsed_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

double Stopwatch::elapsed_ms() const { return elapsed_seconds() * 1000.0; }

}  // namespace advtext
