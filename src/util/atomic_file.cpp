#include "src/util/atomic_file.h"

#include <cstdio>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace advtext {

namespace {

// Durability barrier between "temp file fully written" and "rename": without
// it a power loss can publish a file whose data blocks never hit the disk.
// Best-effort: a filesystem that cannot fsync does not fail the publish.
void sync_file(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

}  // namespace

AtomicFileWriter::AtomicFileWriter(std::string final_path)
    : path_(std::move(final_path)),
      tmp_(path_ + ".tmp"),
      out_(tmp_, std::ios::binary | std::ios::trunc) {
  if (!out_) {
    throw std::runtime_error("atomic_file: cannot open " + tmp_ +
                             " for writing");
  }
}

AtomicFileWriter::~AtomicFileWriter() {
  if (!committed_) {
    out_.close();
    std::remove(tmp_.c_str());
  }
}

void AtomicFileWriter::commit() {
  if (committed_) {
    throw std::runtime_error("atomic_file: commit() called twice for " +
                             path_);
  }
  out_.flush();
  if (!out_) {
    out_.close();
    std::remove(tmp_.c_str());
    committed_ = true;  // nothing left to clean up in the destructor
    throw std::runtime_error("atomic_file: write to " + tmp_ + " failed");
  }
  out_.close();
  sync_file(tmp_);
  if (std::rename(tmp_.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_.c_str());
    committed_ = true;
    throw std::runtime_error("atomic_file: rename to " + path_ + " failed");
  }
  committed_ = true;
}

void atomic_write_file(const std::string& path, const std::string& contents) {
  AtomicFileWriter writer(path);
  writer.stream().write(contents.data(),
                        static_cast<std::streamsize>(contents.size()));
  writer.commit();
}

}  // namespace advtext
