// Wall-clock timing used by the attack benchmarks (Table 3 reports seconds
// per attacked document).
#pragma once

#include <chrono>

namespace advtext {

/// Monotonic stopwatch. Starts on construction; restart with reset().
class Stopwatch {
 public:
  Stopwatch();

  /// Restarts the clock.
  void reset();

  /// Seconds elapsed since construction or the last reset().
  double elapsed_seconds() const;

  /// Milliseconds elapsed since construction or the last reset().
  double elapsed_ms() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace advtext
