#include "src/util/serialize.h"

#include <array>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "src/util/io_file.h"
#include "src/util/robust.h"

namespace advtext::io {

namespace {

void fail(const char* what) {
  throw std::runtime_error(std::string("serialize: ") + what);
}

void write_raw(std::ostream& out, const void* data, std::size_t bytes) {
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(bytes));
  if (!out) fail("write failed");
}

void read_raw(std::istream& in, void* data, std::size_t bytes) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  if (!in) fail("read failed (truncated file?)");
}

}  // namespace

std::uint64_t read_size(std::istream& in, const char* field,
                        std::uint64_t limit) {
  const std::uint64_t size = read_u64(in);
  if (size > limit) {
    throw std::runtime_error(
        std::string("serialize: field '") + field + "' claims size " +
        std::to_string(size) + " (limit " + std::to_string(limit) +
        "); corrupt or truncated file");
  }
  return size;
}

std::uint32_t crc32(const void* data, std::size_t size) {
  // Table-driven CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

namespace {

// Footer = u32 crc + u32 version + 8-byte magic.
constexpr std::size_t kFooterBytes = 16;

std::size_t g_legacy_loads = 0;
bool g_warned_legacy = false;

void put_u32(std::string& out, std::uint32_t value) {
  out.append(reinterpret_cast<const char*>(&value), sizeof(value));
}

std::uint32_t get_u32(const std::string& bytes, std::size_t offset) {
  std::uint32_t value = 0;
  std::memcpy(&value, bytes.data() + offset, sizeof(value));
  return value;
}

}  // namespace

std::size_t legacy_artifact_loads() { return g_legacy_loads; }

void save_artifact(const std::string& path, const std::string& payload) {
  FaultInjector::instance().maybe_fault("ckpt.write");
  std::string footer;
  footer.reserve(kFooterBytes);
  put_u32(footer, crc32(payload.data(), payload.size()));
  put_u32(footer, kArtifactVersion);
  footer.append(kFooterMagic, sizeof(kFooterMagic));
  AtomicFileWriter writer(path);
  writer.stream().write(payload.data(),
                        static_cast<std::streamsize>(payload.size()));
  writer.stream().write(footer.data(),
                        static_cast<std::streamsize>(footer.size()));
  writer.commit();
}

std::string load_artifact(const std::string& path, ArtifactInfo* info) {
  FaultInjector::instance().maybe_fault("ckpt.read");
  // read_file is the "io.read" injection site: short-read and corrupt
  // damage land on the bytes here, and the footer/CRC checks below are
  // what must catch them.
  std::string bytes = read_file(path);

  ArtifactInfo local;
  const bool has_footer =
      bytes.size() >= kFooterBytes &&
      std::memcmp(bytes.data() + bytes.size() - sizeof(kFooterMagic),
                  kFooterMagic, sizeof(kFooterMagic)) == 0;
  if (has_footer) {
    const std::size_t payload_size = bytes.size() - kFooterBytes;
    const std::uint32_t stored_crc = get_u32(bytes, payload_size);
    const std::uint32_t version = get_u32(bytes, payload_size + 4);
    if (version > kArtifactVersion) {
      throw std::runtime_error(
          "serialize: artifact " + path + " has format version " +
          std::to_string(version) + " (this build understands up to " +
          std::to_string(kArtifactVersion) + ")");
    }
    const std::uint32_t actual_crc = crc32(bytes.data(), payload_size);
    if (actual_crc != stored_crc) {
      throw std::runtime_error("serialize: checksum mismatch in artifact " +
                               path + " (corrupt or bit-flipped file)");
    }
    local.checksummed = true;
    local.version = version;
    bytes.resize(payload_size);
  } else {
    // Seed-era artifact written before the integrity footer existed: accept
    // it (the tagged payload readers still validate structure) but warn once
    // so long-lived setups know to re-save.
    ++g_legacy_loads;
    if (!g_warned_legacy) {
      g_warned_legacy = true;
      std::fprintf(stderr,
                   "advtext: %s has no integrity footer (seed-era artifact); "
                   "loading without checksum verification\n",
                   path.c_str());
    }
  }
  if (info != nullptr) *info = local;
  return bytes;
}

void write_magic(std::ostream& out) { write_raw(out, kMagic, sizeof(kMagic)); }

void read_magic(std::istream& in) {
  char buffer[sizeof(kMagic)];
  read_raw(in, buffer, sizeof(buffer));
  if (std::memcmp(buffer, kMagic, sizeof(kMagic)) != 0) {
    fail("bad magic (not an advtext file)");
  }
}

void write_u64(std::ostream& out, std::uint64_t value) {
  write_raw(out, &value, sizeof(value));
}

std::uint64_t read_u64(std::istream& in) {
  std::uint64_t value = 0;
  read_raw(in, &value, sizeof(value));
  return value;
}

void write_double(std::ostream& out, double value) {
  write_raw(out, &value, sizeof(value));
}

double read_double(std::istream& in) {
  double value = 0.0;
  read_raw(in, &value, sizeof(value));
  return value;
}

void write_string(std::ostream& out, const std::string& value) {
  write_u64(out, value.size());
  write_raw(out, value.data(), value.size());
}

std::string read_string(std::istream& in) {
  const std::uint64_t size = read_size(in, "string.bytes", kMaxStringBytes);
  std::string value(size, '\0');
  read_raw(in, value.data(), size);
  return value;
}

void write_floats(std::ostream& out, const float* data, std::size_t count) {
  write_raw(out, data, count * sizeof(float));
}

void read_floats(std::istream& in, float* data, std::size_t count) {
  read_raw(in, data, count * sizeof(float));
}

void write_doubles(std::ostream& out, const std::vector<double>& values) {
  write_u64(out, values.size());
  write_raw(out, values.data(), values.size() * sizeof(double));
}

std::vector<double> read_doubles(std::istream& in) {
  const std::uint64_t size = read_size(in, "doubles.size", kMaxElements);
  std::vector<double> values(size);
  read_raw(in, values.data(), size * sizeof(double));
  return values;
}

void write_ints(std::ostream& out, const std::vector<int>& values) {
  write_u64(out, values.size());
  write_raw(out, values.data(), values.size() * sizeof(int));
}

std::vector<int> read_ints(std::istream& in) {
  const std::uint64_t size = read_size(in, "ints.size", kMaxElements);
  std::vector<int> values(size);
  read_raw(in, values.data(), size * sizeof(int));
  return values;
}

void write_bools(std::ostream& out, const std::vector<bool>& values) {
  write_u64(out, values.size());
  for (bool v : values) {
    const char byte = v ? 1 : 0;
    write_raw(out, &byte, 1);
  }
}

std::vector<bool> read_bools(std::istream& in) {
  const std::uint64_t size = read_size(in, "bools.size", kMaxElements);
  std::vector<bool> values(size);
  for (std::uint64_t i = 0; i < size; ++i) {
    char byte = 0;
    read_raw(in, &byte, 1);
    values[i] = byte != 0;
  }
  return values;
}

void save_parameters(
    const std::vector<std::pair<const float*, std::size_t>>& tensors,
    const std::string& path) {
  std::ostringstream out;
  write_magic(out);
  write_string(out, "params");
  write_u64(out, tensors.size());
  for (const auto& [data, size] : tensors) {
    write_u64(out, size);
    write_floats(out, data, size);
  }
  if (!out) fail("write failed");
  save_artifact(path, out.str());
}

void load_parameters(
    const std::vector<std::pair<float*, std::size_t>>& tensors,
    const std::string& path) {
  std::istringstream in(load_artifact(path));
  read_magic(in);
  if (read_string(in) != "params") fail("not a parameter file");
  const std::uint64_t count =
      read_size(in, "params.count", kMaxSequences);
  if (count != tensors.size()) fail("parameter tensor count mismatch");
  for (const auto& [data, size] : tensors) {
    const std::uint64_t stored = read_u64(in);
    if (stored != size) fail("parameter tensor size mismatch");
    read_floats(in, data, size);
  }
}

}  // namespace advtext::io
