#include "src/util/serialize.h"

#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/data/synthetic.h"
#include "src/util/atomic_file.h"
#include "src/util/robust.h"

namespace advtext::io {

namespace {

void fail(const char* what) {
  throw std::runtime_error(std::string("serialize: ") + what);
}

// Allocation guards for length-prefixed reads. A single flipped byte in a
// u64 length field would otherwise drive a multi-GB resize (or a signed
// overflow) before the stream even reports truncation; every size read off
// disk goes through read_size with a per-field cap and the field name in
// the error.
constexpr std::uint64_t kMaxStringBytes = 1ULL << 26;    // 64 MiB
constexpr std::uint64_t kMaxElements = 1ULL << 28;       // 256M scalars
constexpr std::uint64_t kMaxMatrixSide = 1ULL << 24;     // 16M rows/cols
constexpr std::uint64_t kMaxSequences = 1ULL << 24;      // docs/sentences

std::uint64_t read_size(std::istream& in, const char* field,
                        std::uint64_t limit) {
  const std::uint64_t size = read_u64(in);
  if (size > limit) {
    throw std::runtime_error(
        std::string("serialize: field '") + field + "' claims size " +
        std::to_string(size) + " (limit " + std::to_string(limit) +
        "); corrupt or truncated file");
  }
  return size;
}

void write_raw(std::ostream& out, const void* data, std::size_t bytes) {
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(bytes));
  if (!out) fail("write failed");
}

void read_raw(std::istream& in, void* data, std::size_t bytes) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  if (!in) fail("read failed (truncated file?)");
}

}  // namespace

void write_document(std::ostream& out, const Document& doc) {
  write_u64(out, static_cast<std::uint64_t>(doc.label));
  write_u64(out, doc.sentences.size());
  for (const Sentence& s : doc.sentences) {
    write_u64(out, s.size());
    for (WordId w : s) write_u64(out, static_cast<std::uint64_t>(w));
  }
}

Document read_document(std::istream& in) {
  Document doc;
  doc.label = static_cast<int>(read_u64(in));
  const std::uint64_t sentences =
      read_size(in, "document.sentences", kMaxSequences);
  doc.sentences.resize(sentences);
  for (auto& s : doc.sentences) {
    const std::uint64_t words = read_size(in, "sentence.words", kMaxElements);
    s.resize(words);
    for (auto& w : s) w = static_cast<WordId>(read_u64(in));
  }
  return doc;
}

namespace {

void write_dataset(std::ostream& out, const Dataset& data) {
  write_u64(out, static_cast<std::uint64_t>(data.num_classes));
  write_u64(out, data.docs.size());
  for (const Document& doc : data.docs) write_document(out, doc);
}

Dataset read_dataset(std::istream& in) {
  Dataset data;
  data.num_classes = static_cast<int>(read_u64(in));
  const std::uint64_t docs = read_size(in, "dataset.docs", kMaxSequences);
  data.docs.reserve(docs);
  for (std::uint64_t i = 0; i < docs; ++i) {
    data.docs.push_back(read_document(in));
  }
  return data;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) {
  // Table-driven CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

namespace {

// Footer = u32 crc + u32 version + 8-byte magic.
constexpr std::size_t kFooterBytes = 16;

std::size_t g_legacy_loads = 0;
bool g_warned_legacy = false;

void put_u32(std::string& out, std::uint32_t value) {
  out.append(reinterpret_cast<const char*>(&value), sizeof(value));
}

std::uint32_t get_u32(const std::string& bytes, std::size_t offset) {
  std::uint32_t value = 0;
  std::memcpy(&value, bytes.data() + offset, sizeof(value));
  return value;
}

}  // namespace

std::size_t legacy_artifact_loads() { return g_legacy_loads; }

void save_artifact(const std::string& path, const std::string& payload) {
  FaultInjector::instance().maybe_fault("ckpt.write");
  std::string footer;
  footer.reserve(kFooterBytes);
  put_u32(footer, crc32(payload.data(), payload.size()));
  put_u32(footer, kArtifactVersion);
  footer.append(kFooterMagic, sizeof(kFooterMagic));
  AtomicFileWriter writer(path);
  writer.stream().write(payload.data(),
                        static_cast<std::streamsize>(payload.size()));
  writer.stream().write(footer.data(),
                        static_cast<std::streamsize>(footer.size()));
  writer.commit();
}

std::string load_artifact(const std::string& path, ArtifactInfo* info) {
  FaultInjector::instance().maybe_fault("ckpt.read");
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("serialize: cannot open artifact " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in && !in.eof()) {
    throw std::runtime_error("serialize: read failed for artifact " + path);
  }
  std::string bytes = buffer.str();

  ArtifactInfo local;
  const bool has_footer =
      bytes.size() >= kFooterBytes &&
      std::memcmp(bytes.data() + bytes.size() - sizeof(kFooterMagic),
                  kFooterMagic, sizeof(kFooterMagic)) == 0;
  if (has_footer) {
    const std::size_t payload_size = bytes.size() - kFooterBytes;
    const std::uint32_t stored_crc = get_u32(bytes, payload_size);
    const std::uint32_t version = get_u32(bytes, payload_size + 4);
    if (version > kArtifactVersion) {
      throw std::runtime_error(
          "serialize: artifact " + path + " has format version " +
          std::to_string(version) + " (this build understands up to " +
          std::to_string(kArtifactVersion) + ")");
    }
    const std::uint32_t actual_crc = crc32(bytes.data(), payload_size);
    if (actual_crc != stored_crc) {
      throw std::runtime_error("serialize: checksum mismatch in artifact " +
                               path + " (corrupt or bit-flipped file)");
    }
    local.checksummed = true;
    local.version = version;
    bytes.resize(payload_size);
  } else {
    // Seed-era artifact written before the integrity footer existed: accept
    // it (the tagged payload readers still validate structure) but warn once
    // so long-lived setups know to re-save.
    ++g_legacy_loads;
    if (!g_warned_legacy) {
      g_warned_legacy = true;
      std::fprintf(stderr,
                   "advtext: %s has no integrity footer (seed-era artifact); "
                   "loading without checksum verification\n",
                   path.c_str());
    }
  }
  if (info != nullptr) *info = local;
  return bytes;
}

void write_magic(std::ostream& out) { write_raw(out, kMagic, sizeof(kMagic)); }

void read_magic(std::istream& in) {
  char buffer[sizeof(kMagic)];
  read_raw(in, buffer, sizeof(buffer));
  if (std::memcmp(buffer, kMagic, sizeof(kMagic)) != 0) {
    fail("bad magic (not an advtext file)");
  }
}

void write_u64(std::ostream& out, std::uint64_t value) {
  write_raw(out, &value, sizeof(value));
}

std::uint64_t read_u64(std::istream& in) {
  std::uint64_t value = 0;
  read_raw(in, &value, sizeof(value));
  return value;
}

void write_double(std::ostream& out, double value) {
  write_raw(out, &value, sizeof(value));
}

double read_double(std::istream& in) {
  double value = 0.0;
  read_raw(in, &value, sizeof(value));
  return value;
}

void write_string(std::ostream& out, const std::string& value) {
  write_u64(out, value.size());
  write_raw(out, value.data(), value.size());
}

std::string read_string(std::istream& in) {
  const std::uint64_t size = read_size(in, "string.bytes", kMaxStringBytes);
  std::string value(size, '\0');
  read_raw(in, value.data(), size);
  return value;
}

void write_floats(std::ostream& out, const float* data, std::size_t count) {
  write_raw(out, data, count * sizeof(float));
}

void read_floats(std::istream& in, float* data, std::size_t count) {
  read_raw(in, data, count * sizeof(float));
}

void write_matrix(std::ostream& out, const Matrix& matrix) {
  write_u64(out, matrix.rows());
  write_u64(out, matrix.cols());
  write_floats(out, matrix.data(), matrix.size());
}

Matrix read_matrix(std::istream& in) {
  // Rows and cols are capped individually before the product so a flipped
  // high byte cannot overflow rows * cols into a small number.
  const std::uint64_t rows = read_size(in, "matrix.rows", kMaxMatrixSide);
  const std::uint64_t cols = read_size(in, "matrix.cols", kMaxMatrixSide);
  if (rows != 0 && cols > kMaxElements / rows) {
    throw std::runtime_error(
        "serialize: field 'matrix' claims " + std::to_string(rows) + "x" +
        std::to_string(cols) + " elements; corrupt or truncated file");
  }
  Matrix matrix(rows, cols);
  read_floats(in, matrix.data(), matrix.size());
  return matrix;
}

void write_vector(std::ostream& out, const Vector& vector) {
  write_u64(out, vector.size());
  write_floats(out, vector.data(), vector.size());
}

Vector read_vector(std::istream& in) {
  const std::uint64_t size = read_size(in, "vector.size", kMaxElements);
  Vector vector(size);
  read_floats(in, vector.data(), vector.size());
  return vector;
}

void write_doubles(std::ostream& out, const std::vector<double>& values) {
  write_u64(out, values.size());
  write_raw(out, values.data(), values.size() * sizeof(double));
}

std::vector<double> read_doubles(std::istream& in) {
  const std::uint64_t size = read_size(in, "doubles.size", kMaxElements);
  std::vector<double> values(size);
  read_raw(in, values.data(), size * sizeof(double));
  return values;
}

void write_ints(std::ostream& out, const std::vector<int>& values) {
  write_u64(out, values.size());
  write_raw(out, values.data(), values.size() * sizeof(int));
}

std::vector<int> read_ints(std::istream& in) {
  const std::uint64_t size = read_size(in, "ints.size", kMaxElements);
  std::vector<int> values(size);
  read_raw(in, values.data(), size * sizeof(int));
  return values;
}

void write_bools(std::ostream& out, const std::vector<bool>& values) {
  write_u64(out, values.size());
  for (bool v : values) {
    const char byte = v ? 1 : 0;
    write_raw(out, &byte, 1);
  }
}

std::vector<bool> read_bools(std::istream& in) {
  const std::uint64_t size = read_size(in, "bools.size", kMaxElements);
  std::vector<bool> values(size);
  for (std::uint64_t i = 0; i < size; ++i) {
    char byte = 0;
    read_raw(in, &byte, 1);
    values[i] = byte != 0;
  }
  return values;
}

void write_vocab(std::ostream& out, const Vocab& vocab) {
  // Specials (<pad>, <unk>) are rebuilt by the constructor; store the rest.
  write_u64(out, static_cast<std::uint64_t>(vocab.size()) - 2);
  for (WordId id = 2; id < vocab.size(); ++id) {
    write_string(out, vocab.word(id));
  }
}

Vocab read_vocab(std::istream& in) {
  Vocab vocab;
  const std::uint64_t words = read_size(in, "vocab.words", kMaxElements);
  for (std::uint64_t i = 0; i < words; ++i) {
    vocab.add(read_string(in));
  }
  return vocab;
}

void save_task(const SynthTask& task, const std::string& path) {
  std::ostringstream out;
  write_magic(out);
  write_string(out, "task");
  // Config (field by field; keep order in sync with load_task).
  const SynthConfig& c = task.config;
  write_string(out, c.name);
  write_u64(out, c.seed);
  write_u64(out, c.num_train);
  write_u64(out, c.num_test);
  write_double(out, c.class1_fraction);
  write_u64(out, c.num_concepts);
  write_u64(out, c.cluster_size);
  write_double(out, c.neutral_fraction);
  write_u64(out, c.num_noise_words);
  write_u64(out, c.min_sentences);
  write_u64(out, c.max_sentences);
  write_u64(out, c.min_words_per_sentence);
  write_u64(out, c.max_words_per_sentence);
  write_double(out, c.function_word_rate);
  write_double(out, c.noise_token_rate);
  write_double(out, c.aligned_concept_rate);
  write_double(out, c.variant_label_correlation);
  write_double(out, c.strength_decay);
  write_u64(out, c.embedding_dim);
  write_double(out, c.polarity_embed_scale);
  write_double(out, c.cluster_noise);
  write_double(out, c.mild_doc_fraction);
  write_double(out, c.embed_evidence_fidelity);

  write_vocab(out, task.vocab);
  write_dataset(out, task.train);
  write_dataset(out, task.test);
  write_ints(out, task.concept_of_word);
  write_ints(out, task.variant_of_word);
  write_doubles(out, task.word_polarity);
  write_doubles(out, task.word_meaning);
  write_bools(out, task.is_function_word);
  write_bools(out, task.is_noise_word);
  write_matrix(out, task.paragram);
  write_u64(out, task.concept_members.size());
  for (const auto& members : task.concept_members) {
    write_ints(out, std::vector<int>(members.begin(), members.end()));
  }
  write_u64(out, task.function_clusters.size());
  for (const auto& cluster : task.function_clusters) {
    write_ints(out, std::vector<int>(cluster.begin(), cluster.end()));
  }
  if (!out) fail("write failed");
  save_artifact(path, out.str());
}

SynthTask load_task(const std::string& path) {
  std::istringstream in(load_artifact(path));
  read_magic(in);
  if (read_string(in) != "task") fail("not a task file");
  SynthTask task;
  SynthConfig& c = task.config;
  c.name = read_string(in);
  c.seed = read_u64(in);
  c.num_train = read_u64(in);
  c.num_test = read_u64(in);
  c.class1_fraction = read_double(in);
  c.num_concepts = read_u64(in);
  c.cluster_size = read_u64(in);
  c.neutral_fraction = read_double(in);
  c.num_noise_words = read_u64(in);
  c.min_sentences = read_u64(in);
  c.max_sentences = read_u64(in);
  c.min_words_per_sentence = read_u64(in);
  c.max_words_per_sentence = read_u64(in);
  c.function_word_rate = read_double(in);
  c.noise_token_rate = read_double(in);
  c.aligned_concept_rate = read_double(in);
  c.variant_label_correlation = read_double(in);
  c.strength_decay = read_double(in);
  c.embedding_dim = read_u64(in);
  c.polarity_embed_scale = read_double(in);
  c.cluster_noise = read_double(in);
  c.mild_doc_fraction = read_double(in);
  c.embed_evidence_fidelity = read_double(in);

  task.vocab = read_vocab(in);
  task.train = read_dataset(in);
  task.test = read_dataset(in);
  task.concept_of_word = read_ints(in);
  task.variant_of_word = read_ints(in);
  task.word_polarity = read_doubles(in);
  task.word_meaning = read_doubles(in);
  task.is_function_word = read_bools(in);
  task.is_noise_word = read_bools(in);
  task.paragram = read_matrix(in);
  const std::uint64_t concepts =
      read_size(in, "task.concept_members", kMaxSequences);
  task.concept_members.resize(concepts);
  for (auto& members : task.concept_members) {
    const auto ints = read_ints(in);
    members.assign(ints.begin(), ints.end());
  }
  const std::uint64_t clusters =
      read_size(in, "task.function_clusters", kMaxSequences);
  task.function_clusters.resize(clusters);
  for (auto& cluster : task.function_clusters) {
    const auto ints = read_ints(in);
    cluster.assign(ints.begin(), ints.end());
  }
  return task;
}

void save_parameters(
    const std::vector<std::pair<const float*, std::size_t>>& tensors,
    const std::string& path) {
  std::ostringstream out;
  write_magic(out);
  write_string(out, "params");
  write_u64(out, tensors.size());
  for (const auto& [data, size] : tensors) {
    write_u64(out, size);
    write_floats(out, data, size);
  }
  if (!out) fail("write failed");
  save_artifact(path, out.str());
}

void load_parameters(
    const std::vector<std::pair<float*, std::size_t>>& tensors,
    const std::string& path) {
  std::istringstream in(load_artifact(path));
  read_magic(in);
  if (read_string(in) != "params") fail("not a parameter file");
  const std::uint64_t count =
      read_size(in, "params.count", kMaxSequences);
  if (count != tensors.size()) fail("parameter tensor count mismatch");
  for (const auto& [data, size] : tensors) {
    const std::uint64_t stored = read_u64(in);
    if (stored != size) fail("parameter tensor size mismatch");
    read_floats(in, data, size);
  }
}

}  // namespace advtext::io
