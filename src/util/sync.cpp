#include "src/util/sync.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/util/check.h"

namespace advtext {

std::size_t hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

void CondVar::wait(Mutex& mu) {
  // Adopt the already-held lock for the duration of the wait, then release
  // ownership back to the caller; the capability bookkeeping stays with the
  // caller's MutexLock / ADVTEXT_REQUIRES contract.
  std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
  cv_.wait(lock);
  lock.release();
}

bool CondVar::wait_for_ms(Mutex& mu, long ms) {
  std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
  const std::cv_status status =
      cv_.wait_for(lock, std::chrono::milliseconds(ms));
  lock.release();
  return status == std::cv_status::no_timeout;
}

TaskQueue::TaskQueue(std::size_t capacity) : capacity_(capacity) {
  ADVTEXT_CHECK(capacity_ >= 1) << "TaskQueue needs capacity >= 1";
}

bool TaskQueue::push(Task task) {
  MutexLock lock(mu_);
  while (!closed_ && items_.size() >= capacity_) {
    not_full_.wait(mu_);
  }
  if (closed_) return false;
  items_.push_back(std::move(task));
  not_empty_.notify_one();
  return true;
}

bool TaskQueue::pop(Task& out) {
  MutexLock lock(mu_);
  while (items_.empty() && !closed_) {
    not_empty_.wait(mu_);
  }
  if (items_.empty()) return false;  // closed and drained
  out = std::move(items_.front());
  items_.pop_front();
  not_full_.notify_one();
  return true;
}

void TaskQueue::close() {
  MutexLock lock(mu_);
  closed_ = true;
  not_empty_.notify_all();
  not_full_.notify_all();
}

std::size_t TaskQueue::size() const {
  MutexLock lock(mu_);
  return items_.size();
}

Watchdog::Watchdog(std::vector<const Heartbeat*> hearts,
                   const Config& config, StallHandler on_stall)
    : hearts_(std::move(hearts)),
      config_(config),
      on_stall_(std::move(on_stall)) {
  ADVTEXT_CHECK(config_.stall_ms > 0.0) << "Watchdog needs stall_ms > 0";
  ADVTEXT_CHECK(config_.poll_ms > 0.0) << "Watchdog needs poll_ms > 0";
  for (const Heartbeat* heart : hearts_) {
    ADVTEXT_CHECK(heart != nullptr) << "Watchdog given a null heartbeat";
  }
  monitor_ = std::thread([this] { monitor_loop(); });
}

Watchdog::~Watchdog() {
  stop();
  if (monitor_.joinable()) monitor_.join();
}

void Watchdog::stop() {
  MutexLock lock(mu_);
  stopping_ = true;
  wake_.notify_all();
}

std::size_t Watchdog::stalls() const {
  MutexLock lock(mu_);
  return stalls_;
}

void Watchdog::monitor_loop() {
  struct HeartState {
    std::uint64_t last_beats = 0;
    std::chrono::steady_clock::time_point last_change;
    bool reported = false;
  };
  std::vector<HeartState> states(hearts_.size());
  const auto start = std::chrono::steady_clock::now();
  for (HeartState& state : states) state.last_change = start;

  while (true) {
    {
      MutexLock lock(mu_);
      if (stopping_) return;
      (void)wake_.wait_for_ms(mu_, static_cast<long>(config_.poll_ms));
      if (stopping_) return;
    }
    const auto now = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < hearts_.size(); ++i) {
      const Heartbeat& heart = *hearts_[i];
      HeartState& state = states[i];
      const std::uint64_t beats = heart.beats();
      if (beats != state.last_beats || !heart.busy()) {
        state.last_beats = beats;
        state.last_change = now;
        state.reported = false;  // progress (or idleness) re-arms the check
        continue;
      }
      const double stalled_ms =
          std::chrono::duration<double, std::milli>(now - state.last_change)
              .count();
      if (stalled_ms < config_.stall_ms || state.reported) continue;
      state.reported = true;  // one report per stall episode
      {
        MutexLock lock(mu_);
        ++stalls_;
      }
      if (on_stall_) on_stall_(i, heart.tag(), stalled_ms);
    }
  }
}

namespace {
// The calling pool worker's own heartbeat; null on non-pool threads.
thread_local Heartbeat* t_pool_heartbeat = nullptr;
}  // namespace

Heartbeat* ThreadPool::current() { return t_pool_heartbeat; }

ThreadPool::ThreadPool(std::size_t threads, std::size_t queue_capacity)
    : queue_(queue_capacity != 0 ? queue_capacity
                                 : std::max<std::size_t>(1, threads) * 2) {
  ADVTEXT_CHECK(threads >= 1) << "ThreadPool needs at least one worker";
  hearts_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    hearts_.push_back(std::make_unique<Heartbeat>());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  queue_.close();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

bool ThreadPool::submit(TaskQueue::Task task) {
  {
    MutexLock lock(mu_);
    ++in_flight_;
  }
  if (queue_.push(std::move(task))) return true;
  // Rejected by a closed queue: undo the accounting.
  MutexLock lock(mu_);
  --in_flight_;
  if (in_flight_ == 0) idle_.notify_all();
  return false;
}

void ThreadPool::wait_idle() {
  MutexLock lock(mu_);
  while (in_flight_ != 0) {
    idle_.wait(mu_);
  }
}

std::vector<const Heartbeat*> ThreadPool::heartbeats() const {
  std::vector<const Heartbeat*> out;
  out.reserve(hearts_.size());
  for (const auto& heart : hearts_) out.push_back(heart.get());
  return out;
}

void ThreadPool::worker_loop(std::size_t index) {
  Heartbeat& heart = *hearts_[index];
  t_pool_heartbeat = &heart;
  TaskQueue::Task task;
  while (queue_.pop(task)) {
    heart.set_busy(true);
    task();
    heart.set_tag(std::string());
    heart.set_busy(false);
    task = nullptr;  // release captures before signalling idle
    MutexLock lock(mu_);
    --in_flight_;
    if (in_flight_ == 0) idle_.notify_all();
  }
  t_pool_heartbeat = nullptr;
}

}  // namespace advtext
