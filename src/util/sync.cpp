#include "src/util/sync.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/util/check.h"

namespace advtext {

std::size_t hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

void CondVar::wait(Mutex& mu) {
  // Adopt the already-held lock for the duration of the wait, then release
  // ownership back to the caller; the capability bookkeeping stays with the
  // caller's MutexLock / ADVTEXT_REQUIRES contract.
  std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
  cv_.wait(lock);
  lock.release();
}

bool CondVar::wait_for_ms(Mutex& mu, long ms) {
  std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
  const std::cv_status status =
      cv_.wait_for(lock, std::chrono::milliseconds(ms));
  lock.release();
  return status == std::cv_status::no_timeout;
}

TaskQueue::TaskQueue(std::size_t capacity) : capacity_(capacity) {
  ADVTEXT_CHECK(capacity_ >= 1) << "TaskQueue needs capacity >= 1";
}

bool TaskQueue::push(Task task) {
  MutexLock lock(mu_);
  while (!closed_ && items_.size() >= capacity_) {
    not_full_.wait(mu_);
  }
  if (closed_) return false;
  items_.push_back(std::move(task));
  not_empty_.notify_one();
  return true;
}

bool TaskQueue::pop(Task& out) {
  MutexLock lock(mu_);
  while (items_.empty() && !closed_) {
    not_empty_.wait(mu_);
  }
  if (items_.empty()) return false;  // closed and drained
  out = std::move(items_.front());
  items_.pop_front();
  not_full_.notify_one();
  return true;
}

void TaskQueue::close() {
  MutexLock lock(mu_);
  closed_ = true;
  not_empty_.notify_all();
  not_full_.notify_all();
}

std::size_t TaskQueue::size() const {
  MutexLock lock(mu_);
  return items_.size();
}

ThreadPool::ThreadPool(std::size_t threads, std::size_t queue_capacity)
    : queue_(queue_capacity != 0 ? queue_capacity
                                 : std::max<std::size_t>(1, threads) * 2) {
  ADVTEXT_CHECK(threads >= 1) << "ThreadPool needs at least one worker";
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  queue_.close();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

bool ThreadPool::submit(TaskQueue::Task task) {
  {
    MutexLock lock(mu_);
    ++in_flight_;
  }
  if (queue_.push(std::move(task))) return true;
  // Rejected by a closed queue: undo the accounting.
  MutexLock lock(mu_);
  --in_flight_;
  if (in_flight_ == 0) idle_.notify_all();
  return false;
}

void ThreadPool::wait_idle() {
  MutexLock lock(mu_);
  while (in_flight_ != 0) {
    idle_.wait(mu_);
  }
}

void ThreadPool::worker_loop() {
  TaskQueue::Task task;
  while (queue_.pop(task)) {
    task();
    task = nullptr;  // release captures before signalling idle
    MutexLock lock(mu_);
    --in_flight_;
    if (in_flight_ == 0) idle_.notify_all();
  }
}

}  // namespace advtext
