#include "src/util/rng.h"

#include <bit>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace advtext {

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("uniform_index: n must be > 0");
  const std::uint64_t threshold = -n % n;  // 2^64 mod n
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("categorical: negative weight");
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("categorical: weights sum to zero");
  }
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numerical slack: land on the last bucket
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = uniform_index(i);
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

Rng Rng::fork() { return Rng(next_u64()); }

RngState Rng::state() const {
  return {s_[0], s_[1], s_[2], s_[3],
          std::bit_cast<std::uint64_t>(cached_normal_),
          has_cached_normal_ ? 1ULL : 0ULL};
}

void Rng::set_state(const RngState& state) {
  for (std::size_t i = 0; i < 4; ++i) s_[i] = state[i];
  cached_normal_ = std::bit_cast<double>(state[4]);
  has_cached_normal_ = state[5] != 0;
}

}  // namespace advtext
