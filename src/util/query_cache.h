// Bounded, deterministic memoizing cache for classifier query results.
//
// The greedy attacks re-pay for repeated model states constantly: every
// committed swap is re-anchored with an eval_tokens of a sequence that was
// just scored, retry passes replay whole candidate sweeps, and beam search
// expands overlapping hypotheses. QueryCache memoizes (document hash ->
// class-probability vector) under the SwapEvaluator shell so those repeats
// cost a hash lookup instead of a forward pass.
//
// Determinism contract:
//   * Keys are FNV-1a 64-bit hashes of the full token sequence, so the key
//     for "base with swap at p" and for the re-anchored committed sequence
//     unify across eval_swap / eval_tokens call sites.
//   * Eviction is strict LRU against a byte budget — a pure function of the
//     lookup/insert sequence, so a replayed attack evicts identically.
//   * The cache is NOT thread-safe by design: the attack pipeline owns one
//     instance per worker and resets it per document, which keeps
//     budget-limited results independent of document scheduling (serial ==
//     parallel at any thread count).
//
// The byte budget is charged against the process MemoryBudget with the
// same halving ladder as the candidate-set reservation: under memory
// pressure the cache shrinks (halving until the reservation fits) down to
// a floor, then disables itself rather than OOMing the process.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/util/robust.h"

namespace advtext {

/// FNV-1a 64-bit over a raw byte range.
std::uint64_t fnv1a64(const void* data, std::size_t len);

/// Continues an FNV-1a 64-bit hash with more bytes (streaming form, used
/// to key "base sequence with one position swapped" without materializing
/// the swapped sequence).
std::uint64_t fnv1a64_append(std::uint64_t hash, const void* data,
                             std::size_t len);

/// Initial state for fnv1a64_append (the FNV-1a offset basis).
constexpr std::uint64_t kFnv1a64Seed = 0xcbf29ce484222325ULL;

class QueryCache {
 public:
  /// Smallest capacity the halving ladder degrades to before the cache
  /// disables itself entirely.
  static constexpr std::size_t kMinCapacityBytes = 1u << 20;  // 1 MiB

  /// Reserves up to `budget_bytes` from the process MemoryBudget, halving
  /// on denial until the reservation fits or kMinCapacityBytes is denied
  /// too (then the cache is disabled). 0 constructs a disabled cache.
  explicit QueryCache(std::size_t budget_bytes);

  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  /// True when a non-zero capacity was granted.
  bool enabled() const { return capacity_bytes_ > 0; }

  /// Returns the cached probability vector for `key` (and marks it most
  /// recently used), or nullptr on a miss. The pointer stays valid until
  /// the next insert()/clear().
  const std::vector<float>* lookup(std::uint64_t key);

  /// Inserts (or refreshes) an entry, evicting least-recently-used entries
  /// until the byte budget holds. An entry larger than the whole capacity
  /// is not stored.
  void insert(std::uint64_t key, const std::vector<float>& proba);

  /// Drops every entry (capacity and cumulative eviction count are kept).
  /// The attack pipeline calls this at each document boundary so cached
  /// warmth never leaks across documents — the scheduling-independence
  /// invariant behind serial == parallel parity.
  void clear();

  std::size_t entries() const { return index_.size(); }
  std::size_t bytes_used() const { return bytes_used_; }
  std::size_t capacity_bytes() const { return capacity_bytes_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  using Entry = std::pair<std::uint64_t, std::vector<float>>;

  static std::size_t entry_bytes(const std::vector<float>& proba) {
    // Deterministic accounting formula: payload plus a flat per-entry
    // overhead for the list node and index slot.
    return proba.size() * sizeof(float) + 64;
  }

  std::size_t capacity_bytes_ = 0;
  std::size_t bytes_used_ = 0;
  std::uint64_t evictions_ = 0;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  MemoryReservation reservation_;
};

}  // namespace advtext
