#include "src/util/check.h"

#include <cmath>

namespace advtext {

namespace {

template <typename T>
bool all_finite_impl(const T* data, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(data[i])) return false;
  }
  return true;
}

template <typename T>
void check_finite_impl(const T* data, std::size_t n, const char* what) {
  for (std::size_t i = 0; i < n; ++i) {
    const T v = data[i];
    if (!std::isfinite(v)) {
      ADVTEXT_CHECK(std::isfinite(v))
          << what << ": element " << i << " of " << n << " is "
          << (std::isnan(v) ? "NaN" : (v > 0 ? "+Inf" : "-Inf"));
    }
  }
}

}  // namespace

bool all_finite(const float* data, std::size_t n) {
  return all_finite_impl(data, n);
}

bool all_finite(const double* data, std::size_t n) {
  return all_finite_impl(data, n);
}

void check_finite(const float* data, std::size_t n, const char* what) {
  check_finite_impl(data, n, what);
}

void check_finite(const double* data, std::size_t n, const char* what) {
  check_finite_impl(data, n, what);
}

}  // namespace advtext
