// Blessed deterministic floating-point reductions.
//
// Reduction order determines the bits of a floating-point sum, and the
// repo's reproducibility contract is bitwise (see DESIGN.md). Every helper
// here accumulates strictly left-to-right in a double accumulator — the
// exact order a plain sequential loop would use — so call sites keep their
// numeric behaviour while making the fixed order explicit and auditable in
// one place. The `float-accum` analyzer rule flags ad-hoc accumulation
// loops outside src/tensor/ and src/util/ and points here.
//
// None of these helpers reassociate, vectorize-by-construction, or
// compensate (no Kahan): they are the sequential loop, named.
#pragma once

#include <cstddef>
#include <vector>

namespace advtext {

/// Left-to-right sum of a double vector.
inline double det_sum(const std::vector<double>& values) {
  double acc = 0.0;
  for (double v : values) acc += v;
  return acc;
}

/// Left-to-right dot product of two float buffers, accumulated in double
/// starting from `init`. The element product is computed in float (matching
/// the plain `acc += a[i] * b[i]` loop) before widening.
inline double det_dot(const float* a, const float* b, std::size_t n,
                      double init = 0.0) {
  double acc = init;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

/// Left-to-right sum of (a[i] - b[i]) * g[i]: the difference is computed in
/// float, widened, then scaled — the Gauss–Southwell linearized-gain shape
/// shared by the gradient attacks.
inline double det_diff_dot(const float* a, const float* b, const float* g,
                           std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<double>(a[i] - b[i]) * g[i];
  }
  return acc;
}

/// Left-to-right squared Euclidean distance between two float buffers,
/// with each coordinate difference widened to double before squaring.
inline double det_sq_dist(const float* a, const float* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double diff = static_cast<double>(a[i]) - b[i];
    acc += diff * diff;
  }
  return acc;
}

/// Left-to-right fold over a range: acc = f(acc, *it) in iteration order.
/// For transformed or filtered sums where the term is not a plain element.
template <typename It, typename F>
double det_accumulate(It begin, It end, double init, F&& f) {
  double acc = init;
  for (It it = begin; it != end; ++it) acc = f(acc, *it);
  return acc;
}

/// Left-to-right sum of term(i) for i in [0, n), starting from `init`: the
/// indexed variant of det_accumulate, for terms drawn from parallel arrays
/// or matrix slices.
template <typename F>
double det_index_sum(std::size_t n, F&& term, double init = 0.0) {
  double acc = init;
  for (std::size_t i = 0; i < n; ++i) acc += term(i);
  return acc;
}

}  // namespace advtext
