#include "src/util/query_cache.h"

namespace advtext {

std::uint64_t fnv1a64_append(std::uint64_t hash, const void* data,
                             std::size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t fnv1a64(const void* data, std::size_t len) {
  return fnv1a64_append(kFnv1a64Seed, data, len);
}

QueryCache::QueryCache(std::size_t budget_bytes) {
  // Same degradation ladder as the candidate-set reservation in
  // joint_attack: halve on denial, give up below the floor. A smaller
  // cache is strictly a perf loss, never a correctness loss — charged
  // budget semantics only depend on hit/miss, which stays deterministic
  // for any fixed capacity.
  std::size_t want = budget_bytes;
  while (want >= kMinCapacityBytes) {
    reservation_ = MemoryReservation::try_acquire(want);
    if (reservation_.ok()) {
      capacity_bytes_ = want;
      return;
    }
    want /= 2;
  }
  capacity_bytes_ = 0;  // disabled: every lookup misses, nothing is stored
}

const std::vector<float>* QueryCache::lookup(std::uint64_t key) {
  if (!enabled()) return nullptr;
  const auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // move to front
  return &it->second->second;
}

void QueryCache::insert(std::uint64_t key, const std::vector<float>& proba) {
  if (!enabled()) return;
  const std::size_t cost = entry_bytes(proba);
  if (cost > capacity_bytes_) return;
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Refresh in place (same key => same deterministic value; the bytes
    // cannot change because the payload length is the class count).
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  while (bytes_used_ + cost > capacity_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_used_ -= entry_bytes(victim.second);
    index_.erase(victim.first);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.emplace_front(key, proba);
  index_.emplace(key, lru_.begin());
  bytes_used_ += cost;
}

void QueryCache::clear() {
  lru_.clear();
  index_.clear();
  bytes_used_ = 0;
}

}  // namespace advtext
