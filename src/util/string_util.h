// Small string helpers shared by the tokenizer, report printers and dataset
// generators. Kept dependency-free.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace advtext {

/// Splits on any of the given delimiter characters; empty pieces dropped.
std::vector<std::string> split(std::string_view text, std::string_view delims);

/// Joins pieces with the given separator.
std::string join(const std::vector<std::string>& pieces,
                 std::string_view separator);

/// ASCII lowercase copy.
std::string to_lower(std::string_view text);

/// True if the string consists only of ASCII alphanumerics (non-empty).
bool is_alnum(std::string_view text);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// printf-style float formatting helper: fixed precision, no locale.
std::string format_double(double value, int precision);

/// Formats a fraction as a percentage string, e.g. 0.354 -> "35.4%".
std::string format_percent(double fraction, int precision = 1);

}  // namespace advtext
