#include "src/util/args.h"

#include <cstdlib>
#include <stdexcept>

namespace advtext {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) {
      throw std::invalid_argument("args: bare '--' is not a flag");
    }
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--key value" when the next token is not itself a flag; otherwise a
    // bare boolean flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "";
    }
  }
}

bool ArgParser::has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string ArgParser::get_string(const std::string& name,
                                  const std::string& fallback) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

long ArgParser::get_int(const std::string& name, long fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const long value = std::strtol(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    throw std::invalid_argument("args: --" + name + " expects an integer");
  }
  return value;
}

double ArgParser::get_double(const std::string& name, double fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    throw std::invalid_argument("args: --" + name + " expects a number");
  }
  return value;
}

bool ArgParser::get_bool(const std::string& name, bool fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  if (it->second.empty() || it->second == "true" || it->second == "1") {
    return true;
  }
  if (it->second == "false" || it->second == "0") return false;
  throw std::invalid_argument("args: --" + name + " expects true/false");
}

std::vector<std::string> ArgParser::flag_names() const {
  std::vector<std::string> names;
  names.reserve(flags_.size());
  for (const auto& [name, value] : flags_) names.push_back(name);
  return names;
}

std::vector<std::string> ArgParser::unknown_flags(
    const std::vector<std::string>& known) const {
  std::vector<std::string> unknown;
  for (const auto& [name, value] : flags_) {
    bool found = false;
    for (const std::string& k : known) found = found || k == name;
    if (!found) unknown.push_back(name);
  }
  return unknown;
}

}  // namespace advtext
