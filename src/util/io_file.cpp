#include "src/util/io_file.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "src/util/check.h"
#include "src/util/robust.h"

namespace advtext {

namespace {

using Mode = FaultInjector::Mode;

/// Bounded internal retries for the transient (eintr) mode: enough that a
/// sporadic p<1 storm is invisible to callers, small enough that a p=1.0
/// storm fails fast with a typed InjectedFault.
constexpr int kTransientRetries = 8;

// Durability barrier between "temp file fully written" and "rename": without
// it a power loss can publish a file whose data blocks never hit the disk.
// Best-effort: a filesystem that cannot fsync does not fail the publish.
void sync_file(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

/// Strict prefix length for torn/enospc/short-read damage: always at least
/// one byte short of `size` (an exact-length "prefix" would be the valid
/// file — in particular a torn artifact truncated exactly at its footer
/// boundary would masquerade as a well-formed legacy payload).
std::size_t strict_prefix(std::size_t size, double fraction) {
  if (size == 0) return 0;
  auto n = static_cast<std::size_t>(fraction * static_cast<double>(size));
  return n >= size ? size - 1 : n;
}

void write_stream(std::ofstream& out, const std::string& bytes,
                  std::size_t count) {
  out.write(bytes.data(), static_cast<std::streamsize>(count));
  out.flush();
}

}  // namespace

AtomicFileWriter::AtomicFileWriter(std::string final_path)
    : path_(std::move(final_path)), tmp_(path_ + ".tmp") {}

AtomicFileWriter::~AtomicFileWriter() {
  // Nothing touches the disk before commit(), and commit() cleans up after
  // itself on failure — except the torn mode, which *deliberately* leaves a
  // partial final file for recovery paths to reject.
}

void AtomicFileWriter::commit() {
  if (committed_) {
    throw std::runtime_error("io_file: commit() called twice for " + path_);
  }
  committed_ = true;
  std::string bytes = buffer_.str();

  for (int attempt = 0;; ++attempt) {
    const auto plan = FaultInjector::instance().io_fault("io.write");
    if (!plan.has_value()) break;
    switch (plan->mode) {
      case Mode::kEintr: {
        if (attempt + 1 >= kTransientRetries) {
          throw InjectedFault("io_file: injected EINTR storm exhausted " +
                              std::to_string(kTransientRetries) +
                              " retries writing " + path_);
        }
        continue;  // transient: redraw and retry
      }
      case Mode::kTorn: {
        // A strict prefix lands under the FINAL path: models a crash midway
        // through a non-atomic write (or a partially flushed rename). The
        // chaos oracle "no partially-published artifact ever loads" is
        // checked against exactly this state.
        const std::size_t n = strict_prefix(bytes.size(), plan->fraction);
        std::ofstream out(path_, std::ios::binary | std::ios::trunc);
        if (out) write_stream(out, bytes, n);
        throw InjectedFault("io_file: injected torn write left a partial " +
                            path_);
      }
      case Mode::kEnospc: {
        // The device fills mid-write: a prefix reaches the temp file, the
        // publish fails, and the cleanup removes the partial temp — the
        // final path is never touched.
        const std::size_t n = strict_prefix(bytes.size(), plan->fraction);
        {
          std::ofstream out(tmp_, std::ios::binary | std::ios::trunc);
          if (out) write_stream(out, bytes, n);
        }
        std::remove(tmp_.c_str());
        throw InjectedFault(
            "io_file: injected ENOSPC (no space left on device) writing " +
            tmp_);
      }
      case Mode::kCorrupt: {
        // One deterministically chosen bit flips in the published bytes;
        // the artifact CRC footer must catch it at load time.
        if (!bytes.empty()) {
          const auto bit = static_cast<std::size_t>(
              plan->fraction * static_cast<double>(bytes.size() * 8));
          const std::size_t clamped = bit >= bytes.size() * 8
                                          ? bytes.size() * 8 - 1
                                          : bit;
          bytes[clamped / 8] =
              static_cast<char>(static_cast<unsigned char>(
                                    bytes[clamped / 8]) ^
                                (1u << (clamped % 8)));
        }
        break;
      }
      default:
        break;  // throw/delay already handled inside io_fault()
    }
    break;
  }

  std::ofstream out(tmp_, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("io_file: cannot open " + tmp_ + " for writing");
  }
  write_stream(out, bytes, bytes.size());
  if (!out) {
    out.close();
    std::remove(tmp_.c_str());
    throw std::runtime_error("io_file: write to " + tmp_ + " failed");
  }
  out.close();
  sync_file(tmp_);
  if (std::rename(tmp_.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_.c_str());
    throw std::runtime_error("io_file: rename to " + path_ + " failed");
  }
}

void atomic_write_file(const std::string& path, const std::string& contents) {
  AtomicFileWriter writer(path);
  writer.stream().write(contents.data(),
                        static_cast<std::streamsize>(contents.size()));
  writer.commit();
}

std::string read_file(const std::string& path) {
  std::optional<FaultInjector::IoFaultPlan> damage;
  for (int attempt = 0;; ++attempt) {
    const auto plan = FaultInjector::instance().io_fault("io.read");
    if (!plan.has_value()) break;
    if (plan->mode == Mode::kEintr) {
      if (attempt + 1 >= kTransientRetries) {
        throw InjectedFault("io_file: injected EINTR storm exhausted " +
                            std::to_string(kTransientRetries) +
                            " retries reading " + path);
      }
      continue;  // transient: redraw and retry
    }
    if (plan->mode == Mode::kShortRead || plan->mode == Mode::kCorrupt) {
      damage = plan;  // applied to the bytes below
      break;
    }
    // Write-shaped modes (torn/enospc) at the read site: a plain failure.
    throw InjectedFault(std::string("injected fault at io.read (") + path +
                        ")");
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("io_file: cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in && !in.eof()) {
    throw std::runtime_error("io_file: read failed for " + path);
  }
  std::string bytes = buffer.str();

  if (damage.has_value()) {
    if (damage->mode == Mode::kShortRead) {
      bytes.resize(strict_prefix(bytes.size(), damage->fraction));
    } else if (!bytes.empty()) {  // kCorrupt: bad sector on the read path
      const auto bit = static_cast<std::size_t>(
          damage->fraction * static_cast<double>(bytes.size() * 8));
      const std::size_t clamped =
          bit >= bytes.size() * 8 ? bytes.size() * 8 - 1 : bit;
      bytes[clamped / 8] = static_cast<char>(
          static_cast<unsigned char>(bytes[clamped / 8]) ^
          (1u << (clamped % 8)));
    }
  }
  return bytes;
}

bool file_exists(const std::string& path) {
  std::FILE* probe = std::fopen(path.c_str(), "rb");
  if (probe == nullptr) return false;
  std::fclose(probe);
  return true;
}

bool remove_file(const std::string& path) {
  return std::remove(path.c_str()) == 0;
}

bool rename_file(const std::string& from, const std::string& to) {
  return std::rename(from.c_str(), to.c_str()) == 0;
}

}  // namespace advtext
