#include "src/util/stop_token.h"

namespace advtext {

std::atomic<int> StopToken::flag_{0};
static_assert(std::atomic<int>::is_always_lock_free,
              "signal handler stores require a lock-free atomic");

// Named (not anonymous-namespace) so the header can befriend it; only this
// translation unit takes its address.
void stop_token_signal_handler(int signal_number) {
  if (StopToken::flag_.load(std::memory_order_relaxed) != 0) {
    // Second signal: the cooperative path is apparently stuck. Restore the
    // default disposition and re-raise so the process dies normally. Both
    // calls are async-signal-safe.
    std::signal(signal_number, SIG_DFL);
    std::raise(signal_number);
    return;
  }
  StopToken::flag_.store(signal_number, std::memory_order_relaxed);
}

StopToken& StopToken::instance() {
  static StopToken token;
  return token;
}

void StopToken::install() {
  if (installed_) return;
  installed_ = true;
  std::signal(SIGINT, stop_token_signal_handler);
  std::signal(SIGTERM, stop_token_signal_handler);
}

void StopToken::request_stop(int signal_number) {
  flag_.store(signal_number, std::memory_order_relaxed);
}

}  // namespace advtext
