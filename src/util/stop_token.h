// Cooperative shutdown for long-running work (training runs, table sweeps).
//
// A SIGINT/SIGTERM must not throw away hours of training: the supervisor
// polls this token between units of work, flushes a final snapshot, and
// returns with TerminationReason::kStopped so callers can exit with a
// distinct code. The handler itself only writes one lock-free atomic flag —
// async-signal-safe, and also race-free when sharded training polls the
// token from many worker threads at once — and a *second* signal restores
// the default disposition and re-raises, so an unresponsive process can
// still be killed the ordinary way.
//
// Signal-handling policy (enforced by tools/lint.py rule `raw-signal`): no
// file outside src/util/ calls signal()/sigaction() directly; all handler
// installation goes through StopToken so there is exactly one place that
// owns process signal dispositions.
#pragma once

#include <atomic>
#include <csignal>

namespace advtext {

/// Process-wide stop flag with optional SIGINT/SIGTERM wiring.
class StopToken {
 public:
  /// The single process-wide token.
  static StopToken& instance();

  /// Installs the SIGINT/SIGTERM handlers (idempotent). Call once near the
  /// top of a CLI; library code only ever *reads* the token.
  void install();

  /// True once a handled signal arrived or request_stop() was called.
  /// Safe to poll from any thread (lock-free atomic).
  bool stop_requested() const {
    return flag_.load(std::memory_order_relaxed) != 0;
  }

  /// The signal number that requested the stop (0 = none; request_stop()
  /// defaults to SIGTERM so tests and callers share one code path).
  int signal_number() const { return flag_.load(std::memory_order_relaxed); }

  /// Requests a stop programmatically (tests, embedding applications).
  void request_stop(int signal_number = SIGTERM);

  /// Clears the flag (tests; a CLI that wants to survive one interrupt).
  void clear() { flag_.store(0, std::memory_order_relaxed); }

 private:
  StopToken() = default;

  friend void stop_token_signal_handler(int);

  // A lock-free std::atomic<int> is async-signal-safe (the handler may
  // store to it) *and* well-defined under concurrent polling from worker
  // threads — volatile sig_atomic_t only covers the former.
  static std::atomic<int> flag_;
  bool installed_ = false;
};

}  // namespace advtext
