// Cooperative shutdown for long-running work (training runs, table sweeps).
//
// A SIGINT/SIGTERM must not throw away hours of training: the supervisor
// polls this token between units of work, flushes a final snapshot, and
// returns with TerminationReason::kStopped so callers can exit with a
// distinct code. The handler itself only writes one sig_atomic_t flag — the
// only thing that is async-signal-safe — and a *second* signal restores the
// default disposition and re-raises, so an unresponsive process can still
// be killed the ordinary way.
//
// Signal-handling policy (enforced by tools/lint.py rule `raw-signal`): no
// file outside src/util/ calls signal()/sigaction() directly; all handler
// installation goes through StopToken so there is exactly one place that
// owns process signal dispositions.
#pragma once

#include <csignal>

namespace advtext {

/// Process-wide stop flag with optional SIGINT/SIGTERM wiring.
class StopToken {
 public:
  /// The single process-wide token.
  static StopToken& instance();

  /// Installs the SIGINT/SIGTERM handlers (idempotent). Call once near the
  /// top of a CLI; library code only ever *reads* the token.
  void install();

  /// True once a handled signal arrived or request_stop() was called.
  bool stop_requested() const { return flag_ != 0; }

  /// The signal number that requested the stop (0 = none; request_stop()
  /// defaults to SIGTERM so tests and callers share one code path).
  int signal_number() const { return static_cast<int>(flag_); }

  /// Requests a stop programmatically (tests, embedding applications).
  void request_stop(int signal_number = SIGTERM);

  /// Clears the flag (tests; a CLI that wants to survive one interrupt).
  void clear() { flag_ = 0; }

 private:
  StopToken() = default;

  friend void stop_token_signal_handler(int);

  static volatile std::sig_atomic_t flag_;
  bool installed_ = false;
};

}  // namespace advtext
