#include "src/util/string_util.h"

#include <cctype>
#include <cstdio>

namespace advtext {

std::vector<std::string> split(std::string_view text,
                               std::string_view delims) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    const bool at_end = i == text.size();
    if (at_end || delims.find(text[i]) != std::string_view::npos) {
      if (i > start) out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(pieces[i]);
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool is_alnum(std::string_view text) {
  if (text.empty()) return false;
  for (char c : text) {
    if (!std::isalnum(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string format_percent(double fraction, int precision) {
  return format_double(fraction * 100.0, precision) + "%";
}

}  // namespace advtext
