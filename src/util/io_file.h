// The single file-IO choke point for src/ (analyzer rule `raw-io`): every
// read, write, probe, remove and rename of a regular file flows through
// this shim, so the FaultInjector's storage fault modes — torn writes,
// ENOSPC, short reads, EINTR storms, silent bit corruption — reach *all*
// durable artifacts (eval checkpoints, training snapshots, daemon journals,
// tasks, trained parameters) from one place. Subsumes the former
// util/atomic_file.
//
// Injection sites: "io.write" (AtomicFileWriter::commit / write_file) and
// "io.read" (read_file). Armed with the IO modes they fire as:
//
//   torn       — a strict prefix of the bytes lands under the FINAL path,
//                then InjectedFault: models a crash midway through a
//                non-atomic write. Readers must reject the partial file.
//   enospc     — a prefix reaches the temp file, the temp file is removed,
//                InjectedFault mentioning ENOSPC: the final path is never
//                touched (atomic publication holds under a full disk).
//   short-read — read_file returns a strict prefix of the file, modelling
//                a race with a concurrent truncation; loaders must detect
//                the truncation, not crash.
//   eintr      — transient: the shim retries internally (bounded), so a
//                sporadic EINTR-class hiccup is invisible to callers; a
//                p=1.0 storm exhausts the retries and throws.
//   corrupt    — one deterministically chosen bit flips (in the published
//                bytes on write, in the returned bytes on read); the
//                artifact CRC footer must catch it at load time.
//
// The prefix length and bit position come from the injector's seeded RNG,
// so a (spec, seed) pair reproduces the exact damage — the chaos campaign's
// bitwise oracles rely on this.
#pragma once

#include <sstream>
#include <string>

namespace advtext {

/// Writes `final_path` atomically: stream into stream(), then commit() —
/// the bytes are buffered in memory and published in one temp-file write +
/// flush + fsync + rename, so a crash (or injected fault) mid-commit can
/// never leave a half-written file under the final name. Destruction
/// without commit() publishes nothing. Throws std::runtime_error when the
/// temp file cannot be opened, a write fails, or the rename fails.
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(std::string final_path);
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  std::ostream& stream() { return buffer_; }

  /// Publishes the buffered bytes ("io.write" injection site). May be
  /// called at most once.
  void commit();

 private:
  std::string path_;
  std::string tmp_;
  std::ostringstream buffer_;
  bool committed_ = false;
};

/// Convenience wrapper: publishes `contents` atomically to `path`.
void atomic_write_file(const std::string& path, const std::string& contents);

/// Reads the whole file ("io.read" injection site). Throws
/// std::runtime_error when the file cannot be opened or the read fails.
std::string read_file(const std::string& path);

/// True when `path` exists and is openable for reading. A probe, not an
/// injection site: journal/generation scans must see the real directory
/// state or recovery itself would become nondeterministic.
bool file_exists(const std::string& path);

/// Removes `path`; returns false when nothing was removed. Cleanup path,
/// not an injection site.
bool remove_file(const std::string& path);

/// Renames `from` over `to` (replacing it). Returns false on failure —
/// callers in rotation paths treat a failed demotion as "generation
/// absent", which the restore scan already tolerates.
bool rename_file(const std::string& from, const std::string& to);

}  // namespace advtext
