// Contract layer: runtime invariant checks with streaming context.
//
// The attack framework's guarantees (greedy's (1-1/e) bound, exact WMD via
// min-cost flow, manual backprop) only hold if the substrate is numerically
// and memory correct. This header gives every subsystem a uniform way to
// state its preconditions and invariants:
//
//   ADVTEXT_CHECK(cond) << "context " << value;        // always on
//   ADVTEXT_CHECK_SHAPE(cond) << "dims " << r << "x" << c;
//   ADVTEXT_DCHECK(cond) << "debug-only invariant";    // no-op in Release
//
// Policy:
//   * ADVTEXT_CHECK guards conditions that depend on caller input or
//     external data (shapes, file contents, user-supplied indices). It is
//     active in every build type; violations throw CheckError.
//   * ADVTEXT_CHECK_SHAPE is ADVTEXT_CHECK specialised to dimension /
//     argument preconditions; it throws ShapeError (a std::invalid_argument)
//     so existing call sites and tests keep their exception contracts.
//   * ADVTEXT_DCHECK guards internal invariants that are provably true
//     unless advtext itself has a bug (flow conservation after a solve,
//     gradient finiteness after a step). It compiles to nothing when
//     ADVTEXT_DCHECK_ENABLED is 0 — the condition is NOT evaluated — so hot
//     loops may use it freely. Sanitizer builds force it on.
//
// The macros use the classic if/else stream-sink shape so they are safe in
// unbraced if/else bodies, and the message builder is only constructed on
// the failure path (the success path costs one branch).
#pragma once

#include <cstddef>
#include <sstream>
#include <stdexcept>
#include <string>

// DCHECK activation: off in NDEBUG builds unless forced (the sanitizer
// presets define ADVTEXT_FORCE_DCHECKS so ASan/UBSan/TSan runs exercise
// every internal invariant).
#if !defined(ADVTEXT_DCHECK_ENABLED)
#if defined(NDEBUG) && !defined(ADVTEXT_FORCE_DCHECKS)
#define ADVTEXT_DCHECK_ENABLED 0
#else
#define ADVTEXT_DCHECK_ENABLED 1
#endif
#endif

namespace advtext {

/// Thrown by ADVTEXT_CHECK / ADVTEXT_DCHECK on violation.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown on dimension / argument precondition violations. Derives from
/// std::invalid_argument so callers catching the pre-contract-layer
/// exception type keep working.
class ShapeError : public std::invalid_argument {
 public:
  explicit ShapeError(const std::string& what)
      : std::invalid_argument(what) {}
};

namespace detail {

/// Accumulates "<file>:<line>: CHECK failed: <cond>" plus streamed context,
/// then throws E from its destructor. Only ever constructed on the failure
/// path, so the throwing destructor cannot fire during another unwind.
template <typename E>
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << ": CHECK failed: " << condition;
    seen_context_ = false;
  }

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    if (!seen_context_) {
      stream_ << ": ";
      seen_context_ = true;
    }
    stream_ << value;
    return *this;
  }

  ~CheckFailure() noexcept(false) { throw E(stream_.str()); }

 private:
  std::ostringstream stream_;
  bool seen_context_;
};

/// Swallows streamed context in disabled-DCHECK builds; every operator<<
/// is a no-op the optimizer deletes.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace detail

/// True iff every element is finite (no NaN, no +-Inf).
bool all_finite(const float* data, std::size_t n);
bool all_finite(const double* data, std::size_t n);

/// Throws CheckError naming `what` and the first bad index if any element
/// is NaN or +-Inf. `what` should identify the tensor being scanned, e.g.
/// "Adam::step: param 3 values".
void check_finite(const float* data, std::size_t n, const char* what);
void check_finite(const double* data, std::size_t n, const char* what);

#define ADVTEXT_CHECK(condition)                                  \
  if (condition) {                                                \
  } else /* NOLINT(readability-misleading-indentation) */         \
    ::advtext::detail::CheckFailure<::advtext::CheckError>(       \
        __FILE__, __LINE__, #condition)

#define ADVTEXT_CHECK_SHAPE(condition)                            \
  if (condition) {                                                \
  } else /* NOLINT(readability-misleading-indentation) */         \
    ::advtext::detail::CheckFailure<::advtext::ShapeError>(       \
        __FILE__, __LINE__, #condition)

#if ADVTEXT_DCHECK_ENABLED
#define ADVTEXT_DCHECK(condition) ADVTEXT_CHECK(condition)
#else
// `false && (condition)` keeps the condition type-checked (and any
// variables it names "used") without ever evaluating it; the whole
// statement folds to nothing.
#define ADVTEXT_DCHECK(condition) \
  while (false && static_cast<bool>(condition)) ::advtext::detail::NullStream()
#endif

}  // namespace advtext
