// Concurrency primitives with compile-time thread-safety analysis.
//
// The north star is parallel shard training and batched attack serving, and
// the first data race that ships costs more than every lock it would have
// taken to prevent it. This header makes racy code fail to *compile* under
// Clang instead of failing under TSan at 2am:
//
//   * Capability annotations — ADVTEXT_CAPABILITY / ADVTEXT_GUARDED_BY /
//     ADVTEXT_REQUIRES / ADVTEXT_ACQUIRE / ADVTEXT_RELEASE wrap Clang's
//     -Wthread-safety attribute set (no-op on GCC and other compilers, so
//     the tree stays portable). cmake/AdvtextToolchain.cmake turns the
//     analysis on for every target whenever the compiler is Clang, and
//     promotes it to an error under ADVTEXT_WERROR — the CI `thread-safety`
//     leg builds exactly that way, plus a deliberately misannotated target
//     (tests/thread_safety_neg.cpp) that must FAIL to compile, proving the
//     analysis is live and not silently disabled.
//   * advtext::Mutex / MutexLock / CondVar — annotated wrappers over the
//     standard primitives. Rule `raw-mutex` / `raw-thread` in tools/lint.py:
//     no std::thread, std::mutex, std::condition_variable, std::lock_guard
//     (or friends) anywhere outside src/util/sync.*; all concurrency flows
//     through these wrappers so every lock is visible to the analysis.
//   * TaskQueue / ThreadPool — a bounded MPMC queue and a fixed-size worker
//     pool, the only place worker threads are spawned. Shared state is
//     ADVTEXT_GUARDED_BY its mutex, so the analysis proves the lock
//     discipline of the pool itself.
//
//   * Heartbeat / Watchdog — per-worker liveness signals and the monitor
//     that turns "a worker stopped beating while busy" into a typed stall
//     report within a bound, instead of a silent hang. The daemon's job
//     watchdog and the chaos campaign's no-hang oracle are built on these.
//
// Determinism note: threads make *scheduling* nondeterministic, never
// results — consumers (ShardedTrainSupervisor) are designed so that all
// cross-thread reductions happen at barriers in a fixed order. Nothing in
// this file draws randomness; clocks are read only by CondVar's timed wait
// and the Watchdog's stall timer (sync.* lives in util/, the one layer the
// raw-clock rule allows).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

// ---- Clang thread-safety attribute wrappers --------------------------------
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html. Each
// macro expands to the corresponding attribute under Clang and to nothing
// elsewhere, so annotated headers compile unchanged under GCC.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define ADVTEXT_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef ADVTEXT_THREAD_ANNOTATION
#define ADVTEXT_THREAD_ANNOTATION(x)  // no-op on non-Clang compilers
#endif

/// Marks a type as a lockable capability ("mutex").
#define ADVTEXT_CAPABILITY(x) ADVTEXT_THREAD_ANNOTATION(capability(x))
/// Marks an RAII type whose lifetime acquires/releases a capability.
#define ADVTEXT_SCOPED_CAPABILITY ADVTEXT_THREAD_ANNOTATION(scoped_lockable)
/// Data member readable/writable only while holding the named capability.
#define ADVTEXT_GUARDED_BY(x) ADVTEXT_THREAD_ANNOTATION(guarded_by(x))
/// Pointer member whose *pointee* is guarded by the named capability.
#define ADVTEXT_PT_GUARDED_BY(x) ADVTEXT_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function requires the capability held on entry (and does not release it).
#define ADVTEXT_REQUIRES(...) \
  ADVTEXT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function acquires the capability (held on return, not on entry).
#define ADVTEXT_ACQUIRE(...) \
  ADVTEXT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the capability (held on entry, not on return).
#define ADVTEXT_RELEASE(...) \
  ADVTEXT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns `result`.
#define ADVTEXT_TRY_ACQUIRE(result, ...) \
  ADVTEXT_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))
/// Function must NOT be called with the capability held (deadlock guard).
#define ADVTEXT_EXCLUDES(...) \
  ADVTEXT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Runtime assertion that the capability is held (trusted by the analysis).
#define ADVTEXT_ASSERT_CAPABILITY(x) \
  ADVTEXT_THREAD_ANNOTATION(assert_capability(x))
/// Function returns a reference to the named capability.
#define ADVTEXT_RETURN_CAPABILITY(x) \
  ADVTEXT_THREAD_ANNOTATION(lock_returned(x))
/// Lock-ordering declaration for deadlock detection (-Wthread-safety-beta).
#define ADVTEXT_ACQUIRED_BEFORE(...) \
  ADVTEXT_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ADVTEXT_ACQUIRED_AFTER(...) \
  ADVTEXT_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
/// Escape hatch for functions the analysis cannot follow (keep rare; every
/// use is a hole in the proof).
#define ADVTEXT_NO_THREAD_SAFETY_ANALYSIS \
  ADVTEXT_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace advtext {

/// Hardware concurrency hint with a floor of 1 (0 is a legal
/// std::thread::hardware_concurrency result). Lives here because sync.* is
/// the only code allowed to name std::thread; callers size worker pools and
/// stamp benchmark records with it.
std::size_t hardware_threads();

/// Annotated exclusive mutex. Prefer MutexLock for scoped acquisition;
/// lock()/unlock() exist for the rare hand-over-hand pattern and for
/// CondVar's re-acquisition.
class ADVTEXT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ADVTEXT_ACQUIRE() { mu_.lock(); }
  void unlock() ADVTEXT_RELEASE() { mu_.unlock(); }
  bool try_lock() ADVTEXT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII scoped lock over an advtext::Mutex.
class ADVTEXT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ADVTEXT_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() ADVTEXT_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to advtext::Mutex. Callers must hold the mutex
/// they pass (ADVTEXT_REQUIRES), re-check their predicate after every wake
/// (spurious wakeups happen), and hold the same mutex when mutating the
/// predicate state so waiters never miss a notify.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and re-acquires `mu` before
  /// returning.
  void wait(Mutex& mu) ADVTEXT_REQUIRES(mu);

  /// wait() with a timeout; returns false on timeout (mutex re-acquired
  /// either way). Waiters that also poll an external flag (StopToken) use
  /// this so a signal that carries no notify still gets noticed.
  bool wait_for_ms(Mutex& mu, long ms) ADVTEXT_REQUIRES(mu);

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// Bounded MPMC queue of tasks. push() blocks while full, pop() blocks
/// while empty; close() wakes everyone, after which push() is rejected and
/// pop() drains the remaining tasks then reports empty.
class TaskQueue {
 public:
  using Task = std::function<void()>;

  explicit TaskQueue(std::size_t capacity);

  /// Enqueues (blocking while at capacity). Returns false iff the queue was
  /// closed, in which case the task was not enqueued.
  bool push(Task task) ADVTEXT_EXCLUDES(mu_);

  /// Dequeues (blocking while empty). Returns false iff the queue is closed
  /// and fully drained; `out` is untouched then.
  bool pop(Task& out) ADVTEXT_EXCLUDES(mu_);

  /// Rejects future push() calls and wakes all blocked producers/consumers.
  /// Already-queued tasks still drain.
  void close() ADVTEXT_EXCLUDES(mu_);

  std::size_t size() const ADVTEXT_EXCLUDES(mu_);
  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable Mutex mu_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<Task> items_ ADVTEXT_GUARDED_BY(mu_);
  bool closed_ ADVTEXT_GUARDED_BY(mu_) = false;
};

/// One worker's liveness signal. The worker beats whenever it makes
/// observable progress (task picked up, document committed, wait loop
/// iterated); a Watchdog reads the beat counter and the busy flag from its
/// monitor thread. The tag names what the worker is doing ("job12") so a
/// stall report can say *what* is stuck, not just *where*.
class Heartbeat {
 public:
  /// Progress signal; call at every unit of observable progress.
  void beat() { beats_.fetch_add(1, std::memory_order_relaxed); }
  std::uint64_t beats() const {
    return beats_.load(std::memory_order_relaxed);
  }

  /// Busy workers that stop beating are stalls; idle workers never are.
  /// Entering busy also counts as a beat so the stall clock starts fresh.
  void set_busy(bool busy) {
    busy_.store(busy, std::memory_order_relaxed);
    beat();
  }
  bool busy() const { return busy_.load(std::memory_order_relaxed); }

  void set_tag(const std::string& tag) {
    MutexLock lock(mu_);
    tag_ = tag;
  }
  std::string tag() const {
    MutexLock lock(mu_);
    return tag_;
  }

 private:
  std::atomic<std::uint64_t> beats_{0};
  std::atomic<bool> busy_{false};
  mutable Mutex mu_;
  std::string tag_ ADVTEXT_GUARDED_BY(mu_);
};

/// Monitors a fixed set of Heartbeats from its own thread and reports every
/// worker that has been busy without beating for longer than the stall
/// bound — the liveness guarantee behind "no hangs, ever": a stuck job is
/// *detected* within stall_ms + poll_ms and converted to a typed outcome by
/// the owner's handler, even though the stuck thread itself cannot be
/// killed. One report fires per stall episode; a worker that resumes
/// beating re-arms its detector.
class Watchdog {
 public:
  struct Config {
    double stall_ms = 1000.0;  ///< busy-without-beating bound
    double poll_ms = 50.0;     ///< monitor wake cadence (detection slack)
  };

  /// Called on the monitor thread, outside any Watchdog lock. Keep it
  /// non-blocking-ish: the monitor does not poll while a handler runs.
  using StallHandler = std::function<void(
      std::size_t index, const std::string& tag, double stalled_ms)>;

  /// The heartbeats must outlive the Watchdog (e.g. a ThreadPool's workers'
  /// heartbeats, with the pool destroyed after the watchdog).
  Watchdog(std::vector<const Heartbeat*> hearts, const Config& config,
           StallHandler on_stall);

  /// Stops and joins the monitor thread.
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Stall episodes reported so far.
  std::size_t stalls() const ADVTEXT_EXCLUDES(mu_);

  /// Stops the monitor early (idempotent; the destructor calls it).
  void stop() ADVTEXT_EXCLUDES(mu_);

 private:
  void monitor_loop() ADVTEXT_EXCLUDES(mu_);

  const std::vector<const Heartbeat*> hearts_;
  const Config config_;
  const StallHandler on_stall_;
  mutable Mutex mu_;
  CondVar wake_;
  bool stopping_ ADVTEXT_GUARDED_BY(mu_) = false;
  std::size_t stalls_ ADVTEXT_GUARDED_BY(mu_) = 0;
  std::thread monitor_;
};

/// Fixed-size worker pool over a bounded TaskQueue — the only place in the
/// tree that spawns threads. Tasks must not throw (an escaped exception
/// from a task would terminate the process); wrap fallible work and record
/// its failure into state you own.
class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1). `queue_capacity` bounds the backlog
  /// of not-yet-started tasks (defaults to 2x the worker count).
  explicit ThreadPool(std::size_t threads, std::size_t queue_capacity = 0);

  /// Closes the queue, drains remaining tasks, joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task (blocking while the queue is full). Returns false iff
  /// the pool is shutting down.
  bool submit(TaskQueue::Task task) ADVTEXT_EXCLUDES(mu_);

  /// Blocks until every submitted task has finished (queue empty and no
  /// task running). The pool stays usable afterwards.
  void wait_idle() ADVTEXT_EXCLUDES(mu_);

  std::size_t threads() const { return workers_.size(); }

  /// Worker `index`'s heartbeat: busy while a task runs, beaten around each
  /// task. Long-running tasks beat it themselves through current().
  const Heartbeat& heartbeat(std::size_t index) const {
    return *hearts_[index];
  }

  /// Heartbeat views for a Watchdog over this pool's workers.
  std::vector<const Heartbeat*> heartbeats() const;

  /// The calling pool worker's own heartbeat (null off-pool), so task
  /// bodies can beat per unit of progress and tag what they are doing
  /// without threading a pointer through every capture.
  static Heartbeat* current();

 private:
  void worker_loop(std::size_t index);

  TaskQueue queue_;
  mutable Mutex mu_;
  CondVar idle_;
  std::size_t in_flight_ ADVTEXT_GUARDED_BY(mu_) = 0;  ///< queued + running
  /// unique_ptr: Heartbeat is immovable (atomics + mutex) but workers_
  /// sizing happens at run time.
  std::vector<std::unique_ptr<Heartbeat>> hearts_;
  std::vector<std::thread> workers_;
};

}  // namespace advtext
