// Tiny command-line flag parser for the CLI tool and examples.
//
// Syntax: positional arguments plus --key=value / --key value / --flag.
// Typed getters with defaults; unknown-flag detection; auto-generated
// usage text.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace advtext {

class ArgParser {
 public:
  /// Parses argv; throws std::invalid_argument on malformed input
  /// (e.g. "--" with no name).
  ArgParser(int argc, const char* const* argv);

  /// Positional arguments in order (argv[0] excluded).
  const std::vector<std::string>& positional() const { return positional_; }

  bool has(const std::string& name) const;

  /// Typed getters returning the default when the flag is absent; throw
  /// std::invalid_argument when the value does not parse.
  std::string get_string(const std::string& name,
                         const std::string& fallback = "") const;
  long get_int(const std::string& name, long fallback = 0) const;
  double get_double(const std::string& name, double fallback = 0.0) const;
  bool get_bool(const std::string& name, bool fallback = false) const;

  /// Names of all flags that were provided.
  std::vector<std::string> flag_names() const;

  /// Returns the flags that are not in `known` (for unknown-flag errors).
  std::vector<std::string> unknown_flags(
      const std::vector<std::string>& known) const;

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string> flags_;  // value "" = bare flag
};

}  // namespace advtext
